"""E-commerce purchase monitoring: shared aggregation of item-sequence counts.

The scenario of Figure 2: queries q8-q11 count purchase sequences such as
``(Laptop, Case, Adapter)`` per customer within a sliding window; all four
queries contain the sub-pattern ``(Laptop, Case)``, which the Sharon
optimizer decides to share.  The example also shows a query expressed in the
textual SASE-style language via :func:`repro.parse_query`, and a SUM
aggregate (revenue attributable to accessory purchases that follow a laptop).

Run with::

    python examples/ecommerce_recommendation.py
"""

from __future__ import annotations

from repro import RateCatalog, SharonOptimizer, parse_query
from repro.datasets import EcommerceConfig, generate_ecommerce_stream, purchase_workload
from repro.events import SlidingWindow
from repro.executor import ASeqExecutor, SharonExecutor
from repro.queries import Workload


def build_workload() -> Workload:
    """q8-q11 from Figure 2 plus one revenue query written in query text."""
    window = SlidingWindow(size=120, slide=30)
    workload = purchase_workload(window=window)
    revenue_query = parse_query(
        "RETURN SUM(Case.price) "
        "PATTERN SEQ(Laptop, Case) "
        "WHERE [customer] "
        "WITHIN 120 SLIDE 30",
        name="q12_revenue",
    )
    extended = Workload(list(workload) + [revenue_query], name="purchase+revenue")
    return extended


def main() -> None:
    config = EcommerceConfig(
        num_items=20,
        num_customers=15,
        duration_seconds=300,
        purchases_per_second=10.0,
        follow_probability=0.65,
        seed=31,
    )
    stream = generate_ecommerce_stream(config)
    workload = build_workload()
    print(f"{len(workload)} purchase queries, {len(stream)} purchase events")

    rates = RateCatalog.from_stream(stream, per="time-unit")
    optimization = SharonOptimizer(rates).optimize(workload)
    print(f"\nSharing plan (score {optimization.plan.score:.2f}):")
    for candidate in optimization.plan:
        print(f"  share {candidate.pattern!r} among {set(candidate.query_names)}")

    sharon_report = SharonExecutor(workload, plan=optimization.plan).run(stream)
    aseq_report = ASeqExecutor(workload).run(stream)
    assert sharon_report.results.matches(aseq_report.results)

    print("\nMetrics:")
    print(f"  {sharon_report.metrics.summary()}")
    print(f"  {aseq_report.metrics.summary()}")

    print("\nPurchase-dependency counts (largest per query):")
    for query in workload:
        rows = sorted(
            sharon_report.results.for_query(query.name),
            key=lambda r: (r.value is not None, r.value),
            reverse=True,
        )
        if rows and rows[0].value:
            best = rows[0]
            print(f"  {query.name} {query.pattern!r}: {best.value} in window {best.window}")
        else:
            print(f"  {query.name} {query.pattern!r}: no matches")


if __name__ == "__main__":
    main()
