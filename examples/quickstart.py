"""Quickstart: optimize and execute a small event-sequence-aggregation workload.

Run with::

    python examples/quickstart.py

The script builds the paper's traffic-monitoring workload (queries q1-q7 of
Figure 1), generates a synthetic taxi position-report stream, lets the Sharon
optimizer choose a sharing plan, executes the workload with both the shared
(Sharon) and the non-shared (A-Seq) online executors, and prints a few
results together with runtime metrics.
"""

from __future__ import annotations

from repro import RateCatalog, SharonOptimizer
from repro.datasets import TaxiConfig, generate_taxi_stream, traffic_workload
from repro.events import SlidingWindow
from repro.executor import ASeqExecutor, SharonExecutor


def main() -> None:
    # 1. The workload: count trips per route in a sliding window.
    #    (Window scaled down so the example runs in a couple of seconds.)
    workload = traffic_workload(window=SlidingWindow(size=60, slide=20))
    print(f"Workload {workload.name!r} with {len(workload)} queries:")
    for query in workload:
        print(f"  {query.name}: SEQ{query.pattern!r}")

    # 2. A synthetic stream of vehicle position reports.
    stream = generate_taxi_stream(
        TaxiConfig(duration_seconds=180, reports_per_second=12, num_vehicles=10, seed=7)
    )
    print(f"\nStream: {len(stream)} position reports over {stream.duration} seconds")

    # 3. Optimize: estimate rates from the stream, build the Sharon graph,
    #    prune, and search for the optimal sharing plan.
    rates = RateCatalog.from_stream(stream, per="time-unit")
    result = SharonOptimizer(rates).optimize(workload)
    print(f"\nSharing plan (score {result.plan.score:.2f}):")
    for candidate in result.plan:
        print(f"  share {candidate.pattern!r} among {set(candidate.query_names)}")
    if result.plan.is_empty:
        print("  (no sharing is beneficial for this stream - Sharon falls back to A-Seq)")

    # 4. Execute with and without sharing and compare.
    shared_report = SharonExecutor(workload, plan=result.plan).run(stream)
    non_shared_report = ASeqExecutor(workload).run(stream)

    print("\nSample results (Sharon executor):")
    for result_row in list(shared_report.results.nonzero())[:8]:
        print(f"  {result_row}")

    print("\nMetrics:")
    print(f"  {shared_report.metrics.summary()}")
    print(f"  {non_shared_report.metrics.summary()}")
    assert shared_report.results.matches(non_shared_report.results), (
        "shared and non-shared executors must agree"
    )
    print("\nShared and non-shared executors produced identical results.")


if __name__ == "__main__":
    main()
