"""Regenerate the paper's evaluation figures as text tables.

This script runs the same sweeps as the ``benchmarks/`` suite (Figures 13-16
of the paper) through :mod:`repro.experiments` and prints each figure's
series as an ASCII table.  It is the quickest way to eyeball the reproduced
shapes without pytest; `EXPERIMENTS.md` records a snapshot of this output
against the paper's reported numbers.

Run with::

    python examples/reproduce_figures.py            # quick sweep (a few minutes)
    python examples/reproduce_figures.py --full     # full sweep used for EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import run_all_figures


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full sweeps (slower); default is a quick subset",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    results = run_all_figures(quick=not args.full)
    for result in results:
        print(result.render())
        print()
    elapsed = time.perf_counter() - started
    print(f"Reproduced {len(results)} figures in {elapsed:.1f} s "
          f"({'full' if args.full else 'quick'} sweep).")


if __name__ == "__main__":
    main()
