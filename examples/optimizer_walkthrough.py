"""Walk through the Sharon optimizer on the paper's running example.

This example reproduces, step by step, the optimizer narrative of
Sections 3-7 on the traffic workload of Figure 1 / Table 1:

1. sharable-pattern detection (the seven candidates p1-p7 of Table 1);
2. the Sharon graph of Figure 4, using the vertex weights the paper reports
   (25, 9, 12, 15, 20, 8, 18) so every number below can be compared against
   the text;
3. the GWMIN guarantee (~38.57) and the conflict-ridden / conflict-free
   pruning of Examples 7-9;
4. the greedy plan (score 43) versus the optimal plan (score 50) of
   Example 12.

Run with::

    python examples/optimizer_walkthrough.py
"""

from __future__ import annotations

from repro.core import (
    SharingCandidate,
    build_sharon_graph,
    find_optimal_plan,
    gwmin_plan,
    reduce_sharon_graph,
    reduction_search_space_savings,
)
from repro.datasets import traffic_workload

#: Vertex weights of Figure 4, keyed by the shared pattern's event types.
PAPER_BENEFITS: dict[tuple[str, ...], float] = {
    ("OakSt", "MainSt"): 25.0,            # p1
    ("ParkAve", "OakSt"): 9.0,            # p2
    ("ParkAve", "OakSt", "MainSt"): 12.0, # p3
    ("MainSt", "WestSt"): 15.0,           # p4
    ("OakSt", "MainSt", "WestSt"): 20.0,  # p5
    ("MainSt", "StateSt"): 8.0,           # p6
    ("ElmSt", "ParkAve"): 18.0,           # p7
}


def paper_benefit(candidate: SharingCandidate) -> float:
    return PAPER_BENEFITS.get(candidate.pattern.event_types, 0.0)


def main() -> None:
    workload = traffic_workload()
    print("Step 1 - sharable patterns (Table 1):")
    graph = build_sharon_graph(workload, rates=placeholder_rates(), benefit_override=paper_benefit)
    for vertex in graph.vertices:
        print(
            f"  {vertex.pattern!r} shared by {set(vertex.query_names)} "
            f"benefit={vertex.benefit:g} conflicts={graph.degree(vertex)}"
        )

    print("\nStep 2 - the Sharon graph (Figure 4):")
    print(f"  {len(graph)} candidates, {graph.edge_count} conflicts")

    guaranteed = graph.gwmin_guaranteed_weight()
    print(f"\nStep 3 - GWMIN guaranteed weight (Equation 10): {guaranteed:.2f}")

    reduction = reduce_sharon_graph(graph)
    print("  pruned as conflict-ridden:",
          [repr(v.pattern) for v in reduction.conflict_ridden])
    print("  committed as conflict-free:",
          [repr(v.pattern) for v in reduction.conflict_free])
    savings = reduction_search_space_savings(len(graph), len(reduction.reduced_graph))
    print(f"  search space reduced by {savings:.2%} (Example 9 reports 75.59%)")

    print("\nStep 4 - greedy versus optimal plan (Example 12):")
    greedy = gwmin_plan(graph)
    optimal = find_optimal_plan(reduction.reduced_graph, reduction.conflict_free)
    print(f"  greedy plan  (score {greedy.score:g}): "
          f"{[repr(c.pattern) for c in greedy]}")
    print(f"  optimal plan (score {optimal.score:g}): "
          f"{[repr(c.pattern) for c in optimal]}")
    improvement = (optimal.score - greedy.score) / greedy.score
    print(f"  optimal improves the greedy score by {improvement:.1%} "
          "(the paper reports >16%)")


def placeholder_rates():
    """A rate catalog placeholder: weights come from the benefit override."""
    from repro.utils import RateCatalog

    return RateCatalog(default_rate=1.0)


if __name__ == "__main__":
    main()
