"""Dynamic workloads: rate drift, re-optimization, and plan migration (Section 7.4).

A sharing plan is chosen for the rates observed when the optimizer runs; if
the stream's composition changes (rush hour begins, a flash sale starts), the
plan can become sub-optimal.  The adaptive executor monitors per-type rates
at runtime, re-runs the Sharon optimizer when they drift beyond a threshold,
and migrates to the new plan without losing any window's results.

The example builds a stream whose character changes halfway through (the
walkers speed up and concentrate on one part of the segment chain), runs the
adaptive executor, and shows the recorded migrations — then verifies that the
adaptively computed results are identical to a static A-Seq run.

Run with::

    python examples/dynamic_workload.py
"""

from __future__ import annotations

from repro.core import AdaptiveSharonExecutor
from repro.datasets import ChainConfig, chain_stream, chain_workload
from repro.events import Event, EventStream, SlidingWindow, merge_streams
from repro.executor import ASeqExecutor


def build_drifting_stream(config: ChainConfig) -> EventStream:
    """A stream whose rate quadruples halfway through the run."""
    calm = chain_stream(
        duration=120, events_per_second=8, config=config, num_entities=10, seed=51
    )
    busy_raw = chain_stream(
        duration=120, events_per_second=32, config=config, num_entities=10, seed=52
    )
    # Shift the busy phase so it starts right after the calm phase ends.
    busy = EventStream(
        [
            Event(event.event_type, event.timestamp + 120, event.attributes, event.event_id)
            for event in busy_raw
        ],
        name="busy",
    )
    return merge_streams(calm, busy, name="drifting")


def main() -> None:
    config = ChainConfig(num_event_types=12, entity_attribute="car")
    workload = chain_workload(
        12, 5, config=config, window=SlidingWindow(size=30, slide=15), seed=53,
        offset_pool_size=3,
    )
    stream = build_drifting_stream(config)
    print(f"{len(workload)} queries over a drifting stream of {len(stream)} events "
          f"({stream.duration} time units)")

    executor = AdaptiveSharonExecutor(
        workload,
        check_interval=30,
        drift_threshold=0.4,
    )
    report = executor.run(stream)

    print(f"\n{report.metrics.summary()}")
    print(f"\nPlans used over the run: {len(executor.plan_history)}")
    for index, plan in enumerate(executor.plan_history):
        print(f"  plan {index}: {len(plan)} shared patterns, score {plan.score:.1f}")
    print(f"\nPlan migrations: {len(executor.migrations)}")
    for migration in executor.migrations:
        print(
            f"  at t={migration.at_timestamp}: drift {migration.drift:.2f}, "
            f"score {migration.old_plan_score:.1f} -> {migration.new_plan_score:.1f}"
        )

    baseline = ASeqExecutor(workload).run(stream)
    assert report.results.matches(baseline.results), report.results.differences(
        baseline.results
    )[:5]
    print("\nAdaptive execution produced exactly the same results as the static baseline.")


if __name__ == "__main__":
    main()
