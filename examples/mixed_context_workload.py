"""Sharing across queries with different windows and predicates (Section 7.2).

The core Sharon model shares patterns only among queries with identical
predicates, grouping, and windows.  When a workload mixes contexts — say,
traffic queries with a 60-second window per vehicle alongside fleet-level
queries with a 120-second tumbling window — the workload is first segmented
into uniform contexts; Sharon is then applied inside each context and the
stream is evaluated once per context.

Run with::

    python examples/mixed_context_workload.py
"""

from __future__ import annotations

from repro.core import MultiContextExecutor, split_into_contexts
from repro.datasets import TaxiConfig, generate_taxi_stream
from repro.events import SlidingWindow
from repro.executor import ASeqExecutor
from repro.queries import Pattern, PredicateSet, Query, Workload


def build_mixed_workload() -> Workload:
    """Two groups of route queries with different windows / predicates."""
    per_vehicle = PredicateSet.same("vehicle")
    short_window = SlidingWindow(size=60, slide=20)
    long_window = SlidingWindow(size=120, slide=120)

    per_vehicle_queries = [
        Query(Pattern(["OakSt", "MainSt", "StateSt"]), short_window, predicates=per_vehicle, name="m1"),
        Query(Pattern(["OakSt", "MainSt", "WestSt"]), short_window, predicates=per_vehicle, name="m2"),
        Query(Pattern(["ParkAve", "OakSt", "MainSt"]), short_window, predicates=per_vehicle, name="m3"),
    ]
    fleet_queries = [
        Query(Pattern(["OakSt", "MainSt"]), long_window, name="f1"),
        Query(Pattern(["OakSt", "MainSt", "WestSt"]), long_window, name="f2"),
        Query(Pattern(["ElmSt", "ParkAve"]), long_window, name="f3"),
        Query(Pattern(["ElmSt", "ParkAve", "GroveSt"]), long_window, name="f4"),
    ]
    return Workload(per_vehicle_queries + fleet_queries, name="mixed-traffic")


def main() -> None:
    workload = build_mixed_workload()
    stream = generate_taxi_stream(
        TaxiConfig(duration_seconds=240, reports_per_second=10, num_vehicles=8, seed=77)
    )
    print(f"Mixed workload with {len(workload)} queries over {len(stream)} reports")

    # 1. Context segmentation (Section 7.2).
    contexts = split_into_contexts(workload)
    print(f"\nThe workload splits into {len(contexts)} uniform contexts:")
    for context in contexts:
        sample = context.workload[0]
        print(
            f"  {context.name}: {len(context.workload)} queries, "
            f"WITHIN {sample.window.size} SLIDE {sample.window.slide}, "
            f"predicates {sample.predicates!r}"
        )

    # 2. Per-context optimization + execution, results merged.
    executor = MultiContextExecutor(workload)
    report = executor.run(stream)
    print("\nPer-context sharing plans:")
    for context in executor.contexts:
        patterns = [repr(c.pattern) for c in context.plan]
        print(f"  {context.name}: {patterns if patterns else 'no sharing beneficial'}")
    print(f"\n{report.metrics.summary()}")

    # 3. Correctness: per-context execution must agree with evaluating every
    #    context separately with the non-shared baseline.
    for context in executor.contexts:
        baseline = ASeqExecutor(context.workload).run(stream)
        for result in baseline.results:
            merged_value = report.results.value(result.query_name, result.window, result.group)
            expected = result.value if result.value is not None else 0
            assert merged_value == expected, (result, merged_value)
    print("Merged multi-context results verified against per-context A-Seq baselines.")


if __name__ == "__main__":
    main()
