"""Traffic monitoring: route-popularity counts over a Linear-Road-style stream.

This example reproduces the urban-transportation scenario of the paper's
introduction at a larger scale than the quickstart:

* a workload of 20 route queries over 20 expressway segments (patterns of
  length 6, heavily overlapping — the sharing-rich regime);
* a Linear Road position-report stream whose rate ramps up over time;
* a comparison of the Sharon executor guided by the optimizer's plan against
  the non-shared A-Seq baseline, including the optimizer's own statistics.

Run with::

    python examples/traffic_monitoring.py
"""

from __future__ import annotations

from repro import RateCatalog, SharonOptimizer
from repro.datasets import (
    LinearRoadConfig,
    generate_linear_road_stream,
    traffic_workload_scaled,
)
from repro.events import SlidingWindow
from repro.executor import ASeqExecutor, SharonExecutor


def main() -> None:
    config = LinearRoadConfig(
        num_segments=20,
        num_cars=60,
        duration_seconds=240,
        initial_rate=10.0,
        final_rate=40.0,
        seed=19,
    )
    workload = traffic_workload_scaled(
        num_queries=20,
        pattern_length=6,
        config=config,
        window=SlidingWindow(size=40, slide=20),
    )
    stream = generate_linear_road_stream(config)
    print(f"{len(workload)} route queries over {config.num_segments} segments, "
          f"{len(stream)} position reports")

    # --- optimize -----------------------------------------------------------
    rates = RateCatalog.from_stream(stream, per="time-unit")
    optimizer = SharonOptimizer(rates, expand=False)
    optimization = optimizer.optimize(workload)
    print(
        f"\nOptimizer: {optimization.candidates_total} candidates, "
        f"{optimization.candidates_after_reduction} after reduction, "
        f"{optimization.plans_considered} plans considered, "
        f"{optimization.total_seconds * 1000:.1f} ms"
    )
    print(f"Sharing plan score {optimization.plan.score:.1f} with {len(optimization.plan)} candidates:")
    for candidate in optimization.plan:
        print(f"  share {candidate.pattern!r} among {len(candidate.query_names)} queries")

    # --- execute -------------------------------------------------------------
    sharon = SharonExecutor(workload, plan=optimization.plan, memory_sample_interval=4)
    aseq = ASeqExecutor(workload, memory_sample_interval=4)
    sharon_report = sharon.run(stream)
    aseq_report = aseq.run(stream)

    print("\nExecutor comparison:")
    print(f"  {sharon_report.metrics.summary()}")
    print(f"  {aseq_report.metrics.summary()}")
    if sharon_report.metrics.elapsed_seconds > 0:
        speedup = aseq_report.metrics.elapsed_seconds / sharon_report.metrics.elapsed_seconds
        print(f"  Sharon speed-up over A-Seq: {speedup:.2f}x")

    assert sharon_report.results.matches(aseq_report.results)

    # --- a glimpse at the answers ------------------------------------------------
    print("\nMost popular routes (largest trip counts in any window):")
    top = sorted(
        sharon_report.results.nonzero(), key=lambda r: r.value, reverse=True
    )[:5]
    for row in top:
        print(f"  {row.query_name} window {row.window} car-group {row.group}: {row.value} trips")


if __name__ == "__main__":
    main()
