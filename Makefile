PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-fast bench figures lint

test:
	$(PYTHON) -m pytest -x -q

## Tier-1 minus the benchmark suites (unit + property + integration).
test-fast:
	$(PYTHON) -m pytest -x -q tests

## Headless engine throughput benchmark; writes BENCH_engine.json.
bench:
	$(PYTHON) -m repro bench

figures:
	$(PYTHON) -m repro figures
