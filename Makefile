PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench figures lint

test:
	$(PYTHON) -m pytest -x -q

## Headless engine throughput benchmark; writes BENCH_engine.json.
bench:
	$(PYTHON) -m repro bench

figures:
	$(PYTHON) -m repro figures
