PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

## Differential-grid sizes (override to shrink/grow the randomized grids;
## documented in docs/benchmarks.md):
##   ORACLE_DIFF_SCENARIOS   - scenarios replayed through every executor
##                             (columnar and scalar ingestion, panes on/off)
##   PANE_DIFF_SCENARIOS     - pane-stressed scenarios replayed with panes on/off
##   SHARDED_DIFF_SCENARIOS  - scenarios replayed through the group-sharded engine
##   REPLAY_DIFF_SCENARIOS   - recorded-log scenarios replayed, checkpointed,
##                             resumed, and compared to the oracle
##   DISORDER_DIFF_SCENARIOS - scenarios delivered in bounded-disorder arrival
##                             orders through the reorder buffer
##   KERNEL_DIFF_SCENARIOS   - scenarios replayed through the numpy kernel
##                             backend (skipped when numpy is absent)
##   CHURN_DIFF_SCENARIOS    - seeded random attach/detach schedules replayed
##                             through the churn-capable executor cube
ORACLE_DIFF_SCENARIOS ?= 240
PANE_DIFF_SCENARIOS ?= 120
SHARDED_DIFF_SCENARIOS ?= 40
REPLAY_DIFF_SCENARIOS ?= 60
DISORDER_DIFF_SCENARIOS ?= 60
KERNEL_DIFF_SCENARIOS ?= 60
CHURN_DIFF_SCENARIOS ?= 60
export ORACLE_DIFF_SCENARIOS
export PANE_DIFF_SCENARIOS
export SHARDED_DIFF_SCENARIOS
export REPLAY_DIFF_SCENARIOS
export DISORDER_DIFF_SCENARIOS
export KERNEL_DIFF_SCENARIOS
export CHURN_DIFF_SCENARIOS

## Best-of-N sample count of the columnar_routing benchmark section
## (BENCH_engine.json and the benchmarks/test_engine_throughput.py gate).
COLUMNAR_BENCH_REPEATS ?= 5
export COLUMNAR_BENCH_REPEATS

.PHONY: test test-fast bench figures lint docs-check

test:
	$(PYTHON) -m pytest -x -q

## Tier-1 minus the benchmark suites (unit + property + integration).
test-fast:
	$(PYTHON) -m pytest -x -q tests

## Documentation checks: relative links/anchors in docs/ + README resolve,
## the doc map is complete, and every documented env knob actually exists.
docs-check:
	$(PYTHON) -m pytest -x -q tests/docs

## Benchmark sections to run (empty = all).  Space-separated subset of:
## engine compaction pane_sharing columnar_routing sharded_groups replay
## disorder kernel_numerics.  Example: make bench BENCH_SECTIONS="kernel_numerics"
BENCH_SECTIONS ?=

## Headless engine throughput benchmark; writes BENCH_engine.json.
bench:
	$(PYTHON) -m repro bench $(addprefix --section ,$(BENCH_SECTIONS))

figures:
	$(PYTHON) -m repro figures
