"""Documentation checks: links resolve, anchors exist, knobs are real.

The documentation set (``docs/*.md`` + ``README.md``) cross-links heavily —
doc map → pages → section anchors — and documents environment knobs that
must exist in the Makefile and the code.  This suite keeps all of that
honest:

* every relative markdown link points at an existing file,
* every ``#anchor`` fragment matches a real heading (GitHub slugification)
  in the target document,
* every documented grid/benchmark knob appears in both the Makefile and
  ``docs/benchmarks.md``, and is actually read by the code,
* the doc map (``docs/index.md``) lists every document in ``docs/``.

Run it standalone via ``make docs-check``; it also runs as part of tier-1.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"

#: The documentation set under test.
DOC_FILES = sorted(DOCS_DIR.glob("*.md")) + [REPO_ROOT / "README.md"]

#: Environment knobs the docs promise; each must exist in the Makefile, in
#: docs/benchmarks.md, and in the code that reads it.
DOCUMENTED_KNOBS = {
    "ORACLE_DIFF_SCENARIOS": "tests/integration/test_oracle_differential.py",
    "PANE_DIFF_SCENARIOS": "tests/integration/test_oracle_differential.py",
    "SHARDED_DIFF_SCENARIOS": "tests/integration/test_oracle_differential.py",
    "REPLAY_DIFF_SCENARIOS": "tests/integration/test_replay_determinism.py",
    "DISORDER_DIFF_SCENARIOS": "tests/integration/test_oracle_differential.py",
    "KERNEL_DIFF_SCENARIOS": "tests/integration/test_oracle_differential.py",
    "CHURN_DIFF_SCENARIOS": "tests/integration/test_churn_differential.py",
    "COLUMNAR_BENCH_REPEATS": "src/repro/experiments/bench.py",
    "BENCH_SECTIONS": "Makefile",
}

_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def non_fence_lines(text: str) -> list[str]:
    """The document's lines with fenced code blocks removed."""
    lines = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            lines.append(line)
    return lines


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    text = heading.lstrip("#").strip().replace("`", "")
    kept = "".join(ch for ch in text.lower() if ch.isalnum() or ch in "-_ ")
    return kept.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All heading anchors a document defines (code fences excluded)."""
    slugs: set[str] = set()
    for line in non_fence_lines(path.read_text(encoding="utf-8")):
        if line.startswith("#"):
            slugs.add(github_slug(line))
    return slugs


def relative_links(path: Path) -> list[str]:
    """All relative markdown link targets of a document (code fences excluded)."""
    text = "\n".join(non_fence_lines(path.read_text(encoding="utf-8")))
    targets = []
    for target in _LINK_PATTERN.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        targets.append(target)
    return targets


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    """Every relative link points at a file that exists."""
    broken = []
    for target in relative_links(doc):
        file_part = target.split("#", 1)[0]
        if not file_part:  # same-document anchor
            continue
        if not (doc.parent / file_part).resolve().exists():
            broken.append(target)
    assert not broken, f"{doc.name} has broken links: {broken}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_anchors_match_real_headings(doc):
    """Every ``#fragment`` matches a heading slug in the target document."""
    dangling = []
    for target in relative_links(doc):
        if "#" not in target:
            continue
        file_part, anchor = target.split("#", 1)
        resolved = (doc.parent / file_part).resolve() if file_part else doc
        if not resolved.exists() or resolved.suffix != ".md":
            continue  # broken files are the previous test's finding
        if anchor not in heading_slugs(resolved):
            dangling.append((target, resolved.name))
    assert not dangling, f"{doc.name} has dangling anchors: {dangling}"


def test_doc_map_lists_every_document():
    """docs/index.md must link every file living in docs/."""
    index = DOCS_DIR / "index.md"
    linked = {target.split("#", 1)[0] for target in relative_links(index)}
    missing = [
        doc.name
        for doc in DOCS_DIR.glob("*.md")
        if doc.name != "index.md" and doc.name not in linked
    ]
    assert not missing, f"docs/index.md does not link: {missing}"


def test_readme_links_the_doc_map():
    readme = REPO_ROOT / "README.md"
    assert "docs/index.md" in readme.read_text(encoding="utf-8")


@pytest.mark.parametrize("knob", sorted(DOCUMENTED_KNOBS), ids=str)
def test_documented_knobs_exist_everywhere(knob):
    """A knob the docs promise must exist in the Makefile and the code."""
    makefile = (REPO_ROOT / "Makefile").read_text(encoding="utf-8")
    benchmarks_doc = (DOCS_DIR / "benchmarks.md").read_text(encoding="utf-8")
    reader = (REPO_ROOT / DOCUMENTED_KNOBS[knob]).read_text(encoding="utf-8")
    assert knob in makefile, f"{knob} missing from Makefile"
    assert knob in benchmarks_doc, f"{knob} missing from docs/benchmarks.md"
    assert knob in reader, f"{knob} not read by {DOCUMENTED_KNOBS[knob]}"
