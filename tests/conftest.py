"""Shared fixtures for the Sharon reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import SharingCandidate, build_sharon_graph
from repro.datasets import (
    EcommerceConfig,
    TaxiConfig,
    generate_ecommerce_stream,
    generate_taxi_stream,
    purchase_workload,
    traffic_workload,
)
from repro.events import Event, EventStream, SlidingWindow
from repro.queries import AggregateSpec, Pattern, PredicateSet, Query, Workload
from repro.utils import RateCatalog

#: Vertex weights of the Sharon graph in Figure 4, keyed by pattern types.
#: They are consistent with Examples 5, 7, 8, 10 and 12 of the paper
#: (GWMIN bound ~38.57, greedy score 43, optimal score 50).
PAPER_BENEFITS: dict[tuple[str, ...], float] = {
    ("OakSt", "MainSt"): 25.0,             # p1, shared by q1-q4
    ("ParkAve", "OakSt"): 9.0,             # p2, shared by q3, q4
    ("ParkAve", "OakSt", "MainSt"): 12.0,  # p3, shared by q3, q4
    ("MainSt", "WestSt"): 15.0,            # p4, shared by q2, q4
    ("OakSt", "MainSt", "WestSt"): 20.0,   # p5, shared by q2, q4
    ("MainSt", "StateSt"): 8.0,            # p6, shared by q1, q5
    ("ElmSt", "ParkAve"): 18.0,            # p7, shared by q6, q7
}


def paper_benefit(candidate: SharingCandidate) -> float:
    """Benefit override reproducing the weights of Figure 4."""
    return PAPER_BENEFITS.get(candidate.pattern.event_types, 0.0)


@pytest.fixture
def traffic() -> Workload:
    """The traffic-monitoring workload q1-q7 (Figure 1)."""
    return traffic_workload()

@pytest.fixture
def purchases() -> Workload:
    """The purchase-monitoring workload q8-q11 (Figure 2)."""
    return purchase_workload()


@pytest.fixture
def paper_graph(traffic):
    """The Sharon graph of Figure 4 with the paper's vertex weights."""
    return build_sharon_graph(
        traffic, RateCatalog(default_rate=1.0), benefit_override=paper_benefit
    )


@pytest.fixture
def small_taxi_stream() -> EventStream:
    """A small deterministic taxi stream for executor tests."""
    return generate_taxi_stream(
        TaxiConfig(duration_seconds=90, reports_per_second=6, num_vehicles=5, seed=3)
    )


@pytest.fixture
def small_purchase_stream() -> EventStream:
    """A small deterministic purchase stream for executor tests."""
    return generate_ecommerce_stream(
        EcommerceConfig(
            num_items=10,
            num_customers=4,
            duration_seconds=90,
            purchases_per_second=5.0,
            seed=13,
        )
    )


@pytest.fixture
def ab_query() -> Query:
    """COUNT(*) over SEQ(A, B), window 4 slide 1 — the running example of Figure 6."""
    return Query(
        pattern=Pattern(["A", "B"]),
        window=SlidingWindow(size=4, slide=1),
        aggregate=AggregateSpec.count_star(),
        name="ab",
    )


def random_maximal_plan(workload, seed: int):
    """A maximal conflict-free sharing plan assembled in seeded random order.

    Shared by the executor property suite and the oracle differential
    harness, so both always test the same plan-construction semantics.
    """
    import random

    from repro.core import ConflictDetector, SharingPlan, build_candidates

    detector = ConflictDetector(workload)
    candidates = build_candidates(workload)
    rng = random.Random(seed)
    rng.shuffle(candidates)
    chosen = []
    for candidate in candidates:
        if all(not detector.in_conflict(candidate, other) for other in chosen):
            chosen.append(candidate.with_benefit(1.0))
    return SharingPlan(chosen)


def make_events(rows) -> list[Event]:
    """Build events from ``(type, timestamp)`` or ``(type, timestamp, attrs)`` rows."""
    events = []
    for event_id, row in enumerate(rows):
        if len(row) == 2:
            event_type, timestamp = row
            attrs = {}
        else:
            event_type, timestamp, attrs = row
        events.append(Event(event_type, timestamp, attrs, event_id))
    return events


@pytest.fixture
def uniform_query_factory():
    """Factory building uniform COUNT(*) queries sharing one window."""

    window = SlidingWindow(size=20, slide=10)

    def factory(types, name, predicates: PredicateSet | None = None) -> Query:
        return Query(
            pattern=Pattern(types),
            window=window,
            aggregate=AggregateSpec.count_star(),
            predicates=predicates if predicates is not None else PredicateSet(),
            name=name,
        )

    return factory
