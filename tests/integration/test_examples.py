"""Smoke tests running every example script end to end.

The examples double as executable documentation; they must keep working as
the library evolves.  Each script exposes a ``main()`` function, so they are
imported and executed in-process (stdout is captured by pytest).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "example",
    [
        "quickstart",
        "optimizer_walkthrough",
        "ecommerce_recommendation",
        "traffic_monitoring",
        "mixed_context_workload",
        "dynamic_workload",
    ],
)
def test_example_runs(example, capsys):
    module = load_example(example)
    module.main()
    captured = capsys.readouterr()
    assert captured.out.strip(), f"example {example} should print a report"


def test_examples_directory_documented():
    """Every example file is referenced in the README."""
    readme = (EXAMPLES_DIR.parent / "README.md").read_text(encoding="utf-8")
    for path in EXAMPLES_DIR.glob("*.py"):
        assert path.name in readme, f"{path.name} missing from README"
