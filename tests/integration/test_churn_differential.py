"""Churn differential harness: live attach/detach must match a fresh-run oracle.

:func:`repro.datasets.random_churn_scenario` splits a randomized scenario
(:func:`repro.datasets.random_scenario`) into an initial workload plus a
timestamped :class:`~repro.executor.churn.ChurnSchedule` of mid-run attach
and detach ops.  This module replays each schedule through the engine's
churn surface (``SharonExecutor(..., churn=...)``, in columnar, scalar,
pane-partitioned, compaction-off, and — where importable — numpy-backend
mode, plus non-shared A-Seq) and pins every query against the churn oracle
(``docs/churn.md``):

* a query attached at ``t`` must emit exactly what a fresh run of that
  query alone over the full stream emits for windows with ``start >= t``;
* a query detached at ``t`` must emit exactly what a fresh run over the
  stream truncated to events before ``t`` emits (open windows yield their
  partial values at detach time);
* queries never touched by the schedule must match the plain oracle.

When a divergence is found the harness *shrinks* it: churn ops, initial
queries, and events are removed greedily while the divergence persists
(each candidate schedule is re-validated so shrinking never produces an
inapplicable program), and the failure message prints the minimal
reproducer for :class:`TestChurnRegressionCorpus`.

A second section pins churn × crash recovery: replaying a churned schedule
through :class:`~repro.replay.ReplayRunner` with periodic checkpoints, a
resume from *every* checkpoint — including ones taken between an attach and
its first gated window — must reach a final session export byte-identical
to the uninterrupted run, and checkpoints must refuse to resume under a
different churn script (mismatching schedule descriptor or tampered
applied-op history).

The grid size is controlled by the ``CHURN_DIFF_SCENARIOS`` environment
variable (default 60; CI reduces it).  Seeds are fixed so every run is
reproducible.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.datasets import describe_scenario, random_churn_scenario
from repro.events import Event, EventStream, SlidingWindow
from repro.executor import (
    ASeqExecutor,
    ChurnOp,
    ChurnSchedule,
    OracleExecutor,
    ResultSet,
    SharonExecutor,
)
from repro.executor.kernels import numpy_available
from repro.queries import Pattern, Query, Workload
from repro.replay import CheckpointError, ReplayRunner, load_checkpoint, save_checkpoint

from ..conftest import random_maximal_plan

#: Randomized churn schedules checked per full run (CI may reduce this).
NUM_CHURN_SCENARIOS = int(os.environ.get("CHURN_DIFF_SCENARIOS", "60"))

#: Scenarios are split into parametrized blocks so failures localise.
NUM_BLOCKS = 8


def deterministic_plan(workload: Workload, seed: int):
    """The harness's plan for a scenario's *initial* workload."""
    return random_maximal_plan(workload, seed)


def churn_executors_under_test(workload: Workload, seed: int, schedule: ChurnSchedule):
    """The churn-capable executors, freshly constructed per evaluation.

    Spans the toggle cube the churn surface sits under: columnar and scalar
    ingestion (recompiled layouts must re-route mid-stream in both), pane
    mode (pane-matrix migration plus detach partials folded from the open
    pane), compaction off (zombie cohorts stay long), the numpy kernel
    backend where importable, and the non-shared A-Seq decomposition.
    """
    plan = deterministic_plan(workload, seed)
    executors = [
        ("Sharon-churn", SharonExecutor(workload, plan=plan, churn=schedule)),
        (
            "Sharon-churn-scalar",
            SharonExecutor(workload, plan=plan, columnar=False, churn=schedule),
        ),
        (
            "Sharon-churn-panes",
            SharonExecutor(workload, plan=plan, panes=True, churn=schedule),
        ),
        (
            "Sharon-churn-no-compaction",
            SharonExecutor(workload, plan=plan, compaction=False, churn=schedule),
        ),
        ("A-Seq-churn", ASeqExecutor(workload, churn=schedule)),
    ]
    if numpy_available():
        executors.append(
            (
                "Sharon-churn-numpy",
                SharonExecutor(workload, plan=plan, backend="numpy", churn=schedule),
            )
        )
        executors.append(
            (
                "Sharon-churn-numpy-panes",
                SharonExecutor(
                    workload, plan=plan, panes=True, backend="numpy", churn=schedule
                ),
            )
        )
    return executors


def query_lifetimes(workload: Workload, schedule: ChurnSchedule):
    """Per-query ``(query, attach_at, detach_at)`` over the whole run.

    ``attach_at`` is ``None`` for initial queries (no emission gate);
    ``detach_at`` is ``None`` for queries that run to end-of-stream.  The
    generator never re-attaches a name, so this flat model is complete.
    """
    lifetimes: dict[str, list] = {
        query.name: [query, None, None] for query in workload
    }
    for op in schedule:
        if op.kind == "attach":
            lifetimes[op.query_name] = [op.query, op.at, None]
        else:
            lifetimes[op.query_name][2] = op.at
    return {name: tuple(entry) for name, entry in lifetimes.items()}


def churn_oracle(workload: Workload, stream: EventStream, schedule: ChurnSchedule):
    """Fresh-run expectation per query: truncate at detach, gate at attach."""
    events = list(stream)
    expected: dict[str, ResultSet] = {}
    for name, (query, attach_at, detach_at) in query_lifetimes(workload, schedule).items():
        visible = (
            events
            if detach_at is None
            else [event for event in events if event.timestamp < detach_at]
        )
        results = OracleExecutor(Workload((query,))).run(EventStream(visible)).results
        if attach_at is not None:
            results = ResultSet(r for r in results if r.window.start >= attach_at)
        expected[name] = results
    return expected


def find_churn_divergence(
    workload: Workload,
    stream: EventStream,
    schedule: ChurnSchedule,
    seed: int,
    executors=churn_executors_under_test,
):
    """First (executor, query, differences) mismatching the churn oracle, or ``None``."""
    expected = churn_oracle(workload, stream, schedule)
    for executor_name, executor in executors(workload, seed, schedule):
        results = executor.run(stream).results
        for query_name, oracle in expected.items():
            mine = ResultSet(r for r in results if r.query_name == query_name)
            if not mine.matches(oracle):
                return executor_name, query_name, mine.differences(oracle)[:5]
        extra = {r.query_name for r in results} - set(expected)
        if extra:
            return executor_name, sorted(extra)[0], [("unexpected query emitted", None, None)]
    return None


def _schedule_applies(initial: list[Query], ops: list[ChurnOp]) -> bool:
    """Whether a candidate (initial workload, op list) is a valid program."""
    if not initial:
        return False
    active = {query.name for query in initial}
    for op in ChurnSchedule(ops):
        if op.kind == "attach":
            if op.query_name in active:
                return False
            active.add(op.query_name)
        else:
            if op.query_name not in active or len(active) == 1:
                return False
            active.remove(op.query_name)
    return True


def shrink_churn_divergence(
    workload: Workload,
    stream: EventStream,
    schedule: ChurnSchedule,
    seed: int,
    executors=churn_executors_under_test,
):
    """Greedy delta-debugging: drop ops, queries, and events while it diverges.

    Dropping an attach op removes its query from the run entirely; dropping
    an initial query may orphan a detach op — every candidate is re-checked
    with :func:`_schedule_applies` so the shrunk program stays valid.
    """
    queries = list(workload)
    ops = list(schedule)
    events = list(stream)

    def diverges(queries, ops, events) -> bool:
        if not _schedule_applies(queries, ops):
            return False
        candidate = Workload(queries, name=workload.name)
        return bool(
            find_churn_divergence(
                candidate, EventStream(events, name=stream.name), ChurnSchedule(ops), seed, executors
            )
        )

    shrinking = True
    while shrinking:
        shrinking = False
        for index in range(len(ops)):
            candidate = ops[:index] + ops[index + 1 :]
            if diverges(queries, candidate, events):
                ops = candidate
                shrinking = True
                break
        if shrinking:
            continue
        for index in range(len(queries)):
            candidate = queries[:index] + queries[index + 1 :]
            if diverges(candidate, ops, events):
                queries = candidate
                shrinking = True
                break
        if shrinking:
            continue
        for index in range(len(events)):
            candidate = events[:index] + events[index + 1 :]
            if diverges(queries, ops, candidate):
                events = candidate
                shrinking = True
                break
    return (
        Workload(queries, name=workload.name),
        EventStream(events, name=stream.name),
        ChurnSchedule(ops),
    )


def describe_churn_scenario(
    workload: Workload, stream: EventStream, schedule: ChurnSchedule
) -> str:
    lines = [describe_scenario(workload, stream), "schedule:"]
    for op in schedule:
        suffix = f"  {op.query!r}" if op.kind == "attach" else ""
        lines.append(f"  {op.kind}@{op.at}: {op.query_name}{suffix}")
    return "\n".join(lines)


def check_churn_scenario(seed: int) -> None:
    workload, stream, schedule = random_churn_scenario(seed)
    divergence = find_churn_divergence(workload, stream, schedule, seed)
    if divergence is None:
        return
    minimal_workload, minimal_stream, minimal_schedule = shrink_churn_divergence(
        workload, stream, schedule, seed
    )
    divergence = (
        find_churn_divergence(minimal_workload, minimal_stream, minimal_schedule, seed)
        or divergence
    )
    executor_name, query_name, differences = divergence
    pytest.fail(
        f"churn scenario seed={seed}: executor {executor_name} diverges from "
        f"the churn oracle on query {query_name!r}.\n"
        f"first differences (key, executor value, oracle value): {differences}\n"
        f"minimal reproducer:\n"
        f"{describe_churn_scenario(minimal_workload, minimal_stream, minimal_schedule)}\n"
        f"plan seed: {seed} (rebuild with deterministic_plan on the initial workload)"
    )


@pytest.mark.parametrize("block", range(NUM_BLOCKS))
def test_churned_executors_match_fresh_run_oracle(block):
    """Attach gates, detach truncation, and untouched queries all equal fresh runs."""
    per_block = (NUM_CHURN_SCENARIOS + NUM_BLOCKS - 1) // NUM_BLOCKS
    for offset in range(per_block):
        seed = block * per_block + offset
        if seed >= NUM_CHURN_SCENARIOS:
            break
        check_churn_scenario(seed)


def test_churn_grid_exercises_attach_and_detach():
    """The grid is toothless if schedules never matter: most must move results.

    An attach "matters" when the attached query emits at least one nonzero
    gated result (so the recompiled routing is actually exercised), and the
    generator must produce detach ops in a healthy fraction of scenarios.
    """
    total = min(NUM_CHURN_SCENARIOS, 40) or 40
    attaches_matter = 0
    detaches = 0
    for seed in range(total):
        workload, stream, schedule = random_churn_scenario(seed)
        expected = churn_oracle(workload, stream, schedule)
        if any(op.kind == "detach" for op in schedule):
            detaches += 1
        if any(
            len(expected[op.query_name].nonzero()) > 0
            for op in schedule
            if op.kind == "attach"
        ):
            attaches_matter += 1
    assert attaches_matter >= total // 3, (
        f"only {attaches_matter}/{total} scenarios have an attach that emits "
        f"anything — the gate is never really tested"
    )
    assert detaches >= total // 6, (
        f"only {detaches}/{total} scenarios contain a detach op — truncation "
        f"semantics are barely exercised"
    )


# -- churn × crash recovery ---------------------------------------------------


def _checkpointed_run(runner: ReplayRunner, stream: EventStream, tmp_path, every: int = 3):
    full = runner.run(stream, checkpoint_every=every, checkpoint_dir=tmp_path)
    assert full.checkpoints, "the scenario is too short to write a single checkpoint"
    return full


def test_resume_from_every_checkpoint_matches_full_churned_run(tmp_path):
    """Resume at any point of a churned replay is byte-identical to running through.

    Checkpoints land before, between, and after the schedule's ops, so this
    covers snapshots carrying zero, some, and all of the applied history —
    each resume re-applies exactly the checkpoint's churn prefix.
    """
    checked = 0
    for seed in (1, 5, 11):
        workload, stream, schedule = random_churn_scenario(seed)
        plan = deterministic_plan(workload, seed)
        runner = ReplayRunner(workload, plan=plan, churn=schedule)
        directory = tmp_path / f"seed-{seed}"
        full = _checkpointed_run(runner, stream, directory)
        for path in full.checkpoints:
            resumed = ReplayRunner(workload, plan=plan, churn=schedule).run(
                stream, resume_from=path
            )
            assert resumed.state_hash == full.state_hash, (
                f"seed {seed}: resume from {path.name} diverged from the "
                f"uninterrupted churned run"
            )
            checked += 1
    assert checked >= 6


def test_resume_between_attach_and_first_gated_window_matches_full_run(tmp_path):
    """A checkpoint after an attach but before its first emitting window resumes exactly.

    The attach applies at t=5 inside the window [0, 12); its gate admits
    only windows starting at slide multiples >= 5, so every window the new
    query emits opens *after* the attach.  Checkpointing every batch
    guarantees snapshots in the gap where the attach is applied but has
    emitted nothing — the fragile region for gate restoration.
    """
    window = SlidingWindow(size=12, slide=6)
    workload = Workload([Query(Pattern(("A", "B")), window, name="base")])
    joiner = Query(Pattern(("C", "D")), window, name="joiner")
    schedule = ChurnSchedule([ChurnOp("attach", 5, query=joiner)])
    stream = EventStream.from_tuples(
        [("A", 0), ("B", 2), ("C", 4), ("C", 5), ("D", 6), ("A", 7),
         ("B", 8), ("C", 9), ("D", 10), ("A", 13), ("B", 14), ("D", 15)]
    )
    runner = ReplayRunner(workload, churn=schedule)
    full = _checkpointed_run(runner, stream, tmp_path, every=1)
    gap_checkpoints = 0
    for path in full.checkpoints:
        checkpoint = load_checkpoint(path)
        history = (checkpoint.engine_state.get("churn") or {}).get("history", [])
        if history and checkpoint.last_timestamp < 6:
            gap_checkpoints += 1
        resumed = ReplayRunner(workload, churn=schedule).run(stream, resume_from=path)
        assert resumed.state_hash == full.state_hash, path.name
    assert gap_checkpoints > 0, (
        "no checkpoint landed between the attach and its first gated window; "
        "the test lost its teeth"
    )
    # The gate itself: the joiner emits only windows starting at t >= 5.
    joiner_results = ResultSet(
        r for r in full.report.results if r.query_name == "joiner"
    ).nonzero()
    assert joiner_results, "the attached query never emitted — nothing was gated"
    assert all(r.window.start >= 5 for r in joiner_results)


def test_checkpoint_refuses_resume_under_a_different_churn_script(tmp_path):
    """The full schedule is part of the determinism contract: mismatch → refusal."""
    workload, stream, schedule = random_churn_scenario(3)
    plan = deterministic_plan(workload, 3)
    runner = ReplayRunner(workload, plan=plan, churn=schedule)
    full = _checkpointed_run(runner, stream, tmp_path)
    path = full.checkpoints[-1]

    # A churn-free runner must refuse a churned checkpoint outright.
    with pytest.raises(CheckpointError, match="engine config"):
        ReplayRunner(workload, plan=plan).run(stream, resume_from=path)

    # A runner with a shifted schedule is a different program.
    shifted = ChurnSchedule(
        [
            ChurnOp(op.kind, op.at + 1, query=op.query, query_name=op.query_name)
            for op in schedule
        ]
    )
    with pytest.raises(CheckpointError, match="engine config"):
        ReplayRunner(workload, plan=plan, churn=shifted).run(stream, resume_from=path)


def test_checkpoint_refuses_tampered_churn_history(tmp_path):
    """A snapshot whose applied-op history disagrees with the schedule is refused.

    The engine-config check catches *declared* schedule mismatches; this
    pins the deeper guard — the per-op history verification that re-applies
    the prefix — by tampering with a checkpoint's recorded history while
    leaving its declared config intact.
    """
    workload, stream, schedule = random_churn_scenario(1)
    plan = deterministic_plan(workload, 1)
    runner = ReplayRunner(workload, plan=plan, churn=schedule)
    full = _checkpointed_run(runner, stream, tmp_path, every=2)
    churned = None
    for path in full.checkpoints:
        checkpoint = load_checkpoint(path)
        if (checkpoint.engine_state.get("churn") or {}).get("history"):
            churned = path, checkpoint
            break
    assert churned is not None, "no checkpoint captured an applied churn op"
    path, checkpoint = churned

    tampered = json.loads(json.dumps(checkpoint.engine_state))
    tampered["churn"]["history"][0]["at"] += 1
    bad = type(checkpoint)(
        events_consumed=checkpoint.events_consumed,
        last_timestamp=checkpoint.last_timestamp,
        workload_fingerprint=checkpoint.workload_fingerprint,
        engine_config=checkpoint.engine_config,
        engine_state=tampered,
    )
    bad_path = tmp_path / "tampered.json"
    save_checkpoint(bad, bad_path)
    with pytest.raises(CheckpointError, match="churn history"):
        ReplayRunner(workload, plan=plan, churn=schedule).run(stream, resume_from=bad_path)


class TestChurnRegressionCorpus:
    """Minimal churn scenarios distilled from harness development.

    Each case is the shrunk form of a divergence family found while building
    the churn surface; they run on every invocation even when the grid is
    reduced in CI, so past divergence shapes stay pinned.
    """

    def _assert_matches_oracle(self, workload, stream, schedule, seed: int = 0):
        divergence = find_churn_divergence(workload, stream, schedule, seed)
        assert divergence is None, divergence

    def test_attach_routes_its_own_trigger_batch(self):
        """Events at exactly the attach timestamp must reach the new query.

        The original churn loop applied due ops *after* the trigger batch
        was routed, so a batch at the attach timestamp was filtered under
        the old workload's type-relevance and the attached query silently
        missed its first events (grid seeds 5 and 25).  The op must apply
        before its trigger batch is routed.
        """
        window = SlidingWindow(size=12, slide=4)
        workload = Workload([Query(Pattern(("A", "B")), window, name="base")])
        joiner = Query(Pattern(("C", "D")), window, name="joiner")
        schedule = ChurnSchedule([ChurnOp("attach", 4, query=joiner)])
        stream = EventStream.from_tuples(
            [("A", 0), ("B", 2), ("C", 4), ("D", 5), ("C", 8), ("D", 9), ("A", 10), ("B", 11)]
        )
        self._assert_matches_oracle(workload, stream, schedule)

    def test_detach_emits_partial_values_of_open_windows(self):
        """Detach mid-window equals a run truncated at the detach timestamp."""
        window = SlidingWindow(size=10, slide=5)
        workload = Workload(
            [
                Query(Pattern(("A", "B")), window, name="keep"),
                Query(Pattern(("A", "C")), window, name="drop"),
            ]
        )
        schedule = ChurnSchedule([ChurnOp("detach", 7, query_name="drop")])
        stream = EventStream.from_tuples(
            [("A", 1), ("C", 2), ("B", 3), ("A", 6), ("C", 8), ("B", 9), ("A", 11), ("C", 12)]
        )
        self._assert_matches_oracle(workload, stream, schedule)

    def test_pane_detach_folds_the_open_pane_into_the_partial(self):
        """In pane mode the detach partial must include the still-open pane."""
        window = SlidingWindow(size=8, slide=4)  # pane width 4
        workload = Workload(
            [
                Query(Pattern(("A", "B")), window, name="keep"),
                Query(Pattern(("B", "C")), window, name="drop"),
            ]
        )
        schedule = ChurnSchedule([ChurnOp("detach", 6, query_name="drop")])
        stream = EventStream.from_tuples(
            [("B", 0), ("C", 1), ("A", 2), ("B", 4), ("C", 5), ("A", 6), ("B", 7), ("C", 9)]
        )
        self._assert_matches_oracle(workload, stream, schedule)

    def test_attach_then_detach_same_query(self):
        """A query living only in the middle of the stream is gated *and* truncated."""
        window = SlidingWindow(size=6, slide=3)
        workload = Workload([Query(Pattern(("A", "B")), window, name="base")])
        guest = Query(Pattern(("C", "D")), window, name="guest")
        schedule = ChurnSchedule(
            [ChurnOp("attach", 3, query=guest), ChurnOp("detach", 10, query_name="guest")]
        )
        stream = EventStream.from_tuples(
            [("C", 1), ("D", 2), ("A", 3), ("C", 4), ("D", 5), ("B", 6),
             ("C", 7), ("D", 8), ("C", 10), ("D", 11), ("A", 12), ("B", 13)]
        )
        self._assert_matches_oracle(workload, stream, schedule)

    def test_trailing_ops_apply_before_finish(self):
        """A detach scheduled past end-of-stream equals the full run for that query."""
        window = SlidingWindow(size=8, slide=4)
        workload = Workload(
            [
                Query(Pattern(("A", "B")), window, name="keep"),
                Query(Pattern(("B", "C")), window, name="late-drop"),
            ]
        )
        schedule = ChurnSchedule([ChurnOp("detach", 99, query_name="late-drop")])
        stream = EventStream.from_tuples([("A", 0), ("B", 1), ("C", 2), ("A", 5), ("B", 6), ("C", 7)])
        self._assert_matches_oracle(workload, stream, schedule)
