"""Integration test reproducing the paper's running example end to end.

The traffic workload of Figure 1 / Table 1 is threaded through the entire
optimizer pipeline with the vertex weights of Figure 4, checking every
concrete number the paper reports along the way:

* Table 1 — the seven sharing candidates and their query sets;
* Figure 4 — vertex weights and conflict degrees;
* Example 7 — the GWMIN guarantee (~38.57) and the pruning of p3;
* Example 8 — p7 is conflict-free;
* Example 9 — the search space shrinks by 75.59 %;
* Example 10 — 10 valid non-empty plans remain, the optimal one is
  {p2, p4, p6, p7};
* Example 12 — greedy score 43 vs. optimal score 50 (>16 % improvement).

Finally the optimal plan drives the Sharon executor on a synthetic taxi
stream and must produce exactly the same results as A-Seq and the two-step
oracle.
"""

from __future__ import annotations

import pytest

from repro.core import (
    GreedyOptimizer,
    SharonOptimizer,
    detect_sharable_patterns,
    enumerate_valid_plans,
    reduce_sharon_graph,
    reduction_search_space_savings,
)
from repro.datasets import TaxiConfig, generate_taxi_stream, traffic_workload
from repro.events import SlidingWindow
from repro.executor import ASeqExecutor, FlinkLikeExecutor, SharonExecutor
from repro.queries import Pattern
from repro.utils import RateCatalog

from ..conftest import PAPER_BENEFITS, paper_benefit


class TestOptimizerPipelineOnRunningExample:
    def test_table_1_candidates(self, traffic):
        sharable = detect_sharable_patterns(traffic)
        assert len(sharable) == 7
        assert sharable[Pattern(["OakSt", "MainSt"])] == ("q1", "q2", "q3", "q4")
        assert sharable[Pattern(["ParkAve", "OakSt"])] == ("q3", "q4")
        assert sharable[Pattern(["ParkAve", "OakSt", "MainSt"])] == ("q3", "q4")
        assert sharable[Pattern(["MainSt", "WestSt"])] == ("q2", "q4")
        assert sharable[Pattern(["OakSt", "MainSt", "WestSt"])] == ("q2", "q4")
        assert sharable[Pattern(["MainSt", "StateSt"])] == ("q1", "q5")
        assert sharable[Pattern(["ElmSt", "ParkAve"])] == ("q6", "q7")

    def test_figure_4_graph(self, paper_graph):
        assert len(paper_graph) == 7
        assert paper_graph.edge_count == 10
        assert paper_graph.total_weight() == sum(PAPER_BENEFITS.values())

    def test_examples_7_to_10(self, paper_graph):
        guaranteed = paper_graph.gwmin_guaranteed_weight()
        assert guaranteed == pytest.approx(38.57, abs=0.01)

        reduction = reduce_sharon_graph(paper_graph)
        assert {v.pattern.event_types for v in reduction.conflict_ridden} == {
            ("ParkAve", "OakSt", "MainSt")
        }
        assert {v.pattern.event_types for v in reduction.conflict_free} == {
            ("ElmSt", "ParkAve")
        }
        assert len(reduction.reduced_graph) == 5
        assert reduction_search_space_savings(7, 5) == pytest.approx(0.7559, abs=1e-3)

        valid_plans = [p for p in enumerate_valid_plans(reduction.reduced_graph) if len(p)]
        assert len(valid_plans) == 10

    def test_example_12_greedy_vs_optimal(self, traffic):
        rates = RateCatalog(default_rate=1.0)
        greedy = GreedyOptimizer(rates, benefit_override=paper_benefit).optimize(traffic)
        sharon = SharonOptimizer(rates, benefit_override=paper_benefit).optimize(traffic)

        assert greedy.plan.score == pytest.approx(43.0)
        assert sharon.plan.score == pytest.approx(50.0)
        improvement = (sharon.plan.score - greedy.plan.score) / greedy.plan.score
        assert improvement > 0.16

        optimal_patterns = {c.pattern.event_types for c in sharon.plan}
        assert optimal_patterns == {
            ("ParkAve", "OakSt"),
            ("MainSt", "WestSt"),
            ("MainSt", "StateSt"),
            ("ElmSt", "ParkAve"),
        }


class TestExecutorOnRunningExample:
    @pytest.fixture
    def scaled_traffic(self):
        # Same queries, smaller window so the test stream stays small.
        return traffic_workload(window=SlidingWindow(size=60, slide=20))

    @pytest.fixture
    def stream(self):
        return generate_taxi_stream(
            TaxiConfig(duration_seconds=150, reports_per_second=8, num_vehicles=6, seed=11)
        )

    def test_optimal_plan_executes_correctly(self, scaled_traffic, stream):
        rates = RateCatalog(default_rate=1.0)
        plan = SharonOptimizer(rates, benefit_override=paper_benefit).optimize(
            scaled_traffic
        ).plan
        assert len(plan) == 4

        sharon = SharonExecutor(scaled_traffic, plan=plan).run(stream)
        aseq = ASeqExecutor(scaled_traffic).run(stream)
        oracle = FlinkLikeExecutor(scaled_traffic).run(stream)

        assert sharon.results.matches(aseq.results), sharon.results.differences(aseq.results)
        assert sharon.results.matches(oracle.results), sharon.results.differences(
            oracle.results
        )
        assert any(result.value for result in sharon.results), (
            "the synthetic taxi stream should produce at least one matched trip"
        )

    def test_greedy_plan_also_correct_but_not_better(self, scaled_traffic, stream):
        rates = RateCatalog(default_rate=1.0)
        greedy_plan = GreedyOptimizer(rates, benefit_override=paper_benefit).optimize(
            scaled_traffic
        ).plan
        sharon_plan = SharonOptimizer(rates, benefit_override=paper_benefit).optimize(
            scaled_traffic
        ).plan

        greedy_report = SharonExecutor(scaled_traffic, plan=greedy_plan).run(stream)
        optimal_report = SharonExecutor(scaled_traffic, plan=sharon_plan).run(stream)
        assert greedy_report.results.matches(optimal_report.results)
        assert sharon_plan.score >= greedy_plan.score
