"""Replay determinism suite: recorded logs must replay byte-identically.

The replay subsystem (:mod:`repro.replay`) promises three things, each pinned
here on top of the unit-level codec tests:

1. **Replay is a pure function of the log.**  Replaying the same recorded
   event log through a freshly built engine 100 times must reach the same
   final state hash every single time (the hash covers results, metrics
   counters, and all residual engine state — see ``docs/replay.md``).
2. **Resume ≡ full replay.**  Restoring any mid-run checkpoint and
   consuming the rest of the log must land in a final state byte-identical
   to an uninterrupted replay — across the engine's whole toggle cube
   (pane-partitioned × columnar × compaction), because each toggle routes
   state through different snapshot layers (pane matrices vs window scopes,
   ``array('q')`` columns vs state tuples, compacted vs raw cohorts).
3. **Zero divergence vs the oracle.**  On a randomized scenario grid
   (shapes drawn by :func:`repro.datasets.random_scenario`, plans by the
   shared ``random_maximal_plan`` builder), results replayed from a log must
   equal the brute-force :class:`repro.executor.OracleExecutor` on the
   original in-memory stream — the log neither drops, duplicates, nor
   reorders anything the engine can observe.

Grid size is controlled by the ``REPLAY_DIFF_SCENARIOS`` environment
variable (default 60; CI may reduce it, the Makefile exports it).  Seeds are
fixed so every run is reproducible.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datasets import random_scenario
from repro.events import SlidingWindow, bounded_shuffle
from repro.events.log import EventLogReader, write_event_log
from repro.executor import OracleExecutor
from repro.queries import Pattern, PredicateSet, Query, Workload
from repro.replay import (
    CheckpointError,
    ReplayRunner,
    ReplayTrace,
    first_divergence,
    load_checkpoint,
)

from ..conftest import make_events, random_maximal_plan

#: Randomized scenarios replayed from a log and compared to the oracle.
NUM_REPLAY_SCENARIOS = int(os.environ.get("REPLAY_DIFF_SCENARIOS", "60"))

#: Parallel-friendly chunking of the scenario grid (mirrors the oracle harness).
NUM_BLOCKS = 6

#: Full replays of one log in the determinism stress test.
NUM_IDENTICAL_REPLAYS = 100


def scenario_with_log(seed: int, tmp_path, pane_stress: bool = False):
    """One recorded scenario: (workload, stream, plan, log path)."""
    workload, stream = random_scenario(seed, pane_stress=pane_stress)
    plan = random_maximal_plan(workload, seed)
    log_path = tmp_path / f"scenario-{seed}.jsonl"
    write_event_log(stream, log_path, stream_name=stream.name)
    return workload, stream, plan, log_path


def test_replay_hash_identical_100_times(tmp_path):
    """One log, 100 fresh engines, exactly one distinct final state hash."""
    workload, _, plan, log_path = scenario_with_log(3, tmp_path)
    reader = EventLogReader(log_path)
    hashes = {
        ReplayRunner(workload, plan=plan).run(reader).state_hash
        for _ in range(NUM_IDENTICAL_REPLAYS)
    }
    assert len(hashes) == 1, (
        f"{NUM_IDENTICAL_REPLAYS} replays of the same log produced "
        f"{len(hashes)} distinct final states: {sorted(hashes)}"
    )


@pytest.mark.parametrize("compaction", [True, False], ids=["compact", "no-compact"])
@pytest.mark.parametrize("columnar", [True, False], ids=["columnar", "scalar"])
@pytest.mark.parametrize("panes", [True, False], ids=["panes", "instances"])
def test_resume_from_every_checkpoint_matches_full_replay(
    panes, columnar, compaction, tmp_path
):
    """Resume-from-checkpoint must byte-match a full replay, for every
    checkpoint taken, across the engine's whole toggle cube."""
    workload, _, plan, log_path = scenario_with_log(11, tmp_path, pane_stress=panes)

    def runner():
        return ReplayRunner(
            workload, plan=plan, panes=panes, columnar=columnar, compaction=compaction
        )

    full = runner().run(log_path, trace=True)
    checkpointed = runner().run(
        log_path, checkpoint_every=2, checkpoint_dir=tmp_path / "cks"
    )
    assert checkpointed.state_hash == full.state_hash
    assert checkpointed.checkpoints, "scenario too small to take any checkpoint"

    for checkpoint_path in checkpointed.checkpoints:
        resumed = runner().run(log_path, resume_from=checkpoint_path, trace=True)
        assert resumed.state_hash == full.state_hash, (
            f"resume from {checkpoint_path.name} diverged from the full replay "
            f"(panes={panes}, columnar={columnar}, compaction={compaction})"
        )
        # The resumed trace must be the tail of the full trace: same hashes
        # at the same stream positions, not merely the same final state.
        checkpoint = load_checkpoint(checkpoint_path)
        skipped_batches = len(full.trace) - len(resumed.trace)
        tail = ReplayTrace(full.trace.entries[skipped_batches:])
        assert first_divergence(tail, resumed.trace) is None
        assert checkpoint.events_consumed + resumed.events_replayed == full.events_replayed


def test_paced_replay_matches_instant(tmp_path):
    """Pacing (Nx sleeps) must not change what the engine computes."""
    workload, _, plan, log_path = scenario_with_log(5, tmp_path)
    instant = ReplayRunner(workload, plan=plan).run(log_path)
    paced = ReplayRunner(workload, plan=plan).run(log_path, speed="1000000x")
    assert paced.state_hash == instant.state_hash


def test_paced_replay_subtracts_processing_time(tmp_path):
    """Pacing must follow an absolute schedule, not drift by processing time.

    The historical bug: the runner slept the full inter-batch gap *after*
    processing each batch, so every batch's processing time was added on top
    of the schedule and the drift accumulated over the run.  Here each batch
    is made artificially slow through ``on_batch``; the paced run must still
    finish close to the ideal wall-clock duration (span × seconds-per-unit),
    not ideal + the summed processing delays.
    """
    span = 20
    events = make_events([("A", t) for t in range(span + 1)])
    log_path = tmp_path / "paced.jsonl"
    write_event_log(events, log_path)
    window = SlidingWindow(size=10, slide=5)
    workload = Workload(
        [Query(pattern=Pattern(["A", "B"]), window=window, predicates=PredicateSet(), name="q")]
    )

    sleep_per_unit = 0.02  # "50x"
    ideal = span * sleep_per_unit
    delay = 0.015
    total_delay = delay * (span + 1)
    assert total_delay < ideal  # the schedule can absorb the simulated work

    start = time.perf_counter()
    report = ReplayRunner(workload).run(
        log_path, speed="50x", on_batch=lambda _ts, _batch: time.sleep(delay)
    )
    elapsed = time.perf_counter() - start

    assert report.batches == span + 1
    # With the drift bug this takes ideal + total_delay (~0.7s); the absolute
    # schedule lands near ideal.  Generous slack for loaded CI machines.
    assert elapsed < ideal + total_delay * 0.5, (
        f"paced replay took {elapsed:.3f}s for an ideal schedule of {ideal:.3f}s "
        f"— batch processing time is being added to the sleeps instead of "
        f"subtracted from them"
    )
    assert elapsed >= ideal * 0.9


class TestDisorderedReplay:
    """Bounded-disorder logs replay byte-identically to sorted logs."""

    MAX_LATENESS = 4

    def scenario(self, tmp_path, seed=13):
        """A scenario recorded twice: sorted order and bounded-shuffled order."""
        workload, stream = random_scenario(seed)
        plan = random_maximal_plan(workload, seed)
        events = list(stream)
        shuffled = bounded_shuffle(events, self.MAX_LATENESS, seed=seed)
        assert shuffled != events, "seed produced an already-sorted shuffle"
        sorted_log = tmp_path / "sorted.jsonl"
        shuffled_log = tmp_path / "shuffled.jsonl"
        write_event_log(stream, sorted_log, stream_name=stream.name)
        write_event_log(shuffled, shuffled_log, stream_name=stream.name)
        return workload, stream, plan, sorted_log, shuffled_log

    def runner(self, workload, plan, **overrides):
        kwargs = dict(plan=plan, max_lateness=self.MAX_LATENESS)
        kwargs.update(overrides)
        return ReplayRunner(workload, **kwargs)

    def test_shuffled_log_matches_sorted_log_and_oracle(self, tmp_path):
        workload, stream, plan, sorted_log, shuffled_log = self.scenario(tmp_path)
        from_sorted = self.runner(workload, plan).run(sorted_log)
        from_shuffled = self.runner(workload, plan).run(shuffled_log)
        assert from_shuffled.state_hash == from_sorted.state_hash
        assert from_shuffled.metrics.events_late == 0
        assert from_shuffled.metrics.events_dropped == 0
        assert from_shuffled.events_replayed == len(list(stream))

        oracle = OracleExecutor(workload).run(stream).results
        differences = oracle.differences(from_shuffled.report.results)
        assert not differences, (
            f"disordered replay diverges from the oracle; first differences "
            f"(key, oracle, replay): {differences[:5]}"
        )

    def test_resume_with_buffered_events_matches_full_replay(self, tmp_path):
        """Checkpoints taken while the reorder buffer is non-empty must resume
        exactly: the buffer snapshot travels inside the session export and
        ``events_consumed`` counts log events *read*, including buffered ones."""
        workload, _, plan, _, shuffled_log = self.scenario(tmp_path)
        full = self.runner(workload, plan).run(shuffled_log)
        checkpointed = self.runner(workload, plan).run(
            shuffled_log, checkpoint_every=1, checkpoint_dir=tmp_path / "cks"
        )
        assert checkpointed.state_hash == full.state_hash
        assert checkpointed.checkpoints

        buffered_seen = 0
        for checkpoint_path in checkpointed.checkpoints:
            checkpoint = load_checkpoint(checkpoint_path)
            reorder = checkpoint.engine_state["reorder"]
            assert reorder["max_lateness"] == self.MAX_LATENESS
            buffered_seen += sum(len(batch) for _ts, batch in reorder["batches"])
            resumed = self.runner(workload, plan).run(
                shuffled_log, resume_from=checkpoint_path
            )
            assert resumed.state_hash == full.state_hash, (
                f"resume from {checkpoint_path.name} diverged from the full "
                f"disordered replay"
            )
            assert checkpoint.events_consumed + resumed.events_replayed == full.events_replayed
        assert buffered_seen > 0, (
            "no checkpoint ever held a non-empty reorder buffer — the scenario "
            "does not exercise buffered-state snapshots"
        )

    def test_resume_refuses_mismatched_disorder_config(self, tmp_path):
        workload, _, plan, _, shuffled_log = self.scenario(tmp_path)
        checkpointed = self.runner(workload, plan).run(
            shuffled_log, checkpoint_every=2, checkpoint_dir=tmp_path / "cks"
        )
        checkpoint = checkpointed.checkpoints[0]
        with pytest.raises(CheckpointError, match="engine config"):
            self.runner(workload, plan, max_lateness=None).run(
                shuffled_log, resume_from=checkpoint
            )
        with pytest.raises(CheckpointError, match="engine config"):
            self.runner(workload, plan, max_lateness=9).run(
                shuffled_log, resume_from=checkpoint
            )


@pytest.mark.parametrize("block", range(NUM_BLOCKS))
def test_replayed_results_match_oracle_on_randomized_grid(block, tmp_path):
    """Replaying a recorded log must reproduce the oracle's results exactly.

    Each scenario is recorded to a log, replayed twice (hash-compared), once
    more from a mid-run checkpoint (hash-compared), and its results are
    checked against the brute-force oracle run on the original in-memory
    stream — so any log codec bug, ingestion-path skew, or snapshot drift
    shows up as a divergence with the seed in the failure message.
    """
    per_block = (NUM_REPLAY_SCENARIOS + NUM_BLOCKS - 1) // NUM_BLOCKS
    for offset in range(per_block):
        seed = block * per_block + offset
        if seed >= NUM_REPLAY_SCENARIOS:
            break
        workload, stream, plan, log_path = scenario_with_log(seed, tmp_path)
        panes = bool(seed % 2)  # alternate engine modes across the grid

        def runner():
            return ReplayRunner(workload, plan=plan, panes=panes)

        first = runner().run(
            log_path, checkpoint_every=3, checkpoint_dir=tmp_path / f"cks-{seed}"
        )
        second = runner().run(log_path)
        assert first.state_hash == second.state_hash, f"seed {seed}: replay not deterministic"

        if first.checkpoints:
            middle = first.checkpoints[len(first.checkpoints) // 2]
            resumed = runner().run(log_path, resume_from=middle)
            assert resumed.state_hash == first.state_hash, (
                f"seed {seed}: resume from {middle.name} diverged"
            )

        oracle = OracleExecutor(workload).run(stream).results
        differences = oracle.differences(first.report.results)
        assert not differences, (
            f"seed {seed} (panes={panes}): replayed results diverge from the "
            f"oracle; first differences (key, oracle, replay): {differences[:5]}"
        )
