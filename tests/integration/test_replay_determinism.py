"""Replay determinism suite: recorded logs must replay byte-identically.

The replay subsystem (:mod:`repro.replay`) promises three things, each pinned
here on top of the unit-level codec tests:

1. **Replay is a pure function of the log.**  Replaying the same recorded
   event log through a freshly built engine 100 times must reach the same
   final state hash every single time (the hash covers results, metrics
   counters, and all residual engine state — see ``docs/replay.md``).
2. **Resume ≡ full replay.**  Restoring any mid-run checkpoint and
   consuming the rest of the log must land in a final state byte-identical
   to an uninterrupted replay — across the engine's whole toggle cube
   (pane-partitioned × columnar × compaction), because each toggle routes
   state through different snapshot layers (pane matrices vs window scopes,
   ``array('q')`` columns vs state tuples, compacted vs raw cohorts).
3. **Zero divergence vs the oracle.**  On a randomized scenario grid
   (shapes drawn by :func:`repro.datasets.random_scenario`, plans by the
   shared ``random_maximal_plan`` builder), results replayed from a log must
   equal the brute-force :class:`repro.executor.OracleExecutor` on the
   original in-memory stream — the log neither drops, duplicates, nor
   reorders anything the engine can observe.

Grid size is controlled by the ``REPLAY_DIFF_SCENARIOS`` environment
variable (default 60; CI may reduce it, the Makefile exports it).  Seeds are
fixed so every run is reproducible.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import random_scenario
from repro.events.log import EventLogReader, write_event_log
from repro.executor import OracleExecutor
from repro.replay import ReplayRunner, ReplayTrace, first_divergence, load_checkpoint

from ..conftest import random_maximal_plan

#: Randomized scenarios replayed from a log and compared to the oracle.
NUM_REPLAY_SCENARIOS = int(os.environ.get("REPLAY_DIFF_SCENARIOS", "60"))

#: Parallel-friendly chunking of the scenario grid (mirrors the oracle harness).
NUM_BLOCKS = 6

#: Full replays of one log in the determinism stress test.
NUM_IDENTICAL_REPLAYS = 100


def scenario_with_log(seed: int, tmp_path, pane_stress: bool = False):
    """One recorded scenario: (workload, stream, plan, log path)."""
    workload, stream = random_scenario(seed, pane_stress=pane_stress)
    plan = random_maximal_plan(workload, seed)
    log_path = tmp_path / f"scenario-{seed}.jsonl"
    write_event_log(stream, log_path, stream_name=stream.name)
    return workload, stream, plan, log_path


def test_replay_hash_identical_100_times(tmp_path):
    """One log, 100 fresh engines, exactly one distinct final state hash."""
    workload, _, plan, log_path = scenario_with_log(3, tmp_path)
    reader = EventLogReader(log_path)
    hashes = {
        ReplayRunner(workload, plan=plan).run(reader).state_hash
        for _ in range(NUM_IDENTICAL_REPLAYS)
    }
    assert len(hashes) == 1, (
        f"{NUM_IDENTICAL_REPLAYS} replays of the same log produced "
        f"{len(hashes)} distinct final states: {sorted(hashes)}"
    )


@pytest.mark.parametrize("compaction", [True, False], ids=["compact", "no-compact"])
@pytest.mark.parametrize("columnar", [True, False], ids=["columnar", "scalar"])
@pytest.mark.parametrize("panes", [True, False], ids=["panes", "instances"])
def test_resume_from_every_checkpoint_matches_full_replay(
    panes, columnar, compaction, tmp_path
):
    """Resume-from-checkpoint must byte-match a full replay, for every
    checkpoint taken, across the engine's whole toggle cube."""
    workload, _, plan, log_path = scenario_with_log(11, tmp_path, pane_stress=panes)

    def runner():
        return ReplayRunner(
            workload, plan=plan, panes=panes, columnar=columnar, compaction=compaction
        )

    full = runner().run(log_path, trace=True)
    checkpointed = runner().run(
        log_path, checkpoint_every=2, checkpoint_dir=tmp_path / "cks"
    )
    assert checkpointed.state_hash == full.state_hash
    assert checkpointed.checkpoints, "scenario too small to take any checkpoint"

    for checkpoint_path in checkpointed.checkpoints:
        resumed = runner().run(log_path, resume_from=checkpoint_path, trace=True)
        assert resumed.state_hash == full.state_hash, (
            f"resume from {checkpoint_path.name} diverged from the full replay "
            f"(panes={panes}, columnar={columnar}, compaction={compaction})"
        )
        # The resumed trace must be the tail of the full trace: same hashes
        # at the same stream positions, not merely the same final state.
        checkpoint = load_checkpoint(checkpoint_path)
        skipped_batches = len(full.trace) - len(resumed.trace)
        tail = ReplayTrace(full.trace.entries[skipped_batches:])
        assert first_divergence(tail, resumed.trace) is None
        assert checkpoint.events_consumed + resumed.events_replayed == full.events_replayed


def test_paced_replay_matches_instant(tmp_path):
    """Pacing (Nx sleeps) must not change what the engine computes."""
    workload, _, plan, log_path = scenario_with_log(5, tmp_path)
    instant = ReplayRunner(workload, plan=plan).run(log_path)
    paced = ReplayRunner(workload, plan=plan).run(log_path, speed="1000000x")
    assert paced.state_hash == instant.state_hash


@pytest.mark.parametrize("block", range(NUM_BLOCKS))
def test_replayed_results_match_oracle_on_randomized_grid(block, tmp_path):
    """Replaying a recorded log must reproduce the oracle's results exactly.

    Each scenario is recorded to a log, replayed twice (hash-compared), once
    more from a mid-run checkpoint (hash-compared), and its results are
    checked against the brute-force oracle run on the original in-memory
    stream — so any log codec bug, ingestion-path skew, or snapshot drift
    shows up as a divergence with the seed in the failure message.
    """
    per_block = (NUM_REPLAY_SCENARIOS + NUM_BLOCKS - 1) // NUM_BLOCKS
    for offset in range(per_block):
        seed = block * per_block + offset
        if seed >= NUM_REPLAY_SCENARIOS:
            break
        workload, stream, plan, log_path = scenario_with_log(seed, tmp_path)
        panes = bool(seed % 2)  # alternate engine modes across the grid

        def runner():
            return ReplayRunner(workload, plan=plan, panes=panes)

        first = runner().run(
            log_path, checkpoint_every=3, checkpoint_dir=tmp_path / f"cks-{seed}"
        )
        second = runner().run(log_path)
        assert first.state_hash == second.state_hash, f"seed {seed}: replay not deterministic"

        if first.checkpoints:
            middle = first.checkpoints[len(first.checkpoints) // 2]
            resumed = runner().run(log_path, resume_from=middle)
            assert resumed.state_hash == first.state_hash, (
                f"seed {seed}: resume from {middle.name} diverged"
            )

        oracle = OracleExecutor(workload).run(stream).results
        differences = oracle.differences(first.report.results)
        assert not differences, (
            f"seed {seed} (panes={panes}): replayed results diverge from the "
            f"oracle; first differences (key, oracle, replay): {differences[:5]}"
        )
