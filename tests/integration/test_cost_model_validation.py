"""Validation of the sharing benefit model against measured executor work.

The benefit model (Equations 1-8) estimates, from per-type rates alone, how
much aggregation work a sharing decision saves.  The executors count their
actual work deterministically (``state_updates``: prefix-aggregate updates
plus shared-anchor updates), so the model's predictions can be checked
against ground truth without any wall-clock measurement:

* a plan the model considers beneficial must reduce the measured number of
  state updates compared to the non-shared execution;
* sharing a pattern among *more* queries must save more work;
* the empty plan must measure exactly like A-Seq (it is A-Seq).

These tests close the loop between Section 3 (the model) and Section 8 (the
measured gains) at a scale where the answer is exact.
"""

from __future__ import annotations

import pytest

from repro.core import BenefitModel, SharingCandidate, SharingPlan, SharonOptimizer
from repro.datasets import ChainConfig, chain_stream, chain_workload
from repro.events import SlidingWindow
from repro.executor import ASeqExecutor, SharonExecutor
from repro.queries import Pattern
from repro.utils import RateCatalog


@pytest.fixture(scope="module")
def scenario():
    config = ChainConfig(num_event_types=10, entity_attribute="car")
    workload = chain_workload(
        12,
        5,
        config=config,
        window=SlidingWindow(size=30, slide=15),
        seed=71,
        offset_pool_size=2,
    )
    stream = chain_stream(
        duration=120, events_per_second=15, config=config, num_entities=8, seed=72
    )
    return workload, stream


class TestBenefitModelAgainstMeasuredWork:
    def test_beneficial_plan_reduces_state_updates(self, scenario):
        workload, stream = scenario
        rates = RateCatalog.from_stream(stream, per="time-unit")
        plan = SharonOptimizer(rates).optimize(workload).plan
        assert not plan.is_empty, "the pooled chain workload must offer beneficial sharing"

        shared = SharonExecutor(workload, plan=plan).run(stream)
        non_shared = ASeqExecutor(workload).run(stream)

        assert shared.results.matches(non_shared.results)
        assert shared.metrics.state_updates < non_shared.metrics.state_updates

    def test_empty_plan_measures_exactly_like_aseq(self, scenario):
        workload, stream = scenario
        empty = SharonExecutor(workload, plan=SharingPlan()).run(stream)
        aseq = ASeqExecutor(workload).run(stream)
        assert empty.metrics.state_updates == aseq.metrics.state_updates
        assert empty.results.matches(aseq.results)

    def test_more_sharing_queries_save_more_work(self, scenario):
        """Sharing one pattern among a growing subset of its queries saves
        monotonically more measured work, as Equation 8 predicts when the
        per-query shared cost is below the per-query non-shared cost."""
        workload, stream = scenario
        rates = RateCatalog.from_stream(stream, per="time-unit")
        model = BenefitModel(rates)

        # The most widely shared pattern of the workload.
        from repro.core import detect_sharable_patterns

        sharable = detect_sharable_patterns(workload)
        pattern, query_names = max(sharable.items(), key=lambda item: len(item[1]))
        assert len(query_names) >= 4

        baseline_updates = ASeqExecutor(workload).run(stream).metrics.state_updates

        savings = []
        benefits = []
        for count in (2, len(query_names) // 2 + 1, len(query_names)):
            subset = query_names[:count]
            candidate = SharingCandidate(pattern, subset, 1.0)
            report = SharonExecutor(workload, plan=SharingPlan([candidate])).run(stream)
            savings.append(baseline_updates - report.metrics.state_updates)
            benefits.append(
                model.benefit(pattern, [workload[name] for name in subset])
            )

        assert savings == sorted(savings), savings
        assert benefits == sorted(benefits), benefits

    def test_model_prefers_the_plan_that_measures_better(self, scenario):
        """Between the optimizer's plan and a deliberately poor plan (sharing
        only one short pattern between two queries), the model's preferred
        plan also wins on measured state updates."""
        workload, stream = scenario
        rates = RateCatalog.from_stream(stream, per="time-unit")
        optimizer_plan = SharonOptimizer(rates).optimize(workload).plan
        assert not optimizer_plan.is_empty

        from repro.core import detect_sharable_patterns

        sharable = detect_sharable_patterns(workload)
        # Pick the sharable pattern with the fewest sharing queries (worst case).
        pattern, query_names = min(
            sharable.items(), key=lambda item: (len(item[1]), item[0].event_types)
        )
        poor_plan = SharingPlan([SharingCandidate(pattern, query_names[:2], 1.0)])

        best_report = SharonExecutor(workload, plan=optimizer_plan).run(stream)
        poor_report = SharonExecutor(workload, plan=poor_plan).run(stream)
        assert best_report.results.matches(poor_report.results)
        assert best_report.metrics.state_updates <= poor_report.metrics.state_updates
