"""Differential harness: every executor must match the brute-force oracle.

:func:`repro.datasets.random_scenario` draws randomized scenarios over a grid
of window/slide/group/predicate/aggregate/pattern combinations; this module
replays each of them through the optimised executors — Sharon (shared online,
cohort compaction on, in both per-instance and pane-partitioned mode and with
columnar micro-batch ingestion on *and* off), A-Seq (non-shared online, both
ingestion modes), and the two-step baselines (Flink-like, SPASS-like) — and
compares every result against the deliberately naive
:class:`repro.executor.OracleExecutor`.

A second, pane-targeted grid replays scenarios drawn from the pane-stressing
window regime (``random_scenario(..., pane_stress=True)``: deep overlap,
slide∤size shapes, gcd=1 unit panes, the tumbling fallback) through the
engine with panes on *and* off, so the pane refactor is differentially pinned
exactly where it is most fragile.

When a divergence is found the harness *shrinks* it: events and queries are
removed greedily while the divergence persists, and the failure message
prints the minimal reproducer so it can be checked into
:class:`TestRegressionCorpus` (learning from failures: every bug becomes a
permanent regression case).

A third, sharding-targeted grid replays scenarios through the group-sharded
engine (:class:`repro.executor.ShardedEngine` behind
``SharonExecutor(..., shards=...)``) with both shard strategies and through
sharded A-Seq, so the shard planner, per-shard batch slicing, worker
round-trip, and deterministic result merge are all differentially pinned
against the oracle.  Scenarios without at least two groups exercise the
documented in-process fallback on the same code path.

A fourth, disorder-targeted grid delivers each scenario's events in a
bounded-disorder *arrival* order (``repro.events.bounded_shuffle``) and runs
them through executors configured with ``max_lateness``
(``docs/disorder.md``): the watermark-driven reorder buffer must reproduce
the oracle exactly with zero late events, any ≤L permutation must reach a
session export byte-identical to the sorted run across the engine's toggle
cube, and arrivals *beyond* the bound must land in the
``events_late``/``events_dropped`` counters (or the raise/side-channel
policies) rather than corrupting results.

A fifth, kernel-targeted grid replays scenarios through the engine with the
optional numpy kernel backend (``backend="numpy"``, see
:mod:`repro.executor.kernels`) across the columnar/panes/compaction toggle
cube, so the vectorised count columns, state columns, and pane matrices are
differentially pinned against the oracle wherever numpy is importable (the
grid skips cleanly without the optional dependency).

Grid sizes are controlled by the ``ORACLE_DIFF_SCENARIOS`` (default 240),
``PANE_DIFF_SCENARIOS`` (default 120), ``SHARDED_DIFF_SCENARIOS``
(default 40), ``DISORDER_DIFF_SCENARIOS`` (default 60), and
``KERNEL_DIFF_SCENARIOS`` (default 60) environment variables; CI may
reduce them.  Seeds are fixed so every run is reproducible.
"""

from __future__ import annotations

import os

import pytest

from repro.core import SharingPlan
from repro.datasets import describe_scenario, random_scenario
from repro.events import DisorderError, Event, EventStream, SlidingWindow, bounded_shuffle
from repro.executor import (
    ASeqExecutor,
    FlinkLikeExecutor,
    OracleExecutor,
    SharonExecutor,
    SpassLikeExecutor,
)
from repro.executor.kernels import numpy_available
from repro.queries import AggregateSpec, Pattern, PredicateSet, Query, Workload
from repro.replay import ReplayRunner

from ..conftest import random_maximal_plan

#: Total randomized scenarios checked per full run (acceptance: >= 200).
NUM_SCENARIOS = int(os.environ.get("ORACLE_DIFF_SCENARIOS", "240"))

#: Pane-stressed scenarios replayed with panes on and off per full run.
NUM_PANE_SCENARIOS = int(os.environ.get("PANE_DIFF_SCENARIOS", "120"))

#: Scenarios replayed through the group-sharded engine per full run.
NUM_SHARDED_SCENARIOS = int(os.environ.get("SHARDED_DIFF_SCENARIOS", "40"))

#: Scenarios delivered in bounded-disorder arrival orders per full run.
NUM_DISORDER_SCENARIOS = int(os.environ.get("DISORDER_DIFF_SCENARIOS", "60"))

#: Scenarios replayed through the numpy kernel backend per full run.
NUM_KERNEL_SCENARIOS = int(os.environ.get("KERNEL_DIFF_SCENARIOS", "60"))

#: Scenarios are split into parametrized blocks so failures localise.
NUM_BLOCKS = 8


def deterministic_plan(workload: Workload, seed: int) -> SharingPlan:
    """The harness's plan for a scenario (shared builder, seeded by scenario)."""
    return random_maximal_plan(workload, seed)


def executors_under_test(workload: Workload, seed: int):
    """The optimised executors, freshly constructed per evaluation.

    ``Sharon``/``A-Seq``/``Sharon-panes`` run with the default *columnar*
    micro-batch ingestion; the ``-scalar`` variants pin the per-event
    reference path, so the grid certifies columnar ≡ scalar ≡ oracle.
    """
    plan = deterministic_plan(workload, seed)
    return (
        ("A-Seq", ASeqExecutor(workload)),
        ("A-Seq-scalar", ASeqExecutor(workload, columnar=False)),
        ("Sharon", SharonExecutor(workload, plan=plan)),
        ("Sharon-scalar", SharonExecutor(workload, plan=plan, columnar=False)),
        ("Sharon-panes", SharonExecutor(workload, plan=plan, panes=True)),
        ("Flink-like", FlinkLikeExecutor(workload)),
        ("SPASS-like", SpassLikeExecutor(workload)),
    )


def pane_executors_under_test(workload: Workload, seed: int):
    """Both pane modes of the engine (the pane-stress grid's executor set).

    Pane mode is replayed with columnar ingestion on *and* off: the pane
    loop routes through the same micro-batch layer, so the stress grid pins
    the pane × columnar combination exactly where panes are most fragile.
    """
    plan = deterministic_plan(workload, seed)
    return (
        ("Sharon-panes-on", SharonExecutor(workload, plan=plan, panes=True)),
        ("Sharon-panes-scalar", SharonExecutor(workload, plan=plan, panes=True, columnar=False)),
        ("Sharon-panes-off", SharonExecutor(workload, plan=plan, panes=False)),
        ("A-Seq-panes-on", ASeqExecutor(workload, panes=True)),
    )


def sharded_executors_under_test(workload: Workload, seed: int):
    """The group-sharded engine variants (the sharded grid's executor set).

    Two shards cover the fan-out/merge path with minimal process churn; the
    3-shard hash variant pins the stable-hash assignment, and sharded A-Seq
    covers the empty-plan decomposition.  Scenarios with fewer than two
    groups fall back in-process through the same entry point, so the grid
    also certifies the degraded path.
    """
    plan = deterministic_plan(workload, seed)
    return (
        ("Sharon-sharded-2", SharonExecutor(workload, plan=plan, shards=2)),
        ("Sharon-sharded-3-hash", SharonExecutor(workload, plan=plan, shards=3, shard_strategy="hash")),
        ("A-Seq-sharded-2", ASeqExecutor(workload, shards=2)),
    )


def kernel_executors_under_test(workload: Workload, seed: int):
    """The numpy-kernel engine variants (the kernel grid's executor set).

    Spans the toggle cube the kernel columns sit under: columnar and scalar
    ingestion (both feed the same column commits), pane mode (the vectorised
    pane matrices), and compaction off (long columns, the ``merge_cohorts``
    path never trims them), plus the non-shared A-Seq decomposition.
    """
    plan = deterministic_plan(workload, seed)
    return (
        ("Sharon-numpy", SharonExecutor(workload, plan=plan, backend="numpy")),
        (
            "Sharon-numpy-scalar",
            SharonExecutor(workload, plan=plan, columnar=False, backend="numpy"),
        ),
        ("Sharon-numpy-panes", SharonExecutor(workload, plan=plan, panes=True, backend="numpy")),
        (
            "Sharon-numpy-no-compaction",
            SharonExecutor(workload, plan=plan, compaction=False, backend="numpy"),
        ),
        ("A-Seq-numpy", ASeqExecutor(workload, backend="numpy")),
    )


def find_divergence(
    workload: Workload, stream: EventStream, seed: int, executors=executors_under_test
):
    """First (executor name, differences) mismatching the oracle, or ``None``."""
    oracle = OracleExecutor(workload).run(stream).results
    for name, executor in executors(workload, seed):
        results = executor.run(stream).results
        if not results.matches(oracle):
            return name, results.differences(oracle)[:5]
    return None


def shrink_divergence(
    workload: Workload, stream: EventStream, seed: int, executors=executors_under_test
):
    """Greedy delta-debugging: drop queries/events while the divergence persists."""
    queries = list(workload)
    events = list(stream)
    shrinking = True
    while shrinking:
        shrinking = False
        for index in range(len(queries)):
            if len(queries) <= 1:
                break
            candidate = Workload(queries[:index] + queries[index + 1 :], name=workload.name)
            if find_divergence(candidate, EventStream(events), seed, executors):
                queries = list(candidate)
                shrinking = True
                break
        if shrinking:
            continue
        for index in range(len(events)):
            candidate = EventStream(events[:index] + events[index + 1 :], name=stream.name)
            if find_divergence(Workload(queries, name=workload.name), candidate, seed, executors):
                events = list(candidate)
                shrinking = True
                break
    return Workload(queries, name=workload.name), EventStream(events, name=stream.name)


def check_scenario(seed: int, pane_stress: bool = False, executors=executors_under_test) -> None:
    workload, stream = random_scenario(seed, pane_stress=pane_stress)
    divergence = find_divergence(workload, stream, seed, executors)
    if divergence is None:
        return
    minimal_workload, minimal_stream = shrink_divergence(workload, stream, seed, executors)
    name, differences = (
        find_divergence(minimal_workload, minimal_stream, seed, executors) or divergence
    )
    pytest.fail(
        f"scenario seed={seed} (pane_stress={pane_stress}): "
        f"executor {name} diverges from the oracle.\n"
        f"first differences (key, executor value, oracle value): {differences}\n"
        f"minimal reproducer:\n{describe_scenario(minimal_workload, minimal_stream)}\n"
        f"plan seed: {seed} (rebuild with deterministic_plan)"
    )


@pytest.mark.parametrize("block", range(NUM_BLOCKS))
def test_executors_match_oracle_on_randomized_grid(block):
    """Sharon (both pane modes), A-Seq, and the two-step baselines equal the oracle."""
    per_block = (NUM_SCENARIOS + NUM_BLOCKS - 1) // NUM_BLOCKS
    for offset in range(per_block):
        seed = block * per_block + offset
        if seed >= NUM_SCENARIOS:
            break
        check_scenario(seed)


@pytest.mark.parametrize("block", range(NUM_BLOCKS))
def test_pane_modes_match_oracle_on_pane_stress_grid(block):
    """Panes on and panes off agree with the oracle on pane-hostile windows."""
    per_block = (NUM_PANE_SCENARIOS + NUM_BLOCKS - 1) // NUM_BLOCKS
    for offset in range(per_block):
        seed = block * per_block + offset
        if seed >= NUM_PANE_SCENARIOS:
            break
        check_scenario(seed, pane_stress=True, executors=pane_executors_under_test)


@pytest.mark.parametrize("block", range(NUM_BLOCKS))
def test_sharded_engine_matches_oracle_on_randomized_grid(block):
    """Group-sharded Sharon (greedy + hash) and A-Seq equal the oracle."""
    per_block = (NUM_SHARDED_SCENARIOS + NUM_BLOCKS - 1) // NUM_BLOCKS
    for offset in range(per_block):
        seed = block * per_block + offset
        if seed >= NUM_SHARDED_SCENARIOS:
            break
        check_scenario(seed, executors=sharded_executors_under_test)


@pytest.mark.parametrize("block", range(NUM_BLOCKS))
def test_numpy_backend_matches_oracle_on_randomized_grid(block):
    """The numpy kernel backend equals the oracle across the toggle cube."""
    if not numpy_available():
        pytest.skip("numpy is not importable; the kernel-backend grid has nothing to pin")
    per_block = (NUM_KERNEL_SCENARIOS + NUM_BLOCKS - 1) // NUM_BLOCKS
    for offset in range(per_block):
        seed = block * per_block + offset
        if seed >= NUM_KERNEL_SCENARIOS:
            break
        check_scenario(seed, executors=kernel_executors_under_test)


def disorder_executors_under_test(workload: Workload, seed: int, max_lateness: int):
    """Executors with the reorder buffer on, fed *arrival*-ordered events.

    The set spans the ingestion paths the buffer feeds into: columnar
    micro-batches (default), the scalar reference path, pane-partitioned
    mode, and the non-shared A-Seq engine.
    """
    plan = deterministic_plan(workload, seed)
    return (
        ("Sharon-disorder", SharonExecutor(workload, plan=plan, max_lateness=max_lateness)),
        (
            "Sharon-disorder-scalar",
            SharonExecutor(workload, plan=plan, columnar=False, max_lateness=max_lateness),
        ),
        (
            "Sharon-disorder-panes",
            SharonExecutor(workload, plan=plan, panes=True, max_lateness=max_lateness),
        ),
        ("A-Seq-disorder", ASeqExecutor(workload, max_lateness=max_lateness)),
    )


def check_disorder_scenario(seed: int) -> None:
    """Bounded-shuffled arrivals must equal the oracle with zero late events."""
    workload, stream = random_scenario(seed)
    events = list(stream)
    max_lateness = 1 + seed % 7
    shuffled = bounded_shuffle(events, max_lateness, seed=seed * 31 + 7)
    oracle = OracleExecutor(workload).run(stream).results
    for name, executor in disorder_executors_under_test(workload, seed, max_lateness):
        report = executor.run(iter(shuffled))
        assert report.metrics.events_late == 0, (
            f"scenario seed={seed}: {name} counted late events inside the "
            f"≤{max_lateness} bound — the watermark admits too little"
        )
        if not report.results.matches(oracle):
            pytest.fail(
                f"scenario seed={seed}: {name} over a ≤{max_lateness}-late "
                f"arrival order diverges from the oracle.\n"
                f"first differences (key, executor value, oracle value): "
                f"{report.results.differences(oracle)[:5]}\n"
                f"scenario:\n{describe_scenario(workload, stream)}"
            )


@pytest.mark.parametrize("block", range(NUM_BLOCKS))
def test_disordered_arrivals_match_oracle_on_randomized_grid(block):
    """Reorder-buffered ingestion of ≤L-late arrivals equals the oracle."""
    per_block = (NUM_DISORDER_SCENARIOS + NUM_BLOCKS - 1) // NUM_BLOCKS
    for offset in range(per_block):
        seed = block * per_block + offset
        if seed >= NUM_DISORDER_SCENARIOS:
            break
        check_disorder_scenario(seed)


@pytest.mark.parametrize("compaction", [True, False], ids=["compact", "no-compact"])
@pytest.mark.parametrize("columnar", [True, False], ids=["columnar", "scalar"])
@pytest.mark.parametrize("panes", [True, False], ids=["panes", "instances"])
def test_bounded_permutations_are_byte_identical_to_sorted(panes, columnar, compaction):
    """Any ≤L permutation reaches a byte-identical final session export.

    Stronger than result equality: the state hash covers results, metrics
    counters, and all residual engine state, so the reorder buffer must leave
    *no* trace of the arrival order behind — across the full toggle cube,
    because each toggle snapshots state through different layers.
    """
    max_lateness = 5
    for seed in (2, 9, 17):
        workload, stream = random_scenario(seed, pane_stress=panes)
        plan = deterministic_plan(workload, seed)
        events = list(stream)

        def final_hash(order):
            runner = ReplayRunner(
                workload,
                plan=plan,
                panes=panes,
                columnar=columnar,
                compaction=compaction,
                max_lateness=max_lateness,
            )
            return runner.run(iter(order)).state_hash

        sorted_hash = final_hash(events)
        for shuffle_seed in range(3):
            shuffled = bounded_shuffle(events, max_lateness, seed=shuffle_seed)
            assert final_hash(shuffled) == sorted_hash, (
                f"seed {seed}, shuffle {shuffle_seed}: a ≤{max_lateness}-late "
                f"arrival order left a different final state (panes={panes}, "
                f"columnar={columnar}, compaction={compaction})"
            )


def test_beyond_bound_arrivals_land_in_the_lateness_counters():
    """Arrivals behind the watermark hit the policy, never the results.

    A wide shuffle is ingested under a much tighter bound: ``drop`` must
    count every late event in ``events_late``/``events_dropped`` (and keep
    total + dropped accounting exact), a side-channel callback must receive
    exactly the late events without dropping them, and ``raise`` must refuse
    the same arrival order outright.
    """
    late_total = 0
    for seed in range(8):
        workload, stream = random_scenario(seed)
        events = list(stream)
        shuffled = bounded_shuffle(events, 15, seed=seed)
        plan = deterministic_plan(workload, seed)

        dropped_report = SharonExecutor(
            workload, plan=plan, max_lateness=1, late_policy="drop"
        ).run(iter(shuffled))
        metrics = dropped_report.metrics
        assert metrics.events_late == metrics.events_dropped
        assert metrics.total_events + metrics.events_dropped == len(events)

        side_channel = []
        callback_report = SharonExecutor(
            workload, plan=plan, max_lateness=1, late_policy=side_channel.append
        ).run(iter(shuffled))
        assert callback_report.metrics.events_late == len(side_channel)
        assert callback_report.metrics.events_dropped == 0
        assert callback_report.metrics.total_events + len(side_channel) == len(events)
        assert callback_report.metrics.events_late == metrics.events_late

        if metrics.events_late:
            late_total += metrics.events_late
            with pytest.raises(DisorderError, match="behind watermark"):
                SharonExecutor(workload, plan=plan, max_lateness=1).run(iter(shuffled))

    assert late_total > 0, (
        "no scenario produced a single beyond-bound arrival — the policy "
        "paths were never exercised"
    )


def test_sharded_grid_exercises_fanout():
    """The sharded grid is toothless if every scenario falls back: most must shard."""
    fanned_out = 0
    total = min(NUM_SHARDED_SCENARIOS, 40) or 40
    for seed in range(total):
        workload, stream = random_scenario(seed)
        attributes = workload[0].partition_attributes
        if not attributes:
            continue
        groups = {tuple(e.attribute(a) for a in attributes) for e in stream}
        if len(groups) >= 2:
            fanned_out += 1
    assert fanned_out >= total // 3


def test_pane_stress_grid_exercises_pane_mode():
    """The pane grid is toothless if every scenario falls back: most must not."""
    from repro.executor.engine import StreamingEngine

    pane_runs = 0
    total = min(NUM_PANE_SCENARIOS, 40) or 40
    for seed in range(total):
        workload, _stream = random_scenario(seed, pane_stress=True)
        if StreamingEngine.panes_eligible(workload[0].window):
            pane_runs += 1
    assert pane_runs >= total // 2


def test_compaction_fires_during_differential_runs():
    """The grid would be toothless if compaction never triggered: force it.

    A long window with a shared two-type prefix keeps every runner's carry at
    the unit state, so all cohorts are mergeable; the scenario must both
    compact and agree with the oracle.
    """
    window = SlidingWindow(size=30, slide=15)
    queries = [
        Query(Pattern(("A", "B", extra)), window, name=f"cq{index}")
        for index, extra in enumerate(("C", "D"))
    ]
    workload = Workload(queries, name="compaction-differential")
    events = []
    event_id = 0
    for timestamp in range(40):
        for event_type in ("A", "B", "C", "D"):
            events.append(Event(event_type, timestamp, {}, event_id))
            event_id += 1
    stream = EventStream(events, name="compaction-differential")

    plan = deterministic_plan(workload, seed=0)
    assert any(candidate.pattern == Pattern(("A", "B")) for candidate in plan)
    report = SharonExecutor(workload, plan=plan).run(stream)
    oracle = OracleExecutor(workload).run(stream).results
    assert report.results.matches(oracle), report.results.differences(oracle)[:5]
    assert report.metrics.cohorts_merged > 0
    assert report.metrics.cohorts_created > report.metrics.cohorts_merged


class TestRegressionCorpus:
    """Minimal scenarios distilled from harness development.

    Each case is the shrunk form of a scenario family the randomized grid
    exercises; they run on every test invocation even when the grid is
    reduced (e.g. in CI), so past divergence shapes stay pinned.
    """

    def _assert_matches_oracle(self, workload: Workload, stream: EventStream, seed: int = 0):
        divergence = find_divergence(workload, stream, seed)
        assert divergence is None, divergence

    def test_same_timestamp_batch_with_shared_prefix(self):
        window = SlidingWindow(size=8, slide=4)
        workload = Workload(
            [
                Query(Pattern(("A", "B", "C")), window, name="r1"),
                Query(Pattern(("A", "B", "D")), window, name="r2"),
            ]
        )
        stream = EventStream.from_tuples(
            [("A", 1), ("A", 1), ("B", 1), ("B", 2), ("C", 3), ("D", 3), ("C", 7)]
        )
        self._assert_matches_oracle(workload, stream)

    def test_sliding_window_boundary_match(self):
        """A match whose START lies in one window and END in the next."""
        window = SlidingWindow(size=4, slide=2)
        workload = Workload(
            [
                Query(Pattern(("A", "B")), window, name="r3"),
                Query(Pattern(("B", "A")), window, name="r4"),
            ]
        )
        stream = EventStream.from_tuples([("A", 1), ("B", 3), ("A", 4), ("B", 5)])
        self._assert_matches_oracle(workload, stream)

    def test_mixed_aggregates_share_one_pattern(self):
        window = SlidingWindow(size=10, slide=10)
        queries = [
            Query(
                Pattern(("A", "B", "C")),
                window,
                aggregate=AggregateSpec.sum("B", "value"),
                name="r5",
            ),
            Query(
                Pattern(("A", "B", "D")),
                window,
                aggregate=AggregateSpec.count_star(),
                name="r6",
            ),
            Query(
                Pattern(("A", "B")),
                window,
                aggregate=AggregateSpec.avg("A", "value"),
                name="r7",
            ),
        ]
        workload = Workload(queries)
        stream = EventStream.from_tuples(
            [
                ("A", 0, 4), ("B", 1, 7), ("C", 2, 1), ("D", 2, 2),
                ("A", 3, 9), ("B", 4, 0), ("C", 5, 5), ("B", 9, 3),
            ],
            ["value"],
        )
        self._assert_matches_oracle(workload, stream)

    def test_equivalence_predicate_with_grouping(self):
        window = SlidingWindow(size=6, slide=3)
        predicates = PredicateSet.same("entity")
        queries = [
            Query(
                Pattern(("A", "B")),
                window,
                predicates=predicates,
                group_by=("region",),
                name="r8",
            ),
            Query(
                Pattern(("B", "C")),
                window,
                predicates=predicates,
                group_by=("region",),
                name="r9",
            ),
        ]
        workload = Workload(queries)
        rows = [
            ("A", 0, {"entity": 0, "region": 1}),
            ("B", 1, {"entity": 0, "region": 1}),
            ("B", 1, {"entity": 1, "region": 0}),
            ("C", 2, {"entity": 1, "region": 0}),
            ("A", 4, {"entity": 1, "region": 1}),
            ("B", 5, {"entity": 1, "region": 1}),
            ("C", 5, {"entity": 0, "region": 0}),
        ]
        events = [Event(t, ts, attrs, i) for i, (t, ts, attrs) in enumerate(rows)]
        self._assert_matches_oracle(workload, EventStream(events))

    def test_repeated_type_pattern(self):
        window = SlidingWindow(size=10, slide=5)
        workload = Workload(
            [
                Query(Pattern(("A", "A")), window, name="r10"),
                Query(Pattern(("A", "A", "B")), window, name="r11"),
            ]
        )
        stream = EventStream.from_tuples(
            [("A", 0), ("A", 1), ("A", 1), ("B", 2), ("A", 3), ("B", 4)]
        )
        self._assert_matches_oracle(workload, stream)

    def _assert_pane_modes_match_oracle(self, workload, stream, seed: int = 0):
        divergence = find_divergence(workload, stream, seed, pane_executors_under_test)
        assert divergence is None, divergence

    def test_pane_boundary_batch(self):
        """Same-timestamp batches sitting exactly on pane boundaries.

        Window (10, 4) has pane width 2; matches must chain across the
        boundary but never within a boundary batch, in both pane modes.
        """
        window = SlidingWindow(size=10, slide=4)
        workload = Workload(
            [
                Query(Pattern(("A", "B", "C")), window, name="p1"),
                Query(Pattern(("A", "B")), window, name="p2"),
            ]
        )
        stream = EventStream.from_tuples(
            [("A", 2), ("B", 2), ("A", 3), ("B", 4), ("C", 4), ("C", 6), ("A", 8), ("B", 9), ("C", 10)]
        )
        self._assert_pane_modes_match_oracle(workload, stream)

    def test_pane_gcd_one_with_repeated_types(self):
        """Unit-width panes (gcd = 1): every pane holds one timestamp batch."""
        window = SlidingWindow(size=7, slide=3)
        workload = Workload(
            [
                Query(Pattern(("A", "A", "B")), window, name="p3"),
                Query(Pattern(("B", "A")), window, name="p4"),
            ]
        )
        stream = EventStream.from_tuples(
            [("A", 0), ("A", 1), ("A", 1), ("B", 3), ("A", 5), ("B", 6), ("A", 7), ("B", 9)]
        )
        self._assert_pane_modes_match_oracle(workload, stream)

    def test_pane_mixed_aggregates_and_grouping(self):
        """Attribute aggregates + grouping across panes narrower than the slide."""
        window = SlidingWindow(size=9, slide=6)  # pane width 3
        predicates = PredicateSet.same("entity")
        queries = [
            Query(
                Pattern(("A", "B")),
                window,
                aggregate=AggregateSpec.sum("B", "value"),
                predicates=predicates,
                name="p5",
            ),
            Query(
                Pattern(("A", "B")),
                window,
                aggregate=AggregateSpec.avg("A", "value"),
                predicates=predicates,
                name="p6",
            ),
            Query(
                Pattern(("B", "A", "B")),
                window,
                aggregate=AggregateSpec.min("B", "value"),
                predicates=predicates,
                name="p7",
            ),
        ]
        workload = Workload(queries)
        rows = [
            ("A", 0, {"entity": 0, "value": 4}),
            ("B", 2, {"entity": 0, "value": 7}),
            ("B", 2, {"entity": 1, "value": 1}),
            ("A", 3, {"entity": 1, "value": 9}),
            ("B", 5, {"entity": 1, "value": 2}),
            ("A", 6, {"entity": 0, "value": 5}),
            ("B", 8, {"entity": 0, "value": 3}),
            ("B", 11, {"entity": 1, "value": 6}),
        ]
        events = [Event(t, ts, attrs, i) for i, (t, ts, attrs) in enumerate(rows)]
        self._assert_pane_modes_match_oracle(workload, EventStream(events))
