"""Differential harness: every executor must match the brute-force oracle.

:func:`repro.datasets.random_scenario` draws randomized scenarios over a grid
of window/slide/group/predicate/aggregate/pattern combinations; this module
replays each of them through all four optimised executors — Sharon (shared
online, cohort compaction on), A-Seq (non-shared online), and the two-step
baselines (Flink-like, SPASS-like) — and compares every result against the
deliberately naive :class:`repro.executor.OracleExecutor`.

When a divergence is found the harness *shrinks* it: events and queries are
removed greedily while the divergence persists, and the failure message
prints the minimal reproducer so it can be checked into
:class:`TestRegressionCorpus` (learning from failures: every bug becomes a
permanent regression case).

The scenario count is controlled by the ``ORACLE_DIFF_SCENARIOS`` environment
variable (default 240, CI may reduce it); seeds are fixed so every run is
reproducible.
"""

from __future__ import annotations

import os

import pytest

from repro.core import SharingPlan
from repro.datasets import describe_scenario, random_scenario
from repro.events import Event, EventStream, SlidingWindow
from repro.executor import (
    ASeqExecutor,
    FlinkLikeExecutor,
    OracleExecutor,
    SharonExecutor,
    SpassLikeExecutor,
)
from repro.queries import AggregateSpec, Pattern, PredicateSet, Query, Workload

from ..conftest import random_maximal_plan

#: Total randomized scenarios checked per full run (acceptance: >= 200).
NUM_SCENARIOS = int(os.environ.get("ORACLE_DIFF_SCENARIOS", "240"))

#: Scenarios are split into parametrized blocks so failures localise.
NUM_BLOCKS = 8


def deterministic_plan(workload: Workload, seed: int) -> SharingPlan:
    """The harness's plan for a scenario (shared builder, seeded by scenario)."""
    return random_maximal_plan(workload, seed)


def executors_under_test(workload: Workload, seed: int):
    """The four optimised executors, freshly constructed per evaluation."""
    plan = deterministic_plan(workload, seed)
    return (
        ("A-Seq", ASeqExecutor(workload)),
        ("Sharon", SharonExecutor(workload, plan=plan)),
        ("Flink-like", FlinkLikeExecutor(workload)),
        ("SPASS-like", SpassLikeExecutor(workload)),
    )


def find_divergence(workload: Workload, stream: EventStream, seed: int):
    """First (executor name, differences) mismatching the oracle, or ``None``."""
    oracle = OracleExecutor(workload).run(stream).results
    for name, executor in executors_under_test(workload, seed):
        results = executor.run(stream).results
        if not results.matches(oracle):
            return name, results.differences(oracle)[:5]
    return None


def shrink_divergence(workload: Workload, stream: EventStream, seed: int):
    """Greedy delta-debugging: drop queries/events while the divergence persists."""
    queries = list(workload)
    events = list(stream)
    shrinking = True
    while shrinking:
        shrinking = False
        for index in range(len(queries)):
            if len(queries) <= 1:
                break
            candidate = Workload(queries[:index] + queries[index + 1 :], name=workload.name)
            if find_divergence(candidate, EventStream(events), seed):
                queries = list(candidate)
                shrinking = True
                break
        if shrinking:
            continue
        for index in range(len(events)):
            candidate = EventStream(events[:index] + events[index + 1 :], name=stream.name)
            if find_divergence(Workload(queries, name=workload.name), candidate, seed):
                events = list(candidate)
                shrinking = True
                break
    return Workload(queries, name=workload.name), EventStream(events, name=stream.name)


def check_scenario(seed: int) -> None:
    workload, stream = random_scenario(seed)
    divergence = find_divergence(workload, stream, seed)
    if divergence is None:
        return
    minimal_workload, minimal_stream = shrink_divergence(workload, stream, seed)
    name, differences = find_divergence(minimal_workload, minimal_stream, seed) or divergence
    pytest.fail(
        f"scenario seed={seed}: executor {name} diverges from the oracle.\n"
        f"first differences (key, executor value, oracle value): {differences}\n"
        f"minimal reproducer:\n{describe_scenario(minimal_workload, minimal_stream)}\n"
        f"plan seed: {seed} (rebuild with deterministic_plan)"
    )


@pytest.mark.parametrize("block", range(NUM_BLOCKS))
def test_executors_match_oracle_on_randomized_grid(block):
    """Sharon, A-Seq, and both two-step baselines equal the oracle everywhere."""
    per_block = (NUM_SCENARIOS + NUM_BLOCKS - 1) // NUM_BLOCKS
    for offset in range(per_block):
        seed = block * per_block + offset
        if seed >= NUM_SCENARIOS:
            break
        check_scenario(seed)


def test_compaction_fires_during_differential_runs():
    """The grid would be toothless if compaction never triggered: force it.

    A long window with a shared two-type prefix keeps every runner's carry at
    the unit state, so all cohorts are mergeable; the scenario must both
    compact and agree with the oracle.
    """
    window = SlidingWindow(size=30, slide=15)
    queries = [
        Query(Pattern(("A", "B", extra)), window, name=f"cq{index}")
        for index, extra in enumerate(("C", "D"))
    ]
    workload = Workload(queries, name="compaction-differential")
    events = []
    event_id = 0
    for timestamp in range(40):
        for event_type in ("A", "B", "C", "D"):
            events.append(Event(event_type, timestamp, {}, event_id))
            event_id += 1
    stream = EventStream(events, name="compaction-differential")

    plan = deterministic_plan(workload, seed=0)
    assert any(candidate.pattern == Pattern(("A", "B")) for candidate in plan)
    report = SharonExecutor(workload, plan=plan).run(stream)
    oracle = OracleExecutor(workload).run(stream).results
    assert report.results.matches(oracle), report.results.differences(oracle)[:5]
    assert report.metrics.cohorts_merged > 0
    assert report.metrics.cohorts_created > report.metrics.cohorts_merged


class TestRegressionCorpus:
    """Minimal scenarios distilled from harness development.

    Each case is the shrunk form of a scenario family the randomized grid
    exercises; they run on every test invocation even when the grid is
    reduced (e.g. in CI), so past divergence shapes stay pinned.
    """

    def _assert_matches_oracle(self, workload: Workload, stream: EventStream, seed: int = 0):
        divergence = find_divergence(workload, stream, seed)
        assert divergence is None, divergence

    def test_same_timestamp_batch_with_shared_prefix(self):
        window = SlidingWindow(size=8, slide=4)
        workload = Workload(
            [
                Query(Pattern(("A", "B", "C")), window, name="r1"),
                Query(Pattern(("A", "B", "D")), window, name="r2"),
            ]
        )
        stream = EventStream.from_tuples(
            [("A", 1), ("A", 1), ("B", 1), ("B", 2), ("C", 3), ("D", 3), ("C", 7)]
        )
        self._assert_matches_oracle(workload, stream)

    def test_sliding_window_boundary_match(self):
        """A match whose START lies in one window and END in the next."""
        window = SlidingWindow(size=4, slide=2)
        workload = Workload(
            [
                Query(Pattern(("A", "B")), window, name="r3"),
                Query(Pattern(("B", "A")), window, name="r4"),
            ]
        )
        stream = EventStream.from_tuples([("A", 1), ("B", 3), ("A", 4), ("B", 5)])
        self._assert_matches_oracle(workload, stream)

    def test_mixed_aggregates_share_one_pattern(self):
        window = SlidingWindow(size=10, slide=10)
        queries = [
            Query(
                Pattern(("A", "B", "C")),
                window,
                aggregate=AggregateSpec.sum("B", "value"),
                name="r5",
            ),
            Query(
                Pattern(("A", "B", "D")),
                window,
                aggregate=AggregateSpec.count_star(),
                name="r6",
            ),
            Query(
                Pattern(("A", "B")),
                window,
                aggregate=AggregateSpec.avg("A", "value"),
                name="r7",
            ),
        ]
        workload = Workload(queries)
        stream = EventStream.from_tuples(
            [
                ("A", 0, 4), ("B", 1, 7), ("C", 2, 1), ("D", 2, 2),
                ("A", 3, 9), ("B", 4, 0), ("C", 5, 5), ("B", 9, 3),
            ],
            ["value"],
        )
        self._assert_matches_oracle(workload, stream)

    def test_equivalence_predicate_with_grouping(self):
        window = SlidingWindow(size=6, slide=3)
        predicates = PredicateSet.same("entity")
        queries = [
            Query(
                Pattern(("A", "B")),
                window,
                predicates=predicates,
                group_by=("region",),
                name="r8",
            ),
            Query(
                Pattern(("B", "C")),
                window,
                predicates=predicates,
                group_by=("region",),
                name="r9",
            ),
        ]
        workload = Workload(queries)
        rows = [
            ("A", 0, {"entity": 0, "region": 1}),
            ("B", 1, {"entity": 0, "region": 1}),
            ("B", 1, {"entity": 1, "region": 0}),
            ("C", 2, {"entity": 1, "region": 0}),
            ("A", 4, {"entity": 1, "region": 1}),
            ("B", 5, {"entity": 1, "region": 1}),
            ("C", 5, {"entity": 0, "region": 0}),
        ]
        events = [Event(t, ts, attrs, i) for i, (t, ts, attrs) in enumerate(rows)]
        self._assert_matches_oracle(workload, EventStream(events))

    def test_repeated_type_pattern(self):
        window = SlidingWindow(size=10, slide=5)
        workload = Workload(
            [
                Query(Pattern(("A", "A")), window, name="r10"),
                Query(Pattern(("A", "A", "B")), window, name="r11"),
            ]
        )
        stream = EventStream.from_tuples(
            [("A", 0), ("A", 1), ("A", 1), ("B", 2), ("A", 3), ("B", 4)]
        )
        self._assert_matches_oracle(workload, stream)
