"""Cross-executor equivalence on realistic data sets.

All four executors implement the same query semantics, so on any stream and
any (uniform) workload they must produce identical results — the online ones
without constructing sequences, the two-step ones by constructing them.  This
is the library's strongest end-to-end correctness check and mirrors the
paper's premise that Sharon is a pure optimization (it never changes query
answers).
"""

from __future__ import annotations

import random

import pytest

from repro.core import SharonOptimizer
from repro.datasets import (
    EcommerceConfig,
    LinearRoadConfig,
    chain_stream,
    chain_workload,
    ChainConfig,
    generate_ecommerce_stream,
    generate_linear_road_stream,
    purchase_workload,
    traffic_workload_scaled,
)
from repro.events import Event, EventStream, SlidingWindow
from repro.executor import ASeqExecutor, FlinkLikeExecutor, SharonExecutor, SpassLikeExecutor
from repro.queries import AggregateSpec, Pattern, PredicateSet, Query, Workload
from repro.utils import RateCatalog


def plan_for(workload, stream):
    rates = RateCatalog.from_stream(stream, per="time-unit")
    return SharonOptimizer(rates).optimize(workload).plan


class TestEquivalenceOnDatasets:
    def test_purchase_workload_on_ecommerce_stream(self):
        workload = purchase_workload(window=SlidingWindow(size=60, slide=30))
        stream = generate_ecommerce_stream(
            EcommerceConfig(
                num_items=12,
                num_customers=5,
                duration_seconds=150,
                purchases_per_second=6.0,
                follow_probability=0.7,
                seed=21,
            )
        )
        plan = plan_for(workload, stream)
        reports = {
            "sharon": SharonExecutor(workload, plan=plan).run(stream),
            "aseq": ASeqExecutor(workload).run(stream),
            "flink": FlinkLikeExecutor(workload).run(stream),
            "spass": SpassLikeExecutor(workload, plan=plan).run(stream),
        }
        reference = reports["flink"].results
        for name, report in reports.items():
            assert report.results.matches(reference), (
                name,
                report.results.differences(reference)[:5],
            )
        assert any(r.value for r in reference), "expected at least one purchase sequence"

    def test_scaled_traffic_workload_on_linear_road_stream(self):
        config = LinearRoadConfig(
            num_segments=12,
            num_cars=25,
            duration_seconds=120,
            initial_rate=6.0,
            final_rate=18.0,
            seed=29,
        )
        workload = traffic_workload_scaled(
            num_queries=10,
            pattern_length=4,
            config=config,
            window=SlidingWindow(size=30, slide=15),
        )
        stream = generate_linear_road_stream(config)
        plan = plan_for(workload, stream)

        sharon = SharonExecutor(workload, plan=plan).run(stream)
        aseq = ASeqExecutor(workload).run(stream)
        assert sharon.results.matches(aseq.results), sharon.results.differences(aseq.results)[:5]
        assert any(r.value for r in sharon.results)

    def test_sum_aggregate_workload(self):
        config = ChainConfig(num_event_types=8, entity_attribute="entity")
        workload = chain_workload(
            6,
            3,
            config=config,
            window=SlidingWindow(size=20, slide=10),
            seed=5,
            aggregate=AggregateSpec.sum(chain_event_types_last(config), "position"),
        )
        stream = chain_stream(
            duration=80, events_per_second=6, config=config, num_entities=4, seed=6
        )
        plan = plan_for(workload, stream)
        sharon = SharonExecutor(workload, plan=plan).run(stream)
        flink = FlinkLikeExecutor(workload).run(stream)
        assert sharon.results.matches(flink.results), sharon.results.differences(flink.results)[:5]


def chain_event_types_last(config: ChainConfig) -> str:
    """The last chain type — used as the SUM target so most queries track it."""
    from repro.datasets import chain_event_types

    return chain_event_types(config)[-1]


def _random_workload(rng: random.Random, event_types: list[str]) -> Workload:
    """A random uniform workload with a sliding window and multi-attribute grouping."""
    size = rng.choice([8, 12, 16])
    slide = rng.choice([s for s in (2, 3, 4, 6) if s < size])
    window = SlidingWindow(size=size, slide=slide)
    # Mix GROUP-BY and equivalence attributes so group keys are genuinely
    # multi-attribute (the regime the state-layout rewrite must preserve).
    group_by = ("region",) if rng.random() < 0.7 else ()
    predicates = PredicateSet.same("entity") if rng.random() < 0.7 else PredicateSet()
    queries = []
    for index in range(rng.randint(2, 5)):
        length = rng.randint(2, min(4, len(event_types)))
        types = rng.sample(event_types, length)
        queries.append(
            Query(
                pattern=Pattern(types),
                window=window,
                aggregate=AggregateSpec.count_star(),
                predicates=predicates,
                group_by=group_by,
                name=f"rq{index}",
            )
        )
    return Workload(queries)


def _random_stream(rng: random.Random, event_types: list[str]) -> EventStream:
    events = []
    length = rng.randint(20, 80)
    for event_id in range(length):
        events.append(
            Event(
                rng.choice(event_types),
                rng.randint(0, 40),
                {"entity": rng.randint(0, 2), "region": rng.choice(["n", "s"])},
                event_id,
            )
        )
    return EventStream(events, name="random")


def _random_plans(rng: random.Random, workload: Workload, count: int):
    """Several random conflict-free sharing plans for ``workload``."""
    from repro.core import ConflictDetector, SharingPlan, build_candidates

    detector = ConflictDetector(workload)
    candidates = build_candidates(workload)
    plans = []
    for _ in range(count):
        rng.shuffle(candidates)
        chosen = []
        for candidate in candidates:
            if all(not detector.in_conflict(candidate, other) for other in chosen):
                chosen.append(candidate.with_benefit(1.0))
        plans.append(SharingPlan(chosen))
    return plans


class TestRandomizedEquivalence:
    """Property test: random sliding-window, multi-group workloads agree.

    This is the safety net for the incremental anchored-state rewrite: on
    random streams, A-Seq, Sharon under several random plans, and the
    two-step oracle must produce identical result sets — sliding windows
    (slide < size), shared timestamps, and multi-attribute group keys
    included.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_online_executors_match_twostep_oracle(self, seed):
        rng = random.Random(1000 + seed)
        event_types = ["A", "B", "C", "D", "E"][: rng.randint(3, 5)]
        workload = _random_workload(rng, event_types)
        stream = _random_stream(rng, event_types)

        reference = FlinkLikeExecutor(workload).run(stream).results
        aseq = ASeqExecutor(workload).run(stream).results
        assert aseq.matches(reference), aseq.differences(reference)[:5]

        for plan in _random_plans(rng, workload, count=3):
            sharon = SharonExecutor(workload, plan=plan).run(stream).results
            assert sharon.matches(reference), (
                plan,
                sharon.differences(reference)[:5],
            )
        spass = SpassLikeExecutor(workload).run(stream).results
        assert spass.matches(reference), spass.differences(reference)[:5]

    @pytest.mark.parametrize("seed", range(4))
    def test_sum_and_avg_aggregates_match_oracle(self, seed):
        rng = random.Random(2000 + seed)
        event_types = ["A", "B", "C", "D"]
        size = rng.choice([8, 12])
        slide = rng.choice([3, 4])
        window = SlidingWindow(size=size, slide=slide)
        target = rng.choice(event_types)
        spec = rng.choice(
            [AggregateSpec.sum(target, "value"), AggregateSpec.avg(target, "value")]
        )
        queries = []
        for index in range(3):
            length = rng.randint(2, 3)
            types = rng.sample(event_types, length)
            if target not in types:
                types[rng.randrange(length)] = target
            queries.append(
                Query(
                    pattern=Pattern(types),
                    window=window,
                    aggregate=spec,
                    predicates=PredicateSet.same("entity"),
                    name=f"sq{index}",
                )
            )
        workload = Workload(queries)
        events = [
            Event(
                rng.choice(event_types),
                rng.randint(0, 30),
                {"entity": rng.randint(0, 1), "value": float(rng.randint(1, 9))},
                event_id,
            )
            for event_id in range(rng.randint(20, 60))
        ]
        stream = EventStream(events, name="random-sum")

        reference = FlinkLikeExecutor(workload).run(stream).results
        for plan in _random_plans(rng, workload, count=2):
            sharon = SharonExecutor(workload, plan=plan).run(stream).results
            assert sharon.matches(reference), (
                plan,
                sharon.differences(reference)[:5],
            )


class TestSharingPlanNeverChangesAnswers:
    def test_many_random_plans_agree(self):
        from repro.core import build_candidates, ConflictDetector, SharingPlan
        import random

        config = ChainConfig(num_event_types=10)
        workload = chain_workload(
            8, 4, config=config, window=SlidingWindow(size=25, slide=10), seed=13
        )
        stream = chain_stream(
            duration=100, events_per_second=8, config=config, num_entities=6, seed=14
        )
        reference = ASeqExecutor(workload).run(stream).results

        detector = ConflictDetector(workload)
        candidates = build_candidates(workload)
        rng = random.Random(3)
        plans_checked = 0
        for _ in range(6):
            rng.shuffle(candidates)
            chosen = []
            for candidate in candidates:
                if all(not detector.in_conflict(candidate, other) for other in chosen):
                    chosen.append(candidate.with_benefit(1.0))
            plan = SharingPlan(chosen)
            report = SharonExecutor(workload, plan=plan).run(stream)
            assert report.results.matches(reference), report.results.differences(reference)[:5]
            plans_checked += 1
        assert plans_checked == 6
