"""Cross-executor equivalence on realistic data sets.

All four executors implement the same query semantics, so on any stream and
any (uniform) workload they must produce identical results — the online ones
without constructing sequences, the two-step ones by constructing them.  This
is the library's strongest end-to-end correctness check and mirrors the
paper's premise that Sharon is a pure optimization (it never changes query
answers).
"""

from __future__ import annotations

import pytest

from repro.core import SharonOptimizer
from repro.datasets import (
    EcommerceConfig,
    LinearRoadConfig,
    chain_stream,
    chain_workload,
    ChainConfig,
    generate_ecommerce_stream,
    generate_linear_road_stream,
    purchase_workload,
    traffic_workload_scaled,
)
from repro.events import SlidingWindow
from repro.executor import ASeqExecutor, FlinkLikeExecutor, SharonExecutor, SpassLikeExecutor
from repro.queries import AggregateSpec
from repro.utils import RateCatalog


def plan_for(workload, stream):
    rates = RateCatalog.from_stream(stream, per="time-unit")
    return SharonOptimizer(rates).optimize(workload).plan


class TestEquivalenceOnDatasets:
    def test_purchase_workload_on_ecommerce_stream(self):
        workload = purchase_workload(window=SlidingWindow(size=60, slide=30))
        stream = generate_ecommerce_stream(
            EcommerceConfig(
                num_items=12,
                num_customers=5,
                duration_seconds=150,
                purchases_per_second=6.0,
                follow_probability=0.7,
                seed=21,
            )
        )
        plan = plan_for(workload, stream)
        reports = {
            "sharon": SharonExecutor(workload, plan=plan).run(stream),
            "aseq": ASeqExecutor(workload).run(stream),
            "flink": FlinkLikeExecutor(workload).run(stream),
            "spass": SpassLikeExecutor(workload, plan=plan).run(stream),
        }
        reference = reports["flink"].results
        for name, report in reports.items():
            assert report.results.matches(reference), (
                name,
                report.results.differences(reference)[:5],
            )
        assert any(r.value for r in reference), "expected at least one purchase sequence"

    def test_scaled_traffic_workload_on_linear_road_stream(self):
        config = LinearRoadConfig(
            num_segments=12,
            num_cars=25,
            duration_seconds=120,
            initial_rate=6.0,
            final_rate=18.0,
            seed=29,
        )
        workload = traffic_workload_scaled(
            num_queries=10,
            pattern_length=4,
            config=config,
            window=SlidingWindow(size=30, slide=15),
        )
        stream = generate_linear_road_stream(config)
        plan = plan_for(workload, stream)

        sharon = SharonExecutor(workload, plan=plan).run(stream)
        aseq = ASeqExecutor(workload).run(stream)
        assert sharon.results.matches(aseq.results), sharon.results.differences(aseq.results)[:5]
        assert any(r.value for r in sharon.results)

    def test_sum_aggregate_workload(self):
        config = ChainConfig(num_event_types=8, entity_attribute="entity")
        workload = chain_workload(
            6,
            3,
            config=config,
            window=SlidingWindow(size=20, slide=10),
            seed=5,
            aggregate=AggregateSpec.sum(chain_event_types_last(config), "position"),
        )
        stream = chain_stream(
            duration=80, events_per_second=6, config=config, num_entities=4, seed=6
        )
        plan = plan_for(workload, stream)
        sharon = SharonExecutor(workload, plan=plan).run(stream)
        flink = FlinkLikeExecutor(workload).run(stream)
        assert sharon.results.matches(flink.results), sharon.results.differences(flink.results)[:5]


def chain_event_types_last(config: ChainConfig) -> str:
    """The last chain type — used as the SUM target so most queries track it."""
    from repro.datasets import chain_event_types

    return chain_event_types(config)[-1]


class TestSharingPlanNeverChangesAnswers:
    def test_many_random_plans_agree(self):
        from repro.core import build_candidates, ConflictDetector, SharingPlan
        import random

        config = ChainConfig(num_event_types=10)
        workload = chain_workload(
            8, 4, config=config, window=SlidingWindow(size=25, slide=10), seed=13
        )
        stream = chain_stream(
            duration=100, events_per_second=8, config=config, num_entities=6, seed=14
        )
        reference = ASeqExecutor(workload).run(stream).results

        detector = ConflictDetector(workload)
        candidates = build_candidates(workload)
        rng = random.Random(3)
        plans_checked = 0
        for _ in range(6):
            rng.shuffle(candidates)
            chosen = []
            for candidate in candidates:
                if all(not detector.in_conflict(candidate, other) for other in chosen):
                    chosen.append(candidate.with_benefit(1.0))
            plan = SharingPlan(chosen)
            report = SharonExecutor(workload, plan=plan).run(stream)
            assert report.results.matches(reference), report.results.differences(reference)[:5]
            plans_checked += 1
        assert plans_checked == 6
