"""Property-based tests for pattern geometry and window semantics."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import SlidingWindow
from repro.executor import count_pattern_matches, enumerate_pattern_matches
from repro.queries import Pattern

from ..conftest import make_events

TYPES = ["A", "B", "C", "D", "E"]


def patterns(min_length=1, max_length=4, unique=False):
    return st.lists(
        st.sampled_from(TYPES), min_size=min_length, max_size=max_length, unique=unique
    ).map(Pattern)


class TestPatternProperties:
    @given(patterns(min_length=2, max_length=5))
    def test_subpatterns_are_contained(self, pattern):
        for subpattern in pattern.contiguous_subpatterns(min_length=2):
            assert pattern.contains(subpattern)
            start = pattern.find(subpattern)
            assert pattern.subpattern(start, start + len(subpattern)) == subpattern

    @given(patterns(min_length=2, max_length=5))
    def test_split_around_reassembles(self, pattern):
        for subpattern in pattern.contiguous_subpatterns(min_length=2):
            split = pattern.split_around(subpattern)
            reassembled = split.prefix.concat(split.shared).concat(split.suffix)
            assert reassembled == pattern

    @given(patterns(min_length=1, max_length=4), patterns(min_length=1, max_length=4))
    def test_overlap_is_symmetric(self, first, second):
        assert first.overlaps(second) == second.overlaps(first)

    @given(patterns(min_length=2, max_length=4))
    def test_pattern_overlaps_itself(self, pattern):
        assert pattern.overlaps(pattern)


class TestWindowProperties:
    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=500),
    )
    def test_instances_containing_cover_timestamp(self, size, slide, timestamp):
        if slide > size:
            slide = size
        window = SlidingWindow(size=size, slide=slide)
        instances = window.instances_containing(timestamp)
        assert instances, "every timestamp belongs to at least one window"
        for instance in instances:
            assert instance.contains(timestamp)
            assert instance.start % slide == 0
            assert instance.size == size
        assert len(instances) <= window.max_overlap
        assert len(instances) == len(set(instances))

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=50),
    )
    def test_covers_span_is_intersection(self, size, slide, start_ts, extra):
        if slide > size:
            slide = size
        window = SlidingWindow(size=size, slide=slide)
        end_ts = start_ts + extra
        covering = window.covers_span(start_ts, end_ts)
        start_instances = set(window.instances_containing(start_ts))
        end_instances = set(window.instances_containing(end_ts))
        assert set(covering) == start_instances & end_instances


class TestCountingAgainstEnumeration:
    @settings(max_examples=60, deadline=None)
    @given(
        patterns(min_length=2, max_length=3),
        st.lists(
            st.tuples(st.sampled_from(TYPES), st.integers(min_value=0, max_value=15)),
            min_size=0,
            max_size=25,
        ),
    )
    def test_count_matches_equals_enumeration(self, pattern, rows):
        events = make_events(rows)
        events.sort(key=lambda e: e.timestamp)
        assert count_pattern_matches(pattern, events) == len(
            enumerate_pattern_matches(pattern, events)
        )
