"""Property-based tests for the aggregate-state algebra (hypothesis).

The online executors rely on :class:`AggregateState` behaving like a
well-formed algebra: ``merge`` is a commutative monoid with identity
``zero``, ``combine`` distributes over ``merge``, and extending a state by an
event commutes with merging.  These laws are what make shared, incremental
maintenance correct, so they are exercised over randomly generated states.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import Event
from repro.queries import AggregateSpec, AggregateState


def states(max_count: int = 50):
    """Strategy producing structurally consistent aggregate states."""

    def build(count, target, total, minimum, maximum):
        if count == 0:
            return AggregateState.zero()
        target = min(target, count * 3)
        low, high = sorted((minimum, maximum))
        has_values = target > 0
        return AggregateState(
            count=count,
            target_count=target,
            total=total if has_values else 0.0,
            minimum=low if has_values else None,
            maximum=high if has_values else None,
        )

    return st.builds(
        build,
        st.integers(min_value=0, max_value=max_count),
        st.integers(min_value=0, max_value=100),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )


def events():
    return st.builds(
        Event,
        st.sampled_from(["A", "B", "C"]),
        st.integers(min_value=0, max_value=1000),
        st.fixed_dictionaries({"price": st.floats(min_value=0, max_value=100, allow_nan=False)}),
    )


SPEC = AggregateSpec.sum("B", "price")


class TestMergeMonoid:
    @given(states())
    def test_zero_is_identity(self, state):
        assert state.merge(AggregateState.zero()) == state
        assert AggregateState.zero().merge(state) == state

    @given(states(), states())
    def test_merge_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(states(), states(), states())
    def test_merge_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.count == right.count
        assert left.target_count == right.target_count
        assert abs(left.total - right.total) < 1e-6
        assert left.minimum == right.minimum
        assert left.maximum == right.maximum


class TestCombine:
    @given(states(), states())
    def test_combine_count_is_product(self, a, b):
        assert a.combine(b).count == a.count * b.count

    @given(states())
    def test_combine_with_zero_annihilates(self, state):
        assert state.combine(AggregateState.zero()).is_zero
        assert AggregateState.zero().combine(state).is_zero

    @given(states(), states(), states())
    @settings(max_examples=60)
    def test_combine_distributes_over_merge(self, a, b, c):
        left = a.combine(b.merge(c))
        right = a.combine(b).merge(a.combine(c))
        assert left.count == right.count
        assert left.target_count == right.target_count
        assert abs(left.total - right.total) < 1e-6

    @given(states(), st.integers(min_value=0, max_value=20))
    def test_scale_equals_repeated_merge(self, state, factor):
        scaled = state.scale(factor)
        merged = AggregateState.zero()
        for _ in range(factor):
            merged = merged.merge(state)
        assert scaled.count == merged.count
        assert abs(scaled.total - merged.total) < 1e-6


class TestExtend:
    @given(states(), events())
    def test_extend_preserves_count(self, state, event):
        assert state.extend(event, SPEC).count == state.count

    @given(states(), states(), events())
    def test_extend_commutes_with_merge(self, a, b, event):
        left = a.merge(b).extend(event, SPEC)
        right = a.extend(event, SPEC).merge(b.extend(event, SPEC))
        assert left.count == right.count
        assert left.target_count == right.target_count
        assert abs(left.total - right.total) < 1e-6

    @given(states(), events())
    def test_extend_targeted_event_adds_value_per_sequence(self, state, event):
        extended = state.extend(event, SPEC)
        if event.event_type == "B" and state.count > 0:
            assert extended.target_count == state.target_count + state.count
            assert abs(extended.total - (state.total + event["price"] * state.count)) < 1e-6
        else:
            assert extended.total == state.total
