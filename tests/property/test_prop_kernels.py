"""Property-based backend parity: the numpy kernels change nothing but speed.

For random mixed-aggregate workloads and float-valued streams, the engine
running ``backend="numpy"`` must produce results identical to the
pure-Python reference across the full columnar × panes × compaction toggle
cube — the kernel module's design contract
(:mod:`repro.executor.kernels`), stated as a property.  A second property
strengthens result equality to *byte* equality of the final session export
(the state-hash surface replay determinism and checkpoints stand on).

The whole module skips when the optional numpy dependency is absent; the
pure-Python side of every assertion is covered by the existing executor
property suites either way.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import Event, EventStream, SlidingWindow
from repro.executor import SharonExecutor
from repro.executor.kernels import numpy_available
from repro.queries import AggregateSpec, Pattern, PredicateSet, Query, Workload
from repro.replay import ReplayRunner

from ..conftest import random_maximal_plan

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the optional numpy dependency is not installed"
)

EVENT_TYPES = ["A", "B", "C", "D"]

#: Value palette biased toward the float edge cases the vectorised
#: reductions must not reorder: signed zeros, ties, magnitudes whose sum is
#: order-sensitive in binary64.
VALUES = [0.0, -0.0, 1.5, -1.5, 0.1, 0.2, 0.3, 1e15, -1e15, 7.25, -3.0]


def _aggregate_for(draw, target_type):
    kind = draw(st.sampled_from(["star", "count", "sum", "min", "max", "avg"]))
    if kind == "star":
        return AggregateSpec.count_star()
    if kind == "count":
        return AggregateSpec.count(target_type)
    return getattr(AggregateSpec, kind)(target_type, "value")


@st.composite
def workloads(draw):
    """Small workloads mixing every aggregate kind over types A-D."""
    window_size = draw(st.sampled_from([6, 8, 12]))
    slide = min(draw(st.sampled_from([3, 4, window_size])), window_size)
    window = SlidingWindow(size=window_size, slide=slide)
    predicates = PredicateSet.same("entity") if draw(st.booleans()) else PredicateSet()
    queries = []
    for index in range(draw(st.integers(min_value=2, max_value=4))):
        length = draw(st.integers(min_value=2, max_value=3))
        types = draw(
            st.lists(st.sampled_from(EVENT_TYPES), min_size=length, max_size=length, unique=True)
        )
        queries.append(
            Query(
                pattern=Pattern(types),
                window=window,
                aggregate=_aggregate_for(draw, draw(st.sampled_from(types))),
                predicates=predicates,
                name=f"kq{index}",
            )
        )
    return Workload(queries)


@st.composite
def streams(draw):
    """Short random streams with edge-case float values and two entities."""
    length = draw(st.integers(min_value=5, max_value=40))
    events = []
    for event_id in range(length):
        event_type = draw(st.sampled_from(EVENT_TYPES))
        timestamp = draw(st.integers(min_value=0, max_value=25))
        attrs = {"entity": draw(st.integers(min_value=0, max_value=1))}
        if draw(st.booleans()):
            attrs["value"] = draw(st.sampled_from(VALUES))
        events.append(Event(event_type, timestamp, attrs, event_id))
    return EventStream(events)


@settings(max_examples=25, deadline=None)
@given(workloads(), streams(), st.integers(min_value=0, max_value=10))
def test_numpy_backend_matches_python_across_toggle_cube(workload, stream, plan_seed):
    """Results agree between backends at every corner of the 2×2×2 cube."""
    plan = random_maximal_plan(workload, plan_seed)
    for columnar in (False, True):
        for panes in (False, True):
            for compaction in (False, True):
                def run(backend):
                    return (
                        SharonExecutor(
                            workload,
                            plan=plan,
                            columnar=columnar,
                            panes=panes,
                            compaction=compaction,
                            backend=backend,
                        )
                        .run(stream)
                        .results
                    )

                reference = run("python")
                vectorised = run("numpy")
                assert vectorised.matches(reference), (
                    (columnar, panes, compaction),
                    vectorised.differences(reference)[:5],
                )


@settings(max_examples=15, deadline=None)
@given(workloads(), streams(), st.integers(min_value=0, max_value=10))
def test_numpy_backend_reaches_byte_identical_final_state(workload, stream, plan_seed):
    """The final session export hashes identically under both backends.

    Stronger than result equality: the state hash covers results, metrics
    counters, and all residual engine state, so the numpy kernels must leave
    no float-noise or representation trace behind — which is also what makes
    checkpoints backend-agnostic.
    """
    plan = random_maximal_plan(workload, plan_seed)
    events = list(stream)

    def final_hash(backend, panes):
        runner = ReplayRunner(workload, plan=plan, panes=panes, backend=backend)
        return runner.run(iter(events)).state_hash

    for panes in (False, True):
        assert final_hash("numpy", panes) == final_hash("python", panes), (
            f"panes={panes}: the numpy backend left a different final state"
        )
