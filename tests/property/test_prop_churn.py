"""Property-based metamorphic checks for live query churn (``docs/churn.md``).

Three metamorphic relations pin the churn semantics against plain runs the
rest of the suite already certifies:

* **attach ≡ restart** — a query attached at ``t`` emits exactly what a
  fresh run of that query over the full stream emits for windows with
  ``start >= t`` (windows starting later have seen zero events when the
  attach applies, so nothing is missed);
* **detach ≡ truncate** — a query detached at ``t`` emits exactly what a
  fresh run over the stream truncated to events before ``t`` emits (open
  windows yield their partial values at detach time);
* **churn commutes with the toggle cube** — columnar × panes × compaction
  (and the numpy backend where importable) never change a churned result,
  and replaying the same churned schedule is byte-deterministic: identical
  runs, and resume-from-checkpoint, reach identical ``state_hash`` values.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SharingPlan
from repro.events import Event, EventStream, SlidingWindow
from repro.executor import (
    ChurnOp,
    ChurnSchedule,
    ResultSet,
    SharonExecutor,
)
from repro.executor.kernels import numpy_available
from repro.queries import AggregateSpec, Pattern, PredicateSet, Query, Workload
from repro.replay import ReplayRunner

from ..conftest import random_maximal_plan

EVENT_TYPES = ["A", "B", "C", "D"]


@st.composite
def churn_cases(draw):
    """A small uniform workload split into initial queries plus a churn schedule.

    Draws 2–4 COUNT(*) queries over types A–D, keeps a non-empty prefix as
    the initial workload, attaches the rest at drawn timestamps, and
    optionally detaches one query that is guaranteed active (and not the
    last one) at its detach time.  Returns
    ``(workload, stream, schedule)`` with the same shape as
    :func:`repro.datasets.random_churn_scenario`.
    """
    window_size = draw(st.sampled_from([6, 8, 12]))
    slide = min(draw(st.sampled_from([3, 4, window_size])), window_size)
    window = SlidingWindow(size=window_size, slide=slide)
    predicates = PredicateSet.same("entity") if draw(st.booleans()) else PredicateSet()
    num_queries = draw(st.integers(min_value=2, max_value=4))
    queries = []
    for index in range(num_queries):
        length = draw(st.integers(min_value=2, max_value=3))
        types = draw(
            st.lists(st.sampled_from(EVENT_TYPES), min_size=length, max_size=length, unique=True)
        )
        queries.append(
            Query(
                pattern=Pattern(types),
                window=window,
                aggregate=AggregateSpec.count_star(),
                predicates=predicates,
                name=f"cq{index}",
            )
        )
    initial_count = draw(st.integers(min_value=1, max_value=num_queries - 1))
    initial = queries[:initial_count]
    ops = [
        ChurnOp("attach", draw(st.integers(min_value=1, max_value=18)), query=query)
        for query in queries[initial_count:]
    ]
    if draw(st.booleans()):
        # Detach a joiner strictly after every attach: it is then active at
        # the detach time and never the last active query (the initial
        # prefix is non-empty), so the schedule always applies.
        target = draw(st.sampled_from(queries[initial_count:]))
        latest_attach = max(op.at for op in ops)
        detach_at = draw(st.integers(min_value=latest_attach + 1, max_value=24))
        ops.append(ChurnOp("detach", detach_at, query_name=target.name))

    length = draw(st.integers(min_value=8, max_value=40))
    events = []
    for event_id in range(length):
        events.append(
            Event(
                draw(st.sampled_from(EVENT_TYPES)),
                draw(st.integers(min_value=0, max_value=25)),
                {"entity": draw(st.integers(min_value=0, max_value=1))},
                event_id,
            )
        )
    return Workload(initial), EventStream(events), ChurnSchedule(ops)


def _lifetimes(schedule: ChurnSchedule):
    """Per churned query name: (query or None, attach_at or None, detach_at or None)."""
    lifetimes: dict[str, list] = {}
    for op in schedule:
        if op.kind == "attach":
            lifetimes[op.query_name] = [op.query, op.at, None]
        else:
            lifetimes.setdefault(op.query_name, [None, None, None])[2] = op.at
    return lifetimes


def _query_results(results: ResultSet, name: str) -> ResultSet:
    return ResultSet(r for r in results if r.query_name == name)


def _churned_results(workload, stream, schedule, plan_seed, **toggles) -> ResultSet:
    plan = random_maximal_plan(workload, plan_seed)
    return SharonExecutor(workload, plan=plan, churn=schedule, **toggles).run(stream).results


@settings(max_examples=25, deadline=None)
@given(churn_cases(), st.integers(min_value=0, max_value=10))
def test_attach_at_t_equals_restart_at_t(case, plan_seed):
    workload, stream, schedule = case
    churned = _churned_results(workload, stream, schedule, plan_seed)
    for name, (query, attach_at, detach_at) in _lifetimes(schedule).items():
        if attach_at is None:
            continue
        visible = (
            stream
            if detach_at is None
            else EventStream([e for e in stream if e.timestamp < detach_at])
        )
        restart = SharonExecutor(Workload((query,)), plan=SharingPlan()).run(visible).results
        gated = ResultSet(r for r in restart if r.window.start >= attach_at)
        mine = _query_results(churned, name)
        assert mine.matches(gated), (name, attach_at, detach_at, mine.differences(gated)[:5])


@settings(max_examples=25, deadline=None)
@given(churn_cases(), st.integers(min_value=0, max_value=10))
def test_detach_at_t_equals_truncate_at_t(case, plan_seed):
    workload, stream, schedule = case
    churned = _churned_results(workload, stream, schedule, plan_seed)
    by_name = {query.name: query for query in workload}
    for op in schedule:
        if op.kind == "attach":
            by_name[op.query_name] = op.query
    for name, (_query, attach_at, detach_at) in _lifetimes(schedule).items():
        if detach_at is None:
            continue
        truncated = EventStream([e for e in stream if e.timestamp < detach_at])
        reference = (
            SharonExecutor(Workload((by_name[name],)), plan=SharingPlan()).run(truncated).results
        )
        if attach_at is not None:
            reference = ResultSet(r for r in reference if r.window.start >= attach_at)
        mine = _query_results(churned, name)
        assert mine.matches(reference), (
            name,
            attach_at,
            detach_at,
            mine.differences(reference)[:5],
        )


@settings(max_examples=15, deadline=None)
@given(churn_cases(), st.integers(min_value=0, max_value=10))
def test_churn_commutes_with_the_toggle_cube(case, plan_seed):
    """Columnar × panes × compaction (× backend) never change a churned result."""
    workload, stream, schedule = case
    reference = None
    reference_config = None
    backends = ["python"] + (["numpy"] if numpy_available() else [])
    for columnar in (False, True):
        for panes in (False, True):
            for compaction in (False, True):
                for backend in backends:
                    results = _churned_results(
                        workload,
                        stream,
                        schedule,
                        plan_seed,
                        columnar=columnar,
                        panes=panes,
                        compaction=compaction,
                        backend=backend,
                    )
                    config = (columnar, panes, compaction, backend)
                    if reference is None:
                        reference, reference_config = results, config
                        continue
                    assert results.matches(reference), (
                        reference_config,
                        config,
                        results.differences(reference)[:5],
                    )


@settings(max_examples=10, deadline=None)
@given(churn_cases(), st.integers(min_value=0, max_value=10))
def test_churned_replay_is_byte_deterministic(case, plan_seed):
    """Same schedule, same stream → byte-identical final session exports.

    Two independent churned replays must agree on ``state_hash`` (which
    covers results, metrics, churn bookkeeping, and every open scope), and
    — where numpy is importable — the python and numpy backends must reach
    the *same* bytes, because the kernel backend is excluded from the
    determinism contract by being bit-identical.
    """
    workload, stream, schedule = case
    plan = random_maximal_plan(workload, plan_seed)

    def final_hash(backend: str) -> str:
        runner = ReplayRunner(workload, plan=plan, churn=schedule, backend=backend)
        return runner.run(stream).state_hash

    first = final_hash("python")
    assert final_hash("python") == first
    if numpy_available():
        assert final_hash("numpy") == first
