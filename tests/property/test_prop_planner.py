"""Property-based tests for the optimizer's combinatorial core (hypothesis).

Random weighted conflict graphs are generated and the following invariants of
Sections 5 and 6 are checked:

* the plan finder's result equals the brute-force maximum weight independent
  set (optimality, Lemma 7);
* the GWMIN independent set respects its guaranteed weight (Equation 10);
* graph reduction never changes the optimum (conflict-free candidates are in
  every optimal plan, conflict-ridden ones in none);
* all plans generated level-wise are valid and unique (Lemmas 4-6).
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SharingCandidate,
    SharonGraph,
    find_optimal_plan,
    generate_next_level,
    gwmin_independent_set,
    reduce_sharon_graph,
)
from repro.queries import Pattern


@st.composite
def conflict_graphs(draw, max_vertices: int = 8):
    """Random weighted graphs over synthetic sharing candidates."""
    size = draw(st.integers(min_value=1, max_value=max_vertices))
    weights = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
            min_size=size,
            max_size=size,
        )
    )
    vertices = [
        SharingCandidate(Pattern([f"A{i}", f"B{i}"]), ("q1", "q2"), round(w, 2))
        for i, w in enumerate(weights)
    ]
    graph = SharonGraph(vertices)
    for i in range(size):
        for j in range(i + 1, size):
            if draw(st.booleans()):
                graph.add_edge(vertices[i], vertices[j])
    return graph


def brute_force_optimum(graph: SharonGraph) -> float:
    best = 0.0
    vertices = graph.vertices
    for size in range(len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            if graph.is_independent_set(subset):
                best = max(best, sum(v.benefit for v in subset))
    return best


@settings(max_examples=60, deadline=None)
@given(conflict_graphs())
def test_plan_finder_is_optimal(graph):
    plan = find_optimal_plan(graph)
    assert graph.is_independent_set(plan.candidates)
    assert abs(plan.score - brute_force_optimum(graph)) < 1e-6


@settings(max_examples=60, deadline=None)
@given(conflict_graphs())
def test_gwmin_guarantee_and_independence(graph):
    selected = gwmin_independent_set(graph)
    assert graph.is_independent_set(selected)
    total = sum(v.benefit for v in selected)
    assert total >= graph.gwmin_guaranteed_weight() - 1e-9
    assert total <= brute_force_optimum(graph) + 1e-9


@settings(max_examples=60, deadline=None)
@given(conflict_graphs())
def test_reduction_preserves_optimum(graph):
    reduction = reduce_sharon_graph(graph)
    reduced_plan = find_optimal_plan(reduction.reduced_graph, reduction.conflict_free)
    assert abs(reduced_plan.score - brute_force_optimum(graph)) < 1e-6
    # Conflict-free candidates are disjoint from conflict-ridden ones.
    assert not (set(reduction.conflict_free) & set(reduction.conflict_ridden))


@settings(max_examples=40, deadline=None)
@given(conflict_graphs(max_vertices=7))
def test_level_generation_produces_exactly_the_valid_plans(graph):
    # Collect plans produced level-wise.
    produced = set()
    level = [(v,) for v in graph.vertices]
    while level:
        for plan in level:
            assert graph.is_independent_set(plan)
            key = frozenset(plan)
            assert key not in produced, "level generation must not duplicate plans"
            produced.add(key)
        level = generate_next_level(graph, level)

    # Compare against brute-force enumeration of non-empty independent sets.
    expected = set()
    vertices = graph.vertices
    for size in range(1, len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            if graph.is_independent_set(subset):
                expected.add(frozenset(subset))
    assert produced == expected
