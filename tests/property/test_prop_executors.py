"""Property-based end-to-end check: online executors equal the brute-force oracle.

For randomly generated small workloads, sharing plans, and streams, the
Sharon executor (shared online), the A-Seq executor (non-shared online), and
the Flink-like two-step oracle must return identical results for every query,
window, and group.  This is the library-level statement of the paper's
correctness claim: sharing and online aggregation are pure optimizations.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SharingPlan
from repro.events import Event, EventStream, SlidingWindow
from repro.executor import ASeqExecutor, FlinkLikeExecutor, SharonExecutor
from repro.queries import AggregateSpec, Pattern, PredicateSet, Query, Workload

from ..conftest import random_maximal_plan

EVENT_TYPES = ["A", "B", "C", "D"]


@st.composite
def workloads(draw):
    """Small uniform COUNT(*) workloads over types A-D."""
    window_size = draw(st.sampled_from([6, 8, 12]))
    slide = draw(st.sampled_from([3, 4, window_size]))
    slide = min(slide, window_size)
    window = SlidingWindow(size=window_size, slide=slide)
    use_equivalence = draw(st.booleans())
    predicates = PredicateSet.same("entity") if use_equivalence else PredicateSet()
    num_queries = draw(st.integers(min_value=2, max_value=4))
    queries = []
    for index in range(num_queries):
        length = draw(st.integers(min_value=2, max_value=3))
        types = draw(
            st.lists(st.sampled_from(EVENT_TYPES), min_size=length, max_size=length, unique=True)
        )
        queries.append(
            Query(
                pattern=Pattern(types),
                window=window,
                aggregate=AggregateSpec.count_star(),
                predicates=predicates,
                name=f"pq{index}",
            )
        )
    return Workload(queries)


@st.composite
def streams(draw):
    """Short random streams with shared timestamps and two entities."""
    length = draw(st.integers(min_value=5, max_value=40))
    events = []
    for event_id in range(length):
        event_type = draw(st.sampled_from(EVENT_TYPES))
        timestamp = draw(st.integers(min_value=0, max_value=25))
        entity = draw(st.integers(min_value=0, max_value=1))
        events.append(Event(event_type, timestamp, {"entity": entity}, event_id))
    return EventStream(events)


def random_valid_plan(workload: Workload, seed: int) -> SharingPlan:
    """A maximal conflict-free plan assembled in pseudo-random order."""
    return random_maximal_plan(workload, seed)


@settings(max_examples=40, deadline=None)
@given(workloads(), streams(), st.integers(min_value=0, max_value=10))
def test_online_executors_match_brute_force(workload, stream, plan_seed):
    plan = random_valid_plan(workload, plan_seed)
    oracle = FlinkLikeExecutor(workload).run(stream).results
    aseq = ASeqExecutor(workload).run(stream).results
    sharon = SharonExecutor(workload, plan=plan).run(stream).results

    assert aseq.matches(oracle), aseq.differences(oracle)[:5]
    assert sharon.matches(oracle), (list(plan), sharon.differences(oracle)[:5])


@settings(max_examples=40, deadline=None)
@given(workloads(), streams(), st.integers(min_value=0, max_value=10))
def test_cohort_compaction_is_semantics_preserving(workload, stream, plan_seed):
    """For any random stream, compaction on and off produce identical results.

    Compaction merges anchor cohorts whose carries coincide in every sharing
    query — a pure representation change.  The off-run is the uncompacted
    reference; both must also equal the brute-force oracle.
    """
    plan = random_valid_plan(workload, plan_seed)
    compacted = SharonExecutor(workload, plan=plan, compaction=True).run(stream).results
    uncompacted = SharonExecutor(workload, plan=plan, compaction=False).run(stream).results
    assert compacted.matches(uncompacted), (
        list(plan),
        compacted.differences(uncompacted)[:5],
    )
    oracle = FlinkLikeExecutor(workload).run(stream).results
    assert compacted.matches(oracle), (list(plan), compacted.differences(oracle)[:5])


@settings(max_examples=15, deadline=None)
@given(streams(), st.integers(min_value=0, max_value=5))
def test_compaction_shrinks_cohorts_on_shared_prefix_workloads(stream, plan_seed):
    """Shared-prefix queries keep unit carries, so cohorts must actually merge.

    The random stream is densified with one (A, B) pair per timestamp of the
    first window instance, guaranteeing enough anchor cohorts in one scope to
    pass the amortised compaction threshold — merging must then happen, and
    the results must still equal the non-shared baseline.
    """
    window = SlidingWindow(size=12, slide=6)
    workload = Workload(
        [
            Query(Pattern(("A", "B", "C")), window, name="cp0"),
            Query(Pattern(("A", "B", "D")), window, name="cp1"),
        ]
    )
    plan = random_valid_plan(workload, plan_seed)
    assert any(candidate.pattern == Pattern(("A", "B")) for candidate in plan)
    dense = list(stream)
    next_id = len(dense)
    for timestamp in range(window.size):
        dense.append(Event("A", timestamp, {"entity": 0}, next_id))
        dense.append(Event("B", timestamp, {"entity": 0}, next_id + 1))
        next_id += 2
    dense_stream = EventStream(dense)
    report = SharonExecutor(workload, plan=plan, compaction=True).run(dense_stream)
    reference = ASeqExecutor(workload).run(dense_stream).results
    assert report.results.matches(reference), report.results.differences(reference)[:5]
    assert report.metrics.cohorts_merged > 0
    assert report.metrics.cohorts_merged <= report.metrics.cohorts_created


@settings(max_examples=40, deadline=None)
@given(workloads(), streams(), st.integers(min_value=0, max_value=10))
def test_pane_partitioning_is_semantics_preserving(workload, stream, plan_seed):
    """For any random stream, panes on and panes off produce identical results.

    Pane partitioning only changes *who owns* the aggregation state (a pane
    of width gcd(size, slide) instead of each covering window instance); the
    assembled per-window values must be bit-for-bit the per-instance ones,
    and both must equal the brute-force oracle.
    """
    plan = random_valid_plan(workload, plan_seed)
    panes_on = SharonExecutor(workload, plan=plan, panes=True).run(stream).results
    panes_off = SharonExecutor(workload, plan=plan, panes=False).run(stream).results
    assert panes_on.matches(panes_off), (
        list(plan),
        panes_on.differences(panes_off)[:5],
    )
    oracle = FlinkLikeExecutor(workload).run(stream).results
    assert panes_on.matches(oracle), (list(plan), panes_on.differences(oracle)[:5])


@settings(max_examples=25, deadline=None)
@given(workloads(), streams(), st.integers(min_value=0, max_value=10))
def test_pane_and_compaction_toggles_commute(workload, stream, plan_seed):
    """All four pane × compaction combinations agree on every scenario.

    The two optimisations are independent representation changes (panes own
    scope state, compaction shrinks cohort sets); toggling either must never
    change a result, so the full 2×2 grid collapses to one answer.
    """
    plan = random_valid_plan(workload, plan_seed)
    reference = None
    reference_config = None
    for panes in (False, True):
        for compaction in (False, True):
            results = (
                SharonExecutor(workload, plan=plan, panes=panes, compaction=compaction)
                .run(stream)
                .results
            )
            if reference is None:
                reference = results
                reference_config = (panes, compaction)
                continue
            assert results.matches(reference), (
                list(plan),
                reference_config,
                (panes, compaction),
                results.differences(reference)[:5],
            )


@settings(max_examples=20, deadline=None)
@given(workloads(), streams(), st.integers(min_value=0, max_value=10))
def test_columnar_ingestion_is_semantics_preserving(workload, stream, plan_seed):
    """Columnar and scalar ingestion produce identical results on any stream.

    Columnar mode only changes *how* events are routed (interned type ids,
    compiled predicate kernels, pre-interned group keys); the per-scope
    aggregation consumes the same sub-batches in the same order, so results
    must be bit-for-bit the scalar ones — and both must equal the oracle.
    """
    plan = random_valid_plan(workload, plan_seed)
    columnar = SharonExecutor(workload, plan=plan, columnar=True).run(stream).results
    scalar = SharonExecutor(workload, plan=plan, columnar=False).run(stream).results
    assert columnar.matches(scalar), (list(plan), columnar.differences(scalar)[:5])
    oracle = FlinkLikeExecutor(workload).run(stream).results
    assert columnar.matches(oracle), (list(plan), columnar.differences(oracle)[:5])


@settings(max_examples=12, deadline=None)
@given(workloads(), streams(), st.integers(min_value=0, max_value=10))
def test_columnar_pane_compaction_toggle_cube_agrees(workload, stream, plan_seed):
    """The full columnar × panes × compaction 2×2×2 cube collapses to one answer.

    The three optimisations are independent: columnar mode changes batch
    *routing*, panes change scope *ownership*, compaction shrinks cohort
    *sets*.  No combination of toggles may change a result, and the shared
    answer must equal the brute-force oracle.
    """
    plan = random_valid_plan(workload, plan_seed)
    oracle = FlinkLikeExecutor(workload).run(stream).results
    for columnar in (False, True):
        for panes in (False, True):
            for compaction in (False, True):
                results = (
                    SharonExecutor(
                        workload,
                        plan=plan,
                        columnar=columnar,
                        panes=panes,
                        compaction=compaction,
                    )
                    .run(stream)
                    .results
                )
                assert results.matches(oracle), (
                    list(plan),
                    (columnar, panes, compaction),
                    results.differences(oracle)[:5],
                )


@settings(max_examples=25, deadline=None)
@given(workloads(), streams())
def test_empty_and_full_plans_agree(workload, stream):
    reference = ASeqExecutor(workload).run(stream).results
    empty_plan = SharonExecutor(workload, plan=SharingPlan()).run(stream).results
    maximal_plan = SharonExecutor(workload, plan=random_valid_plan(workload, 0)).run(
        stream
    ).results
    assert empty_plan.matches(reference)
    assert maximal_plan.matches(reference)
