"""Property-based end-to-end check: online executors equal the brute-force oracle.

For randomly generated small workloads, sharing plans, and streams, the
Sharon executor (shared online), the A-Seq executor (non-shared online), and
the Flink-like two-step oracle must return identical results for every query,
window, and group.  This is the library-level statement of the paper's
correctness claim: sharing and online aggregation are pure optimizations.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConflictDetector, SharingPlan, build_candidates
from repro.events import Event, EventStream, SlidingWindow
from repro.executor import ASeqExecutor, FlinkLikeExecutor, SharonExecutor
from repro.queries import AggregateSpec, Pattern, PredicateSet, Query, Workload

EVENT_TYPES = ["A", "B", "C", "D"]


@st.composite
def workloads(draw):
    """Small uniform COUNT(*) workloads over types A-D."""
    window_size = draw(st.sampled_from([6, 8, 12]))
    slide = draw(st.sampled_from([3, 4, window_size]))
    slide = min(slide, window_size)
    window = SlidingWindow(size=window_size, slide=slide)
    use_equivalence = draw(st.booleans())
    predicates = PredicateSet.same("entity") if use_equivalence else PredicateSet()
    num_queries = draw(st.integers(min_value=2, max_value=4))
    queries = []
    for index in range(num_queries):
        length = draw(st.integers(min_value=2, max_value=3))
        types = draw(
            st.lists(st.sampled_from(EVENT_TYPES), min_size=length, max_size=length, unique=True)
        )
        queries.append(
            Query(
                pattern=Pattern(types),
                window=window,
                aggregate=AggregateSpec.count_star(),
                predicates=predicates,
                name=f"pq{index}",
            )
        )
    return Workload(queries)


@st.composite
def streams(draw):
    """Short random streams with shared timestamps and two entities."""
    length = draw(st.integers(min_value=5, max_value=40))
    events = []
    for event_id in range(length):
        event_type = draw(st.sampled_from(EVENT_TYPES))
        timestamp = draw(st.integers(min_value=0, max_value=25))
        entity = draw(st.integers(min_value=0, max_value=1))
        events.append(Event(event_type, timestamp, {"entity": entity}, event_id))
    return EventStream(events)


def random_valid_plan(workload: Workload, seed: int) -> SharingPlan:
    """A maximal conflict-free plan assembled in pseudo-random order."""
    detector = ConflictDetector(workload)
    candidates = build_candidates(workload)
    rng = random.Random(seed)
    rng.shuffle(candidates)
    chosen = []
    for candidate in candidates:
        if all(not detector.in_conflict(candidate, other) for other in chosen):
            chosen.append(candidate.with_benefit(1.0))
    return SharingPlan(chosen)


@settings(max_examples=40, deadline=None)
@given(workloads(), streams(), st.integers(min_value=0, max_value=10))
def test_online_executors_match_brute_force(workload, stream, plan_seed):
    plan = random_valid_plan(workload, plan_seed)
    oracle = FlinkLikeExecutor(workload).run(stream).results
    aseq = ASeqExecutor(workload).run(stream).results
    sharon = SharonExecutor(workload, plan=plan).run(stream).results

    assert aseq.matches(oracle), aseq.differences(oracle)[:5]
    assert sharon.matches(oracle), (list(plan), sharon.differences(oracle)[:5])


@settings(max_examples=25, deadline=None)
@given(workloads(), streams())
def test_empty_and_full_plans_agree(workload, stream):
    reference = ASeqExecutor(workload).run(stream).results
    empty_plan = SharonExecutor(workload, plan=SharingPlan()).run(stream).results
    maximal_plan = SharonExecutor(workload, plan=random_valid_plan(workload, 0)).run(
        stream
    ).results
    assert empty_plan.matches(reference)
    assert maximal_plan.matches(reference)
