"""Unit tests for the optimizer front-ends (Greedy, Exhaustive, Sharon)."""

from __future__ import annotations

import pytest

from repro.core import (
    ConflictDetector,
    ExhaustiveOptimizer,
    GreedyOptimizer,
    SharonOptimizer,
)
from repro.datasets import chain_workload, traffic_workload
from repro.utils import RateCatalog

from ..conftest import paper_benefit


@pytest.fixture
def placeholder_rates():
    return RateCatalog(default_rate=1.0)


class TestGreedyOptimizer:
    def test_produces_valid_plan_and_phases(self, traffic, placeholder_rates):
        result = GreedyOptimizer(placeholder_rates, benefit_override=paper_benefit).optimize(
            traffic
        )
        assert result.plan.is_valid(ConflictDetector(traffic))
        assert result.plan.score == pytest.approx(43.0)  # Example 12
        assert set(result.phase_seconds) == {"graph construction", "GWMIN"}
        assert result.candidates_total == 7
        assert result.total_seconds > 0
        assert result.peak_bytes > 0

    def test_works_with_real_benefit_model(self, traffic):
        rates = RateCatalog.uniform(traffic.event_types(), 1.0)
        result = GreedyOptimizer(rates).optimize(traffic)
        assert result.plan.is_valid(ConflictDetector(traffic))


class TestSharonOptimizer:
    def test_finds_optimal_plan_on_paper_example(self, traffic, placeholder_rates):
        result = SharonOptimizer(placeholder_rates, benefit_override=paper_benefit).optimize(
            traffic
        )
        assert result.plan.score == pytest.approx(50.0)  # Example 12
        assert result.plan.is_valid(ConflictDetector(traffic))
        assert result.candidates_total == 7
        assert result.candidates_after_reduction <= 5
        assert not result.used_fallback
        assert "graph reduction" in result.phase_seconds
        assert "plan finder" in result.phase_seconds

    def test_beats_or_matches_greedy(self, traffic, placeholder_rates):
        greedy = GreedyOptimizer(placeholder_rates, benefit_override=paper_benefit).optimize(
            traffic
        )
        sharon = SharonOptimizer(placeholder_rates, benefit_override=paper_benefit).optimize(
            traffic
        )
        assert sharon.plan.score >= greedy.plan.score

    def test_expansion_phase_recorded_when_enabled(self, traffic, placeholder_rates):
        result = SharonOptimizer(
            placeholder_rates, expand=True, benefit_override=paper_benefit
        ).optimize(traffic)
        assert "graph expansion" in result.phase_seconds
        assert result.candidates_after_expansion >= result.candidates_total
        assert result.plan.score >= 50.0

    def test_time_budget_falls_back_to_greedy(self):
        workload = chain_workload(24, 8, seed=2)
        rates = RateCatalog.uniform(workload.event_types(), 1.0)
        result = SharonOptimizer(rates, time_budget_seconds=1e-9).optimize(workload)
        assert result.used_fallback
        assert result.plan.is_valid(ConflictDetector(workload))

    def test_empty_plan_for_workload_without_sharing(self, uniform_query_factory):
        from repro.queries import Workload

        workload = Workload(
            [uniform_query_factory(["A", "B"], "q1"), uniform_query_factory(["C", "D"], "q2")]
        )
        rates = RateCatalog.uniform(["A", "B", "C", "D"], 1.0)
        result = SharonOptimizer(rates).optimize(workload)
        assert result.plan.is_empty


class TestExhaustiveOptimizer:
    def test_matches_sharon_on_paper_example(self, traffic, placeholder_rates):
        exhaustive = ExhaustiveOptimizer(
            placeholder_rates, benefit_override=paper_benefit
        ).optimize(traffic)
        sharon = SharonOptimizer(placeholder_rates, benefit_override=paper_benefit).optimize(
            traffic
        )
        assert exhaustive.plan.score == pytest.approx(sharon.plan.score)
        assert exhaustive.plans_considered == 2 ** 7

    def test_refuses_oversized_search(self, placeholder_rates):
        workload = chain_workload(30, 6, seed=4)
        rates = RateCatalog.uniform(workload.event_types(), 1.0)
        optimizer = ExhaustiveOptimizer(rates, max_candidates=10)
        with pytest.raises(RuntimeError, match="would not terminate"):
            optimizer.optimize(workload)
