"""Unit tests for event schemas (repro.events.schema)."""

from __future__ import annotations

import pytest

from repro.events import AttributeSpec, Event, EventSchema, SchemaRegistry, SchemaValidationError


class TestAttributeSpec:
    def test_validate_accepts_matching_domain(self):
        AttributeSpec("vehicle", int).validate(3)

    def test_validate_rejects_wrong_domain(self):
        with pytest.raises(SchemaValidationError, match="vehicle"):
            AttributeSpec("vehicle", int).validate("three")

    def test_object_domain_accepts_anything(self):
        AttributeSpec("anything").validate(object())


class TestEventSchema:
    def test_validate_accepts_conforming_event(self):
        schema = EventSchema("MainSt", [AttributeSpec("vehicle", int)])
        schema.validate(Event("MainSt", 0, {"vehicle": 1}))

    def test_validate_rejects_wrong_type(self):
        schema = EventSchema("MainSt", [AttributeSpec("vehicle", int)])
        with pytest.raises(SchemaValidationError, match="does not match"):
            schema.validate(Event("OakSt", 0, {"vehicle": 1}))

    def test_validate_rejects_missing_required_attribute(self):
        schema = EventSchema("MainSt", [AttributeSpec("vehicle", int)])
        with pytest.raises(SchemaValidationError, match="misses required"):
            schema.validate(Event("MainSt", 0))

    def test_optional_attribute_may_be_absent(self):
        schema = EventSchema("MainSt", [AttributeSpec("note", str, required=False)])
        schema.validate(Event("MainSt", 0))

    def test_attribute_names_and_spec_lookup(self):
        schema = EventSchema("A", [AttributeSpec("x", int), AttributeSpec("y", float)])
        assert schema.attribute_names == ("x", "y")
        assert schema.spec("y").domain is float
        with pytest.raises(KeyError):
            schema.spec("z")


class TestSchemaRegistry:
    def test_register_and_lookup(self):
        registry = SchemaRegistry()
        registry.register(EventSchema("A"))
        assert "A" in registry
        assert registry.get("A") is not None
        assert registry.get("B") is None
        assert len(registry) == 1
        assert registry.event_types() == ("A",)

    def test_duplicate_registration_rejected(self):
        registry = SchemaRegistry()
        registry.register(EventSchema("A"))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(EventSchema("A"))

    def test_unknown_type_ignored_unless_strict(self):
        registry = SchemaRegistry()
        registry.validate(Event("Unknown", 0))
        with pytest.raises(SchemaValidationError, match="no schema"):
            registry.validate(Event("Unknown", 0), strict=True)

    def test_validate_stream_counts_events(self):
        registry = SchemaRegistry()
        registry.register(EventSchema("A", [AttributeSpec("x", int)]))
        events = [Event("A", t, {"x": t}) for t in range(5)]
        assert registry.validate_stream(events) == 5
