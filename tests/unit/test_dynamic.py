"""Unit tests for dynamic workload support (Section 7.4)."""

from __future__ import annotations

import pytest

from repro.core import AdaptiveSharonExecutor, RateMonitor
from repro.datasets import ChainConfig, chain_stream, chain_workload
from repro.events import Event, EventStream, SlidingWindow, merge_streams
from repro.executor import ASeqExecutor
from repro.queries import Pattern, Query, Workload
from repro.utils import RateCatalog


class TestRateMonitor:
    def test_requires_positive_parameters(self):
        with pytest.raises(ValueError):
            RateMonitor(horizon=0)
        with pytest.raises(ValueError):
            RateMonitor(drift_threshold=0)

    def test_current_rates_over_horizon(self):
        monitor = RateMonitor(horizon=10)
        monitor.observe_all(Event("A", t) for t in range(5))
        monitor.observe_all(Event("B", t) for t in range(0, 5, 2))
        rates = monitor.current_rates()
        assert rates.rate("A") == pytest.approx(1.0)
        assert rates.rate("B") == pytest.approx(3 / 5)

    def test_eviction_beyond_horizon(self):
        monitor = RateMonitor(horizon=5)
        monitor.observe_all(Event("A", t) for t in range(20))
        assert monitor.observed_time_units <= 5 + 1

    def test_single_batch_mixing_fresh_and_stale_stays_within_horizon(self):
        """Stale events inside one ``observe_all`` batch must not widen the span.

        Eviction only runs when the latest timestamp advances, so a batch
        that first moves the monitor forward and then replays timestamps at
        or before ``latest - horizon`` used to re-admit the stale buckets:
        ``observed_time_units`` exceeded the horizon and the reported rates
        were diluted by the widened span until the next advance.
        """
        monitor = RateMonitor(horizon=5)
        batch = [Event("A", 100)] + [Event("A", t) for t in range(0, 95)]
        monitor.observe_all(batch)
        assert monitor.observed_time_units <= 5 + 1
        assert monitor.current_rates().rate("A") == pytest.approx(1.0)

    def test_stale_events_are_ignored_but_in_horizon_stragglers_count(self):
        monitor = RateMonitor(horizon=5)
        monitor.observe(Event("A", 10))
        monitor.observe(Event("B", 7))  # inside the horizon: counted
        monitor.observe(Event("B", 5))  # at latest - horizon: ignored
        monitor.observe(Event("B", 2))  # far stale: ignored
        rates = monitor.current_rates()
        assert monitor.observed_time_units == 2
        assert rates.rate("B") == pytest.approx(1 / 2)

    def test_drift_detection(self):
        monitor = RateMonitor(horizon=10, drift_threshold=0.5)
        monitor.observe_all(Event("A", t) for t in range(10))
        reference = RateCatalog({"A": 1.0})
        assert monitor.drift_against(reference) == pytest.approx(0.0)
        assert not monitor.has_drifted(reference)
        # Doubling the rate of A is a drift of 1.0 > 0.5.
        monitor.observe_all(Event("A", t) for t in range(10))
        assert monitor.has_drifted(reference)

    def test_drift_with_new_event_type(self):
        monitor = RateMonitor(horizon=10, drift_threshold=0.5)
        monitor.observe_all(Event("B", t) for t in range(10))
        reference = RateCatalog({"A": 1.0})
        # A vanished (drift 1.0) and B appeared (drift 1.0).
        assert monitor.drift_against(reference) >= 1.0

    def test_empty_monitor(self):
        monitor = RateMonitor()
        assert monitor.current_rates().rates == {}
        assert monitor.drift_against(RateCatalog({})) == 0.0


def drifting_setup():
    config = ChainConfig(num_event_types=8, entity_attribute="car")
    workload = chain_workload(
        8, 4, config=config, window=SlidingWindow(size=20, slide=10), seed=61,
        offset_pool_size=2,
    )
    calm = chain_stream(duration=60, events_per_second=4, config=config, num_entities=5, seed=62)
    busy_raw = chain_stream(
        duration=60, events_per_second=16, config=config, num_entities=5, seed=63
    )
    busy = EventStream(
        [Event(e.event_type, e.timestamp + 60, e.attributes, e.event_id) for e in busy_raw]
    )
    stream = merge_streams(calm, busy, name="drift")
    return workload, stream


class TestAdaptiveSharonExecutor:
    def test_rejects_empty_or_non_uniform_workloads(self):
        with pytest.raises(ValueError, match="empty"):
            AdaptiveSharonExecutor(Workload())
        window_a = SlidingWindow(size=10, slide=5)
        window_b = SlidingWindow(size=20, slide=5)
        mixed = Workload(
            [
                Query(Pattern(["A", "B"]), window_a, name="d1"),
                Query(Pattern(["A", "B"]), window_b, name="d2"),
            ]
        )
        with pytest.raises(ValueError, match="uniform"):
            AdaptiveSharonExecutor(mixed)

    def test_results_identical_to_static_baseline(self):
        workload, stream = drifting_setup()
        adaptive = AdaptiveSharonExecutor(workload, check_interval=20, drift_threshold=0.4)
        report = adaptive.run(stream)
        baseline = ASeqExecutor(workload).run(stream)
        assert report.results.matches(baseline.results), report.results.differences(
            baseline.results
        )[:5]

    def test_reoptimizes_on_rate_drift(self):
        workload, stream = drifting_setup()
        adaptive = AdaptiveSharonExecutor(workload, check_interval=20, drift_threshold=0.4)
        adaptive.run(stream)
        # The rate quadruples halfway through: at least one drift check must
        # have re-run the optimizer (the plan itself may or may not change).
        assert len(adaptive.plan_history) >= 1
        assert adaptive.monitor.observed_time_units > 0

    def test_migration_records_are_consistent(self):
        workload, stream = drifting_setup()
        adaptive = AdaptiveSharonExecutor(
            workload, check_interval=10, drift_threshold=0.2,
        )
        adaptive.run(stream)
        for record in adaptive.migrations:
            assert record.drift > 0.2
            assert record.at_timestamp >= 0
        # Every migration appended a plan to the history.
        assert len(adaptive.plan_history) == len(adaptive.migrations) + 1

    def test_initial_rates_produce_initial_plan(self):
        workload, stream = drifting_setup()
        rates = RateCatalog.from_stream(stream, per="time-unit")
        adaptive = AdaptiveSharonExecutor(workload, initial_rates=rates, check_interval=30)
        report = adaptive.run(stream)
        assert adaptive.plan_history[0] == report.plan or len(adaptive.plan_history) > 1
        baseline = ASeqExecutor(workload).run(stream)
        assert report.results.matches(baseline.results)

    def test_invalid_check_interval(self):
        workload, _ = drifting_setup()
        with pytest.raises(ValueError, match="check_interval"):
            AdaptiveSharonExecutor(workload, check_interval=0)
