"""Unit tests for sharing conflict detection (Definition 6)."""

from __future__ import annotations

import pytest

from repro.core import ConflictDetector, SharingCandidate
from repro.events import SlidingWindow
from repro.queries import Pattern, Query, Workload


def make_workload(patterns: dict[str, tuple[str, ...]]) -> Workload:
    window = SlidingWindow(size=10, slide=5)
    return Workload(
        [Query(pattern=Pattern(types), window=window, name=name) for name, types in patterns.items()]
    )


class TestPatternConflictGeometry:
    def test_overlapping_placements_conflict(self):
        workload = make_workload({"q": ("ParkAve", "OakSt", "MainSt")})
        detector = ConflictDetector(workload)
        query = workload["q"]
        assert detector.patterns_conflict_in(
            query, Pattern(["ParkAve", "OakSt"]), Pattern(["OakSt", "MainSt"])
        )

    def test_disjoint_placements_do_not_conflict(self):
        workload = make_workload({"q": ("A", "B", "C", "D")})
        detector = ConflictDetector(workload)
        query = workload["q"]
        assert not detector.patterns_conflict_in(query, Pattern(["A", "B"]), Pattern(["C", "D"]))

    def test_pattern_absent_from_query_never_conflicts(self):
        workload = make_workload({"q": ("A", "B", "C")})
        detector = ConflictDetector(workload)
        query = workload["q"]
        assert not detector.patterns_conflict_in(query, Pattern(["A", "B"]), Pattern(["X", "Y"]))

    def test_repeated_occurrences_allow_coexistence(self):
        # (A, B) occurs twice; (B, C) overlaps only the first occurrence, so
        # both patterns can be carved out of the query without overlap.
        workload = make_workload({"q": ("A", "B", "C", "A", "B")})
        detector = ConflictDetector(workload)
        query = workload["q"]
        assert not detector.patterns_conflict_in(query, Pattern(["A", "B"]), Pattern(["B", "C"]))


class TestCandidateConflicts:
    def test_example_4_conflict(self):
        # p1 = (OakSt, MainSt) and p2 = (ParkAve, OakSt) conflict through q3, q4.
        workload = make_workload(
            {
                "q3": ("ParkAve", "OakSt", "MainSt"),
                "q4": ("ParkAve", "OakSt", "MainSt", "WestSt"),
            }
        )
        detector = ConflictDetector(workload)
        p1 = SharingCandidate(Pattern(["OakSt", "MainSt"]), ("q3", "q4"))
        p2 = SharingCandidate(Pattern(["ParkAve", "OakSt"]), ("q3", "q4"))
        assert detector.in_conflict(p1, p2)
        assert detector.causing_queries(p1, p2) == ("q3", "q4")
        conflict = detector.conflict(p1, p2)
        assert conflict is not None and conflict.involves(p1) and conflict.other(p1) == p2

    def test_no_conflict_without_common_query(self):
        workload = make_workload(
            {
                "q1": ("A", "B", "C"),
                "q2": ("B", "C", "D"),
                "q3": ("C", "D", "E"),
            }
        )
        detector = ConflictDetector(workload)
        # (A, B) and (B, C) overlap, but the candidates below share no query,
        # so Definition 6 does not apply.
        first = SharingCandidate(Pattern(["A", "B"]), ("q1", "q2"))
        second = SharingCandidate(Pattern(["C", "D"]), ("q2", "q3"))
        conflicting = SharingCandidate(Pattern(["B", "C"]), ("q1", "q2"))
        assert not detector.in_conflict(first, second)
        assert detector.in_conflict(first, conflicting)
        # The conflict is caused only by q1, where both patterns actually
        # occur and overlap; q2 does not contain (A, B) at all.
        assert detector.causing_queries(first, conflicting) == ("q1",)

    def test_same_pattern_options_conflict_only_on_common_queries(self):
        workload = make_workload(
            {
                "q1": ("A", "B", "C"),
                "q2": ("A", "B", "D"),
                "q3": ("A", "B", "E"),
                "q4": ("A", "B", "F"),
            }
        )
        detector = ConflictDetector(workload)
        first = SharingCandidate(Pattern(["A", "B"]), ("q1", "q2"))
        second = SharingCandidate(Pattern(["A", "B"]), ("q3", "q4"))
        overlapping = SharingCandidate(Pattern(["A", "B"]), ("q2", "q3"))
        assert not detector.in_conflict(first, second)
        assert detector.in_conflict(first, overlapping)
        assert detector.causing_queries(first, overlapping) == ("q2",)

    def test_candidate_not_in_conflict_with_itself(self):
        workload = make_workload({"q1": ("A", "B", "C"), "q2": ("A", "B", "D")})
        detector = ConflictDetector(workload)
        candidate = SharingCandidate(Pattern(["A", "B"]), ("q1", "q2"))
        assert not detector.in_conflict(candidate, candidate)

    def test_all_conflicts_enumerates_each_pair_once(self, traffic):
        from repro.core import build_candidates

        detector = ConflictDetector(traffic)
        candidates = build_candidates(traffic)
        conflicts = detector.all_conflicts(candidates)
        # Figure 4 has 8 conflict edges: p1-p2, p1-p3, p1-p4, p1-p5, p1-p6,
        # p2-p3, p2-p5, p3-p4, p3-p5, p4-p5 ... derived from the degrees
        # (25/6, 9/4, 12/5, 15/4, 20/5, 8/2, 18/1): total degree 20 -> 10 edges.
        assert len(conflicts) == 10
        keys = {frozenset((c.first, c.second)) for c in conflicts}
        assert len(keys) == len(conflicts)
