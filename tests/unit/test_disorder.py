"""Unit tests for bounded-lateness disorder tolerance (events/disorder.py).

Covers the reorder buffer's watermark protocol, the feed's accounting
invariant and late policies, the legality of ``bounded_shuffle`` arrival
orders, the engine sessions' regressed-timestamp guard, and buffer
checkpointing.
"""

from __future__ import annotations

import pytest

from repro.events import (
    DisorderError,
    EventStream,
    ReorderBuffer,
    ReorderFeed,
    SlidingWindow,
    bounded_shuffle,
    validate_late_policy,
)
from repro.executor import StreamingEngine
from repro.executor.engine import PaneEngineSession
from repro.queries import Pattern, PredicateSet, Query, Workload

from ..conftest import make_events


def make_workload(window=None):
    window = window or SlidingWindow(size=10, slide=5)
    queries = [
        Query(pattern=Pattern(["A", "B"]), window=window, predicates=PredicateSet(), name="q1"),
        Query(pattern=Pattern(["A", "B", "C"]), window=window, predicates=PredicateSet(), name="q2"),
    ]
    return Workload(queries)


class TestLatePolicyValidation:
    def test_accepts_raise_drop_and_callables(self):
        validate_late_policy("raise")
        validate_late_policy("drop")
        validate_late_policy(lambda event: None)

    @pytest.mark.parametrize("bad", ["ignore", None, 3, ["drop"]])
    def test_rejects_everything_else(self, bad):
        with pytest.raises(ValueError, match="late_policy"):
            validate_late_policy(bad)


class TestReorderBuffer:
    def test_rejects_negative_lateness(self):
        with pytest.raises(ValueError, match="max_lateness"):
            ReorderBuffer(-1)

    def test_watermark_undefined_before_first_event(self):
        buffer = ReorderBuffer(5)
        assert buffer.watermark is None
        assert buffer.max_seen == -1
        assert not buffer.is_late(0)

    def test_watermark_tracks_max_seen(self):
        buffer = ReorderBuffer(3)
        (event,) = make_events([("A", 10)])
        assert buffer.push(event)
        assert buffer.watermark == 7
        # max_seen never moves backwards.
        (older,) = make_events([("A", 8)])
        assert buffer.push(older)
        assert buffer.watermark == 7

    def test_event_at_watermark_is_admissible_but_below_is_late(self):
        buffer = ReorderBuffer(3)
        buffer.push(make_events([("A", 10)])[0])
        assert not buffer.is_late(7)  # exactly at the watermark
        assert buffer.is_late(6)  # strictly below it
        assert buffer.push(make_events([("A", 7)])[0])
        assert not buffer.push(make_events([("A", 6)])[0])
        assert len(buffer) == 2  # the late event was not buffered

    def test_pop_ready_releases_only_passed_batches(self):
        buffer = ReorderBuffer(2)
        for event in make_events([("A", 5), ("A", 3), ("A", 4)]):
            assert buffer.push(event)
        # Watermark is 3: only timestamp < 3 would release; nothing yet.
        assert buffer.pop_ready() is None
        buffer.push(make_events([("A", 8)])[0])
        # Watermark is 6 now: 3, 4, 5 release in timestamp order.
        assert [buffer.pop_ready()[0] for _ in range(3)] == [3, 4, 5]
        assert buffer.pop_ready() is None
        assert len(buffer) == 1

    def test_pop_drain_flushes_everything_in_order(self):
        buffer = ReorderBuffer(10)
        for event in make_events([("A", 4), ("A", 1), ("A", 4), ("A", 2)]):
            buffer.push(event)
        drained = []
        while (batch := buffer.pop_drain()) is not None:
            drained.append(batch)
        assert [timestamp for timestamp, _ in drained] == [1, 2, 4]
        assert len(drained[2][1]) == 2
        assert len(buffer) == 0

    def test_within_timestamp_events_kept_in_event_id_order(self):
        buffer = ReorderBuffer(5)
        a, b, c = make_events([("A", 3), ("B", 3), ("C", 3)])
        for event in (c, a, b):  # arrival order scrambles the ids
            buffer.push(event)
        buffer.push(make_events([("A", 20)])[0])
        timestamp, batch = buffer.pop_ready()
        assert timestamp == 3
        assert [event.event_id for event in batch] == [0, 1, 2]

    def test_export_restore_round_trip(self):
        buffer = ReorderBuffer(5)
        for event in make_events([("A", 4), ("B", 2), ("A", 6)]):
            buffer.push(event)
        state = buffer.export_state()
        restored = ReorderBuffer(5)
        restored.restore_state(state)
        assert restored.watermark == buffer.watermark
        assert len(restored) == len(buffer)
        assert restored.export_state() == state
        while True:
            original, copy = buffer.pop_drain(), restored.pop_drain()
            assert original == copy
            if original is None:
                break

    def test_restore_rejects_mismatched_lateness(self):
        buffer = ReorderBuffer(5)
        state = buffer.export_state()
        other = ReorderBuffer(3)
        with pytest.raises(ValueError, match="max_lateness"):
            other.restore_state(state)


class TestReorderFeed:
    def feed(self, rows, max_lateness, **kwargs):
        events = make_events(rows)
        return ReorderFeed(iter(events), ReorderBuffer(max_lateness), **kwargs)

    def test_releases_sorted_batches(self):
        feed = self.feed([("A", 3), ("A", 1), ("A", 2), ("A", 6), ("A", 5)], 3)
        assert [timestamp for timestamp, _ in feed] == [1, 2, 3, 5, 6]
        assert feed.source_consumed == 5

    def test_accounting_invariant_at_every_batch_boundary(self):
        feed = self.feed([("A", 3), ("A", 1), ("A", 7), ("A", 3), ("A", 6)], 4)
        processed = 0
        for _timestamp, batch in feed:
            processed += len(batch)
            assert processed + len(feed.buffer) == feed.source_consumed
        assert processed == 5

    def test_raise_policy_names_the_contract(self):
        feed = self.feed([("A", 10), ("A", 2)], 3)
        with pytest.raises(DisorderError, match="behind watermark 7"):
            list(feed)

    def test_drop_policy_counts_late_and_dropped(self):
        feed = self.feed([("A", 10), ("A", 2), ("A", 11)], 3, late_policy="drop")
        released = [event for _ts, batch in feed for event in batch]
        assert [event.timestamp for event in released] == [10, 11]
        assert feed.metrics.events_late == 1
        assert feed.metrics.events_dropped == 1
        assert feed.source_consumed == 3

    def test_callback_policy_hands_over_the_event(self):
        side_channel = []
        feed = self.feed(
            [("A", 10), ("A", 2)], 3, late_policy=side_channel.append
        )
        list(feed)
        assert [event.timestamp for event in side_channel] == [2]
        assert feed.metrics.events_late == 1
        assert feed.metrics.events_dropped == 0

    def test_metrics_sink_is_duck_typed(self):
        class Sink:
            events_late = 0
            events_dropped = 0

        sink = Sink()
        feed = self.feed([("A", 10), ("A", 2)], 3, late_policy="drop", metrics=sink)
        list(feed)
        assert sink.events_late == 1
        assert sink.events_dropped == 1


class TestBoundedShuffle:
    def test_rejects_negative_lateness(self):
        with pytest.raises(ValueError, match="max_lateness"):
            bounded_shuffle([], -1, seed=0)

    def test_zero_lateness_is_the_identity_on_sorted_input(self):
        events = make_events([("A", t) for t in range(10)])
        assert bounded_shuffle(events, 0, seed=7) == events

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("max_lateness", [1, 3, 10])
    def test_arrival_orders_are_never_late(self, seed, max_lateness):
        events = make_events([("A", t % 17) for t in range(60)])
        events.sort(key=lambda event: (event.timestamp, event.event_id))
        shuffled = bounded_shuffle(events, max_lateness, seed=seed)
        assert sorted(shuffled, key=lambda e: (e.timestamp, e.event_id)) == sorted(
            events, key=lambda e: (e.timestamp, e.event_id)
        )
        buffer = ReorderBuffer(max_lateness)
        assert all(buffer.push(event) for event in shuffled)

    def test_is_deterministic_per_seed(self):
        events = make_events([("A", t % 5) for t in range(30)])
        assert bounded_shuffle(events, 4, seed=1) == bounded_shuffle(events, 4, seed=1)
        assert bounded_shuffle(events, 4, seed=1) != bounded_shuffle(events, 4, seed=2)


class TestSessionDisorderGuard:
    """Satellite: regressed timestamps raise a clear engine-level error."""

    def test_instances_step_raises_disorder_error(self):
        engine = StreamingEngine(make_workload())
        session = engine.new_session()
        session.step(5, None)
        with pytest.raises(DisorderError, match="timestamp 3 arrived after batch at timestamp 5"):
            session.step(3, {(): make_events([("A", 3)])})

    def test_regression_after_empty_batch_is_caught(self):
        # The historical bug: an all-irrelevant batch did not advance the
        # cursor, so a later regressed batch silently seeded scopes for
        # windows that finalization had already flushed.
        engine = StreamingEngine(make_workload())
        session = engine.new_session()
        session.step(12, None)  # empty batch — but time has moved
        with pytest.raises(DisorderError, match="non-decreasing"):
            session.step(4, {(): make_events([("A", 4)])})

    def test_pane_step_raises_disorder_error(self):
        engine = StreamingEngine(make_workload(), panes=True)
        session = engine.new_session()
        assert isinstance(session, PaneEngineSession)
        session.step(9, {(): make_events([("A", 9)])})
        with pytest.raises(DisorderError, match="timestamp 2 arrived after batch at timestamp 9"):
            session.step(2, {(): make_events([("B", 2)])})

    def test_run_without_buffer_rejects_disordered_iterable(self):
        engine = StreamingEngine(make_workload())
        events = make_events([("A", 8), ("B", 9), ("A", 1), ("B", 2)])
        with pytest.raises(DisorderError):
            engine.run(iter(events))


class TestEngineDisorderConfig:
    def test_engine_validates_lateness_and_policy(self):
        with pytest.raises(ValueError, match="max_lateness"):
            StreamingEngine(make_workload(), max_lateness=-2)
        with pytest.raises(ValueError, match="late_policy"):
            StreamingEngine(make_workload(), max_lateness=3, late_policy="retry")

    def test_shuffled_run_matches_sorted_run(self):
        events = make_events(
            [("A", t % 13) for t in range(40)] + [("B", (t * 3) % 13) for t in range(40)]
        )
        sorted_report = StreamingEngine(make_workload()).run(EventStream(events))
        shuffled = bounded_shuffle(
            sorted(events, key=lambda e: (e.timestamp, e.event_id)), 4, seed=9
        )
        engine = StreamingEngine(make_workload(), max_lateness=4)
        report = engine.run(iter(shuffled))
        assert {r.key: r.value for r in report.results} == {r.key: r.value for r in sorted_report.results}
        assert report.metrics.events_late == 0
        assert report.metrics.events_dropped == 0

    def test_drop_policy_excludes_late_events_from_results(self):
        window = SlidingWindow(size=10, slide=10)
        events = make_events([("A", 1), ("B", 25), ("A", 2)])  # A@2 arrives behind
        engine = StreamingEngine(make_workload(window), max_lateness=3, late_policy="drop")
        report = engine.run(iter(events))
        oracle = StreamingEngine(make_workload(window)).run(EventStream(events[:2]))
        assert {r.key: r.value for r in report.results} == {r.key: r.value for r in oracle.results}
        assert report.metrics.events_late == 1
        assert report.metrics.events_dropped == 1

    def test_session_export_includes_reorder_only_when_configured(self):
        plain = StreamingEngine(make_workload()).new_session()
        assert "reorder" not in plain.export_state()
        session = StreamingEngine(make_workload(), max_lateness=5).new_session()
        assert "reorder" in session.export_state()

    def test_restore_rejects_reorder_presence_mismatch(self):
        disordered = StreamingEngine(make_workload(), max_lateness=5).new_session()
        state = disordered.export_state()
        plain = StreamingEngine(make_workload()).new_session()
        with pytest.raises(ValueError, match="max_lateness configuration"):
            plain.restore_state(state)
