"""Unit tests for the Sharon graph (Definition 10, Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core import SharingCandidate, SharonGraph, build_sharon_graph
from repro.queries import Pattern
from repro.utils import RateCatalog

from ..conftest import PAPER_BENEFITS, paper_benefit


def candidate(types, queries, benefit=1.0):
    return SharingCandidate(Pattern(types), tuple(queries), benefit)


class TestSharonGraphBasics:
    def test_add_vertices_and_edges(self):
        a = candidate(["A", "B"], ["q1", "q2"], 5.0)
        b = candidate(["B", "C"], ["q1", "q2"], 3.0)
        graph = SharonGraph([a, b])
        graph.add_edge(a, b)
        assert len(graph) == 2
        assert graph.edge_count == 1
        assert graph.has_edge(a, b) and graph.has_edge(b, a)
        assert graph.neighbours(a) == (b,)
        assert graph.degree(a) == 1
        assert not graph.is_conflict_free(a)

    def test_duplicate_vertex_rejected(self):
        a = candidate(["A", "B"], ["q1", "q2"])
        graph = SharonGraph([a])
        with pytest.raises(ValueError, match="already present"):
            graph.add_vertex(a)

    def test_self_edge_rejected(self):
        a = candidate(["A", "B"], ["q1", "q2"])
        graph = SharonGraph([a])
        with pytest.raises(ValueError, match="itself"):
            graph.add_edge(a, a)

    def test_edge_requires_known_vertices(self):
        a = candidate(["A", "B"], ["q1", "q2"])
        b = candidate(["B", "C"], ["q1", "q2"])
        graph = SharonGraph([a])
        with pytest.raises(KeyError):
            graph.add_edge(a, b)

    def test_remove_vertex_removes_its_edges(self):
        a = candidate(["A", "B"], ["q1", "q2"], 5.0)
        b = candidate(["B", "C"], ["q1", "q2"], 3.0)
        graph = SharonGraph([a, b])
        graph.add_edge(a, b)
        graph.remove_vertex(a)
        assert len(graph) == 1
        assert graph.degree(b) == 0
        assert graph.edge_count == 0

    def test_copy_is_independent(self):
        a = candidate(["A", "B"], ["q1", "q2"], 5.0)
        b = candidate(["B", "C"], ["q1", "q2"], 3.0)
        graph = SharonGraph([a, b])
        graph.add_edge(a, b)
        clone = graph.copy()
        clone.remove_vertex(a)
        assert len(graph) == 2 and len(clone) == 1
        assert graph.degree(b) == 1

    def test_edges_reported_once_in_canonical_order(self):
        a = candidate(["A", "B"], ["q1", "q2"], 5.0)
        b = candidate(["B", "C"], ["q1", "q2"], 3.0)
        c = candidate(["C", "D"], ["q1", "q2"], 2.0)
        graph = SharonGraph([a, b, c])
        graph.add_edge(b, a)
        graph.add_edge(c, b)
        assert graph.edges == ((a, b), (b, c))


class TestGraphScores:
    def test_total_weight_and_guarantee(self):
        a = candidate(["A", "B"], ["q1", "q2"], 6.0)
        b = candidate(["B", "C"], ["q1", "q2"], 4.0)
        c = candidate(["X", "Y"], ["q3", "q4"], 10.0)
        graph = SharonGraph([a, b, c])
        graph.add_edge(a, b)
        assert graph.total_weight() == 20.0
        # Equation 10: 6/2 + 4/2 + 10/1.
        assert graph.gwmin_guaranteed_weight() == pytest.approx(15.0)

    def test_max_score_with_excludes_neighbours(self):
        a = candidate(["A", "B"], ["q1", "q2"], 6.0)
        b = candidate(["B", "C"], ["q1", "q2"], 4.0)
        c = candidate(["X", "Y"], ["q3", "q4"], 10.0)
        graph = SharonGraph([a, b, c])
        graph.add_edge(a, b)
        assert graph.max_score_with(a) == 16.0  # a itself + c
        assert graph.max_score_with(c) == 20.0

    def test_is_independent_set(self):
        a = candidate(["A", "B"], ["q1", "q2"], 6.0)
        b = candidate(["B", "C"], ["q1", "q2"], 4.0)
        c = candidate(["X", "Y"], ["q3", "q4"], 10.0)
        graph = SharonGraph([a, b, c])
        graph.add_edge(a, b)
        assert graph.is_independent_set([a, c])
        assert not graph.is_independent_set([a, b])
        assert graph.is_independent_set([])


class TestBuildSharonGraph:
    def test_paper_graph_structure(self, paper_graph):
        """The graph of Figure 4: weights and degrees from the running example."""
        assert len(paper_graph) == 7
        assert paper_graph.edge_count == 10
        degrees = {}
        for vertex in paper_graph.vertices:
            assert vertex.benefit == PAPER_BENEFITS[vertex.pattern.event_types]
            degrees[vertex.pattern.event_types] = paper_graph.degree(vertex)
        assert degrees == {
            ("OakSt", "MainSt"): 5,
            ("ParkAve", "OakSt"): 3,
            ("ParkAve", "OakSt", "MainSt"): 4,
            ("MainSt", "WestSt"): 3,
            ("OakSt", "MainSt", "WestSt"): 4,
            ("MainSt", "StateSt"): 1,
            ("ElmSt", "ParkAve"): 0,
        }

    def test_paper_graph_guaranteed_weight(self, paper_graph):
        """Example 7: the GWMIN guarantee is about 38.57."""
        assert paper_graph.gwmin_guaranteed_weight() == pytest.approx(38.57, abs=0.01)

    def test_non_beneficial_candidates_excluded(self, traffic):
        # An override marking every candidate non-beneficial yields an empty graph.
        graph = build_sharon_graph(
            traffic, RateCatalog(default_rate=1.0), benefit_override=lambda c: 0.0
        )
        assert len(graph) == 0

    def test_benefit_model_weights_used_without_override(self, traffic):
        graph = build_sharon_graph(traffic, RateCatalog.uniform(traffic.event_types(), 1.0))
        assert all(vertex.benefit > 0 for vertex in graph.vertices)

    def test_override_prunes_selectively(self, traffic):
        keep = {("OakSt", "MainSt"), ("ElmSt", "ParkAve")}
        graph = build_sharon_graph(
            traffic,
            RateCatalog(default_rate=1.0),
            benefit_override=lambda c: 5.0 if c.pattern.event_types in keep else 0.0,
        )
        assert {v.pattern.event_types for v in graph.vertices} == keep
