"""Unit tests for the data set simulators and workload generators."""

from __future__ import annotations

import pytest

from repro.datasets import (
    ChainConfig,
    EcommerceConfig,
    LinearRoadConfig,
    TaxiConfig,
    chain_event_types,
    chain_stream,
    chain_workload,
    ecommerce_schema_registry,
    ecommerce_workload_scaled,
    generate_ecommerce_stream,
    generate_linear_road_stream,
    generate_taxi_stream,
    item_types,
    linear_road_schema_registry,
    segment_types,
    taxi_schema_registry,
    traffic_workload_scaled,
)
from repro.events import SlidingWindow


class TestTaxiDataset:
    def test_deterministic_and_schema_conform(self):
        config = TaxiConfig(duration_seconds=30, reports_per_second=5, num_vehicles=4, seed=1)
        one = generate_taxi_stream(config)
        two = generate_taxi_stream(config)
        assert [e.timestamp for e in one] == [e.timestamp for e in two]
        assert len(one) > 0
        registry = taxi_schema_registry(config)
        assert registry.validate_stream(one, strict=True) == len(one)

    def test_event_rate_close_to_configured(self):
        config = TaxiConfig(duration_seconds=100, reports_per_second=10, seed=2)
        stream = generate_taxi_stream(config)
        assert 800 <= len(stream) <= 1200

    def test_vehicles_produce_route_sequences(self):
        config = TaxiConfig(duration_seconds=120, reports_per_second=10, num_vehicles=3, seed=3)
        stream = generate_taxi_stream(config)
        # At least one vehicle visits two different streets consecutively
        # (otherwise no sequence query could ever match).
        by_vehicle: dict[int, list[str]] = {}
        for event in stream:
            by_vehicle.setdefault(event.attribute("vehicle"), []).append(event.event_type)
        assert any(len(set(streets)) > 1 for streets in by_vehicle.values())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TaxiConfig(num_vehicles=0)
        with pytest.raises(ValueError):
            TaxiConfig(route_length=(1, 3))


class TestLinearRoadDataset:
    def test_rate_ramps_up(self):
        config = LinearRoadConfig(
            duration_seconds=200, initial_rate=2.0, final_rate=30.0, seed=5
        )
        stream = generate_linear_road_stream(config)
        first_half = stream.between(0, 100)
        second_half = stream.between(100, 200)
        assert len(second_half) > len(first_half) * 2

    def test_schema_and_types(self):
        config = LinearRoadConfig(duration_seconds=30, seed=6)
        stream = generate_linear_road_stream(config)
        registry = linear_road_schema_registry(config)
        assert registry.validate_stream(stream, strict=True) == len(stream)
        assert set(stream.event_types()) <= set(segment_types(config))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LinearRoadConfig(num_segments=1)
        with pytest.raises(ValueError):
            LinearRoadConfig(initial_rate=0)


class TestEcommerceDataset:
    def test_named_items_first(self):
        types = item_types(EcommerceConfig(num_items=12))
        assert types[0] == "Laptop" and types[1] == "Case"
        assert len(types) == 12
        assert len(set(types)) == 12

    def test_stream_conforms_to_schema(self):
        config = EcommerceConfig(duration_seconds=20, purchases_per_second=5, seed=7)
        stream = generate_ecommerce_stream(config)
        registry = ecommerce_schema_registry(config)
        assert registry.validate_stream(stream, strict=True) == len(stream)

    def test_dependency_chains_present(self):
        config = EcommerceConfig(
            num_items=6, num_customers=3, duration_seconds=200, purchases_per_second=5,
            follow_probability=0.9, seed=8
        )
        stream = generate_ecommerce_stream(config)
        items = item_types(config)
        successor = {items[i]: items[(i + 1) % len(items)] for i in range(len(items))}
        by_customer: dict[int, list[str]] = {}
        for event in stream:
            by_customer.setdefault(event.attribute("customer"), []).append(event.event_type)
        consecutive_follow = sum(
            1
            for purchases in by_customer.values()
            for a, b in zip(purchases, purchases[1:])
            if successor[a] == b
        )
        total_pairs = sum(max(len(p) - 1, 0) for p in by_customer.values())
        assert consecutive_follow / total_pairs > 0.5


class TestChainGenerators:
    def test_chain_workload_structure(self):
        workload = chain_workload(10, 4, ChainConfig(num_event_types=12), seed=1)
        assert len(workload) == 10
        assert workload.is_uniform()
        assert all(len(q.pattern) == 4 for q in workload)
        types = set(chain_event_types(ChainConfig(num_event_types=12)))
        for query in workload:
            assert set(query.pattern.event_types) <= types

    def test_chain_workload_offset_pool_increases_sharing(self):
        from repro.core import detect_sharable_patterns

        spread = chain_workload(12, 5, ChainConfig(num_event_types=40), seed=3)
        pooled = chain_workload(
            12, 5, ChainConfig(num_event_types=40), seed=3, offset_pool_size=2
        )
        spread_sharable = detect_sharable_patterns(spread)
        pooled_sharable = detect_sharable_patterns(pooled)
        max_spread = max((len(qs) for qs in spread_sharable.values()), default=0)
        max_pooled = max((len(qs) for qs in pooled_sharable.values()), default=0)
        assert max_pooled >= max_spread

    def test_chain_workload_validation(self):
        with pytest.raises(ValueError):
            chain_workload(5, 1)
        with pytest.raises(ValueError):
            chain_workload(5, 50, ChainConfig(num_event_types=10))
        with pytest.raises(ValueError):
            chain_workload(5, 3, offset_pool_size=0)

    def test_chain_stream_matches_workload_types(self):
        config = ChainConfig(num_event_types=8)
        stream = chain_stream(duration=50, events_per_second=4, config=config, seed=2)
        assert set(stream.event_types()) <= set(chain_event_types(config))
        assert all("entity" in e for e in stream)

    def test_chain_stream_validation(self):
        with pytest.raises(ValueError):
            chain_stream(duration=0, events_per_second=1)
        with pytest.raises(ValueError):
            chain_stream(duration=10, events_per_second=0)


class TestScaledWorkloads:
    def test_traffic_workload_scaled_uses_segments(self):
        config = LinearRoadConfig(num_segments=15)
        workload = traffic_workload_scaled(8, pattern_length=5, config=config)
        assert len(workload) == 8
        for query in workload:
            assert set(query.pattern.event_types) <= set(segment_types(config))
            assert query.predicates.equivalence_attributes == ("car",)

    def test_ecommerce_workload_scaled_uses_items(self):
        config = EcommerceConfig(num_items=30)
        workload = ecommerce_workload_scaled(6, pattern_length=8, config=config)
        assert len(workload) == 6
        for query in workload:
            assert set(query.pattern.event_types) <= set(item_types(config))
            assert query.predicates.equivalence_attributes == ("customer",)

    def test_ecommerce_workload_rejects_too_long_patterns(self):
        with pytest.raises(ValueError, match="catalogue"):
            ecommerce_workload_scaled(4, pattern_length=80, config=EcommerceConfig(num_items=20))

    def test_paper_workloads_execute(self, traffic, purchases):
        window = SlidingWindow(size=600, slide=60)
        assert traffic[0].window == window
        assert purchases[0].window.size == 1200
