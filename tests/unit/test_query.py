"""Unit tests for the query model (repro.queries.query)."""

from __future__ import annotations

import pytest

from repro.events import Event, SlidingWindow
from repro.queries import AggregateSpec, Pattern, PredicateSet, Query


def make_query(**overrides):
    defaults = dict(
        pattern=Pattern(["A", "B", "C"]),
        window=SlidingWindow(size=10, slide=5),
        aggregate=AggregateSpec.count_star(),
        predicates=PredicateSet.same("vehicle"),
        group_by=("route",),
        name="q_test",
    )
    defaults.update(overrides)
    return Query(**defaults)


class TestQueryConstruction:
    def test_fields(self):
        query = make_query()
        assert query.event_types == ("A", "B", "C")
        assert query.length == 3
        assert query.name == "q_test"

    def test_pattern_coerced_from_sequence(self):
        query = Query(pattern=["A", "B"], window=SlidingWindow(4, 2), name="q")
        assert isinstance(query.pattern, Pattern)

    def test_auto_names_are_unique(self):
        first = Query(pattern=["A", "B"], window=SlidingWindow(4, 2))
        second = Query(pattern=["A", "B"], window=SlidingWindow(4, 2))
        assert first.name != second.name


class TestGrouping:
    def test_grouping_key_combines_group_by_and_equivalence(self):
        query = make_query()
        event = Event("A", 0, {"route": "r1", "vehicle": 9})
        assert query.grouping_key(event) == ("r1", 9)
        assert query.partition_attributes == ("route", "vehicle")

    def test_missing_attributes_become_none(self):
        query = make_query()
        assert query.grouping_key(Event("A", 0)) == (None, None)


class TestRelevanceAndContext:
    def test_accepts_checks_type_and_filters(self):
        query = make_query()
        assert query.accepts(Event("A", 0))
        assert not query.accepts(Event("Z", 0))

    def test_same_context_as(self):
        query = make_query()
        same = make_query(name="other", pattern=Pattern(["X", "Y"]))
        different_window = make_query(name="w", window=SlidingWindow(size=20, slide=5))
        assert query.same_context_as(same)
        assert not query.same_context_as(different_window)

    def test_with_pattern_preserves_context(self):
        query = make_query()
        derived = query.with_pattern(["X", "Y"], name="derived")
        assert derived.pattern == Pattern(["X", "Y"])
        assert derived.window == query.window
        assert derived.predicates == query.predicates
        assert derived.name == "derived"


class TestMatchesSequence:
    def test_valid_match(self):
        query = make_query(group_by=(), predicates=PredicateSet.same("vehicle"))
        events = [
            Event("A", 1, {"vehicle": 1}),
            Event("B", 2, {"vehicle": 1}),
            Event("C", 4, {"vehicle": 1}),
        ]
        assert query.matches_sequence(events)

    def test_wrong_length_or_types(self):
        query = make_query(group_by=(), predicates=PredicateSet())
        assert not query.matches_sequence([Event("A", 1), Event("B", 2)])
        assert not query.matches_sequence([Event("A", 1), Event("B", 2), Event("D", 3)])

    def test_timestamps_must_strictly_increase(self):
        query = make_query(group_by=(), predicates=PredicateSet())
        events = [Event("A", 1), Event("B", 1), Event("C", 2)]
        assert not query.matches_sequence(events)

    def test_equivalence_predicate_enforced(self):
        query = make_query(group_by=(), predicates=PredicateSet.same("vehicle"))
        events = [
            Event("A", 1, {"vehicle": 1}),
            Event("B", 2, {"vehicle": 2}),
            Event("C", 3, {"vehicle": 1}),
        ]
        assert not query.matches_sequence(events)
