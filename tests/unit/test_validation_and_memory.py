"""Unit tests for the small utility modules (validation guards, memory sizing)."""

from __future__ import annotations

import pytest

from repro.utils import (
    PeakMemoryTracker,
    deep_sizeof,
    require_in,
    require_non_empty,
    require_non_negative,
    require_positive,
)


class TestValidationGuards:
    def test_require_positive(self):
        assert require_positive(3, "x") == 3
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive(0, "x")

    def test_require_non_negative(self):
        assert require_non_negative(0, "x") == 0
        with pytest.raises(ValueError):
            require_non_negative(-1, "x")

    def test_require_non_empty(self):
        assert require_non_empty([1], "xs") == [1]
        with pytest.raises(ValueError, match="must not be empty"):
            require_non_empty([], "xs")

    def test_require_in(self):
        assert require_in("a", ("a", "b"), "letter") == "a"
        with pytest.raises(ValueError, match="letter"):
            require_in("z", ("a", "b"), "letter")


class TestDeepSizeof:
    def test_containers_grow_size(self):
        assert deep_sizeof([1, 2, 3]) > deep_sizeof([])
        assert deep_sizeof({"a": [1, 2, 3]}) > deep_sizeof({})

    def test_shared_objects_counted_once(self):
        shared = list(range(100))
        duplicated = [shared, shared]
        independent = [list(range(100)), list(range(100))]
        assert deep_sizeof(duplicated) < deep_sizeof(independent)

    def test_objects_with_dict_and_slots(self):
        class WithDict:
            def __init__(self):
                self.payload = list(range(50))

        class WithSlots:
            __slots__ = ("payload",)

            def __init__(self):
                self.payload = list(range(50))

        assert deep_sizeof(WithDict()) > deep_sizeof(object())
        assert deep_sizeof(WithSlots()) > deep_sizeof(object())

    def test_cycles_terminate(self):
        a = []
        a.append(a)
        assert deep_sizeof(a) > 0


class TestPeakMemoryTracker:
    def test_sample_keeps_maximum(self):
        tracker = PeakMemoryTracker()
        small = tracker.sample([1])
        large = tracker.sample(list(range(1000)))
        assert tracker.peak_bytes == max(small, large)
        assert tracker.samples == 2

    def test_record_external_measurement(self):
        tracker = PeakMemoryTracker()
        tracker.record(100)
        tracker.record(50)
        assert tracker.peak_bytes == 100
