"""Unit tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, builtin_workload, load_workload, main


WORKLOAD_FILE = """
# route popularity
name: r1
RETURN COUNT(*)
PATTERN SEQ(OakSt, MainSt)
WHERE [vehicle]
WITHIN 60 SLIDE 20

name: r2
RETURN COUNT(*)
PATTERN SEQ(OakSt, MainSt, WestSt)
WHERE [vehicle]
WITHIN 60 SLIDE 20

PATTERN SEQ(ElmSt, ParkAve) WHERE [vehicle] WITHIN 60 SLIDE 20
"""


class TestWorkloadLoading:
    def test_load_workload_file(self, tmp_path):
        path = tmp_path / "workload.sase"
        path.write_text(WORKLOAD_FILE, encoding="utf-8")
        workload = load_workload(path)
        assert len(workload) == 3
        assert workload["r1"].pattern.event_types == ("OakSt", "MainSt")
        assert workload["r2"].predicates.equivalence_attributes == ("vehicle",)
        # The unnamed query gets a positional name.
        assert workload[2].pattern.event_types == ("ElmSt", "ParkAve")

    def test_load_empty_file_fails(self, tmp_path):
        path = tmp_path / "empty.sase"
        path.write_text("# only a comment\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            load_workload(path)

    def test_builtin_workloads(self):
        assert len(builtin_workload("traffic")) == 7
        assert len(builtin_workload("purchase")) == 4
        with pytest.raises(SystemExit):
            builtin_workload("unknown")


class TestParser:
    def test_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize"])
        assert args.workload == "traffic"
        assert args.optimizer == "sharon"

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "--workload", "purchase", "--dataset", "ecommerce", "--executor", "aseq"]
        )
        assert args.executor == "aseq"
        assert args.dataset == "ecommerce"


class TestCommands:
    def test_optimize_command_prints_plan(self, capsys):
        exit_code = main(
            ["optimize", "--workload", "traffic", "--duration", "60", "--rate", "5", "--seed", "3"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Sharing plan" in captured.out
        assert "Candidates:" in captured.out

    def test_run_command_prints_metrics_and_results(self, capsys):
        exit_code = main(
            [
                "run",
                "--workload", "purchase",
                "--dataset", "ecommerce",
                "--duration", "90",
                "--rate", "5",
                "--executor", "sharon",
                "--limit", "3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Sharon:" in captured.out

    def test_run_command_sharded(self, capsys):
        exit_code = main(
            [
                "run",
                "--workload", "purchase",
                "--dataset", "ecommerce",
                "--duration", "60",
                "--rate", "5",
                "--executor", "sharon",
                "--shards", "2",
                "--limit", "3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Sharon:" in captured.out
        assert "sharded across 2 worker processes" in captured.out

    def test_run_command_rejects_shards_on_twostep_executors(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "--workload", "purchase",
                    "--dataset", "ecommerce",
                    "--duration", "30",
                    "--rate", "2",
                    "--executor", "flink",
                    "--shards", "2",
                ]
            )

    def test_run_command_with_workload_file(self, tmp_path, capsys):
        path = tmp_path / "workload.sase"
        path.write_text(WORKLOAD_FILE, encoding="utf-8")
        exit_code = main(
            [
                "run",
                "--workload-file", str(path),
                "--dataset", "taxi",
                "--duration", "90",
                "--rate", "6",
                "--executor", "aseq",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "A-Seq:" in captured.out

    def test_datasets_command_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "events.csv"
        exit_code = main(
            [
                "datasets",
                "--dataset", "linear-road",
                "--duration", "30",
                "--rate", "5",
                "--output", str(output),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert output.exists()
        header = output.read_text(encoding="utf-8").splitlines()[0]
        assert header.startswith("event_type,timestamp")
        assert "linear-road:" in captured.out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["datasets", "--dataset", "nasdaq"])

    def test_bench_command_writes_json(self, tmp_path, capsys, monkeypatch):
        import json

        from repro.experiments import BenchRecord, ReplayBenchRecord, ShardedGroupsRecord

        # Substitute canned measurements so the CLI test stays fast and
        # deterministic; the real benchmarks are exercised by
        # benchmarks/test_engine_throughput.py.
        record = BenchRecord(
            scenario="scale-1x",
            executor="Sharon",
            events=100,
            elapsed_seconds=0.01,
            events_per_sec=10_000.0,
            peak_mb=1.5,
        )
        sharded = ShardedGroupsRecord(
            scenario="many-group",
            events=100,
            groups=8,
            shards=4,
            strategy="greedy",
            cpu_count=4,
            groups_per_shard=(2, 2, 2, 2),
            shard_skew=1.0,
            sharded_events_per_sec=20_000.0,
            unsharded_events_per_sec=10_000.0,
        )
        replay = ReplayBenchRecord(
            scenario="dense-sharing-replay",
            events=100,
            log_bytes=8_000,
            record_events_per_sec=50_000.0,
            replay_events_per_sec=9_000.0,
            live_events_per_sec=10_000.0,
            state_hash="ab" * 32,
            replays=3,
            replays_identical=True,
            matches_live=True,
        )
        monkeypatch.setattr("repro.experiments.run_engine_benchmark", lambda: [record])
        monkeypatch.setattr("repro.experiments.run_sharding_benchmark", lambda: sharded)
        monkeypatch.setattr("repro.experiments.run_replay_benchmark", lambda: replay)
        output = tmp_path / "BENCH_engine.json"
        exit_code = main(["bench", "--output", str(output)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Engine throughput benchmark" in captured.out
        assert "Sharded groups" in captured.out
        assert "Deterministic replay" in captured.out
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["benchmark"] == "engine-throughput"
        assert payload["results"][0]["scenario"] == "scale-1x"
        assert payload["sharded_groups"]["shards"] == 4
        assert payload["sharded_groups"]["groups_per_shard"] == [2, 2, 2, 2]
        assert payload["replay"]["replays_identical"] is True
        assert payload["replay"]["matches_live"] is True


class TestReplayCommands:
    def test_record_then_replay_round_trip(self, tmp_path, capsys):
        log_path = tmp_path / "events.jsonl"
        exit_code = main(
            [
                "record",
                "--dataset", "taxi",
                "--duration", "40",
                "--rate", "4",
                "--output", str(log_path),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Recorded 160 events" in captured.out
        assert log_path.is_file()

        exit_code = main(
            ["replay", "--log", str(log_path), "--workload", "traffic", "--repeat", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "state hash:" in captured.out
        assert "2 replays produced byte-identical final state" in captured.out

    def test_replay_checkpoint_resume_and_trace(self, tmp_path, capsys):
        log_path = tmp_path / "events.jsonl"
        main(["record", "--duration", "40", "--rate", "4", "--output", str(log_path)])
        capsys.readouterr()

        checkpoint_dir = tmp_path / "cks"
        trace_path = tmp_path / "trace.jsonl"
        exit_code = main(
            [
                "replay",
                "--log", str(log_path),
                "--workload", "traffic",
                "--checkpoint-every", "10",
                "--checkpoint-dir", str(checkpoint_dir),
                "--trace", str(trace_path),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "checkpoints" in captured.out
        full_hash = [
            line for line in captured.out.splitlines() if line.startswith("state hash:")
        ][0]
        checkpoints = sorted(checkpoint_dir.glob("checkpoint-*.json"))
        assert checkpoints and trace_path.is_file()

        exit_code = main(
            [
                "replay",
                "--log", str(log_path),
                "--workload", "traffic",
                "--resume", str(checkpoints[0]),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "resumed from" in captured.out
        assert full_hash in captured.out  # resume reaches the full-replay state

    def test_replay_rejects_bad_arguments(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        main(["record", "--duration", "10", "--rate", "2", "--output", str(log_path)])
        with pytest.raises(SystemExit):
            main(["replay", "--log", str(log_path), "--repeat", "0"])
        with pytest.raises(SystemExit):
            main(
                [
                    "replay",
                    "--log", str(log_path),
                    "--repeat", "2",
                    "--resume", str(tmp_path / "nope.json"),
                ]
            )

    def test_replay_applies_a_churn_script(self, tmp_path, capsys):
        log_path = tmp_path / "events.jsonl"
        main(["record", "--duration", "60", "--rate", "4", "--output", str(log_path)])
        capsys.readouterr()

        script = tmp_path / "churn.json"
        script.write_text(
            '[{"op": "attach", "at": 10, "name": "joiner",'
            ' "query": "RETURN COUNT(*) PATTERN SEQ(MainSt, StateSt)'
            ' WHERE [vehicle] WITHIN 600 SLIDE 60"},'
            ' {"op": "detach", "at": 30, "name": "q1"}]',
            encoding="utf-8",
        )
        exit_code = main(
            [
                "replay",
                "--log", str(log_path),
                "--workload", "traffic",
                "--churn-script", str(script),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert f"applied churn script {script} (2 ops)" in captured.out
        assert "state hash:" in captured.out

    def test_replay_rejects_a_malformed_churn_script(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        main(["record", "--duration", "60", "--rate", "4", "--output", str(log_path)])
        script = tmp_path / "churn.json"
        script.write_text('[{"op": "migrate", "at": 3, "name": "q1"}]', encoding="utf-8")
        with pytest.raises(ValueError, match="unknown 'op'"):
            main(
                [
                    "replay",
                    "--log", str(log_path),
                    "--workload", "traffic",
                    "--churn-script", str(script),
                ]
            )

    def test_run_record_and_checkpoint_every(self, tmp_path, capsys):
        log_path = tmp_path / "run.jsonl"
        checkpoint_dir = tmp_path / "cks"
        exit_code = main(
            [
                "run",
                "--workload", "traffic",
                "--duration", "40",
                "--rate", "4",
                "--record", str(log_path),
                "--checkpoint-every", "15",
                "--checkpoint-dir", str(checkpoint_dir),
                "--limit", "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert f"Recorded 160 events to {log_path}" in captured.out
        assert "state hash:" in captured.out
        assert list(checkpoint_dir.glob("checkpoint-*.json"))

    def test_run_checkpoint_every_requires_sharon_in_process(self, tmp_path):
        with pytest.raises(SystemExit, match="checkpoint-every"):
            main(
                [
                    "run",
                    "--workload", "traffic",
                    "--executor", "aseq",
                    "--checkpoint-every", "5",
                ]
            )
        with pytest.raises(SystemExit, match="checkpoint-every"):
            main(
                [
                    "run",
                    "--workload", "traffic",
                    "--shards", "2",
                    "--checkpoint-every", "5",
                ]
            )
