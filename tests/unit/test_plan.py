"""Unit tests for sharing plans and their executor-facing decomposition."""

from __future__ import annotations

import pytest

from repro.core import ConflictDetector, SharingCandidate, SharingPlan
from repro.events import SlidingWindow
from repro.queries import Pattern, Query, Workload


def candidate(types, queries, benefit=1.0):
    return SharingCandidate(Pattern(types), tuple(queries), benefit)


def make_workload():
    window = SlidingWindow(size=10, slide=5)
    patterns = {
        "q1": ("A", "B", "C", "D"),
        "q2": ("B", "C", "E"),
        "q3": ("X", "B", "C"),
    }
    return Workload(
        [Query(pattern=Pattern(p), window=window, name=n) for n, p in patterns.items()]
    )


class TestSharingPlanBasics:
    def test_deduplicates_and_sorts(self):
        a = candidate(["A", "B"], ["q1", "q2"], 2.0)
        plan = SharingPlan([a, a])
        assert len(plan) == 1
        assert a in plan

    def test_score_is_sum_of_benefits(self):
        plan = SharingPlan(
            [candidate(["A", "B"], ["q1", "q2"], 2.0), candidate(["C", "D"], ["q3", "q4"], 5.0)]
        )
        assert plan.score == 7.0
        assert SharingPlan().score == 0.0
        assert SharingPlan().is_empty

    def test_equality_and_hash_are_structural(self):
        a = candidate(["A", "B"], ["q1", "q2"], 2.0)
        b = candidate(["C", "D"], ["q3", "q4"], 5.0)
        assert SharingPlan([a, b]) == SharingPlan([b, a])
        assert hash(SharingPlan([a, b])) == hash(SharingPlan([b, a]))

    def test_union_and_add(self):
        a = candidate(["A", "B"], ["q1", "q2"], 2.0)
        b = candidate(["C", "D"], ["q3", "q4"], 5.0)
        assert len(SharingPlan([a]).union(SharingPlan([b]))) == 2
        assert len(SharingPlan([a]).add(b)) == 2

    def test_candidates_for_query(self):
        a = candidate(["A", "B"], ["q1", "q2"], 2.0)
        b = candidate(["C", "D"], ["q3", "q4"], 5.0)
        plan = SharingPlan([a, b])
        assert plan.candidates_for_query("q1") == (a,)
        assert plan.candidates_for_query("q9") == ()


class TestPlanValidity:
    def test_validity_via_detector(self):
        workload = make_workload()
        detector = ConflictDetector(workload)
        bc = candidate(["B", "C"], ["q1", "q2", "q3"], 3.0)
        cd = candidate(["C", "D"], ["q1", "q2"], 2.0)  # overlaps (B, C) in q1
        ab = candidate(["A", "B"], ["q1", "q3"], 2.0)
        assert SharingPlan([bc]).is_valid(detector)
        assert not SharingPlan([bc, cd]).is_valid(detector)
        assert not SharingPlan([bc, ab]).is_valid(detector)
        assert SharingPlan([cd]).is_valid(detector)

    def test_example_5_plan_scores(self, paper_graph):
        """Example 5: {p2, p4} is valid with score 24; {p1} scores 25."""
        by_pattern = {v.pattern.event_types: v for v in paper_graph.vertices}
        p2_p4 = SharingPlan(
            [by_pattern[("ParkAve", "OakSt")], by_pattern[("MainSt", "WestSt")]]
        )
        p1 = SharingPlan([by_pattern[("OakSt", "MainSt")]])
        assert p2_p4.score == pytest.approx(24.0)
        assert p1.score == pytest.approx(25.0)


class TestDecomposition:
    def test_decompose_splits_into_segments(self):
        workload = make_workload()
        bc = candidate(["B", "C"], ["q1", "q2", "q3"], 3.0)
        plan = SharingPlan([bc])
        decompositions = plan.decompose(workload)

        q1 = decompositions["q1"]
        assert [seg.pattern.event_types for seg in q1.segments] == [("A",), ("B", "C"), ("D",)]
        assert [seg.is_shared for seg in q1.segments] == [False, True, False]
        assert q1.uses_sharing
        assert q1.shared_segments[0].shared_with == ("q1", "q2", "q3")

        q2 = decompositions["q2"]
        assert [seg.pattern.event_types for seg in q2.segments] == [("B", "C"), ("E",)]

        q3 = decompositions["q3"]
        assert [seg.pattern.event_types for seg in q3.segments] == [("X",), ("B", "C")]

    def test_empty_plan_keeps_whole_pattern(self):
        workload = make_workload()
        decompositions = SharingPlan().decompose(workload)
        for query in workload:
            decomposition = decompositions[query.name]
            assert len(decomposition.segments) == 1
            assert decomposition.segments[0].pattern == query.pattern
            assert not decomposition.uses_sharing

    def test_multiple_shared_segments_in_one_query(self):
        window = SlidingWindow(size=10, slide=5)
        workload = Workload(
            [
                Query(pattern=Pattern(["A", "B", "C", "D"]), window=window, name="q1"),
                Query(pattern=Pattern(["A", "B", "X"]), window=window, name="q2"),
                Query(pattern=Pattern(["Y", "C", "D"]), window=window, name="q3"),
            ]
        )
        plan = SharingPlan(
            [candidate(["A", "B"], ["q1", "q2"], 1.0), candidate(["C", "D"], ["q1", "q3"], 1.0)]
        )
        decomposition = plan.decompose(workload)["q1"]
        assert [seg.pattern.event_types for seg in decomposition.segments] == [
            ("A", "B"),
            ("C", "D"),
        ]
        assert all(seg.is_shared for seg in decomposition.segments)

    def test_overlapping_shared_segments_rejected(self):
        workload = make_workload()
        plan = SharingPlan(
            [
                candidate(["B", "C"], ["q1", "q2"], 1.0),
                candidate(["C", "D"], ["q1", "q2"], 1.0),
            ]
        )
        with pytest.raises(ValueError, match="overlap"):
            plan.decompose(workload)

    def test_candidate_absent_from_query_rejected(self):
        workload = make_workload()
        plan = SharingPlan([candidate(["Z", "W"], ["q1", "q2"], 1.0)])
        with pytest.raises(ValueError, match="does not occur"):
            plan.decompose(workload)
