"""Unit tests for engine checkpointing (export/restore across state layers)
and the checkpoint file format (repro.replay.checkpoint)."""

from __future__ import annotations

import pytest

from repro.core import SharingCandidate, SharingPlan
from repro.events import EventStream, SlidingWindow, WindowCursor
from repro.executor import StreamingEngine
from repro.executor.kernels import numpy_available
from repro.executor.metrics import MetricsCollector
from repro.executor.prefix_agg import _I64_MAX, _CountColumns
from repro.queries import AggregateSpec, AggregateState, Pattern, PredicateSet, Query, Workload
from repro.replay import (
    Checkpoint,
    CheckpointError,
    canonical_json,
    load_checkpoint,
    save_checkpoint,
    state_hash,
    workload_fingerprint,
)

from ..conftest import make_events


def make_workload(window=None, predicates=None):
    window = window or SlidingWindow(size=10, slide=5)
    predicates = predicates if predicates is not None else PredicateSet()
    queries = [
        Query(pattern=Pattern(["A", "B"]), window=window, predicates=predicates, name="q1"),
        Query(pattern=Pattern(["A", "B", "C"]), window=window, predicates=predicates, name="q2"),
    ]
    return Workload(queries)


def make_plan():
    return SharingPlan([SharingCandidate(Pattern(["A", "B"]), ("q1", "q2"), 1.0)])


def make_stream():
    return EventStream(
        make_events(
            [
                ("A", 1),
                ("B", 2),
                ("A", 4),
                ("C", 4),
                ("B", 6),
                ("A", 8),
                ("C", 9),
                ("B", 11),
                ("C", 12),
                ("A", 14),
                ("B", 16),
                ("C", 17),
            ]
        ),
        name="ck",
    )


class TestAggregateStateSnapshot:
    def test_round_trip(self):
        state = AggregateState(count=3, target_count=2, total=7.5, minimum=1.0, maximum=4.0)
        assert AggregateState.from_tuple(state.as_tuple()) == state

    def test_zero_restores_the_singleton(self):
        zero = AggregateState.zero()
        assert AggregateState.from_tuple(zero.as_tuple()) is zero


class TestCountColumnsSnapshot:
    def test_round_trip_compact(self):
        columns = _CountColumns(3)
        columns.append_cohort(AggregateState(count=1))
        columns.append_cohort(AggregateState(count=5))
        dump = columns.export_columns()
        restored = _CountColumns(3)
        restored.restore_columns(dump)
        assert restored.export_columns() == dump
        assert not isinstance(restored.columns[0], list)  # stayed array('q')

    def test_round_trip_preserves_bigint_promotion(self):
        """Counts past 2**63-1 must survive export/restore exactly."""
        columns = _CountColumns(2)
        columns.append_cohort(AggregateState(count=_I64_MAX + 12345))
        dump = columns.export_columns()
        assert dump[0][0] == _I64_MAX + 12345
        restored = _CountColumns(2)
        restored.restore_columns(dump)
        assert isinstance(restored.columns[0], list)  # promoted storage restored
        assert restored.columns[0][0] == _I64_MAX + 12345
        assert restored.export_columns() == dump


class TestWindowCursorSnapshot:
    def test_round_trip_mid_stream(self):
        window = SlidingWindow(size=10, slide=5)
        cursor = WindowCursor(window)
        live = list(cursor.advance(12))
        resumed = WindowCursor(window)
        resumed.restore_state(cursor.export_state())
        assert resumed.export_state() == cursor.export_state()
        assert list(resumed.advance(12)) == live
        # Advancing both past the restore point stays in lockstep.
        assert list(resumed.advance(17)) == list(cursor.advance(17))

    def test_fresh_cursor_round_trips(self):
        window = SlidingWindow(size=10, slide=5)
        cursor = WindowCursor(window)
        resumed = WindowCursor(window)
        resumed.restore_state(cursor.export_state())
        assert resumed.export_state() == cursor.export_state()


class TestMetricsSnapshot:
    def test_counters_round_trip(self):
        collector = MetricsCollector("m")
        collector.total_events = 10
        collector.relevant_events = 7
        collector.results_emitted = 3
        counters = collector.export_counters()
        restored = MetricsCollector("m")
        restored.restore_counters(counters)
        assert restored.export_counters() == counters

    def test_counters_exclude_environment_observations(self):
        counters = MetricsCollector("m").export_counters()
        assert "elapsed" not in canonical_json(counters)
        assert "memory" not in canonical_json(counters)


class TestSegmentStateGuards:
    def test_private_segment_refuses_mid_batch_export(self):
        from repro.executor.prefix_agg import PrivateSegmentState

        state = PrivateSegmentState(Pattern(["A", "B"]), AggregateSpec.count_star())
        state._staged = [None, None]  # simulate a staged (uncommitted) batch
        with pytest.raises(RuntimeError, match="between batches"):
            state.export_state()


@pytest.mark.parametrize("panes", [False, True], ids=["instances", "panes"])
@pytest.mark.parametrize("columnar", [False, True], ids=["scalar", "columnar"])
class TestSessionSnapshot:
    def _engine(self, panes, columnar):
        return StreamingEngine(
            make_workload(), plan=make_plan(), panes=panes, columnar=columnar
        )

    def test_mid_run_snapshot_resumes_to_full_run_state(self, panes, columnar):
        stream = make_stream()
        full_engine = self._engine(panes, columnar)
        full_session = full_engine.new_session()
        full_report = full_engine.run(stream, session=full_session)

        split_engine = self._engine(panes, columnar)
        first = split_engine.new_session()
        consumed = 0
        snapshot = None
        for timestamp, batch, groups in split_engine.routed_batches(iter(stream), first.collector):
            first.step(timestamp, groups)
            consumed += len(batch)
            if snapshot is None and consumed >= len(stream) // 2:
                snapshot = first.export_state()
                break

        resume_engine = self._engine(panes, columnar)
        resumed = resume_engine.new_session()
        resumed.restore_state(snapshot)
        tail = iter(list(stream)[consumed:])
        for timestamp, batch, groups in resume_engine.routed_batches(tail, resumed.collector):
            resumed.step(timestamp, groups)
        resumed_report = resumed.finish()

        assert state_hash(resumed) == state_hash(full_session)
        assert full_report.results.matches(resumed_report.results)

    def test_snapshot_is_json_safe_and_mode_tagged(self, panes, columnar):
        engine = self._engine(panes, columnar)
        session = engine.new_session()
        engine.run(make_stream(), session=session)
        snapshot = session.export_state()
        assert snapshot["mode"] == ("panes" if panes else "instances")
        canonical_json(snapshot)  # raises if anything non-JSON leaked in

    def test_restore_rejects_wrong_mode(self, panes, columnar):
        engine = self._engine(panes, columnar)
        session = engine.new_session()
        engine.run(make_stream(), session=session)
        snapshot = session.export_state()
        other = self._engine(not panes, columnar).new_session()
        with pytest.raises(ValueError, match="mode"):
            other.restore_state(snapshot)


class TestWorkloadFingerprint:
    def test_stable_for_equal_workloads(self):
        assert workload_fingerprint(make_workload(), make_plan()) == workload_fingerprint(
            make_workload(), make_plan()
        )

    def test_sensitive_to_window(self):
        assert workload_fingerprint(make_workload()) != workload_fingerprint(
            make_workload(window=SlidingWindow(size=20, slide=5))
        )

    def test_sensitive_to_plan(self):
        assert workload_fingerprint(make_workload(), make_plan()) != workload_fingerprint(
            make_workload(), SharingPlan()
        )

    def test_sensitive_to_predicates(self):
        assert workload_fingerprint(make_workload()) != workload_fingerprint(
            make_workload(predicates=PredicateSet.same("vehicle"))
        )


class TestCheckpointFile:
    def _checkpoint(self):
        return Checkpoint(
            events_consumed=6,
            last_timestamp=8,
            workload_fingerprint=workload_fingerprint(make_workload(), make_plan()),
            engine_config={"mode": "instances", "columnar": True, "compaction": True},
            engine_state={"mode": "instances", "results": []},
        )

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(self._checkpoint(), path)
        loaded = load_checkpoint(path)
        assert loaded == self._checkpoint()

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}\n', encoding="utf-8")
        with pytest.raises(CheckpointError, match="repro-checkpoint"):
            load_checkpoint(path)

    def test_load_rejects_version_skew(self, tmp_path):
        path = tmp_path / "future.json"
        payload = self._checkpoint().as_payload()
        payload["version"] = 99
        import json

        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(CheckpointError, match="JSON"):
            load_checkpoint(path)

    def test_validate_rejects_fingerprint_mismatch(self):
        checkpoint = self._checkpoint()
        other = workload_fingerprint(make_workload(window=SlidingWindow(20, 10)))
        with pytest.raises(CheckpointError, match="different workload"):
            checkpoint.validate_against(other, checkpoint.engine_config)

    def test_validate_rejects_config_mismatch(self):
        checkpoint = self._checkpoint()
        with pytest.raises(CheckpointError, match="config"):
            checkpoint.validate_against(
                checkpoint.workload_fingerprint,
                {"mode": "panes", "columnar": True, "compaction": True},
            )


@pytest.mark.skipif(
    not numpy_available(), reason="the optional numpy dependency is not installed"
)
@pytest.mark.parametrize("panes", [False, True], ids=["instances", "panes"])
@pytest.mark.parametrize("columnar", [False, True], ids=["scalar", "columnar"])
class TestCrossBackendSnapshots:
    """Checkpoints are backend-agnostic: byte-identical and cross-restorable.

    The kernel backends export canonical state (plain ints/floats/None), so a
    snapshot taken under either backend must serialise to the same bytes and
    restore into an engine running the *other* backend without changing the
    final state hash — the contract that keeps ``backend`` out of the
    checkpoint's ``engine_config``.
    """

    def _workload(self):
        window = SlidingWindow(size=10, slide=5)
        queries = [
            Query(pattern=Pattern(["A", "B"]), window=window, name="q1"),
            Query(
                pattern=Pattern(["A", "B", "C"]),
                window=window,
                aggregate=AggregateSpec.sum("B", "value"),
                name="q2",
            ),
        ]
        return Workload(queries)

    def _stream(self):
        rows = [
            ("A", 1, {"value": 1.5}),
            ("B", 2, {"value": -2.25}),
            ("A", 4, {"value": 0.0}),
            ("C", 4, {"value": 7.0}),
            ("B", 6, {"value": 3.5}),
            ("A", 8, {"value": -0.5}),
            ("C", 9, {"value": 2.0}),
            ("B", 11, {"value": 4.75}),
            ("C", 12, {"value": 1.0}),
            ("A", 14, {"value": 6.5}),
            ("B", 16, {"value": -1.0}),
            ("C", 17, {"value": 0.25}),
        ]
        return EventStream(make_events(rows), name="ck-backend")

    def _engine(self, backend, panes, columnar):
        return StreamingEngine(
            self._workload(), plan=make_plan(), panes=panes, columnar=columnar, backend=backend
        )

    def _snapshot_at_midpoint(self, backend, panes, columnar):
        stream = self._stream()
        engine = self._engine(backend, panes, columnar)
        session = engine.new_session()
        consumed = 0
        for timestamp, batch, groups in engine.routed_batches(iter(stream), session.collector):
            session.step(timestamp, groups)
            consumed += len(batch)
            if consumed >= len(stream) // 2:
                break
        return session.export_state(), consumed

    def test_snapshots_are_byte_identical_across_backends(self, panes, columnar):
        python_snapshot, python_consumed = self._snapshot_at_midpoint("python", panes, columnar)
        numpy_snapshot, numpy_consumed = self._snapshot_at_midpoint("numpy", panes, columnar)
        assert python_consumed == numpy_consumed
        assert canonical_json(python_snapshot) == canonical_json(numpy_snapshot)

    @pytest.mark.parametrize(
        "writer,reader",
        [("python", "numpy"), ("numpy", "python")],
        ids=["python->numpy", "numpy->python"],
    )
    def test_snapshot_cross_restores_to_full_run_state(self, panes, columnar, writer, reader):
        stream = self._stream()
        full_engine = self._engine(reader, panes, columnar)
        full_session = full_engine.new_session()
        full_report = full_engine.run(stream, session=full_session)

        snapshot, consumed = self._snapshot_at_midpoint(writer, panes, columnar)
        resume_engine = self._engine(reader, panes, columnar)
        resumed = resume_engine.new_session()
        resumed.restore_state(snapshot)
        tail = iter(list(stream)[consumed:])
        for timestamp, batch, groups in resume_engine.routed_batches(tail, resumed.collector):
            resumed.step(timestamp, groups)
        resumed_report = resumed.finish()

        assert state_hash(resumed) == state_hash(full_session)
        assert full_report.results.matches(resumed_report.results)
