"""Unit tests for workloads (repro.queries.workload)."""

from __future__ import annotations

import pytest

from repro.events import SlidingWindow
from repro.queries import Pattern, PredicateSet, Query, Workload


def query(types, name, window=None, predicates=None):
    return Query(
        pattern=Pattern(types),
        window=window or SlidingWindow(size=10, slide=5),
        predicates=predicates or PredicateSet(),
        name=name,
    )


class TestWorkloadContainer:
    def test_add_iterate_and_lookup(self):
        workload = Workload([query(["A", "B"], "q1"), query(["B", "C"], "q2")])
        assert len(workload) == 2
        assert workload["q1"].pattern == Pattern(["A", "B"])
        assert workload[1].name == "q2"
        assert "q1" in workload
        assert workload.query_names() == ("q1", "q2")
        assert workload.index_of("q2") == 1
        with pytest.raises(KeyError):
            workload.index_of("missing")

    def test_duplicate_names_rejected(self):
        workload = Workload([query(["A", "B"], "q1")])
        with pytest.raises(ValueError, match="duplicate"):
            workload.add(query(["B", "C"], "q1"))

    def test_subset_preserves_order(self):
        workload = Workload(
            [query(["A", "B"], "q1"), query(["B", "C"], "q2"), query(["C", "D"], "q3")]
        )
        subset = workload.subset(["q3", "q1"])
        assert subset.query_names() == ("q1", "q3")


class TestWorkloadStructure:
    def test_event_types_and_patterns(self):
        workload = Workload([query(["A", "B"], "q1"), query(["B", "C"], "q2")])
        assert workload.event_types() == ("A", "B", "C")
        assert workload.max_pattern_length() == 2
        assert len(workload.patterns()) == 2

    def test_queries_containing(self):
        workload = Workload(
            [query(["A", "B", "C"], "q1"), query(["B", "C", "D"], "q2"), query(["A", "D"], "q3")]
        )
        containing = workload.queries_containing(Pattern(["B", "C"]))
        assert tuple(q.name for q in containing) == ("q1", "q2")

    def test_is_uniform_true_for_matching_contexts(self):
        workload = Workload([query(["A", "B"], "q1"), query(["B", "C"], "q2")])
        assert workload.is_uniform()

    def test_is_uniform_false_for_different_windows(self):
        workload = Workload(
            [
                query(["A", "B"], "q1"),
                query(["B", "C"], "q2", window=SlidingWindow(size=99, slide=9)),
            ]
        )
        assert not workload.is_uniform()

    def test_is_uniform_false_for_different_predicates(self):
        workload = Workload(
            [
                query(["A", "B"], "q1"),
                query(["B", "C"], "q2", predicates=PredicateSet.same("vehicle")),
            ]
        )
        assert not workload.is_uniform()

    def test_empty_workload(self):
        workload = Workload()
        assert len(workload) == 0
        assert workload.is_uniform()
        assert workload.max_pattern_length() == 0


class TestPaperWorkloads:
    def test_traffic_workload_matches_table_1_structure(self, traffic):
        assert len(traffic) == 7
        assert traffic.is_uniform()
        # Pattern p1 = (OakSt, MainSt) appears in q1-q4 (Table 1).
        containing = traffic.queries_containing(Pattern(["OakSt", "MainSt"]))
        assert tuple(q.name for q in containing) == ("q1", "q2", "q3", "q4")

    def test_purchase_workload_shares_laptop_case(self, purchases):
        assert len(purchases) == 4
        containing = purchases.queries_containing(Pattern(["Laptop", "Case"]))
        assert len(containing) == 4
