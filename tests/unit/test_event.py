"""Unit tests for the event model (repro.events.event)."""

from __future__ import annotations

import pytest

from repro.events import Event


class TestEventConstruction:
    def test_basic_fields(self):
        event = Event("MainSt", 5, {"vehicle": 3}, event_id=9)
        assert event.event_type == "MainSt"
        assert event.timestamp == 5
        assert event.attributes == {"vehicle": 3}
        assert event.event_id == 9

    def test_paper_aliases(self):
        event = Event("OakSt", 12)
        assert event.type == "OakSt"
        assert event.time == 12

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Event("A", -1)

    def test_empty_type_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Event("", 0)

    def test_default_attributes_empty(self):
        assert Event("A", 0).attributes == {}

    def test_events_are_hashable_and_equal_by_value(self):
        a = Event("A", 1, {"x": 1}, 0)
        b = Event("A", 1, {"x": 1}, 0)
        assert a == b


class TestEventAttributes:
    def test_attribute_lookup_with_default(self):
        event = Event("A", 0, {"speed": 42.0})
        assert event.attribute("speed") == 42.0
        assert event.attribute("missing") is None
        assert event.attribute("missing", -1) == -1

    def test_getitem_and_contains(self):
        event = Event("A", 0, {"speed": 42.0})
        assert event["speed"] == 42.0
        assert "speed" in event
        assert "missing" not in event

    def test_getitem_missing_raises_with_known_attributes(self):
        event = Event("A", 0, {"speed": 42.0})
        with pytest.raises(KeyError, match="speed"):
            event["missing"]

    def test_with_attributes_returns_new_event(self):
        event = Event("A", 3, {"x": 1}, 7)
        updated = event.with_attributes(x=2, y=3)
        assert updated.attributes == {"x": 2, "y": 3}
        assert updated.timestamp == 3
        assert updated.event_id == 7
        assert event.attributes == {"x": 1}
