"""Unit tests for event sequence patterns (repro.queries.pattern)."""

from __future__ import annotations

import pytest

from repro.queries import Pattern


class TestPatternConstruction:
    def test_basic_properties(self):
        pattern = Pattern(["OakSt", "MainSt", "WestSt"])
        assert len(pattern) == 3
        assert pattern.length == 3
        assert pattern.start_type == "OakSt"
        assert pattern.end_type == "WestSt"
        assert pattern.mid_types == ("MainSt",)
        assert list(pattern) == ["OakSt", "MainSt", "WestSt"]

    def test_rejects_empty_pattern(self):
        with pytest.raises(ValueError):
            Pattern([])

    def test_rejects_non_string_types(self):
        with pytest.raises(ValueError):
            Pattern(["A", 3])

    def test_equality_and_hash(self):
        assert Pattern(["A", "B"]) == Pattern(["A", "B"])
        assert Pattern(["A", "B"]) != Pattern(["B", "A"])
        assert hash(Pattern(["A", "B"])) == hash(Pattern(["A", "B"]))
        assert Pattern(["A", "B"]) == ("A", "B")

    def test_empty_placeholder(self):
        empty = Pattern.empty()
        assert len(empty) == 0

    def test_repeated_types_detection(self):
        assert Pattern(["A", "B", "A"]).has_repeated_types()
        assert not Pattern(["A", "B"]).has_repeated_types()
        assert Pattern(["A", "B", "A"]).positions_of("A") == (0, 2)


class TestSubpatterns:
    def test_subpattern_bounds(self):
        pattern = Pattern(["A", "B", "C", "D"])
        assert pattern.subpattern(1, 3) == Pattern(["B", "C"])
        with pytest.raises(IndexError):
            pattern.subpattern(2, 2)
        with pytest.raises(IndexError):
            pattern.subpattern(0, 5)

    def test_contiguous_subpatterns_enumeration(self):
        pattern = Pattern(["A", "B", "C"])
        subpatterns = set(pattern.contiguous_subpatterns(min_length=2))
        assert subpatterns == {Pattern(["A", "B"]), Pattern(["B", "C"]), Pattern(["A", "B", "C"])}

    def test_contiguous_subpattern_count(self):
        # A pattern of length l has l*(l-1)/2 contiguous sub-patterns of length >= 2.
        pattern = Pattern([f"T{i}" for i in range(6)])
        assert len(list(pattern.contiguous_subpatterns())) == 6 * 5 // 2

    def test_contains_and_find(self):
        pattern = Pattern(["ParkAve", "OakSt", "MainSt", "WestSt"])
        assert pattern.contains(Pattern(["OakSt", "MainSt"]))
        assert pattern.find(Pattern(["OakSt", "MainSt"])) == 1
        assert pattern.find(Pattern(["MainSt", "OakSt"])) == -1
        assert not pattern.contains(Pattern(["ParkAve", "MainSt"]))

    def test_occurrences_with_repetition(self):
        pattern = Pattern(["A", "B", "A", "B"])
        assert pattern.occurrences(Pattern(["A", "B"])) == (0, 2)


class TestSplitAround:
    def test_split_with_prefix_and_suffix(self):
        pattern = Pattern(["ParkAve", "OakSt", "MainSt", "WestSt"])
        split = pattern.split_around(Pattern(["OakSt", "MainSt"]))
        assert split.prefix == Pattern(["ParkAve"])
        assert split.shared == Pattern(["OakSt", "MainSt"])
        assert split.suffix == Pattern(["WestSt"])
        assert len(split.segments) == 3

    def test_split_without_prefix(self):
        pattern = Pattern(["OakSt", "MainSt", "StateSt"])
        split = pattern.split_around(Pattern(["OakSt", "MainSt"]))
        assert len(split.prefix) == 0
        assert split.suffix == Pattern(["StateSt"])
        assert len(split.segments) == 2

    def test_split_whole_pattern(self):
        pattern = Pattern(["A", "B"])
        split = pattern.split_around(Pattern(["A", "B"]))
        assert len(split.prefix) == 0
        assert len(split.suffix) == 0
        assert split.segments == (Pattern(["A", "B"]),)

    def test_split_missing_pattern_raises(self):
        with pytest.raises(ValueError, match="does not occur"):
            Pattern(["A", "B"]).split_around(Pattern(["C"]))


class TestOverlap:
    def test_suffix_prefix_overlap(self):
        # p2 = (ParkAve, OakSt) overlaps p1 = (OakSt, MainSt): Example 4.
        assert Pattern(["ParkAve", "OakSt"]).overlaps(Pattern(["OakSt", "MainSt"]))
        assert Pattern(["OakSt", "MainSt"]).overlaps(Pattern(["ParkAve", "OakSt"]))

    def test_containment_overlap(self):
        assert Pattern(["A", "B", "C"]).overlaps(Pattern(["B", "C"]))
        assert Pattern(["B", "C"]).overlaps(Pattern(["A", "B", "C"]))
        # Strict middle containment.
        assert Pattern(["A", "B", "C", "D"]).overlaps(Pattern(["B", "C"]))

    def test_disjoint_patterns_do_not_overlap(self):
        assert not Pattern(["ParkAve", "OakSt"]).overlaps(Pattern(["MainSt", "WestSt"]))

    def test_concat(self):
        assert Pattern(["A"]).concat(Pattern(["B", "C"])) == Pattern(["A", "B", "C"])
        assert Pattern(["A"]).concat(Pattern.empty()) == Pattern(["A"])
        assert Pattern.empty().concat(Pattern(["A"])) == Pattern(["A"])
