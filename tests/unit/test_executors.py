"""Unit tests for the executor front-ends (A-Seq, Sharon, Flink-like, SPASS-like)."""

from __future__ import annotations

import pytest

from repro.core import SharingCandidate, SharingPlan, SharonOptimizer
from repro.events import EventStream, SlidingWindow, WindowInstance
from repro.executor import (
    ASeqExecutor,
    FlinkLikeExecutor,
    SharonExecutor,
    SpassLikeExecutor,
    TwoStepBudgetExceeded,
    run_workload,
)
from repro.queries import Pattern, PredicateSet, Query, Workload
from repro.utils import RateCatalog

from ..conftest import make_events


def small_workload():
    window = SlidingWindow(size=20, slide=10)
    predicates = PredicateSet()
    return Workload(
        [
            Query(pattern=Pattern(["A", "B", "C"]), window=window, predicates=predicates, name="w1"),
            Query(pattern=Pattern(["B", "C", "D"]), window=window, predicates=predicates, name="w2"),
            Query(pattern=Pattern(["A", "B"]), window=window, predicates=predicates, name="w3"),
        ]
    )


ROWS = [
    ("A", 1),
    ("B", 2),
    ("C", 4),
    ("D", 5),
    ("A", 6),
    ("B", 8),
    ("C", 9),
    ("B", 12),
    ("C", 13),
    ("D", 15),
    ("A", 21),
    ("B", 23),
    ("C", 25),
]


@pytest.fixture
def stream():
    return EventStream(make_events(ROWS))


class TestASeqExecutor:
    def test_counts_match_hand_computation(self, stream):
        workload = small_workload()
        report = ASeqExecutor(workload).run(stream)
        window = WindowInstance(0, 20)
        # Events in [0,20): A1 B2 C4 D5 A6 B8 C9 B12 C13 D15.
        # Matches of (A,B,C): A1 pairs with (B2,B8,B12) x later Cs = 3+2+1,
        # A6 with (B8,B12) x later Cs = 2+1, total 9.
        assert report.results.value("w1", window) == 9
        # Matches of (B,C,D): B2 -> 4, B8 -> 2, B12 -> 1, total 7.
        assert report.results.value("w2", window) == 7
        # Matches of (A,B): A1 -> 3, A6 -> 2, total 5.
        assert report.results.value("w3", window) == 5

    def test_metrics_populated(self, stream):
        report = ASeqExecutor(small_workload(), memory_sample_interval=1).run(stream)
        assert report.metrics.executor_name == "A-Seq"
        assert report.metrics.total_events == len(ROWS)
        assert report.metrics.peak_memory_bytes > 0
        assert report.metrics.windows_finalized > 0


class TestSharonExecutor:
    def test_requires_plan_or_rates(self):
        with pytest.raises(ValueError, match="plan or a rate catalog"):
            SharonExecutor(small_workload())

    def test_with_explicit_plan_matches_aseq(self, stream):
        workload = small_workload()
        plan = SharingPlan([SharingCandidate(Pattern(["B", "C"]), ("w1", "w2"), 1.0)])
        shared = SharonExecutor(workload, plan=plan).run(stream)
        non_shared = ASeqExecutor(workload).run(stream)
        assert shared.results.matches(non_shared.results)

    def test_optimizes_on_the_fly_with_rates(self, stream):
        workload = small_workload()
        rates = RateCatalog.from_stream(stream, per="time-unit")
        report = SharonExecutor(workload, rates=rates).run(stream)
        assert report.plan is not None
        assert report.results.matches(ASeqExecutor(workload).run(stream).results)

    def test_run_workload_convenience(self, stream):
        workload = small_workload()
        report = run_workload(workload, stream)
        assert report.metrics.total_events == len(ROWS)
        assert report.results.matches(ASeqExecutor(workload).run(stream).results)


class TestTwoStepExecutors:
    def test_flink_like_matches_online(self, stream):
        workload = small_workload()
        flink = FlinkLikeExecutor(workload).run(stream)
        aseq = ASeqExecutor(workload).run(stream)
        assert flink.results.matches(aseq.results)
        assert flink.metrics.executor_name == "Flink-like"
        # Two-step execution stores events and sequences: memory must be non-zero.
        assert flink.metrics.peak_memory_bytes > 0

    def test_spass_like_matches_online_with_default_plan(self, stream):
        workload = small_workload()
        spass = SpassLikeExecutor(workload).run(stream)
        aseq = ASeqExecutor(workload).run(stream)
        assert spass.results.matches(aseq.results)
        assert spass.plan is not None and len(spass.plan) >= 1

    def test_spass_like_with_explicit_plan(self, stream):
        workload = small_workload()
        plan = SharingPlan([SharingCandidate(Pattern(["B", "C"]), ("w1", "w2"), 1.0)])
        spass = SpassLikeExecutor(workload, plan=plan).run(stream)
        assert spass.results.matches(ASeqExecutor(workload).run(stream).results)

    def test_budget_exceeded_raises(self):
        # A dense window of alternating events explodes the sequence count.
        rows = []
        for index in range(40):
            rows.append(("A", 2 * index))
            rows.append(("B", 2 * index + 1))
        workload = Workload(
            [
                Query(
                    pattern=Pattern(["A", "B"]),
                    window=SlidingWindow(size=100, slide=100),
                    name="dense",
                )
            ]
        )
        executor = FlinkLikeExecutor(workload, max_sequences_per_scope=50)
        with pytest.raises(TwoStepBudgetExceeded, match="does not terminate"):
            executor.run(EventStream(make_events(rows)))

    def test_sharon_beats_two_step_on_state_updates(self, stream):
        """Online execution performs far fewer 'operations' than sequence construction."""
        workload = small_workload()
        online = ASeqExecutor(workload).run(stream)
        twostep = FlinkLikeExecutor(workload).run(stream)
        assert online.metrics.state_updates <= twostep.metrics.state_updates * 2
