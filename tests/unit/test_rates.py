"""Unit tests for the rate catalog (repro.utils.rates)."""

from __future__ import annotations

import pytest

from repro.events import Event, EventStream
from repro.queries import Pattern
from repro.utils import RateCatalog


class TestRateCatalogConstruction:
    def test_uniform(self):
        catalog = RateCatalog.uniform(["A", "B"], 3.0)
        assert catalog.rate("A") == 3.0
        assert catalog.rate("B") == 3.0

    def test_from_mapping(self):
        catalog = RateCatalog.from_mapping({"A": 1.5})
        assert catalog.rate("A") == 1.5

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            RateCatalog({"A": -1.0})
        catalog = RateCatalog()
        with pytest.raises(ValueError):
            catalog.set_rate("A", -2.0)

    def test_unknown_type_without_default_raises(self):
        catalog = RateCatalog({"A": 1.0})
        with pytest.raises(KeyError, match="no rate registered"):
            catalog.rate("B")
        assert "A" in catalog and "B" not in catalog

    def test_default_rate_fallback(self):
        catalog = RateCatalog({"A": 1.0}, default_rate=0.5)
        assert catalog.rate("B") == 0.5
        assert "B" in catalog


class TestRateCatalogFromStream:
    def _stream(self):
        events = [Event("A", t) for t in range(10)] + [Event("B", t) for t in range(0, 10, 2)]
        return EventStream(events)

    def test_per_time_unit(self):
        catalog = RateCatalog.from_stream(self._stream(), per="time-unit")
        assert catalog.rate("A") == pytest.approx(1.0)
        assert catalog.rate("B") == pytest.approx(0.5)

    def test_per_window(self):
        catalog = RateCatalog.from_stream(self._stream(), per="window", window_size=20)
        assert catalog.rate("A") == pytest.approx(20.0)
        assert catalog.rate("B") == pytest.approx(10.0)

    def test_per_window_requires_size(self):
        with pytest.raises(ValueError, match="window_size"):
            RateCatalog.from_stream(self._stream(), per="window")

    def test_unknown_unit(self):
        with pytest.raises(ValueError, match="unknown rate unit"):
            RateCatalog.from_stream(self._stream(), per="fortnight")


class TestPatternRates:
    def test_pattern_rate_is_sum_of_type_rates(self):
        # Equation 1: Rate(P) = sum of Rate(Ej).
        catalog = RateCatalog({"A": 1.0, "B": 2.0, "C": 4.0})
        assert catalog.pattern_rate(Pattern(["A", "B", "C"])) == 7.0
        assert catalog.pattern_rate(Pattern(["A", "A"])) == 2.0

    def test_start_rate(self):
        catalog = RateCatalog({"A": 1.0, "B": 2.0})
        assert catalog.start_rate(Pattern(["B", "A"])) == 2.0
        assert catalog.start_rate(Pattern.empty()) == 0.0

    def test_scaled(self):
        catalog = RateCatalog({"A": 1.0}, default_rate=2.0)
        scaled = catalog.scaled(3.0)
        assert scaled.rate("A") == 3.0
        assert scaled.rate("unknown") == 6.0
        with pytest.raises(ValueError):
            catalog.scaled(-1.0)
