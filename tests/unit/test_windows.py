"""Unit tests for sliding windows (repro.events.windows)."""

from __future__ import annotations

import pytest

from repro.events import SlidingWindow, WindowInstance


class TestWindowInstance:
    def test_contains_is_half_open(self):
        window = WindowInstance(10, 20)
        assert window.contains(10)
        assert window.contains(19)
        assert not window.contains(20)
        assert not window.contains(9)
        assert window.size == 10

    def test_ordering(self):
        assert WindowInstance(0, 10) < WindowInstance(5, 15)


class TestSlidingWindowValidation:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            SlidingWindow(size=0, slide=1)

    def test_rejects_non_positive_slide(self):
        with pytest.raises(ValueError):
            SlidingWindow(size=5, slide=0)

    def test_rejects_slide_larger_than_size(self):
        with pytest.raises(ValueError, match="drop events"):
            SlidingWindow(size=5, slide=6)

    def test_tumbling_flag(self):
        assert SlidingWindow(size=5, slide=5).is_tumbling
        assert not SlidingWindow(size=5, slide=1).is_tumbling


class TestInstanceEnumeration:
    def test_instances_containing_example_from_paper(self):
        # Window of length 4 sliding by 1 (Example 2).
        window = SlidingWindow(size=4, slide=1)
        instances = window.instances_containing(2)
        assert instances == [WindowInstance(0, 4), WindowInstance(1, 5), WindowInstance(2, 6)]

    def test_instances_containing_never_negative_start(self):
        window = SlidingWindow(size=10, slide=2)
        instances = window.instances_containing(1)
        assert all(w.start >= 0 for w in instances)
        assert WindowInstance(0, 10) in instances

    def test_max_overlap(self):
        assert SlidingWindow(size=10, slide=2).max_overlap == 5
        assert SlidingWindow(size=10, slide=3).max_overlap == 4
        assert SlidingWindow(size=10, slide=10).max_overlap == 1

    def test_number_of_instances_bounded_by_max_overlap(self):
        window = SlidingWindow(size=10, slide=3)
        counts = [len(window.instances_containing(t)) for t in range(30, 60)]
        # Every timestamp is covered by at most max_overlap instances, and the
        # bound is tight for suitably aligned timestamps.
        assert max(counts) == window.max_overlap
        assert all(count <= window.max_overlap for count in counts)

    def test_instance_starting_at_validates_alignment(self):
        window = SlidingWindow(size=10, slide=5)
        assert window.instance_starting_at(15) == WindowInstance(15, 25)
        with pytest.raises(ValueError):
            window.instance_starting_at(7)

    def test_instances_between(self):
        window = SlidingWindow(size=4, slide=2)
        instances = list(window.instances_between(3, 7))
        assert instances == [
            WindowInstance(0, 4),
            WindowInstance(2, 6),
            WindowInstance(4, 8),
            WindowInstance(6, 10),
        ]

    def test_covers_span(self):
        window = SlidingWindow(size=4, slide=1)
        covering = window.covers_span(2, 4)
        assert covering == [WindowInstance(1, 5), WindowInstance(2, 6)]
        with pytest.raises(ValueError):
            window.covers_span(4, 2)

    def test_every_timestamp_in_claimed_instances(self):
        window = SlidingWindow(size=7, slide=3)
        for timestamp in range(0, 40):
            for instance in window.instances_containing(timestamp):
                assert instance.contains(timestamp)
