"""Unit tests for sliding windows (repro.events.windows)."""

from __future__ import annotations

import doctest

import pytest

import repro.events.windows as windows_module
from repro.events import SlidingWindow, WindowCursor, WindowInstance

#: Window shapes covering the pane regimes: slide | size, slide ∤ size,
#: gcd = 1 (unit panes), and tumbling.
PANE_SHAPES = [(12, 4), (10, 4), (9, 6), (7, 3), (6, 6), (12, 2), (8, 5)]


class TestWindowInstance:
    def test_contains_is_half_open(self):
        window = WindowInstance(10, 20)
        assert window.contains(10)
        assert window.contains(19)
        assert not window.contains(20)
        assert not window.contains(9)
        assert window.size == 10

    def test_ordering(self):
        assert WindowInstance(0, 10) < WindowInstance(5, 15)


class TestSlidingWindowValidation:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            SlidingWindow(size=0, slide=1)

    def test_rejects_non_positive_slide(self):
        with pytest.raises(ValueError):
            SlidingWindow(size=5, slide=0)

    def test_rejects_slide_larger_than_size(self):
        with pytest.raises(ValueError, match="drop events"):
            SlidingWindow(size=5, slide=6)

    def test_tumbling_flag(self):
        assert SlidingWindow(size=5, slide=5).is_tumbling
        assert not SlidingWindow(size=5, slide=1).is_tumbling


class TestInstanceEnumeration:
    def test_instances_containing_example_from_paper(self):
        # Window of length 4 sliding by 1 (Example 2).
        window = SlidingWindow(size=4, slide=1)
        instances = window.instances_containing(2)
        assert instances == [WindowInstance(0, 4), WindowInstance(1, 5), WindowInstance(2, 6)]

    def test_instances_containing_never_negative_start(self):
        window = SlidingWindow(size=10, slide=2)
        instances = window.instances_containing(1)
        assert all(w.start >= 0 for w in instances)
        assert WindowInstance(0, 10) in instances

    def test_max_overlap(self):
        assert SlidingWindow(size=10, slide=2).max_overlap == 5
        assert SlidingWindow(size=10, slide=3).max_overlap == 4
        assert SlidingWindow(size=10, slide=10).max_overlap == 1

    def test_number_of_instances_bounded_by_max_overlap(self):
        window = SlidingWindow(size=10, slide=3)
        counts = [len(window.instances_containing(t)) for t in range(30, 60)]
        # Every timestamp is covered by at most max_overlap instances, and the
        # bound is tight for suitably aligned timestamps.
        assert max(counts) == window.max_overlap
        assert all(count <= window.max_overlap for count in counts)

    def test_instance_starting_at_validates_alignment(self):
        window = SlidingWindow(size=10, slide=5)
        assert window.instance_starting_at(15) == WindowInstance(15, 25)
        with pytest.raises(ValueError):
            window.instance_starting_at(7)

    def test_instances_between(self):
        window = SlidingWindow(size=4, slide=2)
        instances = list(window.instances_between(3, 7))
        assert instances == [
            WindowInstance(0, 4),
            WindowInstance(2, 6),
            WindowInstance(4, 8),
            WindowInstance(6, 10),
        ]

    def test_covers_span(self):
        window = SlidingWindow(size=4, slide=1)
        covering = window.covers_span(2, 4)
        assert covering == [WindowInstance(1, 5), WindowInstance(2, 6)]
        with pytest.raises(ValueError):
            window.covers_span(4, 2)

    def test_every_timestamp_in_claimed_instances(self):
        window = SlidingWindow(size=7, slide=3)
        for timestamp in range(0, 40):
            for instance in window.instances_containing(timestamp):
                assert instance.contains(timestamp)


class TestWindowEdgeSemantics:
    """Pin the boundary behaviour the pane refactor relies on (half-open ends)."""

    def test_doctests_pass(self):
        """The examples in the module docstrings are executable and true."""
        failures, tests = doctest.testmod(windows_module)
        assert tests > 0
        assert failures == 0

    def test_end_boundary_timestamp_excluded_from_ending_instance(self):
        window = SlidingWindow(size=6, slide=2)
        for timestamp in range(0, 30):
            instances = window.instances_containing(timestamp)
            assert all(instance.start <= timestamp < instance.end for instance in instances)
            # The instance ending exactly at `timestamp` is never included.
            assert WindowInstance(timestamp - 6, timestamp) not in instances

    def test_instances_containing_equals_brute_force(self):
        """instances_containing == the definitionally-enumerated instance set."""
        for size, slide in PANE_SHAPES:
            window = SlidingWindow(size=size, slide=slide)
            for timestamp in range(0, 3 * size):
                expected = [
                    WindowInstance(start, start + size)
                    for start in range(0, timestamp + 1, slide)
                    if start <= timestamp < start + size
                ]
                assert window.instances_containing(timestamp) == expected, (size, slide, timestamp)

    def test_instances_between_endpoints_inclusive(self):
        window = SlidingWindow(size=6, slide=2)
        instances = list(window.instances_between(6, 6))
        # Every instance containing t=6, nothing more.
        assert instances == window.instances_containing(6)
        assert list(window.instances_between(7, 6)) == []

    def test_instances_between_equals_union_of_containing(self):
        for size, slide in PANE_SHAPES:
            window = SlidingWindow(size=size, slide=slide)
            start_time, end_time = 3, 2 * size + 1
            expected = []
            for timestamp in range(start_time, end_time + 1):
                for instance in window.instances_containing(timestamp):
                    if instance not in expected:
                        expected.append(instance)
            assert sorted(window.instances_between(start_time, end_time)) == sorted(expected)


class TestPaneGeometry:
    def test_pane_width_is_gcd(self):
        assert SlidingWindow(size=12, slide=4).pane_width == 4
        assert SlidingWindow(size=10, slide=4).pane_width == 2
        assert SlidingWindow(size=9, slide=6).pane_width == 3
        assert SlidingWindow(size=7, slide=3).pane_width == 1
        assert SlidingWindow(size=6, slide=6).pane_width == 6

    def test_panes_tile_the_timeline(self):
        """Every timestamp belongs to exactly one pane; spans are contiguous."""
        for size, slide in PANE_SHAPES:
            window = SlidingWindow(size=size, slide=slide)
            previous_end = 0
            for pane_index in range(0, 20):
                start, end = window.pane_span(pane_index)
                assert start == previous_end
                assert end - start == window.pane_width
                previous_end = end
                for timestamp in range(start, end):
                    assert window.pane_index_of(timestamp) == pane_index

    def test_windows_are_exact_pane_unions(self):
        for size, slide in PANE_SHAPES:
            window = SlidingWindow(size=size, slide=slide)
            for instance in window.instances_between(0, 3 * size):
                panes = list(window.panes_covering(instance))
                assert len(panes) == window.panes_per_window
                covered = [
                    timestamp
                    for pane_index in panes
                    for timestamp in range(*window.pane_span(pane_index))
                ]
                assert covered == list(range(instance.start, instance.end))

    def test_panes_covering_instances_containing_consistency(self):
        """pane_index_of(t) ∈ panes_covering(w) for every w containing t, and
        instances_covering_pane is exactly the preimage of panes_covering."""
        for size, slide in PANE_SHAPES:
            window = SlidingWindow(size=size, slide=slide)
            for timestamp in range(0, 3 * size):
                pane_index = window.pane_index_of(timestamp)
                for instance in window.instances_containing(timestamp):
                    assert pane_index in window.panes_covering(instance)
            for pane_index in range(0, 2 * size // window.pane_width):
                covering = window.instances_covering_pane(pane_index)
                expected = [
                    instance
                    for instance in window.instances_between(0, 4 * size)
                    if pane_index in window.panes_covering(instance)
                ]
                assert covering == expected, (size, slide, pane_index)

    def test_instances_covering_pane_matches_per_timestamp_instances(self):
        """Panes never straddle window boundaries: every timestamp of a pane
        belongs to exactly the instances covering the pane."""
        for size, slide in PANE_SHAPES:
            window = SlidingWindow(size=size, slide=slide)
            for pane_index in range(0, 2 * size // window.pane_width):
                covering = set(window.instances_covering_pane(pane_index))
                for timestamp in range(*window.pane_span(pane_index)):
                    assert set(window.instances_containing(timestamp)) == covering

    def test_gcd_one_degenerate(self):
        window = SlidingWindow(size=7, slide=3)
        assert window.pane_width == 1
        assert window.panes_per_window == 7
        assert window.pane_span(5) == (5, 6)
        assert list(window.panes_covering(WindowInstance(3, 10))) == list(range(3, 10))

    def test_panes_covering_rejects_misaligned_instance(self):
        window = SlidingWindow(size=12, slide=4)
        with pytest.raises(ValueError, match="aligned"):
            window.panes_covering(WindowInstance(1, 13))

    def test_pane_index_of_rejects_negative(self):
        with pytest.raises(ValueError):
            SlidingWindow(size=4, slide=2).pane_index_of(-1)
        with pytest.raises(ValueError):
            SlidingWindow(size=4, slide=2).instances_covering_pane(-1)


class TestWindowCursor:
    """The incremental scope index must equal per-timestamp re-derivation."""

    def test_matches_instances_containing_on_dense_timeline(self):
        for size, slide in PANE_SHAPES:
            window = SlidingWindow(size=size, slide=slide)
            cursor = WindowCursor(window)
            for timestamp in range(0, 3 * size):
                assert list(cursor.advance(timestamp)) == window.instances_containing(
                    timestamp
                ), (size, slide, timestamp)

    def test_matches_instances_containing_with_gaps(self):
        import random

        rng = random.Random(3)
        for size, slide in PANE_SHAPES:
            window = SlidingWindow(size=size, slide=slide)
            cursor = WindowCursor(window)
            timestamp = 0
            for _ in range(60):
                # Mix of repeats, small steps, and jumps far past the window.
                timestamp += rng.choice((0, 1, 1, 2, slide, size + rng.randint(0, 9)))
                assert list(cursor.advance(timestamp)) == window.instances_containing(
                    timestamp
                ), (size, slide, timestamp)

    def test_rejects_time_travel(self):
        cursor = WindowCursor(SlidingWindow(size=4, slide=2))
        cursor.advance(5)
        with pytest.raises(ValueError, match="monotone"):
            cursor.advance(4)
