"""Unit tests for sharing candidates and sharable-pattern detection."""

from __future__ import annotations

import pytest

from repro.core import SharingCandidate, build_candidates, detect_sharable_patterns
from repro.events import SlidingWindow
from repro.queries import Pattern, Query, Workload


class TestSharingCandidate:
    def test_construction_constraints(self):
        SharingCandidate(Pattern(["A", "B"]), ("q1", "q2"))
        with pytest.raises(ValueError, match="length > 1"):
            SharingCandidate(Pattern(["A"]), ("q1", "q2"))
        with pytest.raises(ValueError, match="two queries"):
            SharingCandidate(Pattern(["A", "B"]), ("q1",))
        with pytest.raises(ValueError, match="duplicate"):
            SharingCandidate(Pattern(["A", "B"]), ("q1", "q1"))

    def test_benefit_excluded_from_equality(self):
        a = SharingCandidate(Pattern(["A", "B"]), ("q1", "q2"), benefit=5.0)
        b = SharingCandidate(Pattern(["A", "B"]), ("q1", "q2"), benefit=9.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a.with_benefit(2.0).benefit == 2.0

    def test_is_beneficial(self):
        assert SharingCandidate(Pattern(["A", "B"]), ("q1", "q2"), benefit=0.1).is_beneficial
        assert not SharingCandidate(Pattern(["A", "B"]), ("q1", "q2"), benefit=0.0).is_beneficial

    def test_query_set_operations(self):
        a = SharingCandidate(Pattern(["A", "B"]), ("q1", "q2", "q3"))
        b = SharingCandidate(Pattern(["B", "C"]), ("q3", "q4"))
        c = SharingCandidate(Pattern(["C", "D"]), ("q5", "q6"))
        assert a.shares_query_with(b)
        assert not a.shares_query_with(c)
        assert a.common_queries(b) == ("q3",)

    def test_restricted_to_preserves_order(self):
        candidate = SharingCandidate(Pattern(["A", "B"]), ("q1", "q2", "q3"))
        option = candidate.restricted_to(["q3", "q1"], benefit=4.0)
        assert option.query_names == ("q1", "q3")
        assert option.benefit == 4.0
        assert option.pattern == candidate.pattern


def _workload(patterns: dict[str, tuple[str, ...]]) -> Workload:
    window = SlidingWindow(size=10, slide=5)
    return Workload(
        [Query(pattern=Pattern(types), window=window, name=name) for name, types in patterns.items()]
    )


class TestDetection:
    def test_detects_shared_subpatterns(self):
        workload = _workload({"q1": ("A", "B", "C"), "q2": ("B", "C", "D"), "q3": ("X", "Y")})
        sharable = detect_sharable_patterns(workload)
        assert sharable == {Pattern(["B", "C"]): ("q1", "q2")}

    def test_no_sharing_in_disjoint_workload(self):
        workload = _workload({"q1": ("A", "B"), "q2": ("C", "D")})
        assert detect_sharable_patterns(workload) == {}

    def test_length_one_patterns_never_sharable(self):
        workload = _workload({"q1": ("A", "B"), "q2": ("B", "C")})
        sharable = detect_sharable_patterns(workload)
        assert Pattern(["B"]) not in sharable
        assert sharable == {}

    def test_repeated_subpattern_in_one_query_counted_once(self):
        workload = _workload({"q1": ("A", "B", "A", "B"), "q2": ("A", "B", "C")})
        sharable = detect_sharable_patterns(workload)
        assert sharable[Pattern(["A", "B"])] == ("q1", "q2")

    def test_traffic_workload_reproduces_table_1(self, traffic):
        sharable = detect_sharable_patterns(traffic)
        expected = {
            Pattern(["OakSt", "MainSt"]): ("q1", "q2", "q3", "q4"),
            Pattern(["ParkAve", "OakSt"]): ("q3", "q4"),
            Pattern(["ParkAve", "OakSt", "MainSt"]): ("q3", "q4"),
            Pattern(["MainSt", "WestSt"]): ("q2", "q4"),
            Pattern(["OakSt", "MainSt", "WestSt"]): ("q2", "q4"),
            Pattern(["MainSt", "StateSt"]): ("q1", "q5"),
            Pattern(["ElmSt", "ParkAve"]): ("q6", "q7"),
        }
        assert sharable == expected

    def test_build_candidates_sorted_and_reusable(self, traffic):
        candidates = build_candidates(traffic)
        assert len(candidates) == 7
        assert candidates == sorted(candidates, key=SharingCandidate.key)
        # Passing a precomputed detection gives the same candidates.
        assert build_candidates(traffic, detect_sharable_patterns(traffic)) == candidates
