"""Unit tests for query predicates (repro.queries.predicates)."""

from __future__ import annotations

import pytest

from repro.events import Event
from repro.queries import EquivalencePredicate, FilterPredicate, PredicateSet


class TestEquivalencePredicate:
    def test_key_of_reads_attribute(self):
        predicate = EquivalencePredicate("vehicle")
        assert predicate.key_of(Event("A", 0, {"vehicle": 7})) == 7
        assert predicate.key_of(Event("A", 0)) is None


class TestFilterPredicate:
    def test_comparison_operators(self):
        event = Event("A", 0, {"price": 10})
        assert FilterPredicate("price", ">", 5).matches(event)
        assert FilterPredicate("price", ">=", 10).matches(event)
        assert FilterPredicate("price", "<", 11).matches(event)
        assert FilterPredicate("price", "<=", 10).matches(event)
        assert FilterPredicate("price", "=", 10).matches(event)
        assert FilterPredicate("price", "==", 10).matches(event)
        assert FilterPredicate("price", "!=", 3).matches(event)
        assert not FilterPredicate("price", ">", 10).matches(event)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="operator"):
            FilterPredicate("price", "~", 1)

    def test_missing_attribute_fails_filter(self):
        assert not FilterPredicate("price", ">", 5).matches(Event("A", 0))

    def test_event_type_scoping(self):
        predicate = FilterPredicate("price", ">", 100, event_type="Laptop")
        assert predicate.matches(Event("Laptop", 0, {"price": 500}))
        assert not predicate.matches(Event("Laptop", 0, {"price": 50}))
        # Other event types pass regardless of the attribute value.
        assert predicate.matches(Event("Case", 0, {"price": 5}))


class TestPredicateSet:
    def test_same_constructor(self):
        predicates = PredicateSet.same("vehicle")
        assert predicates.equivalence_attributes == ("vehicle",)
        assert not predicates.is_empty

    def test_empty_set(self):
        predicates = PredicateSet()
        assert predicates.is_empty
        assert predicates.accepts(Event("A", 0))
        assert predicates.partition_key(Event("A", 0)) == ()

    def test_accepts_applies_all_filters(self):
        predicates = PredicateSet(
            filters=[FilterPredicate("price", ">", 5), FilterPredicate("price", "<", 20)]
        )
        assert predicates.accepts(Event("A", 0, {"price": 10}))
        assert not predicates.accepts(Event("A", 0, {"price": 30}))

    def test_partition_key_combines_equivalences(self):
        predicates = PredicateSet.same("vehicle", "lane")
        key = predicates.partition_key(Event("A", 0, {"vehicle": 2, "lane": 1}))
        assert key == (2, 1)

    def test_accepts_sequence_checks_equivalence(self):
        predicates = PredicateSet.same("vehicle")
        same = [Event("A", 0, {"vehicle": 1}), Event("B", 1, {"vehicle": 1})]
        different = [Event("A", 0, {"vehicle": 1}), Event("B", 1, {"vehicle": 2})]
        assert predicates.accepts_sequence(same)
        assert not predicates.accepts_sequence(different)

    def test_accepts_sequence_checks_filters(self):
        predicates = PredicateSet(filters=[FilterPredicate("price", ">", 5)])
        good = [Event("A", 0, {"price": 6}), Event("B", 1, {"price": 7})]
        bad = [Event("A", 0, {"price": 6}), Event("B", 1, {"price": 1})]
        assert predicates.accepts_sequence(good)
        assert not predicates.accepts_sequence(bad)
