"""Unit tests for the columnar micro-batch ingestion layer.

Covers the struct-of-arrays batch representation (`repro.events.columnar`),
the per-layout cache on `EventStream`, the compiled predicate kernels, and
`CompiledWorkload.route_columnar` — each pinned against its scalar
reference implementation on randomized inputs.
"""

from __future__ import annotations

import random

import pytest

from repro.events import (
    ColumnLayout,
    ColumnarBatch,
    Event,
    EventStream,
    SlidingWindow,
    columnar_batches,
)
from repro.executor.engine import CompiledWorkload, StreamingEngine
from repro.queries import Pattern, PredicateSet, Query, Workload
from repro.queries.predicates import FilterPredicate, compile_filter_kernel


def make_events(rows):
    return [Event(t, ts, attrs, i) for i, (t, ts, attrs) in enumerate(rows)]


class TestColumnLayout:
    def test_type_interning(self):
        layout = ColumnLayout(types=("A", "B"))
        assert layout.type_id("A") == 0
        assert layout.type_id("B") == 1
        assert layout.type_id("Z") == -1

    def test_value_semantics(self):
        a = ColumnLayout(("A", "B"), ("value",), ("entity",))
        b = ColumnLayout(("A", "B"), ("value",), ("entity",))
        c = ColumnLayout(("A", "B"), ("value",), ())
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_duplicate_types_rejected(self):
        with pytest.raises(ValueError):
            ColumnLayout(types=("A", "A"))


class TestColumnarBatch:
    def test_columns_parallel_to_events(self):
        layout = ColumnLayout(("A", "B"), attributes=("value",), partition=("entity",))
        events = make_events(
            [
                ("A", 3, {"entity": 1, "value": 5}),
                ("Z", 3, {"entity": 2, "value": 9}),
                ("B", 3, {"value": 7}),
            ]
        )
        batch = ColumnarBatch.from_events(3, events, layout)
        assert batch.timestamp == 3 and batch.size == 3
        assert batch.type_ids == [0, -1, 1]
        assert batch.relevant == [0, 2]
        # Cells are extracted only at type-relevant rows: the Z row's value
        # and group key stay None holes routing never reads.
        assert batch.columns["value"] == [5, None, 7]
        assert batch.group_keys == [(1,), None, (None,)]

    def test_group_keys_interned_across_batches(self):
        layout = ColumnLayout(("A",), partition=("entity",))
        stream = [
            Event("A", 0, {"entity": 9}, 0),
            Event("A", 1, {"entity": 9}, 1),
        ]
        first, second = list(columnar_batches(stream, layout))
        assert first.group_keys[0] is second.group_keys[0]

    def test_no_partition_means_no_group_keys(self):
        layout = ColumnLayout(("A",))
        batch = ColumnarBatch.from_events(0, make_events([("A", 0, {})]), layout)
        assert batch.group_keys is None

    def test_count_groups_counts_relevant_rows_only(self):
        layout = ColumnLayout(("A", "B"), partition=("entity",))
        events = make_events(
            [
                ("A", 0, {"entity": 1}),
                ("Z", 0, {"entity": 1}),  # irrelevant by type: not counted
                ("B", 0, {"entity": 2}),
                ("A", 0, {"entity": 1}),
            ]
        )
        batch = ColumnarBatch.from_events(0, events, layout)
        counts: dict[tuple, int] = {}
        batch.count_groups(counts)
        assert counts == {(1,): 2, (2,): 1}

    def test_slice_by_shard_routes_relevant_rows_in_order(self):
        layout = ColumnLayout(("A", "B"), partition=("entity",))
        events = make_events(
            [
                ("A", 0, {"entity": 1}),
                ("Z", 0, {"entity": 2}),  # irrelevant: reaches no shard
                ("B", 0, {"entity": 2}),
                ("A", 0, {"entity": 1}),
            ]
        )
        batch = ColumnarBatch.from_events(0, events, layout)
        slices: list[list[Event]] = [[], []]
        batch.slice_by_shard({(1,): 0, (2,): 1}, slices)
        assert slices[0] == [events[0], events[3]]  # batch order preserved
        assert slices[1] == [events[2]]

    def test_count_and_slice_are_noops_without_partition(self):
        layout = ColumnLayout(("A",))
        batch = ColumnarBatch.from_events(0, make_events([("A", 0, {})]), layout)
        counts: dict[tuple, int] = {}
        batch.count_groups(counts)
        slices: list[list[Event]] = [[]]
        batch.slice_by_shard({}, slices)
        assert counts == {} and slices == [[]]


class TestColumnarBatches:
    def test_generator_input_batches_by_timestamp(self):
        layout = ColumnLayout(("A", "B"))
        events = make_events([("A", 0, {}), ("B", 0, {}), ("A", 2, {})])
        batches = list(columnar_batches(iter(events), layout))
        assert [b.timestamp for b in batches] == [0, 2]
        assert [b.size for b in batches] == [2, 1]

    def test_event_stream_batches_are_cached_per_layout(self):
        layout = ColumnLayout(("A",), attributes=("value",))
        stream = EventStream(make_events([("A", 0, {"value": 1}), ("A", 1, {"value": 2})]))
        first = stream.columnar_batches(layout)
        again = stream.columnar_batches(ColumnLayout(("A",), attributes=("value",)))
        assert first is again  # equal layout -> one cache entry

    def test_cache_invalidated_on_mutation(self):
        layout = ColumnLayout(("A",))
        stream = EventStream(make_events([("A", 0, {})]))
        first = stream.columnar_batches(layout)
        stream.append(Event("A", 1, {}, 99))
        rebuilt = stream.columnar_batches(layout)
        assert rebuilt is not first
        assert sum(b.size for b in rebuilt) == 2
        stream.extend([Event("A", 2, {}, 100)])
        assert sum(b.size for b in stream.columnar_batches(layout)) == 3

    def test_streaming_interner_bounded_on_unbounded_group_cardinality(self):
        """A generator stream with a fresh group per event must stay bounded.

        The streaming interner is a dedup optimisation; past its limit it is
        dropped and restarted, so memory follows the open scopes (the
        engine's contract), not the number of distinct group keys seen.
        """
        from repro.events.columnar import _INTERNER_LIMIT

        layout = ColumnLayout(("A",), partition=("entity",))

        def endless_fresh_groups(n):
            for i in range(n):
                yield Event("A", i, {"entity": i}, i)

        total = _INTERNER_LIMIT + 50
        batches = list(columnar_batches(endless_fresh_groups(total), layout))
        assert sum(b.size for b in batches) == total
        assert [b.group_keys[0] for b in batches[:3]] == [(0,), (1,), (2,)]

    def test_cache_bounded_lru_across_layouts(self):
        from repro.events.stream import _COLUMNAR_CACHE_LIMIT

        stream = EventStream(make_events([("A", 0, {})]))
        first_layout = ColumnLayout(("A",), attributes=("a0",))
        first = stream.columnar_batches(first_layout)
        for index in range(_COLUMNAR_CACHE_LIMIT):
            stream.columnar_batches(ColumnLayout(("A",), attributes=(f"x{index}",)))
        assert len(stream._columnar_cache) == _COLUMNAR_CACHE_LIMIT
        # The least-recently-used entry was evicted: a fresh request rebuilds it.
        assert stream.columnar_batches(first_layout) is not first

    def test_cache_hit_refreshes_lru_order(self):
        """A cache hit must move the layout to most-recently-used.

        Regression: eviction used to be FIFO (insertion order), so a hot
        layout — re-requested on every engine run — was still evicted once
        enough cold layouts had passed through, forcing the hot workload to
        re-extract its columns.  With LRU, touching the hot layout keeps it
        resident while the cold layouts churn.
        """
        from repro.events.stream import _COLUMNAR_CACHE_LIMIT

        stream = EventStream(make_events([("A", 0, {})]))
        hot_layout = ColumnLayout(("A",), attributes=("hot",))
        hot = stream.columnar_batches(hot_layout)
        # Interleave cold layouts with hot-layout hits; the hit must refresh
        # the hot entry so it survives more cold insertions than the cache
        # could otherwise hold.
        for index in range(_COLUMNAR_CACHE_LIMIT * 3):
            stream.columnar_batches(ColumnLayout(("A",), attributes=(f"cold{index}",)))
            assert stream.columnar_batches(hot_layout) is hot
        assert len(stream._columnar_cache) == _COLUMNAR_CACHE_LIMIT

    def test_cache_eviction_order_is_lru_not_fifo(self):
        """Pin the exact eviction order: oldest-*used*, not oldest-*inserted*."""
        from repro.events.stream import _COLUMNAR_CACHE_LIMIT

        stream = EventStream(make_events([("A", 0, {})]))
        layouts = [
            ColumnLayout(("A",), attributes=(f"l{index}",))
            for index in range(_COLUMNAR_CACHE_LIMIT)
        ]
        built = [stream.columnar_batches(layout) for layout in layouts]
        # Touch the first-inserted layout, making the *second* the LRU entry.
        assert stream.columnar_batches(layouts[0]) is built[0]
        stream.columnar_batches(ColumnLayout(("A",), attributes=("overflow",)))
        assert stream.columnar_batches(layouts[0]) is built[0]  # survived (refreshed)
        assert stream.columnar_batches(layouts[1]) is not built[1]  # evicted (LRU)

    def test_columnar_batches_dispatches_to_stream_cache(self):
        layout = ColumnLayout(("A",))
        stream = EventStream(make_events([("A", 0, {})]))
        assert list(columnar_batches(stream, layout)) == stream.columnar_batches(layout)


class TestFilterKernel:
    def _parity_check(self, filters, events, layout):
        """The kernel must select exactly the events every filter accepts."""
        predicates = PredicateSet(filters=filters)
        kernel = compile_filter_kernel(filters, layout.type_id)
        batch = ColumnarBatch.from_events(0, events, layout)
        indices = list(range(len(events)))
        selected = indices if kernel is None else kernel(batch, indices)
        expected = [i for i, e in enumerate(events) if predicates.accepts(e)]
        assert selected == expected

    def test_no_filters_compiles_to_none(self):
        layout = ColumnLayout(("A",))
        assert compile_filter_kernel((), layout.type_id) is None

    def test_unrestricted_filter_and_missing_attribute(self):
        layout = ColumnLayout(("A", "B"), attributes=("value",))
        events = make_events(
            [("A", 0, {"value": 5}), ("B", 0, {}), ("A", 0, {"value": 1})]
        )
        self._parity_check([FilterPredicate("value", ">", 2)], events, layout)

    def test_type_restricted_filter_passes_other_types(self):
        layout = ColumnLayout(("A", "B"), attributes=("value",))
        events = make_events(
            [("A", 0, {"value": 1}), ("B", 0, {"value": 1}), ("A", 0, {"value": 9})]
        )
        self._parity_check(
            [FilterPredicate("value", ">", 5, event_type="A")], events, layout
        )

    def test_filter_on_unknown_type_compiles_away(self):
        layout = ColumnLayout(("A",), attributes=("value",))
        kernel = compile_filter_kernel(
            [FilterPredicate("value", ">", 5, event_type="Z")], layout.type_id
        )
        assert kernel is None

    def test_conjunction_chains_kernels(self):
        layout = ColumnLayout(("A", "B"), attributes=("value", "size"))
        events = make_events(
            [
                ("A", 0, {"value": 5, "size": 1}),
                ("A", 0, {"value": 5, "size": 9}),
                ("B", 0, {"value": 0, "size": 9}),
            ]
        )
        self._parity_check(
            [FilterPredicate("value", ">", 2), FilterPredicate("size", ">=", 5)],
            events,
            layout,
        )

    def test_randomized_parity_with_accepts(self):
        rng = random.Random(7)
        types = ("A", "B", "C")
        for trial in range(50):
            filters = []
            for _ in range(rng.randint(0, 3)):
                filters.append(
                    FilterPredicate(
                        rng.choice(("value", "size")),
                        rng.choice(tuple("< <= > >= = !=".split())),
                        rng.randint(0, 6),
                        rng.choice((None, "A", "B", "Z")),
                    )
                )
            events = []
            for i in range(rng.randint(1, 12)):
                attrs = {}
                if rng.random() < 0.8:
                    attrs["value"] = rng.randint(0, 8)
                if rng.random() < 0.8:
                    attrs["size"] = rng.randint(0, 8)
                events.append(Event(rng.choice(types), 0, attrs, i))
            layout = ColumnLayout(types, attributes=("value", "size"))
            self._parity_check(filters, events, layout)


class TestRouteColumnar:
    def _workload(self):
        window = SlidingWindow(size=8, slide=4)
        predicates = PredicateSet(
            equivalences=PredicateSet.same("entity").equivalences,
            filters=[FilterPredicate("value", ">", 3)],
        )
        queries = [
            Query(Pattern(("A", "B")), window, predicates=predicates, name="rc1"),
            Query(Pattern(("B", "C")), window, predicates=predicates, name="rc2"),
        ]
        return Workload(queries)

    def test_layout_derived_from_workload(self):
        compiled = CompiledWorkload(self._workload())
        assert compiled.layout.types == ("A", "B", "C")
        assert "value" in compiled.layout.attributes
        assert compiled.layout.partition == ("entity",)

    def test_routing_matches_scalar_reference(self):
        compiled = CompiledWorkload(self._workload())
        rng = random.Random(11)
        for trial in range(30):
            events = []
            for i in range(rng.randint(1, 15)):
                events.append(
                    Event(
                        rng.choice(("A", "B", "C", "D")),
                        5,
                        {"entity": rng.randint(0, 2), "value": rng.randint(0, 8)},
                        i,
                    )
                )
            batch = ColumnarBatch.from_events(5, events, compiled.layout)
            count, groups = compiled.route_columnar(batch)

            expected: dict[tuple, list[Event]] = {}
            for event in events:
                if compiled.is_relevant(event):
                    expected.setdefault(compiled.group_key(event), []).append(event)
            assert count == sum(len(v) for v in expected.values())
            assert (groups or {}) == expected


class TestEngineColumnarMode:
    def _workload(self):
        window = SlidingWindow(size=6, slide=3)
        return Workload([Query(Pattern(("A", "B")), window, name="ec1")])

    def test_columnar_counts_batches_and_matches_scalar(self):
        workload = self._workload()
        stream = EventStream(
            make_events([("A", 0, {}), ("B", 1, {}), ("A", 2, {}), ("B", 4, {})])
        )
        columnar = StreamingEngine(workload, columnar=True).run(stream)
        scalar = StreamingEngine(workload, columnar=False).run(stream)
        assert columnar.results.matches(scalar.results)
        assert columnar.metrics.columnar_batches > 0
        assert scalar.metrics.columnar_batches == 0
        assert columnar.metrics.total_events == scalar.metrics.total_events == 4
        assert columnar.metrics.relevant_events == scalar.metrics.relevant_events

    def test_columnar_accepts_plain_iterables(self):
        workload = self._workload()
        events = make_events([("A", 0, {}), ("B", 1, {})])
        report = StreamingEngine(workload, columnar=True).run(iter(events))
        reference = StreamingEngine(workload, columnar=False).run(iter(events))
        assert report.results.matches(reference.results)
        assert report.metrics.columnar_batches == 2

    def test_columnar_composes_with_panes(self):
        window = SlidingWindow(size=6, slide=2)
        workload = Workload([Query(Pattern(("A", "B")), window, name="ec2")])
        stream = EventStream(
            make_events([("A", 0, {}), ("B", 1, {}), ("A", 3, {}), ("B", 5, {})])
        )
        panes_columnar = StreamingEngine(workload, panes=True, columnar=True).run(stream)
        panes_scalar = StreamingEngine(workload, panes=True, columnar=False).run(stream)
        assert panes_columnar.results.matches(panes_scalar.results)
        assert panes_columnar.metrics.columnar_batches > 0
        assert panes_columnar.metrics.panes_created > 0
