"""Unit tests for aggregation specs and incremental aggregate states."""

from __future__ import annotations

import pytest

from repro.events import Event
from repro.queries import AggregateSpec, AggregateState


class TestAggregateSpecConstruction:
    def test_count_star(self):
        spec = AggregateSpec.count_star()
        assert repr(spec) == "COUNT(*)"
        assert not spec.tracks_attribute

    def test_count_event_type_requires_type(self):
        assert AggregateSpec.count("B").event_type == "B"
        with pytest.raises(ValueError):
            AggregateSpec("COUNT")

    def test_attribute_aggregates_require_type_and_attribute(self):
        spec = AggregateSpec.sum("B", "price")
        assert spec.tracks_attribute
        with pytest.raises(ValueError):
            AggregateSpec("SUM", "B")
        with pytest.raises(ValueError):
            AggregateSpec("MIN")

    def test_count_star_rejects_arguments(self):
        with pytest.raises(ValueError):
            AggregateSpec("COUNT(*)", "B")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AggregateSpec("MEDIAN", "B", "x")


class TestAggregateStateMonoid:
    def test_zero_and_unit(self):
        assert AggregateState.zero().count == 0
        assert AggregateState.unit().count == 1
        assert AggregateState.zero().is_zero

    def test_merge_adds_counts(self):
        merged = AggregateState(count=2, target_count=1, total=5.0).merge(
            AggregateState(count=3, target_count=2, total=7.0, minimum=1.0, maximum=9.0)
        )
        assert merged.count == 5
        assert merged.target_count == 3
        assert merged.total == 12.0
        assert merged.minimum == 1.0
        assert merged.maximum == 9.0

    def test_merge_is_commutative_and_associative_on_counts(self):
        a = AggregateState(count=1, total=2.0, target_count=1, minimum=2.0, maximum=2.0)
        b = AggregateState(count=4, total=8.0, target_count=4, minimum=1.0, maximum=3.0)
        c = AggregateState(count=2, total=1.0, target_count=2, minimum=0.5, maximum=0.5)
        assert a.merge(b) == b.merge(a)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_merge_with_zero_is_identity(self):
        state = AggregateState(count=3, target_count=2, total=4.0, minimum=1.0, maximum=3.0)
        assert state.merge(AggregateState.zero()) == state


class TestAggregateStateExtend:
    def test_extend_count_star_keeps_count(self):
        spec = AggregateSpec.count_star()
        state = AggregateState(count=3).extend(Event("B", 1), spec)
        assert state.count == 3

    def test_extend_tracks_targeted_attribute(self):
        spec = AggregateSpec.sum("B", "price")
        state = AggregateState(count=2).extend(Event("B", 1, {"price": 10.0}), spec)
        assert state.count == 2
        assert state.target_count == 2
        assert state.total == 20.0  # 10 for each of the 2 represented sequences
        assert state.minimum == 10.0 and state.maximum == 10.0

    def test_extend_ignores_untargeted_event(self):
        spec = AggregateSpec.sum("B", "price")
        state = AggregateState(count=2).extend(Event("C", 1, {"price": 10.0}), spec)
        assert state.total == 0.0

    def test_extend_zero_state_is_noop(self):
        spec = AggregateSpec.sum("B", "price")
        assert AggregateState.zero().extend(Event("B", 1, {"price": 3.0}), spec).is_zero


class TestAggregateStateCombine:
    def test_combine_multiplies_counts(self):
        left = AggregateState(count=3)
        right = AggregateState(count=4)
        assert left.combine(right).count == 12

    def test_combine_distributes_totals(self):
        left = AggregateState(count=2, target_count=2, total=6.0, minimum=2.0, maximum=4.0)
        right = AggregateState(count=3, target_count=3, total=9.0, minimum=3.0, maximum=3.0)
        combined = left.combine(right)
        assert combined.count == 6
        # Each left sequence pairs with 3 right sequences and vice versa.
        assert combined.total == 6.0 * 3 + 9.0 * 2
        assert combined.target_count == 2 * 3 + 3 * 2
        assert combined.minimum == 2.0
        assert combined.maximum == 4.0

    def test_combine_with_zero_is_zero(self):
        assert AggregateState(count=5).combine(AggregateState.zero()).is_zero

    def test_scale(self):
        state = AggregateState(count=2, target_count=2, total=4.0)
        scaled = state.scale(3)
        assert scaled.count == 6
        assert scaled.total == 12.0
        assert state.scale(0).is_zero
        with pytest.raises(ValueError):
            state.scale(-1)


class TestFinalize:
    def _state(self):
        return AggregateState(count=4, target_count=3, total=30.0, minimum=5.0, maximum=20.0)

    def test_finalize_each_kind(self):
        state = self._state()
        assert AggregateSpec.count_star().finalize(state) == 4
        assert AggregateSpec.count("B").finalize(state) == 3
        assert AggregateSpec.sum("B", "x").finalize(state) == 30.0
        assert AggregateSpec.min("B", "x").finalize(state) == 5.0
        assert AggregateSpec.max("B", "x").finalize(state) == 20.0
        assert AggregateSpec.avg("B", "x").finalize(state) == pytest.approx(10.0)

    def test_avg_of_empty_is_none(self):
        assert AggregateSpec.avg("B", "x").finalize(AggregateState.zero()) is None


class TestEvaluateSequences:
    def test_count_star_over_sequences(self):
        spec = AggregateSpec.count_star()
        sequences = [
            (Event("A", 1), Event("B", 2)),
            (Event("A", 1), Event("B", 4)),
        ]
        assert spec.evaluate_sequences(sequences) == 2

    def test_sum_over_sequences(self):
        spec = AggregateSpec.sum("B", "price")
        sequences = [
            (Event("A", 1), Event("B", 2, {"price": 10.0})),
            (Event("A", 1), Event("B", 4, {"price": 5.0})),
        ]
        assert spec.evaluate_sequences(sequences) == 15.0

    def test_min_max_over_sequences(self):
        sequences = [
            (Event("A", 1, {"x": 3.0}), Event("B", 2, {"x": 10.0})),
            (Event("A", 1, {"x": 3.0}), Event("B", 4, {"x": 5.0})),
        ]
        assert AggregateSpec.min("B", "x").evaluate_sequences(sequences) == 5.0
        assert AggregateSpec.max("B", "x").evaluate_sequences(sequences) == 10.0

    def test_empty_sequence_set(self):
        assert AggregateSpec.count_star().evaluate_sequences([]) == 0
        assert AggregateSpec.sum("B", "x").evaluate_sequences([]) == 0.0
