"""Unit tests for context segmentation (Section 7.2)."""

from __future__ import annotations

import pytest

from repro.core import MultiContextExecutor, split_into_contexts
from repro.datasets import TaxiConfig, generate_taxi_stream
from repro.events import SlidingWindow
from repro.executor import ASeqExecutor
from repro.queries import Pattern, PredicateSet, Query, Workload


def mixed_workload() -> Workload:
    per_vehicle = PredicateSet.same("vehicle")
    short_window = SlidingWindow(size=30, slide=10)
    long_window = SlidingWindow(size=60, slide=60)
    queries = [
        Query(Pattern(["OakSt", "MainSt"]), short_window, predicates=per_vehicle, name="a1"),
        Query(Pattern(["OakSt", "MainSt", "WestSt"]), short_window, predicates=per_vehicle, name="a2"),
        Query(Pattern(["OakSt", "MainSt"]), long_window, name="b1"),
        Query(Pattern(["ElmSt", "ParkAve"]), long_window, name="b2"),
        Query(Pattern(["MainSt", "StateSt"]), short_window, predicates=per_vehicle, name="a3"),
    ]
    return Workload(queries, name="mixed")


class TestSplitIntoContexts:
    def test_groups_by_window_predicates_grouping(self):
        contexts = split_into_contexts(mixed_workload())
        assert len(contexts) == 2
        assert contexts[0].query_names == ("a1", "a2", "a3")
        assert contexts[1].query_names == ("b1", "b2")
        for context in contexts:
            assert context.workload.is_uniform()

    def test_uniform_workload_yields_single_context(self, traffic):
        contexts = split_into_contexts(traffic)
        assert len(contexts) == 1
        assert contexts[0].query_names == traffic.query_names()

    def test_group_by_differences_split_contexts(self):
        window = SlidingWindow(size=10, slide=5)
        workload = Workload(
            [
                Query(Pattern(["A", "B"]), window, group_by=("route",), name="g1"),
                Query(Pattern(["A", "B"]), window, name="g2"),
            ]
        )
        assert len(split_into_contexts(workload)) == 2

    def test_empty_workload(self):
        assert split_into_contexts(Workload()) == []


class TestMultiContextExecutor:
    @pytest.fixture
    def stream(self):
        return generate_taxi_stream(
            TaxiConfig(duration_seconds=90, reports_per_second=8, num_vehicles=5, seed=41)
        )

    def test_results_match_per_context_baselines(self, stream):
        workload = mixed_workload()
        executor = MultiContextExecutor(workload)
        report = executor.run(stream)

        for context in executor.contexts:
            baseline = ASeqExecutor(context.workload).run(stream)
            for result in baseline.results:
                expected = result.value if result.value is not None else 0
                assert report.results.value(
                    result.query_name, result.window, result.group
                ) == expected

    def test_plans_are_recorded_per_context(self, stream):
        executor = MultiContextExecutor(mixed_workload())
        executor.run(stream)
        assert all(context.optimization is not None for context in executor.contexts)
        # The per-vehicle context has (OakSt, MainSt) shared by a1 and a2 when
        # beneficial; either way the recorded plan must be valid for its context.
        from repro.core import ConflictDetector

        for context in executor.contexts:
            assert context.plan.is_valid(ConflictDetector(context.workload))

    def test_metrics_aggregate_over_contexts(self, stream):
        executor = MultiContextExecutor(mixed_workload())
        report = executor.run(stream)
        # Every context scans the stream once.
        assert report.metrics.total_events == len(stream) * len(executor.contexts)
        assert report.metrics.results_emitted == len(report.results)

    def test_explicit_rates_are_used(self, stream):
        from repro.utils import RateCatalog

        rates = RateCatalog.from_stream(stream, per="time-unit")
        executor = MultiContextExecutor(mixed_workload(), rates=rates)
        contexts = executor.optimize(rates)
        assert len(contexts) == 2
        report = executor.run(stream)
        assert len(report.results) > 0
