"""Group-sharded execution: planner edge cases, fan-out, and merge semantics.

The differential grid (`tests/integration/test_oracle_differential.py`)
pins sharded runs against the brute-force oracle on randomized scenarios;
this module pins the deliberately awkward shard-planning shapes — one group
with many shards, groups ≪ shards, heavily skewed group sizes — plus the
engine-level contracts: ``shards=1`` is *exactly* the unsharded engine,
merges are deterministic, the layer is spawn-safe, and unshardable
workloads fall back in-process.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import SharingPlan
from repro.datasets.synthetic import ChainConfig, chain_stream, chain_workload
from repro.events import EventStream, SlidingWindow
from repro.executor import (
    ASeqExecutor,
    ShardPlanner,
    ShardedEngine,
    SharonExecutor,
    stable_group_hash,
)
from repro.queries import Pattern, PredicateSet, Query, Workload

from ..conftest import random_maximal_plan


def many_group_setup(num_entities: int = 12, duration: int = 30):
    """A small multi-group workload + stream (one group per entity)."""
    config = ChainConfig(num_event_types=8)
    workload = chain_workload(
        6,
        3,
        config=config,
        window=SlidingWindow(size=20, slide=10),
        seed=5,
        offset_pool_size=2,
    )
    stream = chain_stream(
        duration=duration,
        events_per_second=30.0,
        config=config,
        num_entities=num_entities,
        seed=6,
        name="sharding-unit",
    )
    return workload, stream


# ---------------------------------------------------------------------------
# ShardPlanner
# ---------------------------------------------------------------------------


class TestShardPlanner:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ShardPlanner(0)
        with pytest.raises(ValueError):
            ShardPlanner(2, strategy="round-robin")

    def test_single_group_with_many_shards(self):
        """One group cannot be split: one shard takes it all, skew is maximal."""
        plan = ShardPlanner(4).plan({("solo",): 100})
        assert plan.shards == 4
        assert plan.assignment == {("solo",): plan.shard_of(("solo",))}
        assert sorted(plan.groups_per_shard, reverse=True) == [1, 0, 0, 0]
        assert max(plan.events_per_shard) == 100
        assert plan.skew == pytest.approx(4.0)

    def test_fewer_groups_than_shards(self):
        """Groups ≪ shards: every group gets its own shard, the rest stay empty."""
        counts = {("a",): 10, ("b",): 20, ("c",): 30}
        plan = ShardPlanner(8).plan(counts)
        shards_used = set(plan.assignment.values())
        assert len(shards_used) == len(counts)  # never doubled up
        assert sum(plan.groups_per_shard) == len(counts)
        assert plan.events_per_shard.count(0) == 8 - len(counts)

    def test_greedy_balances_skewed_group_sizes(self):
        """LPT keeps the heaviest shard near ideal under heavy skew."""
        counts = {(f"g{i}",): count for i, count in enumerate([100, 90, 80, 70, 1, 1, 1, 1])}
        plan = ShardPlanner(4, strategy="greedy").plan(counts)
        # Ideal load is 86; greedy lands the four big groups on four shards.
        assert max(plan.events_per_shard) <= 101
        assert plan.skew <= 1.25

    def test_greedy_beats_hash_on_skew(self):
        """The planner's reason to exist: count-balanced beats stateless hash.

        The group keys are chosen (deterministically, in-test) so the stable
        hash collides the two heaviest groups onto one shard — the failure
        mode hash sharding cannot avoid and greedy planning cannot hit.
        """
        shards = 4
        keys = [(f"entity-{i}",) for i in range(64)]
        target = stable_group_hash(keys[0]) % shards
        colliding = [key for key in keys if stable_group_hash(key) % shards == target]
        assert len(colliding) >= 2, "need two colliding keys for the skew setup"
        heavy = colliding[:2]
        counts = {key: 1 for key in keys[:8]}
        counts[heavy[0]] = 500
        counts[heavy[1]] = 500
        greedy = ShardPlanner(shards, strategy="greedy").plan(counts)
        hashed = ShardPlanner(shards, strategy="hash").plan(counts)
        # Greedy is optimal here: the heaviest shard carries exactly one of
        # the two dominant groups; hash stacks both on one shard.
        assert max(greedy.events_per_shard) == max(counts.values())
        assert max(hashed.events_per_shard) == 2 * max(counts.values())
        assert hashed.skew >= 1.9 * greedy.skew

    def test_hash_assignment_is_stable_and_complete(self):
        counts = {(f"k{i}",): i + 1 for i in range(10)}
        first = ShardPlanner(3, strategy="hash").plan(counts)
        second = ShardPlanner(3, strategy="hash").plan(counts)
        assert first.assignment == second.assignment
        assert set(first.assignment) == set(counts)
        assert all(0 <= shard < 3 for shard in first.assignment.values())

    def test_greedy_is_deterministic_under_ties(self):
        counts = {(f"t{i}",): 7 for i in range(9)}
        plans = [ShardPlanner(3).plan(dict(counts)) for _ in range(3)]
        assert plans[0].assignment == plans[1].assignment == plans[2].assignment
        assert plans[0].groups_per_shard == (3, 3, 3)

    def test_empty_counts_plan(self):
        plan = ShardPlanner(3).plan({})
        assert plan.assignment == {}
        assert plan.skew == 1.0
        assert plan.groups_per_shard == (0, 0, 0)


# ---------------------------------------------------------------------------
# ShardedEngine
# ---------------------------------------------------------------------------


class TestShardedEngine:
    def test_shards_one_is_exactly_the_unsharded_engine(self):
        """``shards=1`` must degrade to the in-process engine: same results
        and metric-for-metric equality up to timing/memory noise."""
        workload, stream = many_group_setup()
        plan = random_maximal_plan(workload, 5)
        unsharded = SharonExecutor(workload, plan=plan).run(stream)
        degraded = SharonExecutor(workload, plan=plan, shards=1).run(stream)
        assert degraded.results.matches(unsharded.results)
        mine = dataclasses.asdict(degraded.metrics)
        theirs = dataclasses.asdict(unsharded.metrics)
        for noisy in ("elapsed_seconds", "peak_memory_bytes"):
            mine.pop(noisy)
            theirs.pop(noisy)
        assert mine == theirs
        assert degraded.metrics.shards == 1
        assert degraded.metrics.groups_per_shard == ()

    @pytest.mark.parametrize("strategy", ["greedy", "hash"])
    def test_sharded_results_match_unsharded(self, strategy):
        workload, stream = many_group_setup()
        plan = random_maximal_plan(workload, 5)
        unsharded = SharonExecutor(workload, plan=plan).run(stream)
        sharded = SharonExecutor(
            workload, plan=plan, shards=3, shard_strategy=strategy
        ).run(stream)
        assert sharded.results.matches(unsharded.results)
        assert sharded.metrics.shards == 3
        assert sum(sharded.metrics.groups_per_shard) == 12
        assert sharded.metrics.relevant_events == unsharded.metrics.relevant_events
        assert sharded.metrics.windows_finalized == unsharded.metrics.windows_finalized
        assert sharded.metrics.results_emitted == unsharded.metrics.results_emitted

    def test_serial_mode_equals_parallel_mode(self):
        """``parallel=False`` (no worker processes) is the same computation."""
        workload, stream = many_group_setup()
        plan = random_maximal_plan(workload, 5)
        parallel = ShardedEngine(workload, plan=plan, shards=3).run(stream)
        serial = ShardedEngine(workload, plan=plan, shards=3, parallel=False).run(stream)
        assert serial.results.matches(parallel.results)
        assert serial.metrics.groups_per_shard == parallel.metrics.groups_per_shard

    def test_merge_order_is_deterministic(self):
        workload, stream = many_group_setup()
        plan = random_maximal_plan(workload, 5)
        executor = SharonExecutor(workload, plan=plan, shards=3)
        first = [result.key for result in executor.run(stream).results]
        second = [result.key for result in executor.run(stream).results]
        assert first and first == second

    def test_spawn_start_method_round_trip(self):
        """The layer must be spawn-safe: kernels rebuild inside the workers."""
        workload, stream = many_group_setup(num_entities=6, duration=12)
        plan = random_maximal_plan(workload, 5)
        unsharded = SharonExecutor(workload, plan=plan).run(stream)
        spawned = SharonExecutor(
            workload, plan=plan, shards=2, start_method="spawn"
        ).run(stream)
        assert spawned.results.matches(unsharded.results)
        assert spawned.metrics.shards == 2

    def test_sharding_composes_with_panes_and_scalar_ingestion(self):
        workload, stream = many_group_setup()
        plan = random_maximal_plan(workload, 5)
        reference = SharonExecutor(workload, plan=plan).run(stream)
        for toggles in ({"panes": True}, {"columnar": False}, {"compaction": False}):
            sharded = SharonExecutor(workload, plan=plan, shards=2, **toggles).run(stream)
            assert sharded.results.matches(reference.results), toggles

    def test_ungrouped_workload_falls_back_in_process(self):
        """No partition attributes → nothing to shard → unsharded report."""
        window = SlidingWindow(size=20, slide=10)
        workload = Workload(
            [Query(Pattern(("T0", "T1")), window, name="ungrouped")]
        )
        _, stream = many_group_setup()
        sharded = SharonExecutor(workload, plan=SharingPlan(), shards=4).run(stream)
        unsharded = SharonExecutor(workload, plan=SharingPlan()).run(stream)
        assert sharded.results.matches(unsharded.results)
        assert sharded.metrics.shards == 1
        assert sharded.metrics.shard_skew == 0.0

    def test_single_group_stream_falls_back_in_process(self):
        """K shards but one observed group: the plan cannot split, so the
        engine runs in-process instead of paying fan-out for nothing."""
        workload, _ = many_group_setup()
        stream = chain_stream(
            duration=30,
            events_per_second=10.0,
            config=ChainConfig(num_event_types=8),
            num_entities=1,
            seed=6,
        )
        sharded = SharonExecutor(
            workload, plan=random_maximal_plan(workload, 5), shards=4
        ).run(stream)
        assert sharded.metrics.shards == 1

    def test_generator_streams_are_sliceable(self):
        """Non-EventStream iterables shard too (batches are materialised once)."""
        workload, stream = many_group_setup()
        plan = random_maximal_plan(workload, 5)
        unsharded = SharonExecutor(workload, plan=plan).run(stream)
        sharded = SharonExecutor(workload, plan=plan, shards=2).run(iter(list(stream)))
        assert sharded.results.matches(unsharded.results)

    def test_aseq_shards_too(self):
        workload, stream = many_group_setup()
        unsharded = ASeqExecutor(workload).run(stream)
        sharded = ASeqExecutor(workload, shards=3).run(stream)
        assert sharded.results.matches(unsharded.results)
        assert sharded.metrics.shards == 3

    def test_rejects_bad_shard_count(self):
        workload, _ = many_group_setup()
        with pytest.raises(ValueError):
            ShardedEngine(workload, plan=SharingPlan(), shards=0)
        with pytest.raises(ValueError):
            SharonExecutor(workload, plan=SharingPlan(), shards=0)
        with pytest.raises(ValueError):
            ASeqExecutor(workload, shards=-2)

    def test_rejects_bad_strategy_at_construction(self):
        """A typoed strategy must fail up front, not at (or after) run()."""
        workload, _ = many_group_setup()
        with pytest.raises(ValueError):
            ShardedEngine(workload, plan=SharingPlan(), shards=2, strategy="lpt")
        with pytest.raises(ValueError):
            SharonExecutor(
                workload, plan=SharingPlan(), shards=2, shard_strategy="lpt"
            )

    def test_equivalence_predicates_partition_like_group_by(self):
        """Sharding keys on *partition* attributes: equivalence predicates and
        GROUP BY both shard, and grouped results stay keyed per group."""
        window = SlidingWindow(size=12, slide=6)
        predicates = PredicateSet.same("entity")
        workload = Workload(
            [
                Query(
                    Pattern(("A", "B")),
                    window,
                    predicates=predicates,
                    group_by=("region",),
                    name="e1",
                ),
                Query(
                    Pattern(("B", "C")),
                    window,
                    predicates=predicates,
                    group_by=("region",),
                    name="e2",
                ),
            ]
        )
        rows = []
        for timestamp in range(24):
            for entity in range(6):
                rows.append(
                    (
                        "ABC"[(timestamp + entity) % 3],
                        timestamp,
                        {"entity": entity, "region": entity % 2},
                    )
                )
        from repro.events import Event

        stream = EventStream(
            [Event(t, ts, attrs, i) for i, (t, ts, attrs) in enumerate(rows)]
        )
        unsharded = SharonExecutor(workload, plan=SharingPlan()).run(stream)
        sharded = SharonExecutor(workload, plan=SharingPlan(), shards=3).run(stream)
        assert sharded.results.matches(unsharded.results)
        assert sharded.metrics.shards == 3


class TestMergeSemantics:
    """The shard-metrics merge must sum numerators/denominators, never ratios.

    ``events_per_pane``, ``throughput_events_per_second``, and
    ``avg_latency_ms`` are :class:`RunMetrics` *properties* derived from the
    additive fields, so a correct merge produces the ratio **of the sums**.
    These tests pin that contract so nobody "optimises" the merge into
    summing (or averaging) the per-shard ratio values.
    """

    def test_ratio_properties_recompute_from_summed_fields(self):
        from repro.executor.metrics import RunMetrics

        shard_a = RunMetrics("s", relevant_events=10, panes_created=2)
        shard_b = RunMetrics("s", relevant_events=30, panes_created=3)
        merged = RunMetrics(
            "s",
            relevant_events=shard_a.relevant_events + shard_b.relevant_events,
            panes_created=shard_a.panes_created + shard_b.panes_created,
        )
        # Ratio of sums: 40 / 5 = 8.0 ...
        assert merged.events_per_pane == 8.0
        # ... which is neither the sum nor the mean of the per-shard ratios.
        assert merged.events_per_pane != shard_a.events_per_pane + shard_b.events_per_pane
        assert merged.events_per_pane != (shard_a.events_per_pane + shard_b.events_per_pane) / 2

    def test_latency_and_throughput_derive_from_merged_fields(self):
        from repro.executor.metrics import RunMetrics

        merged = RunMetrics(
            "s", total_events=1000, elapsed_seconds=2.0, windows_finalized=8
        )
        assert merged.throughput_events_per_second == 500.0
        assert merged.avg_latency_ms == 2.0 / 8 * 1000.0

    def test_sharded_pane_run_reports_ratio_of_sums(self):
        workload, stream = many_group_setup()
        plan = random_maximal_plan(workload, 5)
        sharded = SharonExecutor(workload, plan=plan, shards=3, panes=True).run(stream)
        metrics = sharded.metrics
        assert metrics.panes_created > 0
        assert metrics.events_per_pane == metrics.relevant_events / metrics.panes_created
        assert metrics.avg_latency_ms == pytest.approx(
            metrics.elapsed_seconds / metrics.windows_finalized * 1000.0
        )

    def test_lateness_counters_participate_in_the_merge(self):
        """events_late/events_dropped are additive and survive the merge
        (zero in a sorted sharded run, but present — not dropped)."""
        workload, stream = many_group_setup()
        plan = random_maximal_plan(workload, 5)
        sharded = SharonExecutor(workload, plan=plan, shards=2).run(stream)
        assert sharded.metrics.events_late == 0
        assert sharded.metrics.events_dropped == 0

    def test_executors_reject_disorder_with_shards(self):
        workload, _ = many_group_setup()
        with pytest.raises(ValueError, match="max_lateness"):
            SharonExecutor(
                workload, plan=SharingPlan(), shards=2, max_lateness=4
            )
        with pytest.raises(ValueError, match="max_lateness"):
            ASeqExecutor(workload, shards=2, max_lateness=4)
