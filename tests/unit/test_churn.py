"""Unit tests for live query churn: ops, schedules, scripts, session semantics.

The end-to-end correctness of attach/detach (gates, truncation, state
migration) is pinned by the churn differential grid and the metamorphic
property suite; this module covers the surface itself — validation errors,
bookkeeping, script parsing, and the engine-session API contracts described
in ``docs/churn.md``.
"""

from __future__ import annotations

import pytest

from repro.core import SharingPlan
from repro.events import EventStream, SlidingWindow
from repro.executor import (
    ASeqExecutor,
    ChurnOp,
    ChurnSchedule,
    ChurnState,
    ResultSet,
    SharonExecutor,
    load_churn_script,
    parse_churn_script,
)
from repro.executor.engine import StreamingEngine
from repro.queries import Pattern, Query, Workload
from repro.replay import describe_churn_op


WINDOW = SlidingWindow(size=8, slide=4)


def make_query(name: str, types=("A", "B")) -> Query:
    return Query(Pattern(tuple(types)), WINDOW, name=name)


def make_engine(names=("q1", "q2"), **kwargs) -> StreamingEngine:
    workload = Workload([make_query(name) for name in names])
    return StreamingEngine(workload, plan=SharingPlan(), **kwargs)


class TestChurnOp:
    def test_attach_takes_its_name_from_the_query(self):
        op = ChurnOp("attach", 5, query=make_query("joiner"))
        assert op.query_name == "joiner"
        assert op.at == 5

    def test_rejects_unknown_kinds(self):
        with pytest.raises(ValueError, match="unknown churn op kind"):
            ChurnOp("upgrade", 5, query=make_query("q"))

    def test_rejects_negative_timestamps(self):
        with pytest.raises(ValueError, match="non-negative"):
            ChurnOp("detach", -1, query_name="q1")

    def test_attach_requires_a_query(self):
        with pytest.raises(ValueError, match="attach ops need a query"):
            ChurnOp("attach", 5)

    def test_detach_requires_a_query_name(self):
        with pytest.raises(ValueError, match="detach ops need a query_name"):
            ChurnOp("detach", 5)


class TestChurnSchedule:
    def test_sorts_by_timestamp_stably(self):
        ops = [
            ChurnOp("detach", 9, query_name="late"),
            ChurnOp("attach", 3, query=make_query("a")),
            ChurnOp("detach", 3, query_name="b"),
        ]
        schedule = ChurnSchedule(ops)
        assert [op.query_name for op in schedule] == ["a", "b", "late"]
        # Same-timestamp ops keep construction order (stable sort).
        assert [op.kind for op in schedule][:2] == ["attach", "detach"]

    def test_rejects_non_ops(self):
        with pytest.raises(TypeError, match="ChurnOp instances"):
            ChurnSchedule([("attach", 3)])

    def test_len_bool_iter(self):
        empty = ChurnSchedule()
        assert len(empty) == 0 and not empty
        schedule = ChurnSchedule([ChurnOp("detach", 1, query_name="q")])
        assert len(schedule) == 1 and schedule
        assert [op.at for op in schedule] == [1]


class TestChurnState:
    def test_gates_emission_by_attach_timestamp(self):
        state = ChurnState(["q1"])
        state.active.add("joiner")
        state.attach_timestamps["joiner"] = 8
        assert state.emits("q1", 0)  # initial queries have no gate
        assert not state.emits("joiner", 4)
        assert state.emits("joiner", 8)
        assert not state.emits("gone", 0)  # inactive names never emit

    def test_export_is_canonical(self):
        state = ChurnState(["b", "a"])
        state.attach_timestamps["b"] = 3
        state.record("attach", 3, "b", "fp")
        exported = state.export()
        assert exported["active"] == ["a", "b"]
        assert exported["attach_timestamps"] == [["b", 3]]
        assert exported["history"] == [{"op": "attach", "at": 3, "query": "b", "fingerprint": "fp"}]


class TestChurnScripts:
    VALID = """
    [
      {"op": "attach", "at": 12, "name": "spikes",
       "query": "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 SLIDE 5"},
      {"op": "detach", "at": 20, "name": "q1"}
    ]
    """

    def test_parses_attach_and_detach(self):
        schedule = parse_churn_script(self.VALID)
        assert len(schedule) == 2
        attach, detach = schedule
        assert attach.kind == "attach" and attach.query_name == "spikes"
        assert attach.query.window == SlidingWindow(size=10, slide=5)
        assert detach.kind == "detach" and detach.query_name == "q1" and detach.at == 20

    def test_load_reads_a_file(self, tmp_path):
        path = tmp_path / "churn.json"
        path.write_text(self.VALID, encoding="utf-8")
        assert len(load_churn_script(path)) == 2

    @pytest.mark.parametrize(
        ("text", "match"),
        [
            ("{not json", "not valid JSON"),
            ('{"op": "attach"}', "JSON array"),
            ('[42]', "JSON object"),
            ('[{"op": "detach", "name": "q", "at": "soon"}]', "integer 'at'"),
            ('[{"op": "detach", "name": "q", "at": true}]', "integer 'at'"),
            ('[{"op": "detach", "at": 3}]', "non-empty 'name'"),
            ('[{"op": "attach", "at": 3, "name": "q"}]', "needs a 'query'"),
            ('[{"op": "migrate", "at": 3, "name": "q"}]', "unknown 'op'"),
        ],
    )
    def test_rejects_malformed_scripts(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_churn_script(text)


class TestSetWorkload:
    def test_recompiles_and_returns_the_new_compilation(self):
        engine = make_engine(("q1", "q2"))
        grown = Workload([make_query("q1"), make_query("q2"), make_query("q3", ("C", "D"))])
        compiled = engine.set_workload(grown)
        assert compiled is engine.compiled
        assert engine.workload is grown
        assert "q3" in engine.workload

    def test_refuses_a_window_geometry_change(self):
        engine = make_engine(("q1", "q2"))
        wider = SlidingWindow(size=16, slide=4)
        swapped = Workload(
            [Query(Pattern(("A", "B")), wider, name=name) for name in ("q1", "q2")]
        )
        with pytest.raises(ValueError, match="window geometry"):
            engine.set_workload(swapped)

    def test_refuses_a_non_uniform_workload(self):
        engine = make_engine(("q1", "q2"))
        other = Query(Pattern(("A", "B")), SlidingWindow(size=16, slide=4), name="q3")
        with pytest.raises(ValueError, match="uniform workload"):
            engine.set_workload(Workload([make_query("q1"), other]))


@pytest.mark.parametrize("panes", [False, True], ids=["instances", "panes"])
class TestSessionChurnApi:
    """Contracts shared by both session classes (per-instance and pane mode)."""

    def _session(self, panes, names=("q1", "q2")):
        engine = make_engine(names, panes=panes)
        return engine, engine.new_session()

    def test_attach_records_gate_and_history(self, panes):
        engine, session = self._session(panes)
        effective = session.attach_query(make_query("joiner", ("C", "D")))
        assert effective == 0  # nothing processed yet: every batch is t >= 0
        assert session.attach_timestamps == {"joiner": 0}
        (entry,) = session.churn_history()
        assert (entry["op"], entry["at"], entry["query"]) == ("attach", 0, "joiner")
        assert entry["fingerprint"]
        assert "joiner" in engine.workload

    def test_attach_rejects_duplicate_names(self, panes):
        _engine, session = self._session(panes)
        with pytest.raises(ValueError, match="duplicate query name"):
            session.attach_query(make_query("q1", ("C", "D")))

    def test_attach_rejects_a_different_window(self, panes):
        _engine, session = self._session(panes)
        other = Query(Pattern(("C", "D")), SlidingWindow(size=16, slide=4), name="joiner")
        with pytest.raises(ValueError, match="uniform workload"):
            session.attach_query(other)

    def test_churn_applies_between_batches_only(self, panes):
        engine, session = self._session(panes)
        stream = EventStream.from_tuples([("A", 0), ("B", 5)])
        for timestamp, _batch, groups in engine.routed_batches(stream, session.collector):
            session.step(timestamp, groups)
        with pytest.raises(ValueError, match="between batches"):
            session.attach_query(make_query("joiner", ("C", "D")), at=5)
        with pytest.raises(ValueError, match="between batches"):
            session.detach_query("q1", at=3)
        # The next free timestamp is fine.
        assert session.attach_query(make_query("joiner", ("C", "D")), at=6) == 6

    def test_detach_rejects_unknown_queries(self, panes):
        _engine, session = self._session(panes)
        with pytest.raises(ValueError, match="unknown query"):
            session.detach_query("nobody")

    def test_detach_rejects_emptying_the_workload(self, panes):
        _engine, session = self._session(panes, names=("only",))
        with pytest.raises(ValueError, match="last active query"):
            session.detach_query("only")

    def test_detach_clears_gate_and_appends_history(self, panes):
        engine, session = self._session(panes)
        session.attach_query(make_query("joiner", ("C", "D")))
        session.detach_query("joiner")
        assert session.attach_timestamps == {}
        kinds = [entry["op"] for entry in session.churn_history()]
        assert kinds == ["attach", "detach"]
        assert "joiner" not in engine.workload

    def test_apply_churn_op_dispatches(self, panes):
        _engine, session = self._session(panes)
        assert session.apply_churn_op(ChurnOp("attach", 4, query=make_query("j", ("C", "D")))) == 4
        assert session.apply_churn_op(ChurnOp("detach", 6, query_name="j")) == 6

    def test_restore_refuses_a_snapshot_with_different_churn(self, panes):
        engine, session = self._session(panes)
        session.attach_query(make_query("joiner", ("C", "D")))
        snapshot = session.export_state()
        fresh = make_engine(panes=panes).new_session()
        with pytest.raises(ValueError, match="churn history"):
            fresh.restore_state(snapshot)


class TestExecutorChurnWiring:
    def _scenario(self):
        workload = Workload([make_query("base")])
        joiner = make_query("joiner", ("C", "D"))
        schedule = ChurnSchedule([ChurnOp("attach", 4, query=joiner)])
        stream = EventStream.from_tuples(
            [("C", 1), ("D", 2), ("A", 3), ("C", 4), ("D", 5), ("B", 6), ("C", 8), ("D", 9)]
        )
        return workload, schedule, stream

    @pytest.mark.parametrize("executor_class", [SharonExecutor, ASeqExecutor])
    def test_churn_is_refused_with_sharding(self, executor_class):
        workload, schedule, _stream = self._scenario()
        kwargs = {"plan": SharingPlan()} if executor_class is SharonExecutor else {}
        with pytest.raises(ValueError, match="shards"):
            executor_class(workload, shards=2, churn=schedule, **kwargs)

    @pytest.mark.parametrize("executor_class", [SharonExecutor, ASeqExecutor])
    def test_attached_query_emits_only_gated_windows(self, executor_class):
        workload, schedule, stream = self._scenario()
        kwargs = {"plan": SharingPlan()} if executor_class is SharonExecutor else {}
        results = executor_class(workload, churn=schedule, **kwargs).run(stream).results
        joiner = ResultSet(r for r in results if r.query_name == "joiner").nonzero()
        assert joiner, "the attached query never emitted"
        assert all(r.window.start >= 4 for r in joiner)
        # The pre-attach (C, D) pair at t=1..2 lives only in windows starting
        # before the gate; the window at the gate counts the post-attach pairs.
        gated = SharonExecutor(Workload([make_query("joiner", ("C", "D"))]), plan=SharingPlan())
        reference = gated.run(stream).results
        expected = ResultSet(r for r in reference if r.window.start >= 4)
        assert ResultSet(r for r in results if r.query_name == "joiner").matches(expected)


class TestDescribeChurnOp:
    def test_attach_descriptions_carry_the_query_structure(self):
        op = ChurnOp("attach", 7, query=make_query("j", ("C", "D")))
        description = describe_churn_op(op)
        assert description["op"] == "attach"
        assert description["at"] == 7
        assert description["query"]["name"] == "j"
        assert description["query"]["pattern"] == ["C", "D"]

    def test_detach_descriptions_carry_only_the_name(self):
        description = describe_churn_op(ChurnOp("detach", 9, query_name="q1"))
        assert description == {"op": "detach", "at": 9, "query": "q1"}
