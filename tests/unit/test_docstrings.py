"""Public-API docstring coverage: no docstring-less symbol may ship.

The engine grew to four layers (routing → panes/scopes → shared/private
aggregation → sharding) with roughly ten user-facing toggles; the docs site
under ``docs/`` explains the architecture, but the first line of defence is
the API itself.  This test walks every module of ``repro.executor``,
``repro.events``, and ``repro.replay`` and asserts that each public class,
function, method, property, classmethod, and staticmethod carries a
docstring, so an undocumented addition fails CI instead of silently eroding
the surface.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro.events
import repro.executor
import repro.replay

#: The packages whose whole public surface must be documented, with the
#: minimum symbol count the walker must see (guards against silent no-ops).
AUDITED_PACKAGES = (
    (repro.executor, 40),
    (repro.events, 40),
    (repro.replay, 20),
)


def _documented(obj) -> bool:
    return bool((getattr(obj, "__doc__", None) or "").strip())


def _class_members(qualname: str, cls) -> "list[tuple[str, object]]":
    """The class's public callables/properties defined in its own body."""
    members = []
    for attribute, member in vars(cls).items():
        if attribute.startswith("_"):
            continue
        if isinstance(member, (staticmethod, classmethod)):
            members.append((f"{qualname}.{attribute}", member.__func__))
        elif isinstance(member, property):
            members.append((f"{qualname}.{attribute}", member.fget))
        elif callable(member):
            members.append((f"{qualname}.{attribute}", member))
    return members


def public_symbols(package) -> "list[tuple[str, object]]":
    """Every public symbol (and class member) defined inside ``package``."""
    symbols = []
    for info in pkgutil.iter_modules(package.__path__, package.__name__ + "."):
        module = importlib.import_module(info.name)
        symbols.append((info.name, module))
        for name in dir(module):
            if name.startswith("_"):
                continue
            obj = getattr(module, name)
            # Only audit where the symbol is *defined*; re-exports are the
            # defining module's responsibility.
            if getattr(obj, "__module__", None) != module.__name__:
                continue
            qualname = f"{info.name}.{name}"
            if inspect.isclass(obj):
                symbols.append((qualname, obj))
                symbols.extend(_class_members(qualname, obj))
            elif inspect.isfunction(obj):
                symbols.append((qualname, obj))
    return symbols


@pytest.mark.parametrize(
    ("package", "floor"), AUDITED_PACKAGES, ids=lambda p: getattr(p, "__name__", p)
)
def test_no_public_symbol_is_docstring_less(package, floor):
    symbols = public_symbols(package)
    # The walk must actually see the API (guards against a silent no-op).
    assert len(symbols) > floor, f"suspiciously few symbols audited in {package.__name__}"
    missing = sorted(name for name, obj in symbols if not _documented(obj))
    assert not missing, (
        f"{len(missing)} public symbols in {package.__name__} lack docstrings:\n  "
        + "\n  ".join(missing)
    )


def test_audit_covers_the_new_sharding_surface():
    """The walker must include the sharding layer (audit self-check)."""
    names = {name for name, _obj in public_symbols(repro.executor)}
    assert "repro.executor.sharding.ShardedEngine" in names
    assert "repro.executor.sharding.ShardedEngine.run" in names
    assert "repro.executor.sharding.ShardPlan.skew" in names


def test_audit_covers_the_kernel_surface():
    """The walker must include the kernel backend module (audit self-check).

    The module imports (and is therefore audited) regardless of whether the
    optional numpy dependency is installed — the seam itself is part of the
    public surface everywhere.
    """
    names = {name for name, _obj in public_symbols(repro.executor)}
    assert "repro.executor.kernels" in names
    assert "repro.executor.kernels.resolve_backend" in names
    assert "repro.executor.kernels.NumpyCountColumns" in names
    assert "repro.executor.kernels.NumpyCountColumns.extend_commit" in names
    assert "repro.executor.kernels.NumpyStateColumns.merge_cohorts" in names
    assert "repro.executor.kernels.NumpyPaneCountMatrix.fold" in names


def test_audit_covers_the_churn_surface():
    """The walker must include the live-churn layer (audit self-check)."""
    executor_names = {name for name, _obj in public_symbols(repro.executor)}
    assert "repro.executor.churn.ChurnOp" in executor_names
    assert "repro.executor.churn.ChurnSchedule" in executor_names
    assert "repro.executor.churn.ChurnState.emits" in executor_names
    assert "repro.executor.churn.parse_churn_script" in executor_names
    assert "repro.executor.engine.EngineSession.attach_query" in executor_names
    assert "repro.executor.engine.PaneEngineSession.detach_query" in executor_names
    replay_names = {name for name, _obj in public_symbols(repro.replay)}
    assert "repro.replay.checkpoint.describe_churn_op" in replay_names
    assert "repro.replay.runner.ReplayRunner.run" in replay_names
