"""Unit tests for the SASE-style query parser (repro.queries.parser)."""

from __future__ import annotations

import pytest

from repro.queries import AggregationKind, QueryParseError, parse_query


class TestParserHappyPath:
    def test_full_query(self):
        query = parse_query(
            "RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) WHERE [vehicle] "
            "GROUP BY route WITHIN 600 SLIDE 60",
            name="q1",
        )
        assert query.name == "q1"
        assert query.pattern.event_types == ("OakSt", "MainSt")
        assert query.aggregate.kind == AggregationKind.COUNT_STAR
        assert query.predicates.equivalence_attributes == ("vehicle",)
        assert query.group_by == ("route",)
        assert query.window.size == 600
        assert query.window.slide == 60

    def test_minimal_query_defaults(self):
        query = parse_query("PATTERN SEQ(A, B) WITHIN 10")
        assert query.aggregate.kind == AggregationKind.COUNT_STAR
        assert query.predicates.is_empty
        assert query.group_by == ()
        assert query.window.slide == 10  # defaults to tumbling

    def test_multiline_and_case_insensitive(self):
        query = parse_query(
            """
            return count(*)
            pattern seq(Laptop, Case)
            where [customer]
            within 1200 slide 60
            """.strip()
        )
        assert query.pattern.event_types == ("Laptop", "Case")

    def test_attribute_aggregates(self):
        assert parse_query("RETURN SUM(B.price) PATTERN SEQ(A,B) WITHIN 5").aggregate.kind == "SUM"
        assert parse_query("RETURN AVG(B.price) PATTERN SEQ(A,B) WITHIN 5").aggregate.kind == "AVG"
        assert parse_query("RETURN MIN(B.price) PATTERN SEQ(A,B) WITHIN 5").aggregate.kind == "MIN"
        assert parse_query("RETURN MAX(B.price) PATTERN SEQ(A,B) WITHIN 5").aggregate.kind == "MAX"
        count_e = parse_query("RETURN COUNT(B) PATTERN SEQ(A,B) WITHIN 5").aggregate
        assert count_e.kind == AggregationKind.COUNT and count_e.event_type == "B"

    def test_filter_predicates(self):
        query = parse_query(
            "PATTERN SEQ(Laptop, Case) WHERE [customer] AND Laptop.price > 1000 WITHIN 60"
        )
        assert len(query.predicates.filters) == 1
        filter_predicate = query.predicates.filters[0]
        assert filter_predicate.event_type == "Laptop"
        assert filter_predicate.attribute == "price"
        assert filter_predicate.value == 1000

    def test_literal_parsing(self):
        query = parse_query("PATTERN SEQ(A,B) WHERE speed >= 12.5 AND lane != fast WITHIN 60")
        assert query.predicates.filters[0].value == 12.5
        assert query.predicates.filters[1].value == "fast"


class TestParserErrors:
    def test_missing_pattern(self):
        with pytest.raises(QueryParseError, match="PATTERN"):
            parse_query("RETURN COUNT(*) WITHIN 10")

    def test_missing_within(self):
        with pytest.raises(QueryParseError, match="WITHIN"):
            parse_query("PATTERN SEQ(A, B)")

    def test_bad_pattern_clause(self):
        with pytest.raises(QueryParseError, match="SEQ"):
            parse_query("PATTERN (A, B) WITHIN 10")

    def test_empty_pattern(self):
        with pytest.raises(QueryParseError):
            parse_query("PATTERN SEQ() WITHIN 10")

    def test_bad_return_clause(self):
        with pytest.raises(QueryParseError):
            parse_query("RETURN TOTAL(x) PATTERN SEQ(A,B) WITHIN 10")

    def test_sum_requires_dotted_argument(self):
        with pytest.raises(QueryParseError, match="EventType.attribute"):
            parse_query("RETURN SUM(price) PATTERN SEQ(A,B) WITHIN 10")

    def test_bad_where_term(self):
        with pytest.raises(QueryParseError, match="WHERE term"):
            parse_query("PATTERN SEQ(A,B) WHERE vehicle ~~ 3 WITHIN 10")

    def test_bad_window_values(self):
        with pytest.raises(QueryParseError):
            parse_query("PATTERN SEQ(A,B) WITHIN soon")
        with pytest.raises(QueryParseError):
            parse_query("PATTERN SEQ(A,B) WITHIN 10 SLIDE often")

    def test_duplicate_clause(self):
        with pytest.raises(QueryParseError, match="duplicate"):
            parse_query("PATTERN SEQ(A,B) PATTERN SEQ(B,C) WITHIN 10")

    def test_text_before_first_clause(self):
        with pytest.raises(QueryParseError, match="before first clause"):
            parse_query("SELECT PATTERN SEQ(A,B) WITHIN 10")
