"""Unit tests for mid-run plan migration in the streaming engine (Section 7.4).

``StreamingEngine.set_plan`` may be called between timestamp batches (the
adaptive executor does this through the ``on_batch`` hook).  Scopes that are
already open keep the decomposition they were created with; scopes created
afterwards follow the new plan.  Results must therefore be identical to any
static run — these tests switch plans at several points of a stream and
compare against the non-shared baseline.
"""

from __future__ import annotations

import pytest

from repro.core import ConflictDetector, SharingCandidate, SharingPlan, build_candidates
from repro.datasets import ChainConfig, chain_stream, chain_workload
from repro.events import EventStream, SlidingWindow
from repro.executor import ASeqExecutor, StreamingEngine
from repro.queries import Pattern, Query, Workload

from ..conftest import make_events


def small_setup():
    window = SlidingWindow(size=20, slide=10)
    workload = Workload(
        [
            Query(Pattern(["A", "B", "C"]), window, name="m1"),
            Query(Pattern(["B", "C", "D"]), window, name="m2"),
            Query(Pattern(["A", "B"]), window, name="m3"),
        ]
    )
    rows = []
    for base in range(0, 80, 4):
        rows.extend([("A", base), ("B", base + 1), ("C", base + 2), ("D", base + 3)])
    return workload, EventStream(make_events(rows))


class TestSetPlan:
    def test_switching_plans_mid_stream_preserves_results(self):
        workload, stream = small_setup()
        shared_bc = SharingPlan([SharingCandidate(Pattern(["B", "C"]), ("m1", "m2"), 1.0)])
        shared_ab = SharingPlan([SharingCandidate(Pattern(["A", "B"]), ("m1", "m3"), 1.0)])
        baseline = ASeqExecutor(workload).run(stream)

        engine = StreamingEngine(workload, plan=shared_bc, name="migrating")
        switched_at = []

        def on_batch(timestamp, batch):
            if timestamp == 30:
                engine.set_plan(shared_ab)
                switched_at.append(timestamp)
            elif timestamp == 60:
                engine.set_plan(SharingPlan())
                switched_at.append(timestamp)

        report = engine.run(stream, on_batch=on_batch)
        assert switched_at == [30, 60]
        assert report.results.matches(baseline.results), report.results.differences(
            baseline.results
        )[:5]
        # The report carries the plan in force at the end of the run.
        assert report.plan == SharingPlan()

    def test_switch_every_slide_boundary(self):
        """Alternating plans aggressively still never changes any answer."""
        config = ChainConfig(num_event_types=8, entity_attribute="car")
        workload = chain_workload(
            6, 4, config=config, window=SlidingWindow(size=16, slide=8), seed=91,
            offset_pool_size=2,
        )
        stream = chain_stream(
            duration=80, events_per_second=6, config=config, num_entities=4, seed=92
        )
        detector = ConflictDetector(workload)
        candidates = [c.with_benefit(1.0) for c in build_candidates(workload)]
        plans = [SharingPlan()]
        for candidate in candidates:
            if all(
                not detector.in_conflict(candidate, other) for other in plans[-1].candidates
            ):
                plans.append(plans[-1].add(candidate))

        baseline = ASeqExecutor(workload).run(stream)
        engine = StreamingEngine(workload, plan=plans[0], name="migrating")
        state = {"next": 0}

        def on_batch(timestamp, batch):
            if timestamp % 8 == 7:
                state["next"] = (state["next"] + 1) % len(plans)
                engine.set_plan(plans[state["next"]])

        report = engine.run(stream, on_batch=on_batch)
        assert report.results.matches(baseline.results), report.results.differences(
            baseline.results
        )[:5]

    def test_on_batch_receives_every_timestamp_batch(self):
        workload, stream = small_setup()
        engine = StreamingEngine(workload)
        seen = []

        def on_batch(timestamp, batch):
            seen.append((timestamp, len(batch)))

        engine.run(stream, on_batch=on_batch)
        timestamps = [t for t, _ in seen]
        assert timestamps == sorted(set(e.timestamp for e in stream))
        assert sum(count for _, count in seen) == len(stream)

    def test_set_plan_validates_against_workload(self):
        workload, _ = small_setup()
        engine = StreamingEngine(workload)
        bogus = SharingPlan([SharingCandidate(Pattern(["X", "Y"]), ("m1", "m2"), 1.0)])
        with pytest.raises(ValueError, match="does not occur"):
            engine.set_plan(bogus)


class TestScopePoolingAcrossMigration:
    """Pooled scopes must never serve a compiled workload they were not built for,
    and compacted cohort state must never leak into a reused scope."""

    def _compiled_pair(self):
        from repro.executor import CompiledWorkload
        from repro.events.windows import WindowInstance

        workload, _ = small_setup()
        plan_a = SharingPlan([SharingCandidate(Pattern(["B", "C"]), ("m1", "m2"), 1.0)])
        plan_b = SharingPlan([SharingCandidate(Pattern(["A", "B"]), ("m1", "m3"), 1.0)])
        compiled_a = CompiledWorkload(workload, plan_a)
        compiled_b = CompiledWorkload(workload, plan_b)
        window = WindowInstance(0, 20)
        return compiled_a, compiled_b, window

    def test_pool_invalidated_when_compiled_workload_changes(self):
        from repro.executor import WindowGroupScope

        compiled_a, compiled_b, window = self._compiled_pair()
        retired = WindowGroupScope(compiled_a, window, ())
        pool = [retired]
        fresh = StreamingEngine._acquire_scope(pool, compiled_b, window, ())
        assert fresh is not retired
        assert fresh.compiled is compiled_b
        assert pool == []  # stale scopes dropped, not recycled later

    def test_pool_reuses_scope_for_same_compiled_workload(self):
        from repro.executor import WindowGroupScope
        from repro.events.windows import WindowInstance

        compiled_a, _, window = self._compiled_pair()
        retired = WindowGroupScope(compiled_a, window, ())
        retired.reset()
        pool = [retired]
        other_window = WindowInstance(20, 40)
        reused = StreamingEngine._acquire_scope(pool, compiled_a, other_window, ("g",))
        assert reused is retired
        assert reused.window == other_window
        assert reused.group == ("g",)

    def test_reset_scope_carries_no_compacted_cohorts(self):
        """A pooled scope starts from zero cohorts, carries, and compaction stats."""
        from repro.executor import WindowGroupScope

        # compiled_b shares the (A, B) *prefix* of m1 and m3: every runner's
        # carry is the unit state, so the explicit compact() below must merge.
        _, compiled_b, window = self._compiled_pair()
        scope = WindowGroupScope(compiled_b, window, ())
        rows = []
        for base in range(0, 18, 3):
            rows.extend([("A", base), ("B", base + 1), ("C", base + 2)])
        events = make_events(rows)
        index = 0
        while index < len(events):
            end = index
            while end < len(events) and events[end].timestamp == events[index].timestamp:
                end += 1
            scope.process_batch(events[index:end])
            index = end
        shared_state = next(iter(scope.shared_states.values()))
        assert shared_state.compact() > 0
        assert shared_state.cohorts_merged > 0 and shared_state.cohort_count > 0
        scope.reset()
        for state in scope.shared_states.values():
            assert state.cohort_count == 0
            assert state.cohorts_created == 0
            assert state.cohorts_merged == 0
            assert state.total_completed(state.specs[0]).count == 0
        for chain in scope.chains.values():
            assert chain.final_state().count == 0
            for runner in chain.runners:
                if hasattr(runner, "carries"):
                    assert runner.carries == []

    def test_migration_with_compaction_preserves_results_under_pooling(self):
        """Sliding windows force scope reuse; alternating plans force pool
        invalidation; compaction stays on throughout.  Results must equal the
        non-shared baseline run."""
        config = ChainConfig(num_event_types=6, entity_attribute="car")
        workload = chain_workload(
            5, 3, config=config, window=SlidingWindow(size=16, slide=4), seed=17,
            offset_pool_size=2,
        )
        stream = chain_stream(
            duration=120, events_per_second=8, config=config, num_entities=3, seed=18
        )
        detector = ConflictDetector(workload)
        plans = [SharingPlan()]
        for candidate in build_candidates(workload):
            candidate = candidate.with_benefit(1.0)
            if all(
                not detector.in_conflict(candidate, other) for other in plans[-1].candidates
            ):
                plans.append(plans[-1].add(candidate))

        baseline = ASeqExecutor(workload).run(stream)
        engine = StreamingEngine(workload, plan=plans[-1], name="pooled", compaction=True)
        state = {"next": 0}

        def on_batch(timestamp, batch):
            if timestamp % 12 == 11:
                state["next"] = (state["next"] + 1) % len(plans)
                engine.set_plan(plans[state["next"]])

        report = engine.run(stream, on_batch=on_batch)
        assert report.results.matches(baseline.results), report.results.differences(
            baseline.results
        )[:5]
