"""Unit tests for mid-run plan migration in the streaming engine (Section 7.4).

``StreamingEngine.set_plan`` may be called between timestamp batches (the
adaptive executor does this through the ``on_batch`` hook).  Scopes that are
already open keep the decomposition they were created with; scopes created
afterwards follow the new plan.  Results must therefore be identical to any
static run — these tests switch plans at several points of a stream and
compare against the non-shared baseline.
"""

from __future__ import annotations

import pytest

from repro.core import ConflictDetector, SharingCandidate, SharingPlan, build_candidates
from repro.datasets import ChainConfig, chain_stream, chain_workload
from repro.events import EventStream, SlidingWindow
from repro.executor import ASeqExecutor, StreamingEngine
from repro.queries import Pattern, Query, Workload

from ..conftest import make_events


def small_setup():
    window = SlidingWindow(size=20, slide=10)
    workload = Workload(
        [
            Query(Pattern(["A", "B", "C"]), window, name="m1"),
            Query(Pattern(["B", "C", "D"]), window, name="m2"),
            Query(Pattern(["A", "B"]), window, name="m3"),
        ]
    )
    rows = []
    for base in range(0, 80, 4):
        rows.extend([("A", base), ("B", base + 1), ("C", base + 2), ("D", base + 3)])
    return workload, EventStream(make_events(rows))


class TestSetPlan:
    def test_switching_plans_mid_stream_preserves_results(self):
        workload, stream = small_setup()
        shared_bc = SharingPlan([SharingCandidate(Pattern(["B", "C"]), ("m1", "m2"), 1.0)])
        shared_ab = SharingPlan([SharingCandidate(Pattern(["A", "B"]), ("m1", "m3"), 1.0)])
        baseline = ASeqExecutor(workload).run(stream)

        engine = StreamingEngine(workload, plan=shared_bc, name="migrating")
        switched_at = []

        def on_batch(timestamp, batch):
            if timestamp == 30:
                engine.set_plan(shared_ab)
                switched_at.append(timestamp)
            elif timestamp == 60:
                engine.set_plan(SharingPlan())
                switched_at.append(timestamp)

        report = engine.run(stream, on_batch=on_batch)
        assert switched_at == [30, 60]
        assert report.results.matches(baseline.results), report.results.differences(
            baseline.results
        )[:5]
        # The report carries the plan in force at the end of the run.
        assert report.plan == SharingPlan()

    def test_switch_every_slide_boundary(self):
        """Alternating plans aggressively still never changes any answer."""
        config = ChainConfig(num_event_types=8, entity_attribute="car")
        workload = chain_workload(
            6, 4, config=config, window=SlidingWindow(size=16, slide=8), seed=91,
            offset_pool_size=2,
        )
        stream = chain_stream(
            duration=80, events_per_second=6, config=config, num_entities=4, seed=92
        )
        detector = ConflictDetector(workload)
        candidates = [c.with_benefit(1.0) for c in build_candidates(workload)]
        plans = [SharingPlan()]
        for candidate in candidates:
            if all(
                not detector.in_conflict(candidate, other) for other in plans[-1].candidates
            ):
                plans.append(plans[-1].add(candidate))

        baseline = ASeqExecutor(workload).run(stream)
        engine = StreamingEngine(workload, plan=plans[0], name="migrating")
        state = {"next": 0}

        def on_batch(timestamp, batch):
            if timestamp % 8 == 7:
                state["next"] = (state["next"] + 1) % len(plans)
                engine.set_plan(plans[state["next"]])

        report = engine.run(stream, on_batch=on_batch)
        assert report.results.matches(baseline.results), report.results.differences(
            baseline.results
        )[:5]

    def test_on_batch_receives_every_timestamp_batch(self):
        workload, stream = small_setup()
        engine = StreamingEngine(workload)
        seen = []

        def on_batch(timestamp, batch):
            seen.append((timestamp, len(batch)))

        engine.run(stream, on_batch=on_batch)
        timestamps = [t for t, _ in seen]
        assert timestamps == sorted(set(e.timestamp for e in stream))
        assert sum(count for _, count in seen) == len(stream)

    def test_set_plan_validates_against_workload(self):
        workload, _ = small_setup()
        engine = StreamingEngine(workload)
        bogus = SharingPlan([SharingCandidate(Pattern(["X", "Y"]), ("m1", "m2"), 1.0)])
        with pytest.raises(ValueError, match="does not occur"):
            engine.set_plan(bogus)
