"""Unit tests for the durable JSONL event log (repro.events.log)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import (
    Event,
    EventLogError,
    EventLogReader,
    EventLogWriter,
    EventStream,
    event_from_record,
    event_to_record,
    read_event_log,
    write_event_log,
)
from repro.events.log import LOG_FORMAT, LOG_VERSION


def make_events():
    return [
        Event("A", 1, {"entity": 7, "value": 2.5}, 0),
        Event("B", 1, {"entity": 7, "label": "x"}, 1),
        Event("A", 3, {"flag": True, "missing": None}, 2),
    ]


class TestEventCodec:
    def test_record_has_fixed_field_order(self):
        record = event_to_record(Event("A", 5, {"b": 1, "a": 2}, 9))
        assert list(record) == ["t", "type", "id", "attrs"]
        assert list(record["attrs"]) == ["a", "b"]

    def test_round_trip_preserves_event(self):
        for event in make_events():
            back = event_from_record(event_to_record(event))
            assert back.event_type == event.event_type
            assert back.timestamp == event.timestamp
            assert back.event_id == event.event_id
            assert back.attributes == event.attributes

    def test_encoding_is_canonical(self):
        # Attribute insertion order must not leak into the bytes.
        a = event_to_record(Event("A", 1, {"x": 1, "y": 2}, 0))
        b = event_to_record(Event("A", 1, {"y": 2, "x": 1}, 0))
        assert json.dumps(a) == json.dumps(b)

    def test_non_scalar_attribute_is_rejected(self):
        with pytest.raises(EventLogError, match="non-scalar"):
            event_to_record(Event("A", 1, {"bad": (1, 2)}, 0))
        with pytest.raises(EventLogError, match="non-scalar"):
            event_to_record(Event("A", 1, {"bad": {"nested": 1}}, 0))


class TestWriterReader:
    def test_write_then_read_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = make_events()
        written = write_event_log(events, path, stream_name="s")
        assert written == len(events)
        reader = EventLogReader(path)
        assert reader.stream_name == "s"
        assert [e.event_id for e in reader] == [0, 1, 2]
        assert reader.count_events() == len(events)

    def test_stream_round_trip_preserves_name_and_order(self, tmp_path):
        path = tmp_path / "events.jsonl"
        stream = EventStream(make_events(), name="taxi")
        write_event_log(stream, path)
        back = read_event_log(path)
        assert back.name == "taxi"
        assert list(back) == list(stream)

    def test_header_line_is_first_and_validated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_event_log(make_events(), path, stream_name="s")
        first = path.read_text(encoding="utf-8").splitlines()[0]
        header = json.loads(first)
        assert header == {"format": LOG_FORMAT, "version": LOG_VERSION, "stream": "s"}

    def test_log_bytes_are_deterministic(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_event_log(make_events(), a, stream_name="s")
        write_event_log(make_events(), b, stream_name="s")
        assert a.read_bytes() == b.read_bytes()

    def test_events_from_seeks(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = [Event("A", i, {"n": i}, i) for i in range(10)]
        write_event_log(events, path)
        reader = EventLogReader(path)
        assert [e.event_id for e in reader.events_from(7)] == [7, 8, 9]
        assert list(reader.events_from(10)) == []
        with pytest.raises(ValueError):
            list(reader.events_from(-1))

    def test_writer_append_and_context_manager(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogWriter(path, stream_name="s", fsync_every=2) as writer:
            for event in make_events():
                writer.append(event)
            assert writer.events_written == 3
        # close() is idempotent and a closed writer refuses appends.
        writer.close()
        with pytest.raises(EventLogError, match="closed"):
            writer.append(Event("A", 9, event_id=99))
        assert EventLogReader(path).count_events() == 3

    def test_writer_rejects_negative_fsync_batch(self, tmp_path):
        with pytest.raises(ValueError):
            EventLogWriter(tmp_path / "x.jsonl", fsync_every=-1)

    def test_reader_rejects_missing_header(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(EventLogError, match="header"):
            EventLogReader(path)

    def test_reader_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"not": "a log"}\n', encoding="utf-8")
        with pytest.raises(EventLogError, match=LOG_FORMAT):
            EventLogReader(path)

    def test_reader_rejects_version_skew(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"format": LOG_FORMAT, "version": LOG_VERSION + 1, "stream": "s"})
            + "\n",
            encoding="utf-8",
        )
        with pytest.raises(EventLogError, match="version"):
            EventLogReader(path)

    def test_reader_rejects_unparseable_header(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(EventLogError, match="unparseable"):
            EventLogReader(path)


# -- property tests -----------------------------------------------------------

attr_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)

events_strategy = st.lists(
    st.builds(
        lambda ts, etype, attrs: (ts, etype, attrs),
        st.integers(min_value=0, max_value=50),
        st.sampled_from(["A", "B", "C"]),
        st.dictionaries(st.text(min_size=1, max_size=6), attr_values, max_size=4),
    ),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(rows=events_strategy)
def test_log_round_trip_property(rows, tmp_path_factory):
    """Any scalar-attributed stream round-trips through the log exactly."""
    events = [Event(etype, ts, attrs, event_id) for event_id, (ts, etype, attrs) in enumerate(rows)]
    stream = EventStream(events, name="prop")
    path = tmp_path_factory.mktemp("log") / "events.jsonl"
    write_event_log(stream, path)
    back = read_event_log(path)
    assert len(back) == len(stream)
    for original, restored in zip(stream, back):
        assert restored.event_type == original.event_type
        assert restored.timestamp == original.timestamp
        assert restored.event_id == original.event_id
        assert restored.attributes == original.attributes


@settings(max_examples=60, deadline=None)
@given(rows=events_strategy)
def test_event_codec_round_trip_property(rows):
    """event_to_record/event_from_record are exact inverses on scalar attrs."""
    for event_id, (ts, etype, attrs) in enumerate(rows):
        event = Event(etype, ts, attrs, event_id)
        restored = event_from_record(json.loads(json.dumps(event_to_record(event))))
        assert restored.attributes == event.attributes
        assert (restored.event_type, restored.timestamp, restored.event_id) == (
            event.event_type,
            event.timestamp,
            event.event_id,
        )
