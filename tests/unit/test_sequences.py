"""Unit tests for explicit sequence construction (two-step substrate)."""

from __future__ import annotations

import pytest

from repro.events import SlidingWindow
from repro.executor import (
    count_pattern_matches,
    enumerate_pattern_matches,
    enumerate_query_matches,
    join_sequences,
)
from repro.queries import Pattern, PredicateSet, Query

from ..conftest import make_events


class TestEnumeratePatternMatches:
    def test_simple_enumeration(self):
        events = make_events([("A", 1), ("B", 2), ("A", 3), ("B", 4)])
        matches = enumerate_pattern_matches(Pattern(["A", "B"]), events)
        timestamps = {(m[0].timestamp, m[1].timestamp) for m in matches}
        assert timestamps == {(1, 2), (1, 4), (3, 4)}

    def test_strictly_increasing_timestamps(self):
        events = make_events([("A", 1), ("B", 1)])
        assert enumerate_pattern_matches(Pattern(["A", "B"]), events) == []

    def test_no_matches_without_start(self):
        events = make_events([("B", 1), ("B", 2)])
        assert enumerate_pattern_matches(Pattern(["A", "B"]), events) == []

    def test_three_step_pattern(self):
        events = make_events([("A", 1), ("B", 2), ("C", 3), ("B", 4), ("C", 5)])
        matches = enumerate_pattern_matches(Pattern(["A", "B", "C"]), events)
        assert len(matches) == 3  # (1,2,3), (1,2,5), (1,4,5)

    def test_repeated_type_pattern(self):
        events = make_events([("A", 1), ("A", 2), ("A", 3)])
        matches = enumerate_pattern_matches(Pattern(["A", "A"]), events)
        assert len(matches) == 3

    def test_count_matches_agrees_with_enumeration(self):
        events = make_events(
            [("A", 1), ("B", 2), ("A", 2), ("C", 3), ("B", 4), ("C", 4), ("C", 6)]
        )
        for pattern in (Pattern(["A", "B"]), Pattern(["A", "B", "C"]), Pattern(["B", "C"])):
            assert count_pattern_matches(pattern, events) == len(
                enumerate_pattern_matches(pattern, events)
            )


class TestJoinSequences:
    def test_temporal_join_requires_strict_order(self):
        left = enumerate_pattern_matches(
            Pattern(["A", "B"]), make_events([("A", 1), ("B", 2), ("B", 5)])
        )
        right = enumerate_pattern_matches(
            Pattern(["C", "D"]), make_events([("C", 3), ("D", 4)])
        )
        joined = join_sequences(left, right)
        # Only the (a1, b2) prefix ends before c3.
        assert len(joined) == 1
        assert [e.event_type for e in joined[0]] == ["A", "B", "C", "D"]

    def test_join_with_empty_side(self):
        some_sequence = tuple(make_events([("A", 1)]))
        assert join_sequences([], [some_sequence]) == []
        assert join_sequences([some_sequence], []) == []

    def test_join_equals_direct_enumeration(self):
        events = make_events(
            [("A", 1), ("B", 2), ("C", 3), ("D", 4), ("A", 5), ("B", 6), ("C", 7), ("D", 8)]
        )
        direct = enumerate_pattern_matches(Pattern(["A", "B", "C", "D"]), events)
        joined = join_sequences(
            enumerate_pattern_matches(Pattern(["A", "B"]), events),
            enumerate_pattern_matches(Pattern(["C", "D"]), events),
        )
        assert {tuple(e.timestamp for e in m) for m in joined} == {
            tuple(e.timestamp for e in m) for m in direct
        }


class TestEnumerateQueryMatches:
    def test_predicates_filter_matches(self):
        query = Query(
            pattern=Pattern(["A", "B"]),
            window=SlidingWindow(size=10, slide=5),
            predicates=PredicateSet.same("vehicle"),
            name="q_pred",
        )
        events = make_events(
            [
                ("A", 1, {"vehicle": 1}),
                ("B", 2, {"vehicle": 1}),
                ("B", 3, {"vehicle": 2}),
            ]
        )
        matches = enumerate_query_matches(query, events)
        assert len(matches) == 1
        unchecked = enumerate_query_matches(query, events, check_predicates=False)
        assert len(unchecked) == 2
