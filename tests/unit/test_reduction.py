"""Unit tests for Sharon graph reduction (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core import (
    SharingCandidate,
    SharonGraph,
    find_optimal_plan,
    reduce_sharon_graph,
    reduction_search_space_savings,
)
from repro.queries import Pattern


def candidate(index, benefit, queries=("q1", "q2")):
    return SharingCandidate(Pattern([f"A{index}", f"B{index}"]), tuple(queries), benefit)


def build_graph(weights, edges):
    vertices = [candidate(i, w) for i, w in enumerate(weights)]
    graph = SharonGraph(vertices)
    for i, j in edges:
        graph.add_edge(vertices[i], vertices[j])
    return graph, vertices


class TestReductionMechanics:
    def test_conflict_free_candidates_committed(self):
        graph, vertices = build_graph([5.0, 3.0, 2.0], [(1, 2)])
        result = reduce_sharon_graph(graph)
        assert vertices[0] in result.conflict_free
        assert vertices[0] not in result.reduced_graph
        assert result.guaranteed_weight == pytest.approx(graph.gwmin_guaranteed_weight())

    def test_input_graph_not_modified(self):
        graph, _ = build_graph([5.0, 3.0, 2.0], [(1, 2)])
        reduce_sharon_graph(graph)
        assert len(graph) == 3

    def test_conflict_ridden_candidate_pruned(self):
        # Vertex 0 is huge and conflict-free-ish (no conflicts); vertex 1 and 2
        # conflict with each other and are tiny, so any plan containing them
        # cannot reach the GWMIN guarantee driven by vertex 0 ... but since
        # they do not conflict with vertex 0, their Scoremax includes it.
        # Make them conflict with vertex 0 instead so Scoremax drops.
        graph, vertices = build_graph([100.0, 1.0, 1.0], [(0, 1), (0, 2)])
        result = reduce_sharon_graph(graph)
        # Guarantee ~ 100/3 + 1/2 + 1/2 = 34.33; Scoremax(v1) = 1 + 1 = 2 < 34.33.
        assert vertices[1] in result.conflict_ridden
        assert vertices[2] in result.conflict_ridden
        # After pruning both, vertex 0 becomes conflict-free and is committed.
        assert vertices[0] in result.conflict_free
        assert len(result.reduced_graph) == 0
        assert result.pruned_count == 3

    def test_cascading_reduction(self):
        # Pruning a conflict-ridden vertex can make another vertex conflict-free.
        graph, vertices = build_graph([50.0, 1.0, 40.0], [(0, 1), (1, 2)])
        result = reduce_sharon_graph(graph)
        # Guarantee = 50/2 + 1/3 + 40/2 = 45.33; Scoremax(v1) = 1 < 45.33 -> pruned;
        # then v0 and v2 become conflict-free.
        assert vertices[1] in result.conflict_ridden
        assert set(result.conflict_free) == {vertices[0], vertices[2]}

    def test_reduction_preserves_optimal_plan(self):
        # The optimal plan over the original graph equals the optimal plan over
        # the reduced graph united with the conflict-free set.
        graph, vertices = build_graph(
            [7.0, 6.0, 5.0, 12.0, 1.0],
            [(0, 1), (1, 2), (0, 2), (0, 4)],
        )
        result = reduce_sharon_graph(graph)
        optimal_reduced = find_optimal_plan(result.reduced_graph, result.conflict_free)

        # Brute-force optimum over the original graph.
        import itertools

        best = 0.0
        for size in range(len(vertices) + 1):
            for subset in itertools.combinations(vertices, size):
                if graph.is_independent_set(subset):
                    best = max(best, sum(v.benefit for v in subset))
        assert optimal_reduced.score == pytest.approx(best)


class TestReductionOnPaperExample:
    def test_example_7_and_8(self, paper_graph):
        """p3 is conflict-ridden (Scoremax 38 < 38.57); p7 is conflict-free."""
        result = reduce_sharon_graph(paper_graph)
        ridden = {v.pattern.event_types for v in result.conflict_ridden}
        free = {v.pattern.event_types for v in result.conflict_free}
        assert ("ParkAve", "OakSt", "MainSt") in ridden
        assert ("ElmSt", "ParkAve") in free
        # The remaining reduced graph holds the other five candidates at most.
        assert len(result.reduced_graph) <= 5

    def test_example_9_search_space_savings(self, paper_graph):
        """Example 9: pruning 7 -> 5 candidates removes 75.59% of the space."""
        result = reduce_sharon_graph(paper_graph)
        remaining = len(result.reduced_graph)
        savings = reduction_search_space_savings(len(paper_graph), remaining)
        assert remaining == 5
        assert savings == pytest.approx(0.7559, abs=1e-3)


class TestSavingsHelper:
    def test_zero_when_nothing_pruned(self):
        assert reduction_search_space_savings(5, 5) == 0.0

    def test_full_when_everything_pruned(self):
        assert reduction_search_space_savings(5, 0) == pytest.approx(1.0)

    def test_rejects_growth(self):
        with pytest.raises(ValueError):
            reduction_search_space_savings(3, 4)
