"""Unit tests for the sharing benefit model (Equations 1-8)."""

from __future__ import annotations

import pytest

from repro.core import BenefitModel, SharingCandidate, build_candidates
from repro.events import SlidingWindow
from repro.queries import Pattern, Query, Workload
from repro.utils import RateCatalog


def make_query(types, name):
    return Query(pattern=Pattern(types), window=SlidingWindow(size=10, slide=5), name=name)


@pytest.fixture
def model():
    # Distinct rates so every equation's terms are distinguishable.
    return BenefitModel(RateCatalog({"A": 2.0, "B": 3.0, "C": 5.0, "D": 7.0, "E": 11.0}))


class TestNonSharedCost:
    def test_equation_2_single_query(self, model):
        # NonShared(p, qi) = Rate(E1) * Rate(Pi).
        query = make_query(["A", "B", "C"], "q1")
        assert model.non_shared_query_cost(Pattern(["A", "B"]), query) == 2.0 * (2 + 3 + 5)

    def test_equation_3_sums_over_queries(self, model):
        q1 = make_query(["A", "B", "C"], "q1")
        q2 = make_query(["B", "C", "D"], "q2")
        shared = Pattern(["B", "C"])
        expected = 2.0 * 10 + 3.0 * 15
        assert model.non_shared_cost(shared, [q1, q2]) == expected

    def test_pattern_rate_equation_1(self, model):
        assert model.pattern_rate(Pattern(["A", "C"])) == 7.0
        assert model.pattern_rate(Pattern.empty()) == 0.0


class TestSharedCost:
    def test_equation_4_prefix_and_suffix(self, model):
        # Query (A, B, C, D) sharing (B, C): prefix (A), suffix (D).
        query = make_query(["A", "B", "C", "D"], "q1")
        shared = Pattern(["B", "C"])
        expected = 2.0 * 2.0 + 7.0 * 7.0
        assert model.computation_cost(shared, query) == expected

    def test_equation_4_missing_prefix(self, model):
        query = make_query(["B", "C", "D"], "q1")
        assert model.computation_cost(Pattern(["B", "C"]), query) == 7.0 * 7.0

    def test_equation_5_combination_product(self, model):
        query = make_query(["A", "B", "C", "D"], "q1")
        assert model.combination_cost(Pattern(["B", "C"]), query) == 2.0 * 3.0 * 7.0

    def test_equation_5_degenerates_with_missing_segments(self, model):
        no_suffix = make_query(["A", "B", "C"], "q1")
        assert model.combination_cost(Pattern(["B", "C"]), no_suffix) == 2.0 * 3.0
        whole = make_query(["B", "C"], "q2")
        assert model.combination_cost(Pattern(["B", "C"]), whole) == 0.0

    def test_equation_6_and_7(self, model):
        q1 = make_query(["A", "B", "C"], "q1")
        q2 = make_query(["B", "C", "D"], "q2")
        shared = Pattern(["B", "C"])
        shared_q1 = model.computation_cost(shared, q1) + model.combination_cost(shared, q1)
        assert model.shared_query_cost(shared, q1) == shared_q1
        total = model.shared_cost(shared, [q1, q2])
        expected = 3.0 * 8.0 + model.shared_query_cost(shared, q1) + model.shared_query_cost(
            shared, q2
        )
        assert total == expected


class TestBenefit:
    def test_equation_8_is_difference(self, model):
        q1 = make_query(["A", "B", "C"], "q1")
        q2 = make_query(["B", "C", "D"], "q2")
        shared = Pattern(["B", "C"])
        breakdown = model.breakdown(shared, [q1, q2])
        assert breakdown.benefit == breakdown.non_shared - breakdown.shared
        assert model.benefit(shared, [q1, q2]) == breakdown.benefit

    def test_more_queries_increase_benefit_when_sharing_pays_per_query(self):
        # With unit rates the per-query shared cost (prefix/suffix maintenance
        # plus combination) is below the per-query non-shared cost, so every
        # additional sharing query strictly increases the benefit.
        uniform = BenefitModel(RateCatalog.uniform(["A", "B", "C", "D"], 1.0))
        shared = Pattern(["B", "C"])
        queries = [make_query(["A", "B", "C", "D"], f"q{i}") for i in range(5)]
        benefits = [uniform.benefit(shared, queries[: k + 1]) for k in range(5)]
        assert benefits == sorted(benefits)
        assert benefits[-1] > benefits[0]

    def test_benefit_changes_linearly_in_identical_queries(self, model):
        # Adding one more identical query changes the benefit by a constant
        # (NonShared(p, qi) - Shared(p, qi)), per Equations 3 and 7.
        shared = Pattern(["B", "C"])
        queries = [make_query(["A", "B", "C", "D"], f"q{i}") for i in range(4)]
        benefits = [model.benefit(shared, queries[: k + 1]) for k in range(4)]
        deltas = [round(b - a, 6) for a, b in zip(benefits, benefits[1:])]
        assert len(set(deltas)) == 1

    def test_evaluate_candidates_prunes_non_beneficial(self):
        # With high per-type rates the combination overhead (Eq. 5, cubic in
        # the rate) dominates for short patterns, so sharing is not beneficial.
        workload = Workload(
            [make_query(["A", "B", "C"], "q1"), make_query(["Z", "A", "B"], "q2")]
        )
        high_rate_model = BenefitModel(RateCatalog.uniform(["A", "B", "C", "Z"], 100.0))
        candidates = build_candidates(workload)
        assert high_rate_model.evaluate_candidates(workload, candidates) == []

        low_rate_model = BenefitModel(RateCatalog.uniform(["A", "B", "C", "Z"], 1.0))
        surviving = low_rate_model.evaluate_candidates(workload, candidates)
        assert all(c.is_beneficial for c in surviving)

    def test_candidate_benefit_uses_workload_lookup(self, model):
        workload = Workload([make_query(["A", "B", "C"], "q1"), make_query(["B", "C", "D"], "q2")])
        candidate = SharingCandidate(Pattern(["B", "C"]), ("q1", "q2"))
        assert model.candidate_benefit(workload, candidate) == model.benefit(
            Pattern(["B", "C"]), list(workload)
        )

    def test_workload_non_shared_cost(self, model):
        workload = Workload([make_query(["A", "B"], "q1"), make_query(["C", "D"], "q2")])
        assert model.workload_non_shared_cost(workload) == 2.0 * 5.0 + 5.0 * 12.0


class TestOccurrenceFactor:
    def test_repeated_type_multiplies_cost(self, model):
        shared = Pattern(["A", "B"])
        plain = make_query(["A", "B", "C"], "q1")
        repeated = make_query(["A", "B", "A"], "q2")
        assert model.occurrence_factor(shared, plain) == 1.0
        assert model.occurrence_factor(shared, repeated) == 2.0
        assert model.non_shared_query_cost(shared, repeated) == 2.0 * model.rates.start_rate(
            repeated.pattern
        ) * model.pattern_rate(repeated.pattern)
