"""Unit tests for the online prefix-aggregation building blocks."""

from __future__ import annotations

import pytest

from repro.events import Event
from repro.executor import PrivateSegmentState, SharedSegmentState
from repro.queries import AggregateSpec, AggregateState, Pattern

from ..conftest import make_events

COUNT = AggregateSpec.count_star()


def feed(state, rows, carry=AggregateState.unit):
    """Feed events batched by timestamp into a private segment state."""
    events = make_events(rows)
    index = 0
    while index < len(events):
        end = index
        while end < len(events) and events[end].timestamp == events[index].timestamp:
            end += 1
        state.stage_batch(events[index:end], carry)
        state.commit()
        index = end


def feed_shared(state, rows):
    events = make_events(rows)
    index = 0
    while index < len(events):
        end = index
        while end < len(events) and events[end].timestamp == events[index].timestamp:
            end += 1
        state.stage_batch(events[index:end])
        state.commit()
        index = end


class TestPrivateSegmentState:
    def test_figure_6a_prefix_counting(self):
        """Figure 6(a): count(A, B) over a1 b2 a3 b4 b5 is 1, 3, 5."""
        state = PrivateSegmentState(Pattern(["A", "B"]), COUNT)
        feed(state, [("A", 1)])
        assert state.chain_value().count == 0
        feed(state, [("B", 2)])
        assert state.chain_value().count == 1
        feed(state, [("A", 3)])
        assert state.chain_value().count == 1
        feed(state, [("B", 4)])
        assert state.chain_value().count == 3
        feed(state, [("B", 5)])
        assert state.chain_value().count == 5

    def test_irrelevant_events_ignored(self):
        state = PrivateSegmentState(Pattern(["A", "B"]), COUNT)
        feed(state, [("A", 1), ("X", 2), ("B", 3), ("Y", 4)])
        assert state.chain_value().count == 1

    def test_same_timestamp_events_do_not_chain(self):
        state = PrivateSegmentState(Pattern(["A", "B"]), COUNT)
        feed(state, [("A", 1), ("B", 1)])
        assert state.chain_value().count == 0
        feed(state, [("B", 2)])
        assert state.chain_value().count == 1

    def test_carry_scales_new_start_events(self):
        # The carry represents 3 upstream matches completed so far.
        state = PrivateSegmentState(Pattern(["A", "B"]), COUNT)
        carry = lambda: AggregateState(count=3)
        feed(state, [("A", 1), ("B", 2)], carry=carry)
        assert state.chain_value().count == 3

    def test_length_one_segment(self):
        state = PrivateSegmentState(Pattern(["A"]), COUNT)
        feed(state, [("A", 1), ("A", 2), ("B", 3)])
        assert state.chain_value().count == 2

    def test_repeated_type_in_segment(self):
        state = PrivateSegmentState(Pattern(["A", "A"]), COUNT)
        feed(state, [("A", 1), ("A", 2), ("A", 3)])
        # Matches: (a1,a2), (a1,a3), (a2,a3).
        assert state.chain_value().count == 3

    def test_sum_aggregate_tracked(self):
        spec = AggregateSpec.sum("B", "price")
        state = PrivateSegmentState(Pattern(["A", "B"]), spec)
        feed(
            state,
            [("A", 1), ("B", 2, {"price": 10.0}), ("B", 3, {"price": 5.0})],
        )
        # Sequences (a1,b2) and (a1,b3): total price 15.
        value = state.chain_value()
        assert value.count == 2
        assert value.total == 15.0

    def test_updates_counter_increments(self):
        state = PrivateSegmentState(Pattern(["A", "B"]), COUNT)
        feed(state, [("A", 1), ("B", 2), ("B", 3)])
        assert state.updates == 3

    def test_commit_without_stage_is_noop(self):
        state = PrivateSegmentState(Pattern(["A", "B"]), COUNT)
        state.commit()
        assert state.chain_value().count == 0


class TestSharedSegmentState:
    def test_anchor_per_start_event(self):
        """Figure 7: counts are maintained per START event of the shared pattern."""
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT])
        feed_shared(state, [("C", 3), ("D", 4), ("C", 7), ("D", 8)])
        assert len(state.anchors) == 2
        first, second = state.anchors
        assert first.completed(COUNT).count == 2  # (c3,d4), (c3,d8)
        assert second.completed(COUNT).count == 1  # (c7,d8)
        assert state.total_completed(COUNT).count == 3

    def test_requires_at_least_one_spec(self):
        with pytest.raises(ValueError):
            SharedSegmentState(Pattern(["A", "B"]), [])

    def test_handles_checks_pattern_types(self):
        state = SharedSegmentState(Pattern(["A", "B"]), [COUNT])
        assert state.handles(Event("A", 1))
        assert not state.handles(Event("X", 1))

    def test_multiple_specs_tracked_independently(self):
        total = AggregateSpec.sum("D", "price")
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT, total])
        feed_shared(state, [("C", 1), ("D", 2, {"price": 4.0}), ("D", 3, {"price": 6.0})])
        assert state.total_completed(COUNT).count == 2
        assert state.total_completed(total).total == 10.0

    def test_same_timestamp_anchor_not_extended_by_batch(self):
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT])
        feed_shared(state, [("C", 5), ("D", 5)])
        assert state.total_completed(COUNT).count == 0

    def test_duplicate_specs_deduplicated(self):
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT, COUNT])
        assert state.specs == (COUNT,)
