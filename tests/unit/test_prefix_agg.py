"""Unit tests for the online prefix-aggregation building blocks."""

from __future__ import annotations

import pytest

from repro.events import Event
from repro.executor import PrivateSegmentState, SharedSegmentState
from repro.queries import AggregateSpec, AggregateState, Pattern

from ..conftest import make_events

COUNT = AggregateSpec.count_star()


def feed(state, rows, carry=AggregateState.unit):
    """Feed events batched by timestamp into a private segment state."""
    events = make_events(rows)
    index = 0
    while index < len(events):
        end = index
        while end < len(events) and events[end].timestamp == events[index].timestamp:
            end += 1
        state.stage_batch(events[index:end], carry)
        state.commit()
        index = end


def feed_shared(state, rows):
    events = make_events(rows)
    index = 0
    while index < len(events):
        end = index
        while end < len(events) and events[end].timestamp == events[index].timestamp:
            end += 1
        state.stage_batch(events[index:end])
        state.commit()
        index = end


class TestPrivateSegmentState:
    def test_figure_6a_prefix_counting(self):
        """Figure 6(a): count(A, B) over a1 b2 a3 b4 b5 is 1, 3, 5."""
        state = PrivateSegmentState(Pattern(["A", "B"]), COUNT)
        feed(state, [("A", 1)])
        assert state.chain_value().count == 0
        feed(state, [("B", 2)])
        assert state.chain_value().count == 1
        feed(state, [("A", 3)])
        assert state.chain_value().count == 1
        feed(state, [("B", 4)])
        assert state.chain_value().count == 3
        feed(state, [("B", 5)])
        assert state.chain_value().count == 5

    def test_irrelevant_events_ignored(self):
        state = PrivateSegmentState(Pattern(["A", "B"]), COUNT)
        feed(state, [("A", 1), ("X", 2), ("B", 3), ("Y", 4)])
        assert state.chain_value().count == 1

    def test_same_timestamp_events_do_not_chain(self):
        state = PrivateSegmentState(Pattern(["A", "B"]), COUNT)
        feed(state, [("A", 1), ("B", 1)])
        assert state.chain_value().count == 0
        feed(state, [("B", 2)])
        assert state.chain_value().count == 1

    def test_carry_scales_new_start_events(self):
        # The carry represents 3 upstream matches completed so far.
        state = PrivateSegmentState(Pattern(["A", "B"]), COUNT)
        carry = lambda: AggregateState(count=3)
        feed(state, [("A", 1), ("B", 2)], carry=carry)
        assert state.chain_value().count == 3

    def test_length_one_segment(self):
        state = PrivateSegmentState(Pattern(["A"]), COUNT)
        feed(state, [("A", 1), ("A", 2), ("B", 3)])
        assert state.chain_value().count == 2

    def test_repeated_type_in_segment(self):
        state = PrivateSegmentState(Pattern(["A", "A"]), COUNT)
        feed(state, [("A", 1), ("A", 2), ("A", 3)])
        # Matches: (a1,a2), (a1,a3), (a2,a3).
        assert state.chain_value().count == 3

    def test_sum_aggregate_tracked(self):
        spec = AggregateSpec.sum("B", "price")
        state = PrivateSegmentState(Pattern(["A", "B"]), spec)
        feed(
            state,
            [("A", 1), ("B", 2, {"price": 10.0}), ("B", 3, {"price": 5.0})],
        )
        # Sequences (a1,b2) and (a1,b3): total price 15.
        value = state.chain_value()
        assert value.count == 2
        assert value.total == 15.0

    def test_updates_counter_increments(self):
        state = PrivateSegmentState(Pattern(["A", "B"]), COUNT)
        feed(state, [("A", 1), ("B", 2), ("B", 3)])
        assert state.updates == 3

    def test_commit_without_stage_is_noop(self):
        state = PrivateSegmentState(Pattern(["A", "B"]), COUNT)
        state.commit()
        assert state.chain_value().count == 0


class TestSharedSegmentState:
    def test_anchor_per_start_event(self):
        """Figure 7: counts are maintained per START event of the shared pattern."""
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT])
        feed_shared(state, [("C", 3), ("D", 4), ("C", 7), ("D", 8)])
        assert len(state.anchors) == 2
        first, second = state.anchors
        assert first.completed(COUNT).count == 2  # (c3,d4), (c3,d8)
        assert second.completed(COUNT).count == 1  # (c7,d8)
        assert state.total_completed(COUNT).count == 3

    def test_requires_at_least_one_spec(self):
        with pytest.raises(ValueError):
            SharedSegmentState(Pattern(["A", "B"]), [])

    def test_handles_checks_pattern_types(self):
        state = SharedSegmentState(Pattern(["A", "B"]), [COUNT])
        assert state.handles(Event("A", 1))
        assert not state.handles(Event("X", 1))

    def test_multiple_specs_tracked_independently(self):
        total = AggregateSpec.sum("D", "price")
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT, total])
        feed_shared(state, [("C", 1), ("D", 2, {"price": 4.0}), ("D", 3, {"price": 6.0})])
        assert state.total_completed(COUNT).count == 2
        assert state.total_completed(total).total == 10.0

    def test_same_timestamp_anchor_not_extended_by_batch(self):
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT])
        feed_shared(state, [("C", 5), ("D", 5)])
        assert state.total_completed(COUNT).count == 0

    def test_duplicate_specs_deduplicated(self):
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT, COUNT])
        assert state.specs == (COUNT,)

    def test_attribute_spec_columns_match_per_event_semantics(self):
        """The fused (vectorised) column update equals per-event extend/merge."""
        total = AggregateSpec.sum("D", "price")
        state = SharedSegmentState(Pattern(["C", "D"]), [total])
        feed_shared(
            state,
            [
                ("C", 1),
                ("D", 2, {"price": 4.0}),
                ("D", 2, {"price": 6.0}),  # same-timestamp batch of two D events
                ("C", 3),
                ("D", 4, {"price": 1.0}),
            ],
        )
        # Matches per anchor: c1 -> (c1,d2a), (c1,d2b), (c1,d4); c3 -> (c3,d4).
        first, second = state.anchors
        assert first.completed(total).count == 3
        assert first.completed(total).total == 11.0
        assert first.completed(total).minimum == 1.0
        assert first.completed(total).maximum == 6.0
        assert second.completed(total).total == 1.0
        assert state.total_completed(total).total == 12.0


class TestCohortCompaction:
    def make_runner(self, state, carry_value=None):
        from repro.executor import SharedSegmentRunner

        runner = SharedSegmentRunner(state, COUNT)
        return runner

    def feed_with_runner(self, state, runner, rows, carry=AggregateState.unit):
        events = make_events(rows)
        index = 0
        while index < len(events):
            end = index
            while end < len(events) and events[end].timestamp == events[index].timestamp:
                end += 1
            batch = events[index:end]
            state.stage_batch(batch)
            runner.stage_batch(batch, carry)
            state.commit()
            runner.commit()
            index = end

    def test_compact_merges_identical_carry_cohorts(self):
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT])
        runner = self.make_runner(state)
        self.feed_with_runner(
            state, runner, [("C", 1), ("C", 3), ("D", 4), ("C", 5), ("D", 6)]
        )
        assert state.cohort_count == 3
        total_before = state.total_completed(COUNT)
        chain_before = runner.chain_value()
        merged = state.compact()
        assert merged == 2
        assert state.cohort_count == 1
        assert len(runner.carries) == 1
        assert state.total_completed(COUNT) == total_before
        assert runner.chain_value() == chain_before

    def test_compaction_preserves_future_extensions(self):
        """Extending a compacted state must equal extending an uncompacted twin."""
        rows_before = [("C", 1), ("C", 2), ("C", 3), ("D", 4)]
        rows_after = [("D", 5), ("C", 6), ("D", 7)]

        def build(compact: bool):
            state = SharedSegmentState(Pattern(["C", "D"]), [COUNT])
            runner = self.make_runner(state)
            self.feed_with_runner(state, runner, rows_before)
            if compact:
                assert state.compact() == 2
            self.feed_with_runner(state, runner, rows_after)
            return state, runner

        compacted_state, compacted_runner = build(True)
        plain_state, plain_runner = build(False)
        assert compacted_state.total_completed(COUNT) == plain_state.total_completed(COUNT)
        assert compacted_runner.chain_value() == plain_runner.chain_value()
        assert compacted_state.cohort_count < plain_state.cohort_count

    def test_compact_keeps_cohorts_with_distinct_carries(self):
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT])
        runner = self.make_runner(state)
        carries = iter([AggregateState(count=1), AggregateState(count=2)])
        self.feed_with_runner(
            state, runner, [("C", 1), ("C", 3)], carry=lambda: next(carries)
        )
        assert state.compact() == 0
        assert state.cohort_count == 2

    def test_compact_mid_batch_rejected(self):
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT])
        state.stage_batch(make_events([("C", 1)]))
        with pytest.raises(RuntimeError, match="between batches"):
            state.compact()
        state.commit()
        assert state.compact() == 0  # single cohort: nothing to merge

    def test_compact_without_runners_collapses_everything(self):
        """Vacuous carry agreement: documented degenerate collapse."""
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT])
        feed_shared(state, [("C", 1), ("C", 2), ("C", 3), ("D", 4)])
        assert state.compact() == 2
        assert state.cohort_count == 1
        assert state.total_completed(COUNT).count == 3

    def test_maybe_compact_respects_threshold_and_flag(self):
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT], auto_compact=False)
        runner = self.make_runner(state)
        rows = [("C", t) for t in range(1, 10)]
        self.feed_with_runner(state, runner, rows)
        assert state.maybe_compact() == 0  # auto_compact off
        state.auto_compact = True
        assert state.maybe_compact() == 8  # 9 cohorts >= threshold of 8
        assert state.cohort_count == 1
        assert state.compactions == 1
        assert state.cohorts_merged == 8

    def test_reset_clears_compaction_state(self):
        state = SharedSegmentState(Pattern(["C", "D"]), [COUNT], auto_compact=True)
        runner = self.make_runner(state)
        self.feed_with_runner(state, runner, [("C", t) for t in range(1, 10)])
        state.maybe_compact()
        state.reset()
        runner.reset()
        assert state.cohort_count == 0
        assert state.cohorts_created == 0
        assert state.cohorts_merged == 0
        assert state.compactions == 0
        assert runner.carries == []
        assert runner.chain_value().count == 0


class TestCountColumnOverflow:
    """array('q') count columns must promote to exact Python ints past 2^63."""

    def _columns(self, length=2):
        from repro.executor.prefix_agg import _CountColumns

        return _CountColumns(length)

    def test_columns_start_as_machine_int_arrays(self):
        from array import array

        columns = self._columns()
        assert all(isinstance(column, array) for column in columns.columns)

    def test_extend_commit_promotes_past_int64(self):
        columns = self._columns()
        columns.append_cohort(AggregateState(count=2**40))
        summary = (2**30, 0, 0.0, None, None)  # k = 2^30 batch events
        deltas, applied = columns.extend_commit(1, summary, True)
        # 2^40 * 2^30 = 2^70 > 2^63 - 1: the column must hold the exact value.
        assert columns.state_at(1, 0).count == 2**70
        assert isinstance(columns.columns[1], list)
        assert deltas == [(0, AggregateState(count=2**70))]
        # Another commit keeps compounding exactly on the promoted column.
        columns.extend_commit(1, summary, False)
        assert columns.state_at(1, 0).count == 2**70 + 2**70

    def test_append_cohort_promotes_oversized_initial(self):
        columns = self._columns()
        columns.append_cohort(AggregateState(count=2**70))
        assert isinstance(columns.columns[0], list)
        assert columns.state_at(0, 0).count == 2**70

    def test_merge_cohorts_promotes_oversized_sum(self):
        columns = self._columns()
        big = 2**62
        columns.append_cohort(AggregateState(count=big))
        columns.append_cohort(AggregateState(count=big))
        columns.append_cohort(AggregateState(count=big))
        columns.merge_cohorts([[0, 1, 2]])
        assert columns.state_at(0, 0).count == 3 * big  # > 2^63 - 1
        assert isinstance(columns.columns[0], list)

    def test_clear_rearms_compact_arrays(self):
        from array import array

        columns = self._columns()
        columns.append_cohort(AggregateState(count=2**70))
        columns.clear()
        assert all(isinstance(column, array) for column in columns.columns)
        assert all(len(column) == 0 for column in columns.columns)

    def test_promoted_and_array_columns_agree_with_reference(self):
        """Values across the promotion boundary match plain-int arithmetic."""
        columns = self._columns(3)
        reference = [[], [], []]
        columns.append_cohort(AggregateState(count=2**31))
        reference[0].append(2**31)
        reference[1].append(0)
        reference[2].append(0)
        summary = (2**20, 0, 0.0, None, None)
        for position in (1, 2, 1, 2, 2):
            columns.extend_commit(position, summary, False)
            for cohort, base in enumerate(reference[position - 1]):
                if base:
                    reference[position][cohort] += 2**20 * base
        for position in range(3):
            assert [columns.state_at(position, 0).count] == reference[position]
