"""Unit tests for the experiment scenarios, runners, and text rendering."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    EXECUTOR_NAMES,
    FigureResult,
    dense_scenario,
    ec_scenario,
    format_bar_chart,
    format_ratio,
    format_table,
    greedy_plan,
    lr_scenario,
    optimize,
    run_executor,
    run_figure16,
    tx_scenario,
)


class TestScenarios:
    @pytest.mark.parametrize(
        "builder", [lr_scenario, tx_scenario, ec_scenario], ids=["lr", "tx", "ec"]
    )
    def test_scenarios_are_uniform_and_consistent(self, builder):
        workload, stream = builder(num_queries=6, pattern_length=4, duration=40, events_per_second=8.0)
        assert len(workload) == 6
        assert workload.is_uniform()
        assert len(stream) > 0
        # The stream only emits types that some query can consume.
        workload_types = set(workload.event_types())
        assert set(stream.event_types()) <= workload_types or workload_types <= set(
            stream.event_types()
        )

    def test_dense_scenario_has_many_events_per_group(self):
        workload, stream = dense_scenario(events_per_second=20.0, duration=40, num_entities=2)
        stats = stream.statistics()
        # Roughly rate/num_types events of each type per time unit overall.
        assert stats.total_events > 400
        assert len(stream.event_types()) <= 6

    def test_scenarios_are_deterministic(self):
        first_workload, first_stream = tx_scenario(num_queries=5, pattern_length=4, duration=30)
        second_workload, second_stream = tx_scenario(num_queries=5, pattern_length=4, duration=30)
        assert [q.pattern.event_types for q in first_workload] == [
            q.pattern.event_types for q in second_workload
        ]
        assert [e.timestamp for e in first_stream] == [e.timestamp for e in second_stream]


class TestExecutorRuns:
    def test_run_executor_for_every_known_name(self):
        workload, stream = tx_scenario(
            num_queries=4, pattern_length=3, duration=30, events_per_second=5.0
        )
        plan = optimize(workload, stream)
        for name in EXECUTOR_NAMES:
            run = run_executor(name, workload, stream, plan, memory_sample_interval=2)
            assert run.latency_ms >= 0
            assert run.throughput > 0

    def test_run_executor_rejects_unknown_name(self):
        workload, stream = tx_scenario(num_queries=3, pattern_length=3, duration=20)
        with pytest.raises(ValueError, match="unknown executor"):
            run_executor("Esper", workload, stream)

    def test_optimize_and_greedy_plans_are_valid(self):
        from repro.core import ConflictDetector

        workload, stream = ec_scenario(
            num_queries=6, pattern_length=4, duration=40, events_per_second=8.0
        )
        detector = ConflictDetector(workload)
        assert optimize(workload, stream).is_valid(detector)
        assert greedy_plan(workload, stream).is_valid(detector)


class TestFigureResult:
    def test_add_and_render(self):
        result = FigureResult(
            figure="Figure X",
            description="demo",
            parameter_name="queries",
            parameter_values=[1, 2],
        )
        result.add("Sharon", "latency_ms", 1.0)
        result.add("Sharon", "latency_ms", 2.0)
        result.add("A-Seq", "latency_ms", 3.0)
        result.add("A-Seq", "latency_ms", 4.0)
        table = result.metric_table("latency_ms")
        assert "Figure X" in table
        assert "Sharon" in table and "A-Seq" in table
        rendered = result.render()
        assert "latency_ms" in rendered

    def test_run_figure16_structure(self):
        result = run_figure16(query_counts=(6,), seed=961)
        assert result.parameter_values == [6]
        assert set(result.series) == {"greedy plan", "optimal plan"}
        for metrics in result.series.values():
            assert set(metrics) == {"latency_ms", "peak_memory_kib", "plan_score"}
            assert all(len(values) == 1 for values in metrics.values())
        # The optimal plan's score is never below the greedy plan's.
        assert (
            result.series["optimal plan"]["plan_score"][0]
            >= result.series["greedy plan"]["plan_score"][0]
        )


class TestRendering:
    def test_format_table_alignment(self):
        table = format_table(["x", "value"], [[1, 2.5], [10, 1234.0]])
        lines = table.splitlines()
        assert lines[0].startswith("x")
        assert "-+-" in lines[1]
        assert len(lines) == 4
        # All data rows align to the same separator width.
        assert all(len(line) <= len(lines[1]) + 2 for line in lines)

    def test_format_table_with_title_and_none(self):
        table = format_table(["a"], [[None]], title="T")
        assert table.splitlines()[0] == "T"
        assert "None" in table

    def test_format_bar_chart(self):
        chart = format_bar_chart({"Sharon": 10.0, "A-Seq": 40.0}, width=20, unit=" ms")
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 20  # the largest value spans the full width
        assert lines[0].count("#") == 5
        assert "(no data)" == format_bar_chart({})

    def test_format_bar_chart_log_note_and_zero(self):
        chart = format_bar_chart({"a": 0.0, "b": 1.0}, log_note=True)
        assert "log-scale" in chart

    def test_format_ratio(self):
        assert format_ratio(10, 5) == "2.00x"
        assert format_ratio(10, 0) == "n/a"

    def test_format_cell_handles_special_values(self):
        table = format_table(["v"], [[True], [False], [123456], [0.0001]])
        assert "yes" in table and "no" in table
        assert "123,456" in table
