"""Unit tests for event streams (repro.events.stream)."""

from __future__ import annotations

import pytest

from repro.events import Event, EventStream, interleave_by_timestamp, merge_streams


def make_stream():
    return EventStream(
        [
            Event("B", 5, event_id=1),
            Event("A", 1, event_id=0),
            Event("A", 9, event_id=2),
            Event("C", 5, event_id=3),
        ],
        name="s",
    )


class TestEventStreamBasics:
    def test_events_sorted_by_timestamp(self):
        stream = make_stream()
        assert [e.timestamp for e in stream] == [1, 5, 5, 9]

    def test_len_and_indexing(self):
        stream = make_stream()
        assert len(stream) == 4
        assert stream[0].event_type == "A"
        assert bool(stream)
        assert not bool(EventStream())

    def test_from_tuples(self):
        stream = EventStream.from_tuples([("A", 1, 7), ("B", 2, 8)], ["vehicle"])
        assert stream[0].attributes == {"vehicle": 7}
        assert stream[1].event_type == "B"

    def test_append_keeps_order(self):
        stream = make_stream()
        stream.append(Event("D", 3, event_id=10))
        assert [e.timestamp for e in stream] == [1, 3, 5, 5, 9]

    def test_extend_resorts(self):
        stream = make_stream()
        stream.extend([Event("D", 0, event_id=11)])
        assert stream[0].event_type == "D"

    def test_append_tie_breaks_on_event_id(self):
        """Same-timestamp appends must interleave by event_id, not arrival.

        Regression: ``append`` used to bisect on timestamp alone, which
        parked a late-appended low-id event *after* every same-timestamp
        event already present — so a stream grown event by event disagreed
        with the constructor-sorted stream, and replaying an append-built
        stream was order-dependent.
        """
        events = [
            Event("A", 5, event_id=2),
            Event("B", 5, event_id=0),
            Event("C", 5, event_id=1),
        ]
        appended = EventStream(name="s")
        for event in events:
            appended.append(event)
        constructed = EventStream(events, name="s")
        assert [e.event_id for e in appended] == [0, 1, 2]
        assert [e.event_id for e in appended] == [e.event_id for e in constructed]

    def test_append_extend_constructor_agree_under_ties(self):
        events = [
            Event("A", 1, event_id=3),
            Event("B", 1, event_id=1),
            Event("C", 2, event_id=0),
            Event("D", 1, event_id=2),
        ]
        appended = EventStream(name="s")
        for event in events:
            appended.append(event)
        extended = EventStream(name="s")
        extended.extend(events)
        assert list(appended) == list(extended) == list(EventStream(events, name="s"))


class TestEventStreamViews:
    def test_between_is_half_open(self):
        stream = make_stream()
        subset = stream.between(1, 5)
        assert [e.timestamp for e in subset] == [1]

    def test_of_types(self):
        stream = make_stream()
        subset = stream.of_types(["A"])
        assert all(e.event_type == "A" for e in subset)
        assert len(subset) == 2

    def test_sample_fraction_bounds(self):
        stream = make_stream()
        with pytest.raises(ValueError):
            stream.sample(0.0)
        assert len(stream.sample(1.0)) == 4

    def test_event_types_sorted(self):
        assert make_stream().event_types() == ("A", "B", "C")


class TestStreamStatistics:
    def test_duration_and_rates(self):
        stream = make_stream()
        stats = stream.statistics()
        assert stats.total_events == 4
        assert stats.duration == 9  # timestamps 1..9 inclusive
        assert stats.counts_per_type == {"A": 2, "B": 1, "C": 1}
        assert stats.rate_of("A") == pytest.approx(2 / 9)
        assert stats.overall_rate == pytest.approx(4 / 9)

    def test_empty_stream_statistics(self):
        stats = EventStream().statistics()
        assert stats.total_events == 0
        assert stats.duration == 0
        assert stats.overall_rate == 0.0


class TestStreamHelpers:
    def test_merge_streams(self):
        left = EventStream([Event("A", 1)])
        right = EventStream([Event("B", 0)])
        merged = merge_streams(left, right)
        assert [e.event_type for e in merged] == ["B", "A"]

    def test_interleave_by_timestamp_deterministic(self):
        producers = {"A": lambda t: {"t": t}}
        one = interleave_by_timestamp(producers, {"A": 2.0}, duration=5, seed=1)
        two = interleave_by_timestamp(producers, {"A": 2.0}, duration=5, seed=1)
        assert [e.timestamp for e in one] == [e.timestamp for e in two]
        assert len(one) == 10  # integer rate of 2 per time unit

    def test_interleave_fractional_rate(self):
        stream = interleave_by_timestamp({}, {"A": 0.5}, duration=200, seed=2)
        # Expect roughly half of the time units to produce an event.
        assert 60 <= len(stream) <= 140
