"""Unit tests for the chained per-query aggregation (shared method, Section 3.3)."""

from __future__ import annotations

import pytest

from repro.core import SharingCandidate, SharingPlan
from repro.events import SlidingWindow
from repro.executor import QueryChainState, SharedSegmentRunner, SharedSegmentState
from repro.queries import AggregateSpec, Pattern, Query, Workload

from ..conftest import make_events

COUNT = AggregateSpec.count_star()


def run_chain(chain_or_chains, rows, shared_states=()):
    """Feed timestamp batches through shared states and query chains."""
    chains = chain_or_chains if isinstance(chain_or_chains, list) else [chain_or_chains]
    events = make_events(rows)
    index = 0
    while index < len(events):
        end = index
        while end < len(events) and events[end].timestamp == events[index].timestamp:
            end += 1
        batch = events[index:end]
        for shared in shared_states:
            shared.stage_batch(batch)
        for chain in chains:
            chain.stage_batch(batch)
        for shared in shared_states:
            shared.commit()
        for chain in chains:
            chain.commit()
        index = end


def build_chain(query_types, shared_types, rows, query_name="q1", other_query="q2"):
    """A query chain sharing ``shared_types`` with another query."""
    window = SlidingWindow(size=100, slide=100)
    query = Query(pattern=Pattern(query_types), window=window, name=query_name)
    other = Query(pattern=Pattern(shared_types), window=window, name=other_query)
    workload = Workload([query, other])
    candidate = SharingCandidate(Pattern(shared_types), (query_name, other_query), 1.0)
    plan = SharingPlan([candidate])
    decomposition = plan.decompose(workload)[query_name]
    shared_state = SharedSegmentState(Pattern(shared_types), [COUNT])
    chain = QueryChainState(query, decomposition, {Pattern(shared_types): shared_state})
    run_chain(chain, rows, shared_states=[shared_state])
    return chain


class TestExample3Combination:
    def test_figure_7_count_combination(self):
        """Example 3's mechanism: count(A,B,C,D) is assembled by multiplying the
        snapshot of count(A,B) at each C anchor with the anchor's count(C,D).

        For the stream a1 b2 c3 d4 a5 b6 c7 d8:
        anchor c3 contributes count(A,B)@c3 * count(c3,D) = 1 * 2 = 2,
        anchor c7 contributes count(A,B)@c7 * count(c7,D) = 3 * 1 = 3,
        so count(A,B,C,D) = 5 (verified by exhaustive enumeration below).
        """
        rows = [
            ("A", 1),
            ("B", 2),
            ("C", 3),
            ("D", 4),
            ("A", 5),
            ("B", 6),
            ("C", 7),
            ("D", 8),
        ]
        chain = build_chain(("A", "B", "C", "D"), ("C", "D"), rows)
        assert chain.final_value() == 5

        from repro.executor import enumerate_pattern_matches
        from ..conftest import make_events

        brute_force = len(
            enumerate_pattern_matches(Pattern(["A", "B", "C", "D"]), make_events(rows))
        )
        assert chain.final_value() == brute_force

    def test_shared_segment_at_start_of_query(self):
        # Query (C, D, E) sharing (C, D): carries are the unit state.
        rows = [("C", 1), ("D", 2), ("C", 3), ("D", 4), ("E", 5)]
        chain = build_chain(("C", "D", "E"), ("C", "D"), rows)
        # Matches: (c1,d2,e5), (c1,d4,e5), (c3,d4,e5).
        assert chain.final_value() == 3

    def test_shared_segment_at_end_of_query(self):
        rows = [("A", 1), ("C", 2), ("D", 3), ("C", 4), ("D", 5)]
        chain = build_chain(("A", "C", "D"), ("C", "D"), rows)
        # Matches: (a1,c2,d3), (a1,c2,d5), (a1,c4,d5).
        assert chain.final_value() == 3

    def test_whole_query_shared(self):
        rows = [("C", 1), ("D", 2), ("D", 3)]
        chain = build_chain(("C", "D"), ("C", "D"), rows)
        assert chain.final_value() == 2


class TestSharedSegmentRunner:
    def test_runner_requires_matching_spec(self):
        shared = SharedSegmentState(Pattern(["A", "B"]), [COUNT])
        with pytest.raises(ValueError, match="does not track"):
            SharedSegmentRunner(shared, AggregateSpec.sum("B", "x"))

    def test_carries_align_with_anchors(self):
        window = SlidingWindow(size=100, slide=100)
        q1 = Query(pattern=Pattern(["A", "C", "D"]), window=window, name="q1")
        q2 = Query(pattern=Pattern(["B", "C", "D"]), window=window, name="q2")
        workload = Workload([q1, q2])
        candidate = SharingCandidate(Pattern(["C", "D"]), ("q1", "q2"), 1.0)
        decompositions = SharingPlan([candidate]).decompose(workload)
        shared_state = SharedSegmentState(Pattern(["C", "D"]), [COUNT])
        shared_states = {Pattern(["C", "D"]): shared_state}
        chain1 = QueryChainState(q1, decompositions["q1"], shared_states)
        chain2 = QueryChainState(q2, decompositions["q2"], shared_states)

        rows = [("A", 1), ("B", 2), ("B", 3), ("C", 4), ("D", 5), ("C", 6), ("D", 7)]
        run_chain([chain1, chain2], rows, shared_states=[shared_state])

        assert len(shared_state.anchors) == 2
        runner1 = chain1.runners[-1]
        runner2 = chain2.runners[-1]
        assert len(runner1.carries) == len(shared_state.anchors)
        assert len(runner2.carries) == len(shared_state.anchors)
        # q1 has one A before both anchors; q2 has two Bs before both anchors.
        # Matches of (C,D): (c4,d5), (c4,d7), (c6,d7).
        assert chain1.final_value() == 3
        assert chain2.final_value() == 6

    def test_shared_state_processed_once_for_both_queries(self):
        """The shared pattern's updates are independent of the number of queries."""
        window = SlidingWindow(size=100, slide=100)
        rows = [("A", 1), ("C", 2), ("D", 3), ("C", 4), ("D", 5)]

        def updates_for(num_queries):
            queries = [
                Query(pattern=Pattern([f"X{i}", "C", "D"]), window=window, name=f"q{i}")
                for i in range(num_queries)
            ]
            workload = Workload(queries)
            candidate = SharingCandidate(
                Pattern(["C", "D"]), tuple(q.name for q in queries), 1.0
            )
            decompositions = SharingPlan([candidate]).decompose(workload)
            shared_state = SharedSegmentState(Pattern(["C", "D"]), [COUNT])
            chains = [
                QueryChainState(q, decompositions[q.name], {Pattern(["C", "D"]): shared_state})
                for q in queries
            ]
            run_chain(chains, rows, shared_states=[shared_state])
            return shared_state.updates

        assert updates_for(2) == updates_for(6)


class TestQueryChainStructure:
    def test_private_only_chain_matches_aseq(self, ab_query):
        workload = Workload([ab_query])
        decomposition = SharingPlan().decompose(workload)[ab_query.name]
        chain = QueryChainState(ab_query, decomposition, {})
        run_chain(chain, [("A", 1), ("B", 2), ("A", 3), ("B", 4)])
        assert chain.final_value() == 3
        assert chain.update_count > 0
