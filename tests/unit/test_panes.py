"""Unit tests for the pane-partitioned engine layer (repro.executor.panes)."""

from __future__ import annotations

import pytest

from repro.events import Event, EventStream, SlidingWindow
from repro.executor import (
    ASeqExecutor,
    CompiledPaneWorkload,
    PaneCountMatrix,
    PaneScope,
    PaneStateMatrix,
    SharonExecutor,
    StreamingEngine,
    WindowPaneAccumulator,
)
from repro.executor.panes import make_pane_matrix
from repro.queries import AggregateSpec, Pattern, Query, Workload


def events_at(*rows) -> list[Event]:
    """Events from (type, timestamp[, attrs]) rows."""
    events = []
    for event_id, row in enumerate(rows):
        event_type, timestamp, *rest = row
        events.append(Event(event_type, timestamp, rest[0] if rest else {}, event_id))
    return events


def apply_single(matrix, pattern: Pattern, spec: AggregateSpec, events: list[Event]) -> None:
    """Feed each timestamp's events as one batch through the matrix."""
    from repro.executor.prefix_agg import group_by_position, positions_by_type

    positions = positions_by_type(pattern)
    by_timestamp: dict[int, list[Event]] = {}
    for event in events:
        by_timestamp.setdefault(event.timestamp, []).append(event)
    for timestamp in sorted(by_timestamp):
        by_position = group_by_position(by_timestamp[timestamp], positions)
        if by_position is not None:
            matrix.apply_batch(by_position, spec)


class TestPaneCountMatrix:
    def test_counts_submatches_per_position_pair(self):
        pattern = Pattern(("A", "B", "C"))
        spec = AggregateSpec.count_star()
        matrix = PaneCountMatrix(pattern, spec)
        apply_single(matrix, pattern, spec, events_at(("A", 0), ("B", 1), ("C", 2)))
        # cells[j][i] = matches of positions i..j inside the pane.
        assert list(matrix.cells[0]) == [1]          # (A)
        assert list(matrix.cells[1]) == [1, 1]       # (A,B), (B)
        assert list(matrix.cells[2]) == [1, 1, 1]    # (A,B,C), (B,C), (C)

    def test_same_timestamp_events_never_chain(self):
        pattern = Pattern(("A", "B"))
        spec = AggregateSpec.count_star()
        matrix = PaneCountMatrix(pattern, spec)
        apply_single(matrix, pattern, spec, events_at(("A", 3), ("B", 3)))
        assert matrix.cells[1][0] == 0  # no (A,B) match within one timestamp
        assert list(matrix.cells[0]) == [1]
        assert matrix.cells[1][1] == 1

    def test_repeated_type_pattern(self):
        pattern = Pattern(("A", "A"))
        spec = AggregateSpec.count_star()
        matrix = PaneCountMatrix(pattern, spec)
        apply_single(matrix, pattern, spec, events_at(("A", 0), ("A", 1), ("A", 2)))
        assert list(matrix.cells[0]) == [3]
        assert list(matrix.cells[1]) == [3, 3]  # (0,1),(0,2),(1,2) and three singles

    def test_fold_composes_across_panes(self):
        pattern = Pattern(("A", "B"))
        spec = AggregateSpec.count_star()
        first = PaneCountMatrix(pattern, spec)
        second = PaneCountMatrix(pattern, spec)
        apply_single(first, pattern, spec, events_at(("A", 0)))
        apply_single(second, pattern, spec, events_at(("B", 5)))
        vector = first.new_vector()
        first.fold(vector)
        second.fold(vector)
        # The single cross-pane match (A@0, B@5).
        assert first.final_state(vector).count == 1

    def test_fold_with_identity_pane_is_noop(self):
        pattern = Pattern(("A", "B"))
        spec = AggregateSpec.count_star()
        matrix = PaneCountMatrix(pattern, spec)
        apply_single(matrix, pattern, spec, events_at(("A", 0), ("B", 1)))
        vector = matrix.new_vector()
        matrix.fold(vector)
        snapshot = list(vector)
        PaneCountMatrix(pattern, spec).fold(vector)  # empty pane
        assert vector == snapshot


class TestPaneStateMatrix:
    def test_sum_aggregate_across_panes(self):
        pattern = Pattern(("A", "B"))
        spec = AggregateSpec.sum("B", "value")
        first = PaneStateMatrix(pattern, spec)
        second = PaneStateMatrix(pattern, spec)
        apply_single(first, pattern, spec, events_at(("A", 0, {"value": 1}), ("B", 1, {"value": 7})))
        apply_single(second, pattern, spec, events_at(("B", 4, {"value": 5})))
        vector = first.new_vector()
        first.fold(vector)
        second.fold(vector)
        state = second.final_state(vector)
        # Matches: (A@0, B@1) and (A@0, B@4) -> SUM(B.value) = 7 + 5.
        assert state.count == 2
        assert state.total == 12.0

    def test_make_pane_matrix_picks_count_fast_path(self):
        pattern = Pattern(("A", "B"))
        assert isinstance(make_pane_matrix(pattern, AggregateSpec.count_star()), PaneCountMatrix)
        assert isinstance(
            make_pane_matrix(pattern, AggregateSpec.min("A", "value")), PaneStateMatrix
        )


class TestCompiledPaneWorkload:
    def test_queries_with_equal_pattern_and_spec_share_one_matrix(self):
        window = SlidingWindow(size=8, slide=2)
        workload = Workload(
            [
                Query(Pattern(("A", "B")), window, name="k1"),
                Query(Pattern(("A", "B")), window, name="k2"),
                Query(Pattern(("A", "C")), window, name="k3"),
            ]
        )
        compiled = CompiledPaneWorkload(workload)
        assert compiled.key_by_query["k1"] == compiled.key_by_query["k2"]
        assert compiled.key_by_query["k1"] != compiled.key_by_query["k3"]
        assert len(compiled.matrix_infos) == 2

        scope = PaneScope(compiled, pane_index=0, group=())
        scope.process_batch(events_at(("A", 0)))
        scope.process_batch(events_at(("B", 1), ("C", 1)))
        assert len(scope.matrices) == 2

        accumulator = WindowPaneAccumulator(compiled)
        accumulator.absorb(scope)
        assert accumulator.final_value("k1") == 1
        assert accumulator.final_value("k2") == 1
        assert accumulator.final_value("k3") == 1

    def test_untouched_query_finalizes_to_zero(self):
        window = SlidingWindow(size=8, slide=2)
        workload = Workload([Query(Pattern(("A", "B")), window, name="z1")])
        accumulator = WindowPaneAccumulator(CompiledPaneWorkload(workload))
        assert accumulator.final_value("z1") == 0


class TestEnginePaneMode:
    def test_eligibility_requires_overlap(self):
        assert StreamingEngine.panes_eligible(SlidingWindow(size=8, slide=2))
        assert StreamingEngine.panes_eligible(SlidingWindow(size=7, slide=3))
        assert not StreamingEngine.panes_eligible(SlidingWindow(size=6, slide=6))

    def test_tumbling_window_falls_back_to_per_instance_loop(self):
        window = SlidingWindow(size=6, slide=6)
        workload = Workload([Query(Pattern(("A", "B")), window, name="f1")])
        executor = ASeqExecutor(workload, panes=True)
        assert not executor._engine.uses_panes
        report = executor.run(EventStream(events_at(("A", 0), ("B", 1))))
        assert report.metrics.panes_created == 0
        assert report.metrics.pane_merges == 0
        assert report.results.value("f1", window.instance_starting_at(0)) == 1

    def test_pane_mode_emits_identical_results_and_pane_metrics(self):
        window = SlidingWindow(size=8, slide=2)
        workload = Workload(
            [
                Query(Pattern(("A", "B")), window, name="m1"),
                Query(Pattern(("B", "A")), window, name="m2"),
            ]
        )
        stream = EventStream(
            events_at(("A", 0), ("B", 2), ("A", 3), ("B", 5), ("A", 7), ("B", 8), ("A", 11))
        )
        panes_on = ASeqExecutor(workload, panes=True)
        assert panes_on._engine.uses_panes
        on_report = panes_on.run(stream)
        off_report = ASeqExecutor(workload, panes=False).run(stream)
        assert on_report.results.matches(off_report.results), on_report.results.differences(
            off_report.results
        )[:5]
        assert on_report.metrics.panes_created > 0
        assert on_report.metrics.pane_merges > 0
        assert on_report.metrics.events_per_pane > 0
        assert off_report.metrics.panes_created == 0

    def test_pane_mode_processes_each_event_once(self):
        """state_updates in pane mode must not scale with the overlap factor."""
        window = SlidingWindow(size=12, slide=2)  # overlap 6
        workload = Workload([Query(Pattern(("A", "B")), window, name="u1")])
        stream = EventStream(
            events_at(*[("A" if t % 2 == 0 else "B", t) for t in range(24)])
        )
        on = ASeqExecutor(workload, panes=True).run(stream)
        off = ASeqExecutor(workload, panes=False).run(stream)
        assert on.results.matches(off.results)
        # Per-instance mode re-processes each event once per covering window;
        # pane mode touches each event once (pattern-length matrix cells).
        assert on.metrics.state_updates < off.metrics.state_updates

    def test_grouped_pane_mode_keeps_groups_apart(self):
        window = SlidingWindow(size=8, slide=4)
        workload = Workload(
            [Query(Pattern(("A", "B")), window, group_by=("region",), name="g1")]
        )
        stream = EventStream(
            events_at(
                ("A", 0, {"region": 0}),
                ("B", 1, {"region": 0}),
                ("A", 1, {"region": 1}),
                ("B", 2, {"region": 1}),
                ("B", 2, {"region": 0}),
            )
        )
        on = ASeqExecutor(workload, panes=True).run(stream)
        off = ASeqExecutor(workload, panes=False).run(stream)
        assert on.results.matches(off.results), on.results.differences(off.results)[:5]
        window0 = window.instance_starting_at(0)
        assert on.results.value("g1", window0, (0,)) == 2
        assert on.results.value("g1", window0, (1,)) == 1

    def test_on_batch_callback_fires_in_pane_mode(self):
        window = SlidingWindow(size=8, slide=2)
        workload = Workload([Query(Pattern(("A", "B")), window, name="cb1")])
        engine = StreamingEngine(workload, panes=True)
        seen = []
        engine.run(
            EventStream(events_at(("A", 0), ("B", 1), ("B", 1), ("A", 4))),
            on_batch=lambda timestamp, batch: seen.append((timestamp, len(batch))),
        )
        assert seen == [(0, 1), (1, 2), (4, 1)]

    def test_sharon_executor_exposes_panes_toggle(self):
        window = SlidingWindow(size=8, slide=2)
        workload = Workload(
            [
                Query(Pattern(("A", "B", "C")), window, name="s1"),
                Query(Pattern(("A", "B", "D")), window, name="s2"),
            ]
        )
        from tests.conftest import random_maximal_plan

        plan = random_maximal_plan(workload, 0)
        stream = EventStream(
            events_at(("A", 0), ("B", 1), ("C", 2), ("D", 3), ("A", 4), ("B", 6), ("C", 7))
        )
        on = SharonExecutor(workload, plan=plan, panes=True).run(stream)
        off = SharonExecutor(workload, plan=plan, panes=False).run(stream)
        assert on.results.matches(off.results), on.results.differences(off.results)[:5]
        assert on.metrics.panes_created > 0


class TestPaneCountMatrixOverflow:
    """Pane count cells must promote to exact Python ints past 2^63."""

    def test_apply_batch_promotes_past_int64(self):
        from repro.executor.prefix_agg import _I64_MAX

        pattern = Pattern(("A", "B"))
        spec = AggregateSpec.count_star()
        matrix = PaneCountMatrix(pattern, spec)
        # Seed a base count just below the bound, then chain once more.
        matrix.cells[0][0] = _I64_MAX // 2
        batch_a = {0: events_at(*((("A", 0),) * 8))}
        batch_b = {1: events_at(*((("B", 1),) * 8))}
        matrix.apply_batch(batch_a, spec)   # cells[0][0] ~ 0.5 * 2^63 + 8
        matrix.apply_batch(batch_b, spec)   # cells[1][0] = 8 * base > 2^63 - 1
        expected = 8 * (_I64_MAX // 2 + 8)
        assert matrix.cells[1][0] == expected
        assert isinstance(matrix.cells[1], list)
        # The fold into a (Python-int) prefix vector stays exact.
        vector = matrix.new_vector()
        matrix.fold(vector)
        assert matrix.final_state(vector).count == expected

    def test_diagonal_increment_promotes(self):
        from repro.executor.prefix_agg import _I64_MAX

        pattern = Pattern(("A",))
        spec = AggregateSpec.count_star()
        matrix = PaneCountMatrix(pattern, spec)
        matrix.cells[0][0] = _I64_MAX - 2
        matrix.apply_batch({0: events_at(("A", 0), ("A", 0), ("A", 0))}, spec)
        assert matrix.cells[0][0] == _I64_MAX + 1
        assert isinstance(matrix.cells[0], list)
