"""Unit tests for sharing conflict resolution (Algorithms 5 and 6)."""

from __future__ import annotations

import pytest

from repro.core import (
    ConflictDetector,
    SharingCandidate,
    build_sharon_graph,
    expand_candidate,
    expand_sharon_graph,
    find_optimal_plan,
    reduce_sharon_graph,
)
from repro.events import SlidingWindow
from repro.queries import Pattern, Query, Workload
from repro.utils import RateCatalog

from ..conftest import paper_benefit


def make_workload(patterns: dict[str, tuple[str, ...]]) -> Workload:
    window = SlidingWindow(size=10, slide=5)
    return Workload(
        [Query(pattern=Pattern(p), window=window, name=n) for n, p in patterns.items()]
    )


class TestExpandCandidate:
    def test_example_13_option_resolves_conflict(self, traffic, paper_graph):
        """Dropping q3, q4 from p1's query set resolves its conflict with p2/p3."""
        detector = ConflictDetector(traffic)
        p1 = next(
            v for v in paper_graph.vertices if v.pattern.event_types == ("OakSt", "MainSt")
        )
        options = expand_candidate(paper_graph, detector, p1, benefit_of=lambda c: 1.0)
        option_query_sets = {o.query_set for o in options}
        assert frozenset({"q1", "q2", "q3", "q4"}) in option_query_sets  # the original
        assert frozenset({"q1", "q2"}) in option_query_sets  # Figure 11's child
        # Every option keeps at least two queries and the original pattern.
        assert all(len(o.query_names) >= 2 for o in options)
        assert all(o.pattern == p1.pattern for o in options)

    def test_conflict_free_candidate_has_single_option(self, traffic, paper_graph):
        detector = ConflictDetector(traffic)
        p7 = next(
            v for v in paper_graph.vertices if v.pattern.event_types == ("ElmSt", "ParkAve")
        )
        options = expand_candidate(paper_graph, detector, p7, benefit_of=lambda c: 1.0)
        assert options == [p7]

    def test_max_options_cap(self, traffic, paper_graph):
        detector = ConflictDetector(traffic)
        p1 = next(
            v for v in paper_graph.vertices if v.pattern.event_types == ("OakSt", "MainSt")
        )
        options = expand_candidate(
            paper_graph, detector, p1, benefit_of=lambda c: 1.0, max_options=2
        )
        assert len(options) <= 2

    def test_options_are_unique(self, traffic, paper_graph):
        detector = ConflictDetector(traffic)
        for vertex in paper_graph.vertices:
            options = expand_candidate(paper_graph, detector, vertex, benefit_of=lambda c: 1.0)
            assert len({o.query_set for o in options}) == len(options)


class TestExpandSharonGraph:
    def test_expanded_graph_contains_originals_and_options(self, traffic, paper_graph):
        expanded = expand_sharon_graph(paper_graph, traffic, benefit_of=lambda c: 1.0)
        assert len(expanded) >= len(paper_graph)
        original_keys = {(v.pattern, v.query_set) for v in paper_graph.vertices}
        expanded_keys = {(v.pattern, v.query_set) for v in expanded.vertices}
        assert original_keys <= expanded_keys

    def test_non_beneficial_options_dropped(self, traffic, paper_graph):
        # Generated options covering fewer than 3 queries are declared
        # non-beneficial and must not appear in the expanded graph (the
        # original candidates keep the weight they were built with).
        def benefit(candidate: SharingCandidate) -> float:
            return 1.0 if len(candidate.query_names) >= 3 else 0.0

        expanded = expand_sharon_graph(paper_graph, traffic, benefit_of=benefit)
        originals = {(v.pattern, v.query_set) for v in paper_graph.vertices}
        generated = [
            v for v in expanded.vertices if (v.pattern, v.query_set) not in originals
        ]
        assert generated, "the paper graph has conflicts, so options must be generated"
        assert all(len(v.query_names) >= 3 for v in generated)

    def test_requires_model_or_function(self, traffic, paper_graph):
        with pytest.raises(ValueError, match="BenefitModel or a benefit function"):
            expand_sharon_graph(paper_graph, traffic)

    def test_same_pattern_options_conflict_iff_queries_overlap(self):
        workload = make_workload(
            {
                "q1": ("A", "B", "C"),
                "q2": ("A", "B", "D"),
                "q3": ("Z", "A", "B"),
                "q4": ("Y", "A", "B"),
            }
        )
        graph = build_sharon_graph(
            workload, RateCatalog(default_rate=1.0), benefit_override=lambda c: 1.0
        )
        expanded = expand_sharon_graph(graph, workload, benefit_of=lambda c: 1.0)
        detector = ConflictDetector(workload)
        same_pattern = [
            v for v in expanded.vertices if v.pattern == Pattern(["A", "B"])
        ]
        for i, first in enumerate(same_pattern):
            for second in same_pattern[i + 1 :]:
                assert expanded.has_edge(first, second) == bool(first.query_set & second.query_set)
                assert detector.in_conflict(first, second) == bool(
                    first.query_set & second.query_set
                )

    def test_expansion_can_improve_the_optimal_plan(self):
        """Section 7.1's motivation: resolving conflicts opens opportunities.

        (A, B) is shared by q1-q4 and conflicts with (B, C) only through q4.
        Restricting (A, B) to {q1, q2, q3} resolves the conflict, so both
        patterns can be shared simultaneously — which beats every plan over
        the unexpanded graph.
        """
        workload = make_workload(
            {
                "q1": ("A", "B", "X"),
                "q2": ("A", "B", "Y"),
                "q3": ("A", "B", "W"),
                "q4": ("A", "B", "C"),
                "q5": ("Z", "B", "C"),
            }
        )

        def benefit(candidate: SharingCandidate) -> float:
            # Benefit proportional to the number of sharing queries.
            return float(len(candidate.query_names))

        graph = build_sharon_graph(
            workload, RateCatalog(default_rate=1.0), benefit_override=benefit
        )
        unexpanded_best = find_optimal_plan(graph).score

        expanded = expand_sharon_graph(graph, workload, benefit_of=benefit)
        reduction = reduce_sharon_graph(expanded)
        expanded_best = find_optimal_plan(
            reduction.reduced_graph, reduction.conflict_free
        ).score
        assert expanded_best > unexpanded_best
