"""Unit tests for the sharing plan finder (Algorithms 3 and 4)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core import (
    PlanSearchStatistics,
    SharingCandidate,
    SharonGraph,
    enumerate_valid_plans,
    find_optimal_plan,
    generate_next_level,
)
from repro.queries import Pattern


def candidate(index, benefit, queries=("q1", "q2")):
    return SharingCandidate(Pattern([f"A{index}", f"B{index}"]), tuple(queries), benefit)


def build_graph(weights, edges):
    vertices = [candidate(i, w) for i, w in enumerate(weights)]
    graph = SharonGraph(vertices)
    for i, j in edges:
        graph.add_edge(vertices[i], vertices[j])
    return graph, vertices


def brute_force_optimum(graph: SharonGraph) -> float:
    best = 0.0
    vertices = graph.vertices
    for size in range(len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            if graph.is_independent_set(subset):
                best = max(best, sum(v.benefit for v in subset))
    return best


class TestLevelGeneration:
    def test_base_case_pairs_of_non_adjacent_vertices(self):
        graph, vertices = build_graph([1.0, 2.0, 3.0], [(0, 1)])
        level_one = [(v,) for v in graph.vertices]
        level_two = generate_next_level(graph, level_one)
        pairs = {frozenset(plan) for plan in level_two}
        expected_allowed = {
            frozenset((vertices[0], vertices[2])),
            frozenset((vertices[1], vertices[2])),
        }
        assert pairs == expected_allowed

    def test_inductive_case_requires_shared_prefix(self):
        graph, vertices = build_graph([1.0, 2.0, 3.0, 4.0], [])
        level_one = [(v,) for v in graph.vertices]
        level_two = generate_next_level(graph, level_one)
        level_three = generate_next_level(graph, level_two)
        assert {frozenset(p) for p in level_three} == {
            frozenset(c) for c in itertools.combinations(vertices, 3)
        }

    def test_lemma_6_join_rejects_conflicting_last_candidates(self):
        graph, vertices = build_graph([1.0, 2.0, 3.0], [(1, 2)])
        level_one = [(v,) for v in graph.vertices]
        level_two = generate_next_level(graph, level_one)
        level_three = generate_next_level(graph, level_two)
        assert level_three == []  # {v0, v1, v2} would need the conflicting pair (v1, v2)

    def test_every_generated_plan_is_valid(self):
        rng = random.Random(1)
        weights = [float(i + 1) for i in range(7)]
        edges = [(i, j) for i in range(7) for j in range(i + 1, 7) if rng.random() < 0.3]
        graph, _ = build_graph(weights, edges)
        level = [(v,) for v in graph.vertices]
        while level:
            for plan in level:
                assert graph.is_independent_set(plan)
            level = generate_next_level(graph, level)


class TestFindOptimalPlan:
    def test_empty_graph_returns_conflict_free_only(self):
        free = [candidate(99, 7.0)]
        plan = find_optimal_plan(SharonGraph(), free)
        assert plan.score == 7.0
        assert len(plan) == 1

    def test_matches_brute_force_on_small_graphs(self):
        rng = random.Random(7)
        for trial in range(12):
            size = rng.randint(2, 7)
            weights = [round(rng.uniform(1, 20), 1) for _ in range(size)]
            edges = [
                (i, j)
                for i in range(size)
                for j in range(i + 1, size)
                if rng.random() < 0.4
            ]
            graph, _ = build_graph(weights, edges)
            plan = find_optimal_plan(graph)
            assert plan.score == pytest.approx(brute_force_optimum(graph)), (
                f"trial {trial}: weights={weights} edges={edges}"
            )

    def test_statistics_populated(self):
        graph, _ = build_graph([1.0, 2.0, 3.0], [(0, 1)])
        stats = PlanSearchStatistics()
        find_optimal_plan(graph, statistics=stats)
        assert stats.candidates == 3
        assert stats.plans_considered >= 3
        assert stats.levels >= 1
        assert stats.peak_level_width >= 2

    def test_conflict_free_candidates_added_to_result(self):
        graph, vertices = build_graph([5.0, 4.0], [(0, 1)])
        free = [candidate(50, 9.0, queries=("q8", "q9"))]
        plan = find_optimal_plan(graph, free)
        assert plan.score == pytest.approx(14.0)
        assert free[0] in plan

    def test_paper_example_optimal_plan(self, paper_graph):
        """Example 10/12: the optimal plan is {p2, p4, p6, p7} with score 50."""
        from repro.core import reduce_sharon_graph

        reduction = reduce_sharon_graph(paper_graph)
        plan = find_optimal_plan(reduction.reduced_graph, reduction.conflict_free)
        chosen = {c.pattern.event_types for c in plan}
        assert chosen == {
            ("ParkAve", "OakSt"),
            ("MainSt", "WestSt"),
            ("MainSt", "StateSt"),
            ("ElmSt", "ParkAve"),
        }
        assert plan.score == pytest.approx(50.0)


class TestEnumerateValidPlans:
    def test_counts_on_paper_example(self, paper_graph):
        """Example 10: the valid space of the running example has 10 non-empty plans
        over the reduced graph (plus the empty plan)."""
        from repro.core import reduce_sharon_graph

        reduction = reduce_sharon_graph(paper_graph)
        plans = enumerate_valid_plans(reduction.reduced_graph)
        non_empty = [p for p in plans if len(p) > 0]
        assert len(non_empty) == 10

    def test_all_enumerated_plans_are_valid_and_unique(self):
        graph, _ = build_graph([1.0, 2.0, 3.0, 4.0], [(0, 1), (2, 3)])
        plans = enumerate_valid_plans(graph)
        assert len({frozenset(p.candidates) for p in plans}) == len(plans)
        for plan in plans:
            assert graph.is_independent_set(plan.candidates)
