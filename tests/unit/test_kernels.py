"""The numpy kernel backend: seam resolution, parity, and overflow promotion.

Three concerns, mirroring the design contract of
:mod:`repro.executor.kernels`:

1. **The seam.**  ``resolve_backend`` must accept exactly the documented
   names, fall back cleanly under ``"auto"``, and fail fast (at engine
   construction) with an actionable message when ``"numpy"`` is requested
   without the optional dependency.  These tests run with and without numpy
   (the no-numpy behaviour is pinned by monkeypatching the module's ``_np``
   handle, so both CI legs cover both sides).
2. **Differential parity.**  Randomised operation sequences — appends,
   batch commits (scale, COUNT, and attribute summaries), cohort merges,
   export/restore — drive the numpy columns and the pure-Python reference
   columns side by side and require *equality of every observable*: deltas,
   touched counts, boxed states, and the canonical exports whose bytes feed
   the checkpoint hash.
3. **Exact arithmetic.**  Commits that push counts past ``2**63 - 1`` must
   promote to the big-int representation *before* any value wraps, keep
   producing exact results, and export/restore across backends without loss.
"""

from __future__ import annotations

import random

import pytest

from repro.events import Event
from repro.executor import kernels
from repro.executor.kernels import (
    BACKENDS,
    I64_MAX,
    NumpyCountColumns,
    NumpyPaneCountMatrix,
    NumpyStateColumns,
    make_summariser,
    numpy_available,
    resolve_backend,
    summarise_values,
)
from repro.executor.panes import PaneCountMatrix
from repro.executor.prefix_agg import _CountColumns, _StateColumns
from repro.queries import AggregateSpec, Pattern
from repro.queries.aggregates import AggregateState

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="the optional numpy dependency is not installed"
)


# -- the seam ---------------------------------------------------------------------


def test_backends_tuple_is_the_documented_contract():
    assert BACKENDS == ("python", "numpy", "auto")
    assert I64_MAX == 2**63 - 1


def test_resolve_backend_python_is_always_available():
    assert resolve_backend("python") == "python"


def test_resolve_backend_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("cupy")


def test_resolve_backend_is_idempotent():
    """Resolved names resolve to themselves (the engine double-resolves)."""
    assert resolve_backend(resolve_backend("auto")) == resolve_backend("auto")


@requires_numpy
def test_resolve_backend_auto_prefers_numpy():
    assert resolve_backend("auto") == "numpy"
    assert resolve_backend("numpy") == "numpy"


def test_resolve_backend_without_numpy(monkeypatch):
    """Pinned no-numpy behaviour: auto falls back, numpy fails actionably."""
    monkeypatch.setattr(kernels, "_np", None)
    assert not numpy_available()
    assert resolve_backend("auto") == "python"
    with pytest.raises(RuntimeError, match=r"repro\[numpy\]"):
        resolve_backend("numpy")


def test_make_summariser_python_is_the_scalar_reference():
    spec = AggregateSpec.sum("A", "value")
    events = [Event("A", 0, {"value": float(i)}, i) for i in range(20)]
    assert make_summariser("python")(spec, events) == spec.summarise_batch(events)


# -- batch summarisation parity ---------------------------------------------------


def _random_events(rng: random.Random, n: int, with_none: bool = True) -> list[Event]:
    events = []
    for i in range(n):
        attrs = {}
        if not with_none or rng.random() > 0.2:
            attrs["value"] = rng.choice(
                [0.0, -0.0, 1.5, -7.25, 1e16, -1e16, 0.1, rng.uniform(-1e6, 1e6)]
            )
        events.append(Event("A", 0, attrs, i))
    return events


@requires_numpy
@pytest.mark.parametrize("kind", ["sum", "min", "max", "avg"])
def test_numpy_summariser_matches_scalar_reference(kind):
    """The vectorised summary equals summarise_batch bit for bit.

    Exercises both the tiny-batch delegation (below the vector threshold)
    and the vectorised path, with ``None`` holes and signed zeros in the
    value column.
    """
    spec = getattr(AggregateSpec, kind)("A", "value")
    summarise = make_summariser("numpy")
    rng = random.Random(7)
    for n in (1, 2, 15, 16, 17, 64, 257):
        events = _random_events(rng, n)
        expected = spec.summarise_batch(events)
        got = summarise(spec, events)
        assert got == expected
        # Equality of floats is not enough for the checkpoint hash: require
        # identical signs on zero totals too.
        assert repr(got) == repr(expected)


@requires_numpy
def test_numpy_summariser_count_paths_delegate():
    """COUNT(*) and COUNT(E) never build arrays (nothing to reduce)."""
    events = [Event("A", 0, {"value": 1.0}, i) for i in range(32)]
    for spec in (AggregateSpec.count_star(), AggregateSpec.count("A")):
        assert make_summariser("numpy")(spec, events) == spec.summarise_batch(events)


@requires_numpy
def test_summarise_values_matches_python_twin():
    spec = AggregateSpec.sum("A", "value")
    rng = random.Random(11)
    for n in (1, 3, 40):
        values = [None if rng.random() < 0.3 else rng.uniform(-100, 100) for _ in range(n)]
        assert summarise_values(spec, n, values) == spec.summarise_values(n, values)
    assert summarise_values(spec, 5, [None] * 5) == spec.summarise_values(5, [None] * 5)


# -- differential parity: count columns -------------------------------------------


def _random_summary(rng: random.Random):
    """A random ``(k, targeted, total, min, max)`` batch summary."""
    k = rng.randint(1, 5)
    shape = rng.random()
    if shape < 0.3:  # scale path: batch carries no targeted events
        return (k, 0, 0.0, None, None)
    if shape < 0.5:  # COUNT path: targeted but no tracked attribute
        return (k, k, 0.0, None, None)
    values = [rng.uniform(-50, 50) for _ in range(k)]
    total = 0.0
    for value in values:
        total += value
    return (k, k, total, min(values), max(values))


def _assert_count_columns_equal(vectorised: NumpyCountColumns, reference: _CountColumns):
    assert vectorised.export_columns() == reference.export_columns()
    for position in range(len(reference.columns)):
        assert [s.as_tuple() for s in vectorised.column_states(position)] == [
            s.as_tuple() for s in reference.column_states(position)
        ]


@requires_numpy
def test_count_columns_parity_fuzz():
    """200 random ops: every observable of the two backends stays equal."""
    rng = random.Random(42)
    length = 4
    vectorised, reference = NumpyCountColumns(length), _CountColumns(length)
    for step in range(200):
        op = rng.random()
        if op < 0.35:
            initial = AggregateState(count=rng.randint(1, 9))
            vectorised.append_cohort(initial)
            reference.append_cohort(initial)
        elif op < 0.85 and reference.columns[0]:
            position = rng.randint(1, length - 1)
            summary = (rng.randint(1, 5), 0, 0.0, None, None)
            collect = rng.random() < 0.4
            got = vectorised.extend_commit(position, summary, collect)
            expected = reference.extend_commit(position, summary, collect)
            assert got[1] == expected[1]
            if collect:
                assert [(c, s.as_tuple()) for c, s in got[0]] == [
                    (c, s.as_tuple()) for c, s in expected[0]
                ]
            else:
                assert got[0] is None and expected[0] is None
        elif reference.columns[0]:
            cohorts = len(reference.columns[0])
            ids = list(range(cohorts))
            rng.shuffle(ids)
            cut = rng.randint(1, cohorts)
            groups = [sorted(ids[:cut])] + [[i] for i in sorted(ids[cut:])]
            vectorised.merge_cohorts(groups)
            reference.merge_cohorts(groups)
        _assert_count_columns_equal(vectorised, reference)
    vectorised.clear()
    reference.clear()
    _assert_count_columns_equal(vectorised, reference)


@requires_numpy
def test_count_columns_promote_past_int64():
    """Multiplicative blow-up past 2**63 stays exact on both backends."""
    length = 3
    vectorised, reference = NumpyCountColumns(length), _CountColumns(length)
    for columns in (vectorised, reference):
        columns.append_cohort(AggregateState(count=2**40))
        columns.append_cohort(AggregateState(count=3))
    summary = (1000, 0, 0.0, None, None)
    for _ in range(5):  # 2**40 * 1000**2 > 2**63 well before the last round
        vectorised.extend_commit(1, summary, False)
        reference.extend_commit(1, summary, False)
        vectorised.extend_commit(2, summary, True)
        reference.extend_commit(2, summary, True)
    exported = vectorised.export_columns()
    assert exported == reference.export_columns()
    assert max(exported[2]) > I64_MAX, "the scenario never forced a promotion"
    # Merging promoted cohorts keeps exact big-int sums.
    groups = [[0, 1]]
    vectorised.merge_cohorts(groups)
    reference.merge_cohorts(groups)
    assert vectorised.export_columns() == reference.export_columns()


@requires_numpy
def test_count_columns_restore_roundtrips_promoted_state():
    """Exports with big-int cells restore into either backend exactly."""
    huge = [[2**70, 1], [0, 2**64], [5, 6]]
    vectorised, reference = NumpyCountColumns(3), _CountColumns(3)
    vectorised.append_cohort(AggregateState(count=1))
    vectorised.append_cohort(AggregateState(count=1))
    reference.append_cohort(AggregateState(count=1))
    reference.append_cohort(AggregateState(count=1))
    vectorised.restore_columns(huge)
    reference.restore_columns(huge)
    assert vectorised.export_columns() == huge == reference.export_columns()
    summary = (2, 0, 0.0, None, None)
    got_deltas, got_touched = vectorised.extend_commit(1, summary, True)
    expected_deltas, expected_touched = reference.extend_commit(1, summary, True)
    assert got_touched == expected_touched
    assert [(c, s.as_tuple()) for c, s in got_deltas] == [
        (c, s.as_tuple()) for c, s in expected_deltas
    ]
    assert vectorised.export_columns() == reference.export_columns()


# -- differential parity: state columns -------------------------------------------


def _assert_state_columns_equal(vectorised: NumpyStateColumns, reference: _StateColumns):
    got = vectorised.export_columns()
    expected = reference.export_columns()
    assert repr(got) == repr(expected)  # bitwise: -0.0 != repr of 0.0
    for position in range(len(reference.columns)):
        assert [s.as_tuple() for s in vectorised.column_states(position)] == [
            s.as_tuple() for s in reference.column_states(position)
        ]


@requires_numpy
def test_state_columns_parity_fuzz():
    """300 random ops over attribute-tracking states stay bit-identical."""
    rng = random.Random(1729)
    length = 4
    vectorised, reference = NumpyStateColumns(length), _StateColumns(length)
    for step in range(300):
        op = rng.random()
        if op < 0.3:
            k, targeted, total, minimum, maximum = _random_summary(rng)
            initial = AggregateState.unit().extend_many(k, targeted, total, minimum, maximum)
            vectorised.append_cohort(initial)
            reference.append_cohort(initial)
        elif op < 0.85 and reference.columns[0]:
            position = rng.randint(1, length - 1)
            summary = _random_summary(rng)
            collect = rng.random() < 0.4
            got = vectorised.extend_commit(position, summary, collect)
            expected = reference.extend_commit(position, summary, collect)
            assert got[1] == expected[1]
            if collect:
                assert repr([(c, s.as_tuple()) for c, s in got[0]]) == repr(
                    [(c, s.as_tuple()) for c, s in expected[0]]
                )
        elif reference.columns[0]:
            cohorts = len(reference.columns[0])
            ids = list(range(cohorts))
            rng.shuffle(ids)
            cut = rng.randint(1, cohorts)
            groups = [sorted(ids[:cut])] + [[i] for i in sorted(ids[cut:])]
            vectorised.merge_cohorts(groups)
            reference.merge_cohorts(groups)
        _assert_state_columns_equal(vectorised, reference)


@requires_numpy
def test_state_columns_promote_counts_past_int64():
    """Sequence counts past 2**63 promote; totals stay float-exact."""
    length = 3
    vectorised, reference = NumpyStateColumns(length), _StateColumns(length)
    initial = AggregateState(count=2**41, target_count=1, total=2.5, minimum=2.5, maximum=2.5)
    for columns in (vectorised, reference):
        columns.append_cohort(initial)
    summary = (1 << 12, 1 << 12, 4096.0, 1.0, 1.0)
    for _ in range(3):
        vectorised.extend_commit(1, summary, False)
        reference.extend_commit(1, summary, False)
        vectorised.extend_commit(2, summary, True)
        reference.extend_commit(2, summary, True)
    got = vectorised.export_columns()
    assert repr(got) == repr(reference.export_columns())
    assert any(cell[0] > I64_MAX for cell in got[2]), "no promotion was forced"
    vectorised.merge_cohorts([[0]])
    reference.merge_cohorts([[0]])
    assert repr(vectorised.export_columns()) == repr(reference.export_columns())


@requires_numpy
def test_state_columns_restore_roundtrips_across_backends():
    """A python-side export restores into the numpy columns and back."""
    rng = random.Random(5)
    reference = _StateColumns(3)
    for _ in range(4):
        reference.append_cohort(AggregateState.unit().extend_many(*_random_summary(rng)))
    for _ in range(6):
        reference.extend_commit(rng.randint(1, 2), _random_summary(rng), False)
    snapshot = reference.export_columns()
    vectorised = NumpyStateColumns(3)
    vectorised.restore_columns(snapshot)
    assert repr(vectorised.export_columns()) == repr(snapshot)
    back = _StateColumns(3)
    back.restore_columns(vectorised.export_columns())
    assert repr(back.export_columns()) == repr(snapshot)


# -- differential parity: pane count matrices -------------------------------------


def _pane_pattern() -> "tuple[Pattern, AggregateSpec]":
    return Pattern(("A", "B", "C")), AggregateSpec.count_star()


def _random_batch(rng: random.Random, pattern: Pattern) -> "dict[int, list[Event]]":
    by_position: dict[int, list[Event]] = {}
    for position, event_type in enumerate(pattern):
        if rng.random() < 0.6:
            by_position[position] = [
                Event(event_type, 0, {}, i) for i in range(rng.randint(1, 4))
            ]
    return by_position


@requires_numpy
def test_pane_count_matrix_parity_fuzz():
    """300 random batches: cells, folds, and finals match the reference."""
    rng = random.Random(99)
    pattern, spec = _pane_pattern()
    vectorised = NumpyPaneCountMatrix(pattern, spec)
    reference = PaneCountMatrix(pattern, spec)
    for step in range(300):
        batch = _random_batch(rng, pattern)
        vectorised.apply_batch(batch, spec)
        reference.apply_batch(batch, spec)
        assert vectorised.export_cells() == reference.export_cells()
        got_vector, expected_vector = vectorised.new_vector(), reference.new_vector()
        vectorised.fold(got_vector)
        reference.fold(expected_vector)
        assert list(got_vector) == list(expected_vector)
        assert (
            vectorised.final_state(got_vector).as_tuple()
            == reference.final_state(expected_vector).as_tuple()
        )


@requires_numpy
def test_pane_count_matrix_promotes_past_int64():
    """Folding huge restored cells promotes rows instead of wrapping."""
    pattern, spec = _pane_pattern()
    vectorised = NumpyPaneCountMatrix(pattern, spec)
    reference = PaneCountMatrix(pattern, spec)
    snapshot = {
        "cells": [[2**62], [2**61, 2**62], [1, 2, 3]],
        "updates": 7,
    }
    vectorised.restore_cells(snapshot)
    reference.restore_cells(snapshot)
    rng = random.Random(3)
    for _ in range(20):
        batch = _random_batch(rng, pattern)
        vectorised.apply_batch(batch, spec)
        reference.apply_batch(batch, spec)
        assert vectorised.export_cells() == reference.export_cells()
    exported = vectorised.export_cells()
    assert any(
        cell > I64_MAX for row in exported["cells"] for cell in row
    ), "the huge seed cells never overflowed int64"
    # The promoted export restores into either backend and keeps folding.
    fresh_vec = NumpyPaneCountMatrix(pattern, spec)
    fresh_ref = PaneCountMatrix(pattern, spec)
    fresh_vec.restore_cells(exported)
    fresh_ref.restore_cells(exported)
    got, expected = fresh_vec.new_vector(), fresh_ref.new_vector()
    fresh_vec.fold(got)
    fresh_ref.fold(expected)
    assert list(got) == list(expected)
    assert fresh_vec.export_cells() == fresh_ref.export_cells()
