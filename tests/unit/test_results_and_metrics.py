"""Unit tests for result sets and runtime metrics."""

from __future__ import annotations

import time

import pytest

from repro.events import WindowInstance
from repro.executor import MetricsCollector, QueryResult, ResultSet


W1 = WindowInstance(0, 10)
W2 = WindowInstance(5, 15)


class TestResultSet:
    def test_add_and_lookup(self):
        results = ResultSet([QueryResult("q1", W1, (), 3)])
        assert len(results) == 1
        assert results.get("q1", W1) is not None
        assert results.value("q1", W1) == 3
        assert results.value("q1", W2) == 0
        assert results.value("q1", W2, default=None) is None
        assert ("q1", W1, ()) in results

    def test_last_added_wins_for_same_key(self):
        results = ResultSet()
        results.add(QueryResult("q1", W1, (), 3))
        results.add(QueryResult("q1", W1, (), 5))
        assert len(results) == 1
        assert results.value("q1", W1) == 5

    def test_per_query_and_per_window_views(self):
        results = ResultSet(
            [
                QueryResult("q1", W1, (), 1),
                QueryResult("q1", W2, (), 2),
                QueryResult("q2", W1, (), 3),
            ]
        )
        assert len(results.for_query("q1")) == 2
        assert len(results.for_window(W1)) == 2
        assert results.query_names() == ("q1", "q2")

    def test_nonzero_filters_zero_and_none(self):
        results = ResultSet(
            [
                QueryResult("q1", W1, (), 0),
                QueryResult("q2", W1, (), None),
                QueryResult("q3", W1, (), 4),
            ]
        )
        assert [r.query_name for r in results.nonzero()] == ["q3"]

    def test_matches_treats_zero_and_missing_as_equal(self):
        left = ResultSet([QueryResult("q1", W1, (), 0), QueryResult("q2", W1, (), 2)])
        right = ResultSet([QueryResult("q2", W1, (), 2)])
        assert left.matches(right)
        assert right.matches(left)

    def test_matches_detects_differences(self):
        left = ResultSet([QueryResult("q1", W1, (), 1)])
        right = ResultSet([QueryResult("q1", W1, (), 2)])
        assert not left.matches(right)
        differences = left.differences(right)
        assert differences == [(("q1", W1, ()), 1, 2)]

    def test_matches_with_float_tolerance(self):
        left = ResultSet([QueryResult("q1", W1, (), 1.0)])
        right = ResultSet([QueryResult("q1", W1, (), 1.0 + 1e-12)])
        assert left.matches(right)

    def test_group_key_part_of_identity(self):
        results = ResultSet(
            [QueryResult("q1", W1, (1,), 5), QueryResult("q1", W1, (2,), 7)]
        )
        assert len(results) == 2
        assert results.value("q1", W1, (2,)) == 7


class TestMetricsCollector:
    def test_counters_and_rates(self):
        collector = MetricsCollector("test")
        collector.start()
        for index in range(10):
            collector.count_event(relevant=index % 2 == 0)
        collector.count_window(results=3)
        collector.count_window(results=2)
        time.sleep(0.01)
        metrics = collector.finish()
        assert metrics.total_events == 10
        assert metrics.relevant_events == 5
        assert metrics.windows_finalized == 2
        assert metrics.results_emitted == 5
        assert metrics.elapsed_seconds > 0
        assert metrics.throughput_events_per_second > 0
        assert metrics.avg_latency_ms > 0
        assert "test" in metrics.summary()

    def test_memory_sampling_interval(self):
        collector = MetricsCollector("test", memory_sample_interval=2)
        collector.maybe_sample_memory([1] * 100)  # finalization 1: skipped
        assert collector._memory.peak_bytes == 0
        collector.maybe_sample_memory([1] * 100)  # finalization 2: sampled
        assert collector._memory.peak_bytes > 0

    def test_memory_sampling_disabled(self):
        collector = MetricsCollector("test", memory_sample_interval=0)
        collector.maybe_sample_memory([1] * 100)
        assert collector.finish().peak_memory_bytes == 0

    def test_record_memory_bytes(self):
        collector = MetricsCollector("test")
        collector.record_memory_bytes(12345)
        assert collector.finish().peak_memory_bytes == 12345

    def test_zero_windows_latency_does_not_divide_by_zero(self):
        metrics = MetricsCollector("test").finish()
        assert metrics.avg_latency_ms == 0.0
        assert metrics.throughput_events_per_second == 0.0
