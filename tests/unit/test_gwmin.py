"""Unit tests for the GWMIN greedy MWIS algorithm (Algorithm 8)."""

from __future__ import annotations

import itertools

import pytest

from repro.core import SharingCandidate, SharonGraph, gwmin_independent_set, gwmin_plan
from repro.queries import Pattern


def candidate(index, benefit, queries=("q1", "q2")):
    return SharingCandidate(Pattern([f"A{index}", f"B{index}"]), tuple(queries), benefit)


def build_graph(weights, edges):
    vertices = [candidate(i, w) for i, w in enumerate(weights)]
    graph = SharonGraph(vertices)
    for i, j in edges:
        graph.add_edge(vertices[i], vertices[j])
    return graph, vertices


class TestGwminBasics:
    def test_empty_graph(self):
        assert gwmin_independent_set(SharonGraph()) == []
        assert gwmin_plan(SharonGraph()).is_empty

    def test_conflict_free_graph_selects_everything(self):
        graph, vertices = build_graph([3.0, 5.0, 1.0], [])
        assert set(gwmin_independent_set(graph)) == set(vertices)

    def test_returns_independent_set(self):
        graph, vertices = build_graph([3.0, 5.0, 4.0, 2.0], [(0, 1), (1, 2), (2, 3)])
        selected = gwmin_independent_set(graph)
        assert graph.is_independent_set(selected)

    def test_greedy_ratio_selection(self):
        # Vertex 1 has the best weight/(degree+1) ratio and must be picked first.
        graph, vertices = build_graph([4.0, 9.0, 4.0], [(0, 1), (1, 2)])
        selected = gwmin_independent_set(graph)
        assert selected[0] == vertices[1]
        assert set(selected) == {vertices[1]}

    def test_weight_guarantee_holds(self):
        # Equation 10 on several topologies.
        topologies = [
            ([5.0, 4.0, 3.0, 2.0], [(0, 1), (1, 2), (2, 3), (3, 0)]),
            ([10.0, 1.0, 1.0, 1.0], [(0, 1), (0, 2), (0, 3)]),
            ([2.0, 2.0, 2.0], [(0, 1), (1, 2), (0, 2)]),
        ]
        for weights, edges in topologies:
            graph, _ = build_graph(weights, edges)
            selected = gwmin_independent_set(graph)
            total = sum(v.benefit for v in selected)
            assert total >= graph.gwmin_guaranteed_weight() - 1e-9

    def test_graph_not_modified(self):
        graph, _ = build_graph([3.0, 5.0], [(0, 1)])
        gwmin_independent_set(graph)
        assert len(graph) == 2
        assert graph.edge_count == 1


class TestGwminOnPaperExample:
    def test_greedy_plan_of_example_12(self, paper_graph):
        """GWMIN picks p7 (ratio 18) then p1 (ratio 25/6), total score 43."""
        plan = gwmin_plan(paper_graph)
        chosen = {c.pattern.event_types for c in plan}
        assert chosen == {("ElmSt", "ParkAve"), ("OakSt", "MainSt")}
        assert plan.score == pytest.approx(43.0)

    def test_greedy_is_suboptimal_on_paper_example(self, paper_graph):
        """The optimal plan scores 50 (Example 12); brute force confirms it."""
        vertices = paper_graph.vertices
        best = 0.0
        for size in range(len(vertices) + 1):
            for subset in itertools.combinations(vertices, size):
                if paper_graph.is_independent_set(subset):
                    best = max(best, sum(v.benefit for v in subset))
        assert best == pytest.approx(50.0)
        assert gwmin_plan(paper_graph).score < best
