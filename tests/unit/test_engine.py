"""Unit tests for the shared-online streaming engine."""

from __future__ import annotations

import pytest

from repro.core import SharingCandidate, SharingPlan
from repro.events import EventStream, SlidingWindow, WindowInstance
from repro.executor import CompiledWorkload, StreamingEngine
from repro.queries import AggregateSpec, Pattern, PredicateSet, Query, Workload

from ..conftest import make_events


def make_workload(window=None, predicates=None):
    window = window or SlidingWindow(size=10, slide=5)
    predicates = predicates if predicates is not None else PredicateSet()
    queries = [
        Query(pattern=Pattern(["A", "B"]), window=window, predicates=predicates, name="q1"),
        Query(pattern=Pattern(["A", "B", "C"]), window=window, predicates=predicates, name="q2"),
    ]
    return Workload(queries)


class TestCompiledWorkload:
    def test_rejects_empty_workload(self):
        with pytest.raises(ValueError, match="empty workload"):
            CompiledWorkload(Workload())

    def test_rejects_non_uniform_workload(self):
        queries = [
            Query(pattern=Pattern(["A", "B"]), window=SlidingWindow(10, 5), name="u1"),
            Query(pattern=Pattern(["A", "B"]), window=SlidingWindow(20, 5), name="u2"),
        ]
        with pytest.raises(ValueError, match="uniform workload"):
            CompiledWorkload(Workload(queries))

    def test_relevant_types_and_grouping(self):
        workload = make_workload(predicates=PredicateSet.same("vehicle"))
        compiled = CompiledWorkload(workload)
        assert compiled.relevant_types == {"A", "B", "C"}
        assert compiled.partition_attributes == ("vehicle",)
        event = make_events([("A", 1, {"vehicle": 9})])[0]
        assert compiled.group_key(event) == (9,)
        assert compiled.is_relevant(event)
        assert not compiled.is_relevant(make_events([("Z", 1)])[0])

    def test_shared_specs_collected_per_pattern(self):
        workload = make_workload()
        candidate = SharingCandidate(Pattern(["A", "B"]), ("q1", "q2"), 1.0)
        compiled = CompiledWorkload(workload, SharingPlan([candidate]))
        assert Pattern(["A", "B"]) in compiled.shared_specs
        assert compiled.shared_specs[Pattern(["A", "B"])] == (AggregateSpec.count_star(),)


class TestEngineWindowing:
    def test_tumbling_window_results(self):
        workload = make_workload(window=SlidingWindow(size=10, slide=10))
        engine = StreamingEngine(workload)
        events = make_events([("A", 1), ("B", 3), ("A", 11), ("B", 12), ("C", 13)])
        report = engine.run(EventStream(events))
        assert report.results.value("q1", WindowInstance(0, 10)) == 1
        assert report.results.value("q1", WindowInstance(10, 20)) == 1
        assert report.results.value("q2", WindowInstance(0, 10)) == 0
        assert report.results.value("q2", WindowInstance(10, 20)) == 1

    def test_sliding_window_assigns_sequences_to_all_covering_windows(self):
        workload = make_workload(window=SlidingWindow(size=10, slide=5))
        engine = StreamingEngine(workload)
        events = make_events([("A", 6), ("B", 8)])
        report = engine.run(EventStream(events))
        # The sequence (a6, b8) lies in windows [0,10) and [5,15).
        assert report.results.value("q1", WindowInstance(0, 10)) == 1
        assert report.results.value("q1", WindowInstance(5, 15)) == 1

    def test_sequence_must_fit_in_one_window(self):
        workload = make_workload(window=SlidingWindow(size=10, slide=5))
        engine = StreamingEngine(workload)
        events = make_events([("A", 2), ("B", 13)])
        report = engine.run(EventStream(events))
        # a2 is only in [0,10); b13 only in [5,15) and [10,20): no common window.
        assert all(result.value == 0 for result in report.results.for_query("q1"))

    def test_windows_finalized_incrementally(self):
        workload = make_workload(window=SlidingWindow(size=10, slide=10))
        engine = StreamingEngine(workload)
        events = make_events([("A", 1), ("B", 2), ("A", 25)])
        report = engine.run(EventStream(events))
        # Two window instances saw relevant events: [0,10) and [20,30).
        assert report.metrics.windows_finalized == 2

    def test_empty_stream(self):
        workload = make_workload()
        report = StreamingEngine(workload).run(EventStream())
        assert len(report.results) == 0
        assert report.metrics.total_events == 0


class TestEngineGroupingAndPredicates:
    def test_equivalence_predicate_partitions_matches(self):
        workload = make_workload(predicates=PredicateSet.same("vehicle"))
        engine = StreamingEngine(workload)
        events = make_events(
            [
                ("A", 1, {"vehicle": 1}),
                ("B", 2, {"vehicle": 1}),
                ("A", 3, {"vehicle": 2}),
                ("B", 4, {"vehicle": 1}),
            ]
        )
        report = engine.run(EventStream(events))
        window = WindowInstance(0, 10)
        assert report.results.value("q1", window, (1,)) == 2  # (a1,b2), (a1,b4)
        assert report.results.value("q1", window, (2,)) == 0  # a3 has no same-vehicle B

    def test_filter_predicate_drops_events(self):
        predicates = PredicateSet(filters=())
        from repro.queries import FilterPredicate

        predicates = PredicateSet(filters=[FilterPredicate("speed", ">", 10)])
        workload = make_workload(predicates=predicates)
        engine = StreamingEngine(workload)
        events = make_events(
            [("A", 1, {"speed": 20}), ("B", 2, {"speed": 5}), ("B", 3, {"speed": 30})]
        )
        report = engine.run(EventStream(events))
        assert report.results.value("q1", WindowInstance(0, 10)) == 1
        assert report.metrics.relevant_events == 2

    def test_group_by_attribute(self):
        window = SlidingWindow(size=10, slide=10)
        queries = [
            Query(
                pattern=Pattern(["A", "B"]),
                window=window,
                group_by=("route",),
                name="g1",
            )
        ]
        workload = Workload(queries)
        engine = StreamingEngine(workload)
        events = make_events(
            [
                ("A", 1, {"route": "r1"}),
                ("B", 2, {"route": "r1"}),
                ("A", 3, {"route": "r2"}),
                ("B", 4, {"route": "r2"}),
            ]
        )
        report = engine.run(EventStream(events))
        assert report.results.value("g1", WindowInstance(0, 10), ("r1",)) == 1
        assert report.results.value("g1", WindowInstance(0, 10), ("r2",)) == 1


class TestEngineWithSharingPlan:
    def test_shared_and_private_results_agree(self):
        workload = make_workload(window=SlidingWindow(size=20, slide=10))
        candidate = SharingCandidate(Pattern(["A", "B"]), ("q1", "q2"), 1.0)
        rows = [("A", 1), ("B", 2), ("A", 3), ("B", 5), ("C", 6), ("C", 14), ("A", 15), ("B", 17)]
        shared_report = StreamingEngine(workload, SharingPlan([candidate])).run(
            EventStream(make_events(rows))
        )
        plain_report = StreamingEngine(workload).run(EventStream(make_events(rows)))
        assert shared_report.results.matches(plain_report.results)
        assert shared_report.plan is not None and len(shared_report.plan) == 1

    def test_memory_sampling_populates_peak(self):
        workload = make_workload()
        engine = StreamingEngine(workload, memory_sample_interval=1)
        rows = [("A", 1), ("B", 2), ("A", 11), ("B", 12)]
        report = engine.run(EventStream(make_events(rows)))
        assert report.metrics.peak_memory_bytes > 0

    def test_accepts_plain_event_iterables(self):
        workload = make_workload()
        report = StreamingEngine(workload).run(make_events([("A", 1), ("B", 2)]))
        assert report.metrics.total_events == 2
