"""Unit tests for the brute-force oracle executor itself.

The oracle anchors the differential harness, so its own semantics are pinned
here against hand-computed values on the paper's running example and on the
degenerate edge cases (empty windows, single-event patterns, budget).
"""

from __future__ import annotations

import pytest

from repro.events import Event, EventStream, SlidingWindow, WindowInstance
from repro.executor import (
    OracleBudgetExceeded,
    OracleExecutor,
    enumerate_sequences_naive,
)
from repro.queries import AggregateSpec, Pattern, PredicateSet, Query, Workload

from ..conftest import make_events


def single_window(size: int = 100) -> SlidingWindow:
    return SlidingWindow(size=size, slide=size)


class TestNaiveEnumeration:
    def test_enumerates_index_increasing_selections(self):
        events = make_events([("A", 1), ("B", 2), ("A", 3), ("B", 4)])
        matches = enumerate_sequences_naive(("A", "B"), events)
        # (a1,b2), (a1,b4), (a3,b4) plus the same-timestamp-free (a3,b2)?
        # No: index order forbids picking b2 after a3, so exactly three.
        assert len(matches) == 3

    def test_budget_exceeded_raises(self):
        events = make_events([("A", t) for t in range(12)])
        with pytest.raises(OracleBudgetExceeded):
            enumerate_sequences_naive(("A", "A"), events, budget=10)


class TestPaperRunningExample:
    def test_figure_7_stream_counts(self):
        """Example 3: count(A,B,C,D) = 5 on the stream a1 b2 c3 d4 a5 b6 c7 d8."""
        rows = [("A", 1), ("B", 2), ("C", 3), ("D", 4), ("A", 5), ("B", 6), ("C", 7), ("D", 8)]
        window = single_window()
        workload = Workload(
            [
                Query(Pattern(("A", "B", "C", "D")), window, name="full"),
                Query(Pattern(("C", "D")), window, name="shared"),
                Query(Pattern(("A", "B")), window, name="prefix"),
            ]
        )
        results = OracleExecutor(workload).run(EventStream(make_events(rows))).results
        instance = WindowInstance(0, 100)
        assert results.value("full", instance) == 5
        assert results.value("shared", instance) == 3  # (c3,d4), (c3,d8), (c7,d8)
        assert results.value("prefix", instance) == 3  # (a1,b2), (a1,b6), (a5,b6)

    def test_same_timestamp_events_never_chain(self):
        workload = Workload([Query(Pattern(("A", "B")), single_window(), name="q")])
        results = OracleExecutor(workload).run(
            EventStream(make_events([("A", 5), ("B", 5)]))
        ).results
        assert results.value("q", WindowInstance(0, 100)) == 0


class TestEdgeCases:
    def test_empty_stream_produces_no_results(self):
        workload = Workload([Query(Pattern(("A", "B")), single_window(), name="q")])
        report = OracleExecutor(workload).run(EventStream([]))
        assert len(report.results) == 0

    def test_window_without_relevant_events_emits_nothing(self):
        """Events exist, but none of the query's types: no result rows at all."""
        workload = Workload([Query(Pattern(("A", "B")), single_window(), name="q")])
        report = OracleExecutor(workload).run(EventStream(make_events([("X", 1), ("Y", 2)])))
        assert len(report.results) == 0

    def test_relevant_events_without_match_emit_zero(self):
        workload = Workload([Query(Pattern(("A", "B")), single_window(), name="q")])
        results = OracleExecutor(workload).run(EventStream(make_events([("B", 1), ("A", 2)]))).results
        assert results.value("q", WindowInstance(0, 100)) == 0

    def test_single_event_pattern(self):
        workload = Workload([Query(Pattern(("A",)), SlidingWindow(size=4, slide=2), name="q")])
        results = OracleExecutor(workload).run(
            EventStream(make_events([("A", 1), ("A", 3), ("B", 3)]))
        ).results
        # a1 lies in [0,4); a3 lies in [0,4) and [2,6).
        assert results.value("q", WindowInstance(0, 4)) == 2
        assert results.value("q", WindowInstance(2, 6)) == 1

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            OracleExecutor(Workload([]))

    def test_run_budget_guard(self):
        workload = Workload(
            [Query(Pattern(("A", "A", "A")), single_window(), name="q")]
        )
        stream = EventStream(make_events([("A", t) for t in range(20)]))
        with pytest.raises(OracleBudgetExceeded):
            OracleExecutor(workload, max_sequences_per_window=100).run(stream)


class TestAggregatesAndPredicates:
    def test_hand_computed_attribute_aggregates(self):
        rows = [
            ("A", 1, {"value": 2}),
            ("B", 2, {"value": 10}),
            ("B", 3, {"value": 4}),
        ]
        window = single_window()
        stream = EventStream(make_events(rows))
        # Matches: (a1,b2), (a1,b3); B values contribute 10 and 4.
        expectations = {
            AggregateSpec.count_star(): 2,
            AggregateSpec.count("B"): 2,
            AggregateSpec.sum("B", "value"): 14.0,
            AggregateSpec.min("B", "value"): 4.0,
            AggregateSpec.max("B", "value"): 10.0,
            AggregateSpec.avg("B", "value"): 7.0,
            AggregateSpec.sum("A", "value"): 4.0,  # a1 appears in two matches
        }
        for spec, expected in expectations.items():
            workload = Workload(
                [Query(Pattern(("A", "B")), window, aggregate=spec, name="q")]
            )
            results = OracleExecutor(workload).run(stream).results
            assert results.value("q", WindowInstance(0, 100)) == expected, spec

    def test_avg_without_matches_is_none(self):
        workload = Workload(
            [
                Query(
                    Pattern(("A", "B")),
                    single_window(),
                    aggregate=AggregateSpec.avg("B", "value"),
                    name="q",
                )
            ]
        )
        results = OracleExecutor(workload).run(
            EventStream(make_events([("A", 1, {"value": 3})]))
        ).results
        assert results.value("q", WindowInstance(0, 100), default=None) is None

    def test_equivalence_predicate_partitions_matches(self):
        predicates = PredicateSet.same("entity")
        workload = Workload(
            [Query(Pattern(("A", "B")), single_window(), predicates=predicates, name="q")]
        )
        rows = [
            ("A", 1, {"entity": 1}),
            ("B", 2, {"entity": 1}),
            ("A", 3, {"entity": 2}),
            ("B", 4, {"entity": 1}),
        ]
        results = OracleExecutor(workload).run(EventStream(make_events(rows))).results
        instance = WindowInstance(0, 100)
        assert results.value("q", instance, group=(1,)) == 2  # (a1,b2), (a1,b4)
        assert results.value("q", instance, group=(2,)) == 0  # a3 has no same-entity B
