"""Brute-force oracle executor: the ground truth for differential testing.

The optimised executors in this package earn their speed through layered
algebra — prefix aggregation, anchored sharing, cohort compaction, vectorised
columns.  Every layer is a place where a silent aggregation bug can hide, so
this module provides an executor with *no* layers at all:

* every window instance is materialised,
* every qualifying event sequence inside it is enumerated by naive recursion
  over event indexes (no prefix-extension dynamic programming, no sharing of
  sub-pattern work — deliberately nothing in common with the code under
  test),
* qualification and aggregation apply the paper's definitions literally:
  :meth:`~repro.queries.query.Query.matches_sequence` checks types, strict
  timestamp order, predicates, and grouping agreement per sequence, and
  :meth:`~repro.queries.aggregates.AggregateSpec.evaluate_sequences` folds
  the RETURN clause over the constructed matches.

Cost is exponential in the pattern length by design — the oracle exists to be
obviously correct on small inputs, not fast.  A sequence budget guards
against accidental use on large scenarios.

``tests/integration/test_oracle_differential.py`` runs Sharon, A-Seq, and the
two-step baselines against this oracle on randomized scenario grids and
shrinks any divergence to a minimal reproducer.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..events.event import Event
from ..events.stream import EventStream
from ..queries.query import Query
from ..queries.workload import Workload
from .engine import ExecutionReport
from .metrics import MetricsCollector
from .results import QueryResult, ResultSet

__all__ = ["OracleExecutor", "OracleBudgetExceeded", "enumerate_sequences_naive"]


class OracleBudgetExceeded(RuntimeError):
    """Raised when the oracle would enumerate more sequences than its budget."""


def enumerate_sequences_naive(
    event_types: Sequence[str],
    events: Sequence[Event],
    budget: "int | None" = None,
) -> list[tuple[Event, ...]]:
    """All index-increasing event selections whose types follow ``event_types``.

    Plain backtracking over event indexes: position ``j`` may pick any event
    after position ``j-1``'s pick whose type equals ``event_types[j]``.  No
    timestamp, predicate, or grouping logic here — callers filter the
    candidates with :meth:`Query.matches_sequence`, keeping this enumerator
    trivially auditable.  Two events sharing a timestamp yield one candidate
    per index order; the strict-timestamp check discards both, so no
    deduplication is needed.

    ``budget`` bounds the *explored partial selections* (recursion steps),
    not just completed matches, so match-free combinatorial blowups (a huge
    prefix space whose final type never occurs) abort instead of hanging.
    """
    matches: list[tuple[Event, ...]] = []
    length = len(event_types)
    chosen: list[Event] = []
    steps = 0

    def recurse(position: int, start_index: int) -> None:
        nonlocal steps
        if position == length:
            matches.append(tuple(chosen))
            return
        wanted = event_types[position]
        for index in range(start_index, len(events)):
            event = events[index]
            if event.event_type != wanted:
                continue
            steps += 1
            if budget is not None and steps > budget:
                raise OracleBudgetExceeded(
                    f"oracle explored more than {budget} partial sequences "
                    "in one window - shrink the scenario"
                )
            chosen.append(event)
            recurse(position + 1, index + 1)
            chosen.pop()

    recurse(0, 0)
    return matches


class OracleExecutor:
    """Window-materialising brute-force executor (test oracle).

    Unlike the engine-backed executors it does not require a uniform
    workload: each query is evaluated independently, straight from its own
    window, predicates, and grouping.

    Parameters
    ----------
    workload:
        The queries to evaluate.
    max_sequences_per_window:
        Budget on candidate sequences enumerated per (query, window); the
        run aborts with :class:`OracleBudgetExceeded` beyond it.
    """

    name = "Oracle"

    def __init__(
        self,
        workload: Workload,
        max_sequences_per_window: "int | None" = 500_000,
    ) -> None:
        if len(workload) == 0:
            raise ValueError("cannot execute an empty workload")
        self.workload = workload
        self.max_sequences_per_window = max_sequences_per_window

    def run(self, stream: "EventStream | Iterable[Event]") -> ExecutionReport:
        """Materialise every window of every query and aggregate its matches."""
        events = list(stream)
        collector = MetricsCollector(executor_name=self.name, memory_sample_interval=0)
        collector.start()
        results = ResultSet()
        relevant_types = {
            event_type for query in self.workload for event_type in query.pattern.event_types
        }
        for event in events:
            collector.count_event(event.event_type in relevant_types)
        if events:
            start_time = min(event.timestamp for event in events)
            end_time = max(event.timestamp for event in events)
            for query in self.workload:
                self._run_query(query, events, start_time, end_time, results, collector)
        for result in results:
            collector.results_emitted += 1
        metrics = collector.finish()
        return ExecutionReport(results=results, metrics=metrics, plan=None)

    # -- internals ----------------------------------------------------------------
    def _run_query(
        self,
        query: Query,
        events: list[Event],
        start_time: int,
        end_time: int,
        results: ResultSet,
        collector: MetricsCollector,
    ) -> None:
        #: Events that could ever participate in a match of this query.
        relevant = [event for event in events if query.accepts(event)]
        if not relevant:
            return
        for window in query.window.instances_between(start_time, end_time):
            in_window = [event for event in relevant if window.contains(event.timestamp)]
            if not in_window:
                continue
            candidates = enumerate_sequences_naive(
                query.pattern.event_types, in_window, self.max_sequences_per_window
            )
            matches = [
                candidate for candidate in candidates if query.matches_sequence(candidate)
            ]
            by_group: dict[tuple, list[tuple[Event, ...]]] = {}
            for match in matches:
                by_group.setdefault(query.grouping_key(match[0]), []).append(match)
            # Like the online engine, emit a (possibly zero-valued) result for
            # every group that contributed at least one relevant event.
            groups_present = {query.grouping_key(event) for event in in_window}
            for group in groups_present:
                value = query.aggregate.evaluate_sequences(by_group.get(group, []))
                results.add(QueryResult(query.name, window, group, value))
            collector.windows_finalized += 1
            collector.state_updates += len(matches)
