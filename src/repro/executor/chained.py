"""Chained per-query aggregation over a sharing plan (Section 3.3).

Under a sharing plan each query's pattern is decomposed into segments
(:class:`~repro.core.plan.QueryDecomposition`).  At runtime the query becomes
a *chain* of segment runners evaluated in stream order:

* a private segment runs its own flat prefix aggregation
  (:class:`~repro.executor.prefix_agg.PrivateSegmentState`), seeding its first
  position from the chain value of the upstream segments;
* a shared segment is backed by a scope-wide
  :class:`~repro.executor.prefix_agg.SharedSegmentState` computed once for all
  sharing queries; the per-query :class:`SharedSegmentRunner` merely records,
  for every anchor cohort (START events of the shared pattern sharing one
  timestamp), the upstream chain value at the cohort's arrival time and folds
  the cohort's completion deltas into a running combined total — the
  count-combination step of the Shared method (Figure 7, Example 3),
  performed incrementally so every read is O(1).

The chain value after the last segment is the query's aggregate for the
scope.
"""

from __future__ import annotations

from typing import Sequence

from ..core.plan import QueryDecomposition
from ..events.event import Event
from ..queries.aggregates import AggregateSpec, AggregateState
from ..queries.query import Query
from .prefix_agg import CarryProvider, PrivateSegmentState, SharedSegmentState

__all__ = ["SharedSegmentRunner", "QueryChainState", "stage_event_types"]

_ZERO = AggregateState.zero()


def stage_event_types(decomposition: QueryDecomposition) -> frozenset[str]:
    """Event types whose arrival requires staging the query's chain.

    A private segment must observe all of its pattern's types; a shared
    runner only acts when a new anchor cohort appears, i.e. when the shared
    pattern's START type arrives (completions of later positions reach it
    through the delta subscription).  This is the single source of truth for
    the engine's type-indexed chain dispatch.
    """
    types: set[str] = set()
    for segment in decomposition.segments:
        if segment.is_shared:
            types.add(segment.pattern.event_types[0])
        else:
            types.update(segment.pattern.event_types)
    return frozenset(types)


class SharedSegmentRunner:
    """Per-query combination of a shared segment's anchored aggregates.

    The runner subscribes to its :class:`SharedSegmentState`: whenever a
    cohort's completed aggregate grows by some delta, the shared state calls
    :meth:`absorb_completed` and the runner merges ``carry ⊗ delta`` into its
    running total.  Carries are frozen at anchor creation (the paper's
    semantics), so the total is exact and :meth:`chain_value` never rescans
    the anchors.
    """

    __slots__ = ("shared", "spec", "carries", "_staged_carries", "_total", "combinations")

    def __init__(self, shared: SharedSegmentState, spec: AggregateSpec) -> None:
        if spec not in shared.specs:
            raise ValueError(f"shared segment {shared.pattern!r} does not track {spec!r}")
        self.shared = shared
        self.spec = spec
        #: Upstream chain value snapshot per anchor cohort, parallel to the
        #: shared state's cohort arrays.
        self.carries: list[AggregateState] = []
        self._staged_carries: list[AggregateState] = []
        #: Running Σ carry_i ⊗ completed_i over all cohorts.
        self._total: AggregateState = _ZERO
        #: Number of carry × anchor combinations, counted once at finalization
        #: (the cost model's combination step, Section 5).
        self.combinations = 0
        shared.register(self)

    def stage_batch(self, events: Sequence[Event], carry: CarryProvider) -> None:
        """Record the upstream snapshot for the cohort created in this batch.

        The shared state must have been staged for the same batch already;
        all START events of a batch form one cohort and share one carry
        (the upstream value as of the beginning of the batch).
        """
        if self.shared.staged_new_anchors:
            self._staged_carries.append(carry())

    def commit(self) -> None:
        """Publish the carries staged for this batch's new anchor cohorts."""
        if self._staged_carries:
            self.carries.extend(self._staged_carries)
            self._staged_carries.clear()

    def absorb_completed(self, cohort: int, delta: AggregateState) -> None:
        """Fold one cohort's completion delta into the running total."""
        if cohort < len(self.carries):
            carry = self.carries[cohort]
        else:
            carry = self._staged_carries[cohort - len(self.carries)]
        if carry.count == 0:
            return
        self._total = self._total.merge(carry.combine(delta))

    def chain_value(self) -> AggregateState:
        """Aggregate over completed matches of the chain up to this segment."""
        return self._total

    def count_combinations(self) -> int:
        """Count the carry × anchor combinations of this scope (cost model).

        Called once at scope finalization: one combination per cohort whose
        carry and completed aggregate are both non-empty, matching the
        paper's per-window combination step instead of inflating the counter
        on every intermediate read.
        """
        performed = sum(
            1
            for carry, completed in zip(self.carries, self.shared.completed_column(self.spec))
            if carry.count != 0 and completed.count != 0
        )
        self.combinations += performed
        return performed

    def compact_to(self, representatives: Sequence[int]) -> None:
        """Shrink the carry array to the compacted cohort set.

        Called by :meth:`SharedSegmentState.compact` between batches with one
        representative (old) cohort index per surviving cohort.  All members
        of a merged group carry the same value by the compaction criterion,
        so keeping the representative's carry is exact.  The running total is
        untouched — it is a sum over absorbed deltas, not over cohorts.
        """
        if self._staged_carries:
            raise RuntimeError("cannot compact a runner with staged carries")
        carries = self.carries
        self.carries = [carries[index] for index in representatives]

    # -- checkpointing -----------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot carries, running total and combination count (JSON-safe)."""
        if self._staged_carries:
            raise RuntimeError("export_state() must be called between batches")
        return {
            "carries": [carry.as_tuple() for carry in self.carries],
            "total": self._total.as_tuple(),
            "combinations": self.combinations,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self.carries[:] = [AggregateState.from_tuple(carry) for carry in state["carries"]]
        self._staged_carries.clear()
        self._total = AggregateState.from_tuple(state["total"])
        self.combinations = state["combinations"]

    def reset(self) -> None:
        """Clear per-scope state so the runner can serve a new scope."""
        self.carries.clear()
        self._staged_carries.clear()
        self._total = _ZERO
        self.combinations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedSegmentRunner({self.shared.pattern!r}, anchors={len(self.carries)})"


#: A chain runner is either a private state or a shared runner.
ChainRunner = "PrivateSegmentState | SharedSegmentRunner"


class QueryChainState:
    """The full evaluation chain of one query inside one scope."""

    __slots__ = ("query", "runners")

    def __init__(
        self,
        query: Query,
        decomposition: QueryDecomposition,
        shared_states: dict,
        backend: str = "python",
    ) -> None:
        self.query = query
        self.runners: list = []
        for segment in decomposition.segments:
            if segment.is_shared:
                shared_state = shared_states[segment.pattern]
                self.runners.append(SharedSegmentRunner(shared_state, query.aggregate))
            else:
                self.runners.append(
                    PrivateSegmentState(segment.pattern, query.aggregate, backend)
                )

    def _carry_provider(self, index: int) -> CarryProvider:
        if index == 0:
            return AggregateState.unit
        upstream = self.runners[index - 1]
        return upstream.chain_value

    def stage_batch(self, events: Sequence[Event]) -> None:
        """Stage one same-timestamp batch through every segment runner.

        All carry reads observe committed (pre-batch) upstream values, so the
        chain never links events sharing a timestamp.
        """
        for index, runner in enumerate(self.runners):
            runner.stage_batch(events, self._carry_provider(index))

    def commit(self) -> None:
        """Commit every runner's staged carries (end of the batch's reads)."""
        for runner in self.runners:
            runner.commit()

    def final_state(self) -> AggregateState:
        """The aggregate state over complete matches of the whole query pattern."""
        return self.runners[-1].chain_value()

    def final_value(self):
        """The query's result value for this scope (RETURN clause applied)."""
        return self.query.aggregate.finalize(self.final_state())

    def finalize_value(self):
        """Result value plus cost accounting, called once at scope finalization."""
        for runner in self.runners:
            if isinstance(runner, SharedSegmentRunner):
                runner.count_combinations()
        return self.final_value()

    # -- checkpointing -----------------------------------------------------------
    def export_state(self) -> list:
        """Snapshot every segment runner, in chain order (JSON-safe)."""
        return [runner.export_state() for runner in self.runners]

    def restore_state(self, states: Sequence) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        if len(states) != len(self.runners):
            raise ValueError(
                f"snapshot has {len(states)} segments, chain has {len(self.runners)}"
            )
        for runner, state in zip(self.runners, states):
            runner.restore_state(state)

    def reset(self) -> None:
        """Clear every runner so the chain can serve a new scope."""
        for runner in self.runners:
            runner.reset()

    @property
    def update_count(self) -> int:
        """Total number of private-segment aggregate updates (cost accounting)."""
        return sum(r.updates for r in self.runners if isinstance(r, PrivateSegmentState))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = [
            "shared" if isinstance(r, SharedSegmentRunner) else "private" for r in self.runners
        ]
        return f"QueryChainState({self.query.name}: {' -> '.join(kinds)})"
