"""Chained per-query aggregation over a sharing plan (Section 3.3).

Under a sharing plan each query's pattern is decomposed into segments
(:class:`~repro.core.plan.QueryDecomposition`).  At runtime the query becomes
a *chain* of segment runners evaluated in stream order:

* a private segment runs its own flat prefix aggregation
  (:class:`~repro.executor.prefix_agg.PrivateSegmentState`), seeding its first
  position from the chain value of the upstream segments;
* a shared segment is backed by a scope-wide
  :class:`~repro.executor.prefix_agg.SharedSegmentState` computed once for all
  sharing queries; the per-query :class:`SharedSegmentRunner` merely records,
  for every anchor (START event of the shared pattern), the upstream chain
  value at the anchor's arrival time and combines it with the anchor's
  completed aggregates on demand — the count-combination step of the Shared
  method (Figure 7, Example 3).

The chain value after the last segment is the query's aggregate for the
scope.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.plan import QueryDecomposition
from ..events.event import Event
from ..queries.aggregates import AggregateSpec, AggregateState
from ..queries.query import Query
from .prefix_agg import CarryProvider, PrivateSegmentState, SharedSegmentState

__all__ = ["SharedSegmentRunner", "QueryChainState"]


class SharedSegmentRunner:
    """Per-query combination of a shared segment's anchored aggregates."""

    __slots__ = ("shared", "spec", "carries", "_staged_carries", "combinations")

    def __init__(self, shared: SharedSegmentState, spec: AggregateSpec) -> None:
        if spec not in shared.specs:
            raise ValueError(f"shared segment {shared.pattern!r} does not track {spec!r}")
        self.shared = shared
        self.spec = spec
        #: Upstream chain value snapshot per anchor, parallel to ``shared.anchors``.
        self.carries: list[AggregateState] = []
        self._staged_carries: list[AggregateState] = []
        #: Number of carry × anchor combinations performed (cost accounting).
        self.combinations = 0

    def stage_batch(self, events: Sequence[Event], carry: CarryProvider) -> None:
        """Record upstream snapshots for anchors created in this batch.

        The shared state must have been staged for the same batch already;
        the upstream carry is evaluated lazily (and only once) because the
        batch may create several anchors.
        """
        new_anchor_count = len(self.shared.staged_new_anchors)
        if new_anchor_count == 0:
            self._staged_carries = []
            return
        snapshot = carry()
        self._staged_carries = [snapshot] * new_anchor_count

    def commit(self) -> None:
        if self._staged_carries:
            self.carries.extend(self._staged_carries)
            self._staged_carries = []

    def chain_value(self) -> AggregateState:
        """Aggregate over completed matches of the chain up to this segment."""
        total = AggregateState.zero()
        for anchor, carry in zip(self.shared.anchors, self.carries):
            if carry.is_zero:
                continue
            completed = anchor.completed(self.spec)
            if completed.is_zero:
                continue
            total = total.merge(carry.combine(completed))
            self.combinations += 1
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedSegmentRunner({self.shared.pattern!r}, anchors={len(self.carries)})"


#: A chain runner is either a private state or a shared runner.
ChainRunner = "PrivateSegmentState | SharedSegmentRunner"


class QueryChainState:
    """The full evaluation chain of one query inside one scope."""

    __slots__ = ("query", "runners")

    def __init__(
        self,
        query: Query,
        decomposition: QueryDecomposition,
        shared_states: dict,
    ) -> None:
        self.query = query
        self.runners: list = []
        for segment in decomposition.segments:
            if segment.is_shared:
                shared_state = shared_states[segment.pattern]
                self.runners.append(SharedSegmentRunner(shared_state, query.aggregate))
            else:
                self.runners.append(PrivateSegmentState(segment.pattern, query.aggregate))

    def _carry_provider(self, index: int) -> CarryProvider:
        if index == 0:
            return AggregateState.unit
        upstream = self.runners[index - 1]
        return upstream.chain_value

    def stage_batch(self, events: Sequence[Event]) -> None:
        """Stage one same-timestamp batch through every segment runner.

        All carry reads observe committed (pre-batch) upstream values, so the
        chain never links events sharing a timestamp.
        """
        for index, runner in enumerate(self.runners):
            carry = self._carry_provider(index)
            if isinstance(runner, PrivateSegmentState):
                runner.stage_batch(events, carry)
            else:
                runner.stage_batch(events, carry)

    def commit(self) -> None:
        for runner in self.runners:
            runner.commit()

    def final_state(self) -> AggregateState:
        """The aggregate state over complete matches of the whole query pattern."""
        return self.runners[-1].chain_value()

    def final_value(self):
        """The query's result value for this scope (RETURN clause applied)."""
        return self.query.aggregate.finalize(self.final_state())

    @property
    def update_count(self) -> int:
        """Total number of private-segment aggregate updates (cost accounting)."""
        return sum(r.updates for r in self.runners if isinstance(r, PrivateSegmentState))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = [
            "shared" if isinstance(r, SharedSegmentRunner) else "private" for r in self.runners
        ]
        return f"QueryChainState({self.query.name}: {' -> '.join(kinds)})"
