"""Query results produced by the executors.

Every executor — online or two-step, shared or not — emits one
:class:`QueryResult` per query, window instance, and group that produced at
least one relevant event.  A :class:`ResultSet` collects them and offers the
lookups and equivalence checks the test suite relies on when cross-validating
executors against each other and against the brute-force oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from ..events.windows import WindowInstance

__all__ = ["QueryResult", "ResultSet"]

#: Key identifying one result: (query name, window instance, group key).
ResultKey = tuple[str, WindowInstance, tuple]


@dataclass(frozen=True)
class QueryResult:
    """One aggregation result (RETURN value per query, group, and window)."""

    query_name: str
    window: WindowInstance
    group: tuple
    value: object

    @property
    def key(self) -> ResultKey:
        """The result's identity: ``(query name, window instance, group key)``."""
        return (self.query_name, self.window, self.group)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        group = "" if not self.group else f" group={self.group}"
        return f"{self.query_name}@{self.window}{group}: {self.value}"


class ResultSet:
    """A collection of query results indexed by (query, window, group)."""

    def __init__(self, results: Iterable[QueryResult] = ()) -> None:
        self._by_key: dict[ResultKey, QueryResult] = {}
        for result in results:
            self.add(result)

    def add(self, result: QueryResult) -> None:
        """Insert ``result``, replacing any earlier result with the same key."""
        self._by_key[result.key] = result

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self._by_key.values())

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: ResultKey) -> bool:
        return key in self._by_key

    def get(self, query_name: str, window: WindowInstance, group: tuple = ()) -> QueryResult | None:
        """The result at ``(query_name, window, group)``, or ``None``."""
        return self._by_key.get((query_name, window, group))

    def value(self, query_name: str, window: WindowInstance, group: tuple = (), default=0):
        """The result value, or ``default`` when no result was produced."""
        result = self._by_key.get((query_name, window, group))
        return default if result is None else result.value

    def for_query(self, query_name: str) -> list[QueryResult]:
        """All results of one query, in insertion order."""
        return [r for r in self._by_key.values() if r.query_name == query_name]

    def for_window(self, window: WindowInstance) -> list[QueryResult]:
        """All results of one window instance, in insertion order."""
        return [r for r in self._by_key.values() if r.window == window]

    def query_names(self) -> tuple[str, ...]:
        """The distinct query names with at least one result, sorted."""
        return tuple(sorted({r.query_name for r in self._by_key.values()}))

    def as_dict(self) -> Mapping[ResultKey, object]:
        """A plain ``{key: value}`` mapping (convenient for comparisons)."""
        return {key: result.value for key, result in self._by_key.items()}

    def nonzero(self) -> "ResultSet":
        """Results whose value is neither ``None`` nor zero."""
        return ResultSet(r for r in self._by_key.values() if r.value not in (0, 0.0, None))

    def matches(self, other: "ResultSet", tolerance: float = 1e-9) -> bool:
        """Semantic equality: zero/absent results are interchangeable.

        Executors differ in whether they emit explicit zero-valued results for
        scopes that saw events but no match; this comparison treats a missing
        result and a zero (or ``None``) result as equal, and compares numeric
        values up to ``tolerance``.
        """
        keys = set(self._by_key) | set(other._by_key)
        for key in keys:
            mine = self._by_key.get(key)
            theirs = other._by_key.get(key)
            mine_value = None if mine is None else mine.value
            theirs_value = None if theirs is None else theirs.value
            if not _values_equivalent(mine_value, theirs_value, tolerance):
                return False
        return True

    def differences(self, other: "ResultSet", tolerance: float = 1e-9) -> list[tuple]:
        """Keys at which :meth:`matches` would fail, with both values (debugging)."""
        keys = set(self._by_key) | set(other._by_key)
        mismatches = []
        for key in sorted(keys, key=repr):
            mine = self._by_key.get(key)
            theirs = other._by_key.get(key)
            mine_value = None if mine is None else mine.value
            theirs_value = None if theirs is None else theirs.value
            if not _values_equivalent(mine_value, theirs_value, tolerance):
                mismatches.append((key, mine_value, theirs_value))
        return mismatches

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultSet({len(self._by_key)} results)"


def _values_equivalent(a, b, tolerance: float) -> bool:
    def normalise(value):
        if value is None:
            return 0.0
        return value

    a, b = normalise(a), normalise(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return abs(float(a) - float(b)) <= tolerance
    return a == b
