"""The Sharon executor: shared online event sequence aggregation (Section 3.3).

Given a sharing plan — typically produced by the
:class:`~repro.core.optimizer.SharonOptimizer` — the executor computes the
aggregates of every shared pattern exactly once per window and group and
combines them with each sharing query's private prefix/suffix aggregates.
Queries not covered by any candidate fall back to the Non-Shared method, so
with an empty plan the executor behaves exactly like A-Seq (the paper notes
this degenerate case at the end of Section 6).
"""

from __future__ import annotations

from typing import Iterable

from ..core.benefit import BenefitModel
from ..core.optimizer import SharonOptimizer
from ..core.plan import SharingPlan
from ..events.event import Event
from ..events.stream import EventStream
from ..queries.workload import Workload
from ..utils.rates import RateCatalog
from .churn import ChurnOp, ChurnSchedule
from .engine import ExecutionReport, StreamingEngine
from .sharding import ShardedEngine

__all__ = ["SharonExecutor", "run_workload"]


class SharonExecutor:
    """Shared online executor guided by a sharing plan.

    Parameters
    ----------
    workload:
        The (uniform) query workload.
    plan:
        The sharing plan to follow.  When omitted, a plan is computed on the
        fly with the :class:`~repro.core.optimizer.SharonOptimizer` from
        ``rates`` (one of the two must be provided).
    rates:
        Rate catalog used to optimize when no plan is given.
    memory_sample_interval:
        How often (in finalized windows) to sample peak memory; ``0`` disables
        sampling.
    compaction:
        Whether shared states merge anchor cohorts whose carries have become
        identical for every sharing query (on by default; disabling it is
        only useful for differential testing and benchmarking).
    panes:
        Run the engine in pane-partitioned mode (process each event once per
        pane of width ``gcd(size, slide)`` instead of once per covering
        window instance; see :mod:`repro.executor.panes`).  Off by default;
        ineligible workloads (tumbling windows) fall back to the
        per-instance loop automatically.
    columnar:
        Route ingestion through columnar micro-batches (interned type-id
        dispatch, compiled predicate kernels, pre-interned group keys; see
        :mod:`repro.events.columnar`).  On by default; ``False`` selects the
        scalar per-event reference path, which the differential suites pin
        against the columnar one.
    shards:
        Group-sharded parallel execution: partition the stream's groups
        across this many worker processes, each running the unchanged engine
        (:class:`~repro.executor.sharding.ShardedEngine`).  ``1`` (the
        default) keeps the in-process engine; workloads that cannot shard
        (no grouping, or a single observed group) fall back in-process.
    shard_strategy:
        ``"greedy"`` (load-balanced by per-group event counts, the default)
        or ``"hash"`` (stable hash of the group key); only used when
        ``shards > 1``.
    start_method:
        :mod:`multiprocessing` start method for the shard workers (``None``
        = platform default; the layer is spawn-safe).
    max_lateness:
        Bounded-lateness disorder tolerance (``docs/disorder.md``): when set,
        the engine accepts arrival orders shuffled up to this many time units
        through a watermark-driven reorder buffer.  ``None`` (the default)
        keeps the strict in-order contract.  Incompatible with ``shards > 1``
        (the shard splitter consumes the stream in timestamp order).
    late_policy:
        What happens to events beyond the lateness bound: ``"raise"`` (the
        default), ``"drop"`` (counted in ``events_dropped``), or a callable
        side channel receiving each late event.
    backend:
        Numeric kernel backend for the aggregation layer
        (:mod:`repro.executor.kernels`): ``"python"`` (the default, the
        exact reference), ``"numpy"`` (vectorised column commits; requires
        the optional numpy dependency), or ``"auto"`` (numpy when
        available).  Results are bit-identical across backends.
    churn:
        Optional :class:`~repro.executor.churn.ChurnSchedule` (or ops to
        build one from) of timestamped attach/detach operations applied at
        batch boundaries while :meth:`run` consumes the stream
        (``docs/churn.md``).  Incompatible with ``shards > 1``: churn
        recompiles the live workload, which the spawned shard workers cannot
        observe mid-run.
    """

    name = "Sharon"

    def __init__(
        self,
        workload: Workload,
        plan: SharingPlan | None = None,
        rates: "RateCatalog | BenefitModel | None" = None,
        memory_sample_interval: int = 0,
        compaction: bool = True,
        panes: bool = False,
        columnar: bool = True,
        shards: int = 1,
        shard_strategy: str = "greedy",
        start_method: str | None = None,
        max_lateness: int | None = None,
        late_policy="raise",
        backend: str = "python",
        churn: "ChurnSchedule | Iterable[ChurnOp] | None" = None,
    ) -> None:
        if plan is None:
            if rates is None:
                raise ValueError("SharonExecutor needs either a sharing plan or a rate catalog")
            plan = SharonOptimizer(rates).optimize(workload).plan
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards > 1 and max_lateness is not None:
            raise ValueError(
                "max_lateness is not supported with shards > 1: the shard "
                "splitter consumes the stream in timestamp order — reorder "
                "upstream of the sharded engine instead"
            )
        if churn is None:
            churn = ChurnSchedule()
        elif not isinstance(churn, ChurnSchedule):
            churn = ChurnSchedule(churn)
        if churn and shards > 1:
            raise ValueError(
                "query churn is not supported with shards > 1: the shard "
                "workers run fixed workload copies — churn the in-process "
                "engine, or restart the sharded run with the new workload"
            )
        self.workload = workload
        self.plan = plan
        self.churn = churn
        if shards > 1:
            self._engine: "StreamingEngine | ShardedEngine" = ShardedEngine(
                workload,
                plan=plan,
                shards=shards,
                strategy=shard_strategy,
                name=self.name,
                memory_sample_interval=memory_sample_interval,
                compaction=compaction,
                panes=panes,
                columnar=columnar,
                start_method=start_method,
                backend=backend,
            )
        else:
            self._engine = StreamingEngine(
                workload,
                plan=plan,
                name=self.name,
                memory_sample_interval=memory_sample_interval,
                compaction=compaction,
                panes=panes,
                columnar=columnar,
                max_lateness=max_lateness,
                late_policy=late_policy,
                backend=backend,
            )

    def run(self, stream: "EventStream | Iterable[Event]") -> ExecutionReport:
        """Evaluate the workload over ``stream`` according to the sharing plan."""
        if self.churn:
            return self._engine.run(stream, churn=self.churn)
        return self._engine.run(stream)


def run_workload(
    workload: Workload,
    stream: "EventStream | Iterable[Event]",
    rates: "RateCatalog | BenefitModel | None" = None,
    plan: SharingPlan | None = None,
    memory_sample_interval: int = 0,
) -> ExecutionReport:
    """One-call convenience API: optimize (if needed) and execute a workload.

    This is the library's quickstart entry point::

        report = run_workload(workload, stream, rates=RateCatalog.from_stream(stream))
        for result in report.results:
            print(result)
    """
    if plan is None and rates is None:
        rates = RateCatalog.from_stream(
            stream if isinstance(stream, EventStream) else EventStream(stream),
            per="window",
            window_size=workload[0].window.size,
        )
    executor = SharonExecutor(
        workload, plan=plan, rates=rates, memory_sample_interval=memory_sample_interval
    )
    return executor.run(stream)
