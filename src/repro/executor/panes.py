"""Pane-partitioned stream processing: one pass per event, per pane.

The per-instance engine loop fans every event out to all window instances
containing its timestamp (``instances_containing``), so a sliding window with
``size / slide = k`` re-processes each event ``k`` times.  This module
removes that redundancy with the classic pane decomposition (Li et al.):

* The timeline is tiled into non-overlapping **panes** of width
  ``gcd(size, slide)`` (:attr:`~repro.events.windows.SlidingWindow.pane_width`).
  Both ``size`` and ``slide`` are multiples of that width, so every window
  instance is an *exact* union of ``size / gcd`` consecutive panes.
* Per (pane × group), each distinct (pattern, aggregate spec) of the workload
  keeps one **pane transition matrix** ``T`` — for every pair of pattern
  positions ``i <= j``, ``T[i][j+1]`` aggregates the matches of the
  sub-pattern ``positions i..j`` that lie entirely inside the pane.  A batch
  updates the matrix once, whichever window instances cover the pane.
* When the stream time leaves a pane, the pane is **folded** into every
  covering window instance: a per-window prefix vector ``v`` (``v[j]`` =
  aggregate over matches of positions ``0..j-1`` completed so far) absorbs
  the matrix, ``v' = v ⊙ T`` in the (⊕ = ``merge``, ⊗ = ``combine``)
  semiring.  The window's result is ``v[l]`` after its last pane.

Correctness rests on the same algebra that justified cohort compaction
(``combine`` is associative and distributes over ``merge``, see
``docs/engine.md``) plus two ordering facts:

* **Across panes** — pane boundaries strictly separate timestamps, so a
  prefix match ending in pane ``p`` always precedes a sub-match starting in
  pane ``p' > p``; the fold never pairs events out of order.
* **Within a pane** — matrices commit a batch column-at-a-time in descending
  position order (the stage/commit trick of
  :mod:`repro.executor.prefix_agg`), so events sharing a timestamp never
  chain with each other.

COUNT(*) matrices (:class:`PaneCountMatrix`) degenerate to triangular integer
arrays — the paper's common case stays allocation-free on the hot path.  All
other specs use :class:`PaneStateMatrix` with fused
:meth:`~repro.queries.aggregates.AggregateState.extend_many` column updates.

The per-event cost is ``O(l^2)`` matrix cells (instead of ``O(k · l)``
positions across covering instances) and each pane is folded once per
covering window, ``O(windows · panes_per_window · l^2)`` overall — linear in
the stream for fixed window geometry.  The win grows with the overlap factor
``k``; :class:`~repro.executor.engine.StreamingEngine` therefore only routes
to this mode when ``k > 1`` (see ``StreamingEngine.panes_eligible``).
"""

from __future__ import annotations

from typing import Sequence

from array import array

from ..events.event import Event
from ..queries.aggregates import AggregateSpec, AggregateState, AggregationKind
from ..queries.pattern import Pattern
from ..queries.workload import Workload
from .prefix_agg import _I64_MAX, group_by_position, positions_by_type

__all__ = [
    "PaneCountMatrix",
    "PaneStateMatrix",
    "PaneScope",
    "WindowPaneAccumulator",
    "CompiledPaneWorkload",
    "make_pane_matrix",
]

_ZERO = AggregateState.zero()
_UNIT = AggregateState.unit()

#: Key identifying one pane matrix: (pattern event types, aggregate spec).
MatrixKey = tuple[tuple[str, ...], AggregateSpec]


class PaneCountMatrix:
    """COUNT(*) pane transition matrix: triangular flat integer columns.

    ``cells[j][i]`` (``i <= j``) is the number of matches of pattern
    positions ``i..j`` wholly inside the pane.  A COUNT(*) aggregate state is
    determined by its sequence count, so cells are machine integers —
    ``array('q')`` rows — and both the batch update and the window fold are
    integer arithmetic.  Like the cohort count columns, a row promotes to a
    plain Python list (exact big-int arithmetic) the moment a count would
    pass ``2**63 - 1``; the prefix *vectors* are Python lists and unbounded
    by construction.
    """

    __slots__ = ("length", "cells", "updates")

    def __init__(self, pattern: Pattern, spec: AggregateSpec) -> None:
        self.length = len(pattern)
        #: cells[j] has j+1 entries: cells[j][i] = T[i][j+1] for i <= j.
        self.cells: list["array | list[int]"] = [
            array("q", bytes(8 * (j + 1))) for j in range(self.length)
        ]
        self.updates = 0

    def apply_batch(self, by_position: dict[int, list[Event]], spec: AggregateSpec) -> None:
        """Commit one same-timestamp batch, descending position order.

        Position ``j`` reads the pre-batch values of column ``j - 1``, so
        events of the batch never chain with each other.
        """
        cells = self.cells
        for position in sorted(by_position, reverse=True):
            k = len(by_position[position])
            column = cells[position]
            if position:
                base = cells[position - 1]
                for i in range(position):
                    if base[i]:
                        updated = column[i] + k * base[i]
                        if updated > _I64_MAX and not isinstance(column, list):
                            column = cells[position] = list(column)
                        column[i] = updated
                        self.updates += k
            # A batch event also starts a fresh sub-match at its own position.
            updated = column[position] + k
            if updated > _I64_MAX and not isinstance(column, list):
                column = cells[position] = list(column)
            column[position] = updated
            self.updates += k

    def new_vector(self) -> list[int]:
        """The unit prefix vector: one empty sequence, nothing matched yet."""
        vector = [0] * (self.length + 1)
        vector[0] = 1
        return vector

    def fold(self, vector: list[int]) -> None:
        """In-place ``v <- v ⊙ T``: absorb this pane into a window's vector.

        Descending target positions keep all reads on pre-fold values (the
        matrix diagonal is the implicit identity, hence the ``vector[j]``
        passthrough term).
        """
        cells = self.cells
        for j in range(self.length, 0, -1):
            column = cells[j - 1]
            acc = 0
            for i in range(j):
                if vector[i] and column[i]:
                    acc += vector[i] * column[i]
            if acc:
                vector[j] += acc

    def final_state(self, vector: list[int]) -> AggregateState:
        """``vector``'s full-pattern count, boxed as an :class:`AggregateState`."""
        count = vector[self.length]
        return AggregateState(count=count) if count else _ZERO

    # -- checkpointing -----------------------------------------------------------
    def export_cells(self) -> dict:
        """Snapshot the triangular cells as nested int lists (JSON-safe)."""
        return {"cells": [list(row) for row in self.cells], "updates": self.updates}

    def restore_cells(self, state: dict) -> None:
        """Restore :meth:`export_cells` output, re-compacting rows that fit.

        Rows whose counts fit signed 64 bits go back into ``array('q')``
        storage; overflowing rows restore as promoted big-int lists, exactly
        mirroring the live promotion rule.
        """
        rows = state["cells"]
        if len(rows) != self.length:
            raise ValueError("snapshot row count does not match the pattern length")
        restored: list["array | list[int]"] = []
        for row in rows:
            try:
                restored.append(array("q", row))
            except OverflowError:
                restored.append(list(row))
        self.cells[:] = restored
        self.updates = state["updates"]


class PaneStateMatrix:
    """General pane transition matrix over :class:`AggregateState` cells.

    Used for COUNT(E)/SUM/MIN/MAX/AVG; batch updates are one fused
    ``extend_many`` per touched cell (the batch is reduced once per position
    via ``summarise_batch``), the fold is ``merge``/``combine`` algebra.
    """

    __slots__ = ("length", "cells", "updates")

    def __init__(self, pattern: Pattern, spec: AggregateSpec) -> None:
        self.length = len(pattern)
        self.cells: list[list[AggregateState]] = [
            [_ZERO] * (j + 1) for j in range(self.length)
        ]
        self.updates = 0

    def apply_batch(self, by_position: dict[int, list[Event]], spec: AggregateSpec) -> None:
        """Commit one same-timestamp batch, descending position order.

        Same stage/commit discipline as :meth:`PaneCountMatrix.apply_batch`,
        with one fused ``summarise_batch``/``extend_many`` update per
        (position, batch) instead of per event.
        """
        cells = self.cells
        for position in sorted(by_position, reverse=True):
            bucket = by_position[position]
            summary = spec.summarise_batch(bucket)
            k = summary[0]
            column = cells[position]
            if position:
                base = cells[position - 1]
                for i in range(position):
                    base_state = base[i]
                    if base_state.count:
                        column[i] = column[i].merge(base_state.extend_many(*summary))
                        self.updates += k
            column[position] = column[position].merge(_UNIT.extend_many(*summary))
            self.updates += k

    def new_vector(self) -> list[AggregateState]:
        """The unit prefix vector: one empty sequence, nothing matched yet."""
        return [_UNIT] + [_ZERO] * self.length

    def fold(self, vector: list[AggregateState]) -> None:
        """In-place ``v <- v ⊙ T`` in the (merge, combine) semiring."""
        cells = self.cells
        for j in range(self.length, 0, -1):
            column = cells[j - 1]
            acc = _ZERO
            for i in range(j):
                left = vector[i]
                if left.count and column[i].count:
                    acc = acc.merge(left.combine(column[i]))
            if acc.count:
                vector[j] = vector[j].merge(acc)

    def final_state(self, vector: list[AggregateState]) -> AggregateState:
        """The full-pattern aggregate state accumulated in ``vector``."""
        return vector[self.length]

    # -- checkpointing -----------------------------------------------------------
    def export_cells(self) -> dict:
        """Snapshot the triangular cells as nested state tuples (JSON-safe)."""
        return {
            "cells": [[state.as_tuple() for state in row] for row in self.cells],
            "updates": self.updates,
        }

    def restore_cells(self, state: dict) -> None:
        """Restore :meth:`export_cells` output."""
        rows = state["cells"]
        if len(rows) != self.length:
            raise ValueError("snapshot row count does not match the pattern length")
        self.cells[:] = [[AggregateState.from_tuple(value) for value in row] for row in rows]
        self.updates = state["updates"]


def make_pane_matrix(
    pattern: Pattern, spec: AggregateSpec, backend: str = "python"
) -> "PaneCountMatrix | PaneStateMatrix":
    """Pick the cheapest matrix representation for ``spec``.

    ``backend="numpy"`` swaps COUNT(*) storage for
    :class:`~repro.executor.kernels.NumpyPaneCountMatrix` (``int64`` rows,
    vectorised commits and folds, same exports).  State matrices are
    pattern-length-squared tiny and stay pure Python under every backend.
    """
    if spec.kind == AggregationKind.COUNT_STAR:
        if backend == "numpy":
            from .kernels import NumpyPaneCountMatrix

            return NumpyPaneCountMatrix(pattern, spec)
        return PaneCountMatrix(pattern, spec)
    return PaneStateMatrix(pattern, spec)


class CompiledPaneWorkload:
    """Pane-mode execution structure of a uniform workload.

    Deduplicates per-query state by (pattern, spec): queries returning the
    same aggregate over the same pattern share one matrix per (pane × group)
    and one vector per (window × group).  Also builds the type-indexed
    dispatch (event type → distinct patterns containing it, each with the
    matrix keys of its specs) mirroring the per-instance engine's dispatch
    tables; batches are bucketed once per pattern, not once per spec.

    The sharing *plan* is irrelevant here: pane mode shares work across
    overlapping window instances structurally, and segment decompositions
    never change which matches a query's full pattern has.
    """

    def __init__(self, workload: Workload, backend: str = "python") -> None:
        self.workload = workload
        self.window = workload[0].window
        #: Resolved numeric backend threaded into every pane matrix.
        self.backend = backend
        #: query name -> its matrix key.
        self.key_by_query: dict[str, MatrixKey] = {}
        #: matrix key -> (pattern, spec, positions-by-type).
        self.matrix_infos: dict[MatrixKey, tuple[Pattern, AggregateSpec, dict]] = {}
        #: pattern event types -> positions-by-type (shared across specs).
        positions_by_pattern: dict[tuple[str, ...], dict] = {}
        keys_by_pattern: dict[tuple[str, ...], list[MatrixKey]] = {}
        for query in workload:
            types = query.pattern.event_types
            key: MatrixKey = (types, query.aggregate)
            self.key_by_query[query.name] = key
            if key in self.matrix_infos:
                continue
            positions = positions_by_pattern.get(types)
            if positions is None:
                positions = positions_by_type(query.pattern)
                positions_by_pattern[types] = positions
            self.matrix_infos[key] = (query.pattern, query.aggregate, positions)
            keys_by_pattern.setdefault(types, []).append(key)
        index: dict[str, list[tuple[dict, tuple[MatrixKey, ...]]]] = {}
        for types, keys in keys_by_pattern.items():
            entry = (positions_by_pattern[types], tuple(keys))
            for event_type in set(types):
                index.setdefault(event_type, []).append(entry)
        #: Dispatch index: event type -> (positions, matrix keys) per distinct
        #: pattern containing it, so a batch is bucketed once per pattern and
        #: applied to every spec's matrix of that pattern.
        self.patterns_by_type: dict[str, tuple[tuple[dict, tuple[MatrixKey, ...]], ...]] = {
            event_type: tuple(entries) for event_type, entries in index.items()
        }
        #: Matrix keys in compilation order; snapshots reference matrices by
        #: index into this tuple instead of serialising key objects.
        self.matrix_keys: tuple[MatrixKey, ...] = tuple(self.matrix_infos)
        self._key_index: dict[MatrixKey, int] = {
            key: index for index, key in enumerate(self.matrix_keys)
        }

    def key_index(self, key: MatrixKey) -> int:
        """Stable snapshot index of ``key`` (position in :attr:`matrix_keys`)."""
        return self._key_index[key]


class PaneScope:
    """Transition matrices of one pane × group combination."""

    __slots__ = ("compiled", "pane_index", "group", "matrices")

    def __init__(self, compiled: CompiledPaneWorkload, pane_index: int, group: tuple) -> None:
        self.compiled = compiled
        self.pane_index = pane_index
        self.group = group
        #: Lazily created matrices; an absent key is the identity matrix.
        self.matrices: dict[MatrixKey, PaneCountMatrix | PaneStateMatrix] = {}

    def process_batch(self, events: list[Event]) -> None:
        """Route one same-timestamp batch to the matrices its types touch.

        The batch is bucketed by pattern position once per *distinct pattern*
        (not per matrix), then applied to every aggregate spec's matrix of
        that pattern.
        """
        compiled = self.compiled
        batch_types = {event.event_type for event in events}
        seen: set[tuple[MatrixKey, ...]] = set()
        for event_type in batch_types:
            for positions, keys in compiled.patterns_by_type.get(event_type, ()):
                if keys in seen:
                    continue
                seen.add(keys)
                by_position = group_by_position(events, positions)
                if by_position is None:
                    continue
                for key in keys:
                    pattern, spec, _positions = compiled.matrix_infos[key]
                    matrix = self.matrices.get(key)
                    if matrix is None:
                        matrix = make_pane_matrix(pattern, spec, compiled.backend)
                        self.matrices[key] = matrix
                    matrix.apply_batch(by_position, spec)

    @property
    def update_count(self) -> int:
        """Total matrix-cell updates this pane scope performed."""
        return sum(matrix.updates for matrix in self.matrices.values())

    def migrate(self, compiled: CompiledPaneWorkload) -> None:
        """Carry the scope across a workload recompilation (query churn).

        Matrix keys are value objects — ``(pattern event types, aggregate
        spec)`` — so every matrix whose key survives in the new compilation
        keeps accumulating untouched; matrices owned solely by detached
        queries are dropped.  Matrices for newly attached keys appear lazily
        on their first relevant event, exactly as at session start.
        """
        self.matrices = {
            key: matrix for key, matrix in self.matrices.items() if key in compiled.matrix_infos
        }
        self.compiled = compiled

    # -- checkpointing -----------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the scope's live matrices, keyed by matrix index."""
        compiled = self.compiled
        return {
            "pane_index": self.pane_index,
            "group": list(self.group),
            "matrices": [
                [compiled.key_index(key), matrix.export_cells()]
                for key, matrix in sorted(
                    self.matrices.items(), key=lambda item: compiled.key_index(item[0])
                )
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        compiled = self.compiled
        self.matrices.clear()
        for index, cells in state["matrices"]:
            key = compiled.matrix_keys[index]
            pattern, spec, _positions = compiled.matrix_infos[key]
            matrix = make_pane_matrix(pattern, spec, compiled.backend)
            matrix.restore_cells(cells)
            self.matrices[key] = matrix


class WindowPaneAccumulator:
    """Prefix vectors of one window instance × group, fed pane by pane."""

    __slots__ = ("compiled", "vectors")

    def __init__(self, compiled: CompiledPaneWorkload) -> None:
        self.compiled = compiled
        #: matrix key -> prefix vector; absent until the first non-identity pane.
        self.vectors: dict[MatrixKey, list] = {}

    def absorb(self, scope: PaneScope) -> int:
        """Fold one closed pane's matrices into the vectors; returns fold count."""
        folds = 0
        vectors = self.vectors
        for key, matrix in scope.matrices.items():
            vector = vectors.get(key)
            if vector is None:
                vector = matrix.new_vector()
                vectors[key] = vector
            matrix.fold(vector)
            folds += 1
        return folds

    def migrate(self, compiled: CompiledPaneWorkload) -> None:
        """Carry the accumulator across a workload recompilation (query churn).

        The value-based matrix keys make this a pure re-pointing: vectors for
        surviving keys keep folding, vectors owned solely by detached queries
        are dropped (see :meth:`PaneScope.migrate`).
        """
        self.vectors = {
            key: vector for key, vector in self.vectors.items() if key in compiled.matrix_infos
        }
        self.compiled = compiled

    def partial_value(self, query_name: str, open_scope: "PaneScope | None" = None):
        """The query's RETURN value as of now, including the open pane.

        Detach finalization uses this to emit a query's open windows before
        teardown: the committed prefix vector is copied, the still-open
        pane's matrix (if any) is folded into the copy, and the result is
        finalized exactly as :meth:`final_value` would at window close — so a
        detach at ``t`` matches a run over the stream truncated to events
        before ``t``.  The accumulator itself is left untouched.
        """
        compiled = self.compiled
        key = compiled.key_by_query[query_name]
        _pattern, spec, _positions = compiled.matrix_infos[key]
        vector = self.vectors.get(key)
        matrix = open_scope.matrices.get(key) if open_scope is not None else None
        if matrix is not None:
            vector = list(vector) if vector is not None else matrix.new_vector()
            matrix.fold(vector)
        if vector is None:
            return spec.finalize(_ZERO)
        last = vector[-1]
        if isinstance(last, int):
            return spec.finalize(AggregateState(count=last) if last else _ZERO)
        return spec.finalize(last)

    # -- checkpointing -----------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the prefix vectors, keyed by matrix index (JSON-safe)."""
        compiled = self.compiled
        dumped = []
        for key, vector in sorted(
            self.vectors.items(), key=lambda item: compiled.key_index(item[0])
        ):
            _pattern, spec, _positions = compiled.matrix_infos[key]
            if spec.kind == AggregationKind.COUNT_STAR:
                values: list = list(vector)
            else:
                values = [state.as_tuple() for state in vector]
            dumped.append([compiled.key_index(key), values])
        return {"vectors": dumped}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        compiled = self.compiled
        self.vectors.clear()
        for index, values in state["vectors"]:
            key = compiled.matrix_keys[index]
            _pattern, spec, _positions = compiled.matrix_infos[key]
            if spec.kind == AggregationKind.COUNT_STAR:
                self.vectors[key] = list(values)
            else:
                self.vectors[key] = [AggregateState.from_tuple(value) for value in values]

    def final_value(self, query_name: str):
        """The query's RETURN value for this window × group."""
        compiled = self.compiled
        key = compiled.key_by_query[query_name]
        _pattern, spec, _positions = compiled.matrix_infos[key]
        vector = self.vectors.get(key)
        if vector is None:
            return spec.finalize(_ZERO)
        # The vector's last entry aggregates the full-pattern matches; count
        # vectors store plain ints and are lifted here, once per result.
        last = vector[-1]
        if isinstance(last, int):
            return spec.finalize(AggregateState(count=last) if last else _ZERO)
        return spec.finalize(last)
