"""The shared-online streaming engine (Runtime Executor of Figure 5).

The engine replays an event stream against a *uniform* workload (all queries
agree on window, predicates, and grouping — the paper's core assumption) and
a sharing plan.  For every active window instance and group it keeps one
:class:`WindowGroupScope` holding

* one :class:`~repro.executor.prefix_agg.SharedSegmentState` per shared
  pattern of the plan — computed once for all sharing queries, and
* one :class:`~repro.executor.chained.QueryChainState` per query — its
  private segments plus the per-query combination of shared aggregates.

Events are processed in timestamp batches (events sharing a timestamp never
chain with each other); windows are finalized as soon as the stream time
passes their end, emitting one result per query and group.

Three properties keep the hot path linear in the stream (see
``docs/engine.md`` for the full complexity budget):

* **True streaming** — the stream is consumed through a lookahead-free batch
  iterator; it is never materialised, so memory is bounded by the open
  scopes, not the stream length.
* **Type-indexed dispatch** — :class:`CompiledWorkload` pre-computes which
  shared states and query chains care about each event type; a batch only
  touches the states whose patterns contain one of its types.
* **Scope pooling** — finalized :class:`WindowGroupScope` objects (and their
  array buffers) are reset and reused for new window instances, cutting
  allocation churn under sliding windows with ``max_overlap > 1``.

Running the engine with an *empty* plan degenerates to the Non-Shared method:
each query keeps a single private segment spanning its whole pattern, which
is exactly A-Seq's per-query online aggregation.  The executors in
``aseq.py`` and ``shared.py`` are thin wrappers configuring this engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.plan import QueryDecomposition, SharingPlan
from ..events.columnar import _INTERNER_LIMIT, ColumnLayout, ColumnarBatch
from ..events.disorder import (
    DisorderError,
    ReorderBuffer,
    ReorderFeed,
    validate_late_policy,
)
from ..events.event import Event
from ..events.stream import EventStream, timestamp_batches
from ..events.windows import SlidingWindow, WindowCursor, WindowInstance
from ..queries.aggregates import AggregateSpec
from ..queries.pattern import Pattern
from ..queries.predicates import PredicateSet, compile_filter_kernel
from ..queries.query import Query
from ..queries.workload import Workload
from .chained import QueryChainState, stage_event_types
from .churn import ChurnOp, ChurnSchedule, ChurnState
from .metrics import MetricsCollector, RunMetrics
from .panes import CompiledPaneWorkload, PaneScope, WindowPaneAccumulator
from .kernels import resolve_backend
from .prefix_agg import SharedSegmentState
from .results import QueryResult, ResultSet

__all__ = [
    "ExecutionReport",
    "CompiledWorkload",
    "WindowGroupScope",
    "StreamingEngine",
    "EngineSession",
    "PaneEngineSession",
]

#: Upper bound on retired scopes kept for reuse (bounds pool memory when the
#: group cardinality fluctuates).
_SCOPE_POOL_LIMIT = 128


@dataclass
class ExecutionReport:
    """Everything an executor run produces: results, metrics, and the plan used."""

    results: ResultSet
    metrics: RunMetrics
    plan: SharingPlan | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExecutionReport({self.metrics.summary()})"


class CompiledWorkload:
    """Pre-computed execution structure of a workload under a sharing plan.

    Besides the per-query decompositions, compilation builds the type-indexed
    dispatch tables used by :meth:`WindowGroupScope.process_batch`:
    ``shared_patterns_by_type`` routes a batch to the shared states whose
    pattern contains one of its event types, and ``chain_names_by_type``
    routes it to the query chains that must observe it (a chain needs a batch
    iff it contains a private-segment type or the START type of one of its
    shared segments — completions of later shared positions reach the chain
    through the runner's delta subscription instead).
    """

    def __init__(
        self,
        workload: Workload,
        plan: SharingPlan | None = None,
        compaction: bool = True,
        backend: str = "python",
    ) -> None:
        if len(workload) == 0:
            raise ValueError("cannot execute an empty workload")
        if not workload.is_uniform():
            raise ValueError(
                "the shared online engine requires a uniform workload "
                "(same window, predicates, and grouping for every query); "
                "segment the stream per context first (Section 7.2)"
            )
        self.workload = workload
        self.plan = plan if plan is not None else SharingPlan()
        #: Whether scopes built from this compilation auto-compact cohorts.
        self.compaction = compaction
        #: Resolved numeric backend ("python"/"numpy") every scope built from
        #: this compilation threads into its column families and summarisers.
        self.backend = resolve_backend(backend)
        reference: Query = workload[0]
        self.window: SlidingWindow = reference.window
        self.predicates: PredicateSet = reference.predicates
        self.partition_attributes: tuple[str, ...] = reference.partition_attributes

        self.decompositions: Mapping[str, QueryDecomposition] = self.plan.decompose(workload)
        self.relevant_types: frozenset[str] = frozenset(
            event_type for query in workload for event_type in query.pattern.event_types
        )
        #: Aggregate specs to track per shared pattern (union over sharing queries).
        self.shared_specs: dict[Pattern, tuple[AggregateSpec, ...]] = {}
        for query in workload:
            for segment in self.decompositions[query.name].shared_segments:
                existing = self.shared_specs.get(segment.pattern, ())
                if query.aggregate not in existing:
                    self.shared_specs[segment.pattern] = existing + (query.aggregate,)

        #: Dispatch index: event type -> shared patterns containing it.
        shared_index: dict[str, list[Pattern]] = {}
        for pattern in self.shared_specs:
            for event_type in set(pattern.event_types):
                shared_index.setdefault(event_type, []).append(pattern)
        self.shared_patterns_by_type: dict[str, tuple[Pattern, ...]] = {
            event_type: tuple(patterns) for event_type, patterns in shared_index.items()
        }

        #: Dispatch index: event type -> names of chains that must stage it.
        chain_index: dict[str, list[str]] = {}
        for query in workload:
            for event_type in stage_event_types(self.decompositions[query.name]):
                chain_index.setdefault(event_type, []).append(query.name)
        self.chain_names_by_type: dict[str, tuple[str, ...]] = {
            event_type: tuple(names) for event_type, names in chain_index.items()
        }

        #: Columnar routing: which columns batches must carry for this
        #: workload (relevant types interned to ids, attributes read by
        #: filters and aggregates, partition attributes), plus the filter
        #: conjunction compiled once into a batch kernel.
        read_attributes: set[str] = {f.attribute for f in self.predicates.filters}
        for query in workload:
            read_attributes.update(query.aggregate.read_attributes)
        self.layout = ColumnLayout(
            types=tuple(sorted(self.relevant_types)),
            attributes=tuple(sorted(read_attributes)),
            partition=self.partition_attributes,
        )
        self.filter_kernel = compile_filter_kernel(
            self.predicates.filters, self.layout.type_id
        )

    def group_key(self, event: Event) -> tuple:
        """``event``'s partition key (GROUP BY + equivalence attribute values)."""
        return tuple(event.attribute(attr) for attr in self.partition_attributes)

    def is_relevant(self, event: Event) -> bool:
        """Whether any query can react to ``event`` (type + filter predicates).

        The scalar routing predicate; the columnar path reaches the same
        decision through the batch's type-relevance selection and the
        compiled filter kernel (:meth:`route_columnar`).
        """
        return event.event_type in self.relevant_types and self.predicates.accepts(event)

    def route_columnar(
        self, batch: ColumnarBatch
    ) -> "tuple[int, dict[tuple, list[Event]] | None]":
        """Route one columnar batch to per-group row sub-batches.

        Returns ``(relevant_count, groups)`` where ``groups`` maps each group
        key to its relevant events in batch order (``None`` when nothing
        survives).  Type dispatch starts from the batch's precomputed
        type-relevance selection (interned ids, derived at ingestion), the
        filter conjunction runs as one compiled kernel over index
        selections, and group keys come pre-interned from the batch — the
        per-event routing work of :meth:`is_relevant`/:meth:`group_key`
        collapses into a few column passes over the surviving rows.
        """
        indices = batch.relevant
        kernel = self.filter_kernel
        if kernel is not None and indices:
            indices = kernel(batch, indices)
        if not indices:
            return 0, None
        events = batch.events
        keys = batch.group_keys
        if keys is None:
            return len(indices), {(): [events[i] for i in indices]}
        groups: dict[tuple, list[Event]] = {}
        for i in indices:
            key = keys[i]
            event = events[i]
            group = groups.get(key)
            if group is None:
                groups[key] = [event]
            else:
                group.append(event)
        return len(indices), groups


class WindowGroupScope:
    """Aggregation state of one window instance × group combination.

    Scopes are pooled: after finalization the engine calls :meth:`reset` and
    :meth:`rebind` to reuse the scope — including the underlying per-spec
    column arrays — for a later window instance under the same compiled
    workload.
    """

    __slots__ = ("compiled", "window", "group", "shared_states", "chains")

    def __init__(self, compiled: CompiledWorkload, window: WindowInstance, group: tuple) -> None:
        self.compiled = compiled
        self.window = window
        self.group = group
        self.shared_states: dict[Pattern, SharedSegmentState] = {
            pattern: SharedSegmentState(
                pattern,
                specs,
                auto_compact=compiled.compaction,
                backend=compiled.backend,
            )
            for pattern, specs in compiled.shared_specs.items()
        }
        self.chains: dict[str, QueryChainState] = {
            query.name: QueryChainState(
                query,
                compiled.decompositions[query.name],
                self.shared_states,
                backend=compiled.backend,
            )
            for query in compiled.workload
        }

    def process_batch(self, events: list[Event]) -> None:
        """Process one batch of equal-timestamp events through affected states.

        Dispatch is type-indexed: only shared states whose pattern contains a
        batch type, and only chains staged by one of the batch types, are
        touched — every other state is guaranteed unchanged by this batch.
        """
        compiled = self.compiled
        batch_types = {event.event_type for event in events}

        if self.shared_states:
            shared_by_type = compiled.shared_patterns_by_type
            active_shared: list[SharedSegmentState] = []
            seen_patterns: set[Pattern] = set()
            for event_type in batch_types:
                for pattern in shared_by_type.get(event_type, ()):
                    if pattern not in seen_patterns:
                        seen_patterns.add(pattern)
                        active_shared.append(self.shared_states[pattern])
        else:
            active_shared = []

        chains_by_type = compiled.chain_names_by_type
        active_chains: list[QueryChainState] = []
        seen_chains: set[str] = set()
        for event_type in batch_types:
            for name in chains_by_type.get(event_type, ()):
                if name not in seen_chains:
                    seen_chains.add(name)
                    active_chains.append(self.chains[name])

        for shared_state in active_shared:
            shared_state.stage_batch(events)
        for chain in active_chains:
            chain.stage_batch(events)
        for shared_state in active_shared:
            shared_state.commit()
        for chain in active_chains:
            chain.commit()
        # Cohort compaction runs strictly between batches, once every carry
        # and column update of this batch is committed.
        for shared_state in active_shared:
            shared_state.maybe_compact()

    def finalize(self) -> list[QueryResult]:
        """Emit one result per query for this scope."""
        return [
            QueryResult(name, self.window, self.group, chain.finalize_value())
            for name, chain in self.chains.items()
        ]

    def reset(self) -> None:
        """Clear all aggregation state for reuse by a later window instance."""
        for shared_state in self.shared_states.values():
            shared_state.reset()
        for chain in self.chains.values():
            chain.reset()

    def rebind(self, window: WindowInstance, group: tuple) -> None:
        """Point a (reset) pooled scope at a new window instance and group."""
        self.window = window
        self.group = group

    @property
    def update_count(self) -> int:
        """Total state updates this scope performed (shared + private)."""
        shared = sum(state.updates for state in self.shared_states.values())
        private = sum(chain.update_count for chain in self.chains.values())
        return shared + private

    @property
    def cohort_stats(self) -> tuple[int, int]:
        """(cohorts created, cohorts removed by compaction) across shared states."""
        created = sum(state.cohorts_created for state in self.shared_states.values())
        merged = sum(state.cohorts_merged for state in self.shared_states.values())
        return created, merged

    # -- checkpointing -----------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the scope as a JSON-safe dict (between batches only).

        Shared states are listed in ``compiled.shared_specs`` order and
        chains in workload order, so the snapshot references them by
        position — no Pattern/Query serialisation needed; restoring requires
        the same compiled workload (checkpoints fingerprint it).
        """
        compiled = self.compiled
        return {
            "window": [self.window.start, self.window.end],
            "group": list(self.group),
            "shared": [
                self.shared_states[pattern].export_state() for pattern in compiled.shared_specs
            ],
            "chains": [self.chains[query.name].export_state() for query in compiled.workload],
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        The scope must have been constructed with the same compiled workload
        (and the window/group of the snapshot); only aggregation state is
        restored here.
        """
        compiled = self.compiled
        for pattern, shared in zip(compiled.shared_specs, state["shared"]):
            self.shared_states[pattern].restore_state(shared)
        for query, chain in zip(compiled.workload, state["chains"]):
            self.chains[query.name].restore_state(chain)


def _dump_results(results: ResultSet) -> list:
    """Canonical JSON-safe listing of a result set (sorted by result key).

    Sorting by ``repr(key)`` (group tuples may mix value types) makes the
    dump independent of insertion order, so a resumed run and a full run
    export byte-identical results even though they populated the set in a
    different order.
    """
    return [
        [result.query_name, [result.window.start, result.window.end], list(result.group), result.value]
        for result in sorted(results, key=lambda result: repr(result.key))
    ]


def _load_results(dumped: list) -> ResultSet:
    """Rebuild a :class:`ResultSet` from :func:`_dump_results` output."""
    results = ResultSet()
    for name, (start, end), group, value in dumped:
        results.add(QueryResult(name, WindowInstance(start, end), tuple(group), value))
    return results


def _churn_effective_at(last_timestamp: int, at: "int | None") -> int:
    """Validate and resolve a churn op's effective timestamp.

    Gate correctness (a query attached at ``t`` emits exactly the windows
    with ``start >= t``) needs the effective timestamp to lie strictly after
    the last processed batch: every window starting later has seen zero
    events, so the new query misses nothing.  ``None`` means "from the next
    batch on" (``last_timestamp + 1``).
    """
    effective = last_timestamp + 1 if at is None else at
    if effective <= last_timestamp:
        raise ValueError(
            f"churn ops apply between batches: effective timestamp {effective} "
            f"must be greater than the last processed batch timestamp {last_timestamp}"
        )
    return effective


def _resolve_churn_plan(
    workload: Workload,
    plan: "SharingPlan | None",
    rates,
    default: SharingPlan,
) -> SharingPlan:
    """Pick the sharing plan to install with a recompiled (churned) workload.

    Precedence: an explicit ``plan``; else re-optimize from ``rates`` through
    the dynamic optimizer; else the deterministic ``default`` the caller
    derived from the current plan.  Checkpoint histories fingerprint the
    resulting (workload, plan), so a rates-optimized churn resumes correctly
    only when re-optimization is reproducible — prefer explicit plans or the
    default in replayed schedules.
    """
    if plan is not None:
        return plan
    if rates is not None:
        from ..core.optimizer import SharonOptimizer

        return SharonOptimizer(rates).optimize(workload).plan
    return default


def _restrict_plan_without(plan: SharingPlan, query_name: str) -> SharingPlan:
    """The deterministic post-detach plan: current candidates minus the query.

    Candidates left with fewer than two sharing queries stop being shareable
    and are dropped entirely (their surviving query falls back to private
    evaluation); every other candidate is restricted to the survivors.
    """
    kept = []
    for candidate in plan:
        names = tuple(name for name in candidate.query_names if name != query_name)
        if len(names) < 2:
            continue
        if len(names) == len(candidate.query_names):
            kept.append(candidate)
        else:
            kept.append(candidate.restricted_to(names, candidate.benefit))
    return SharingPlan(kept)


def _churn_fingerprint(workload: Workload, plan: SharingPlan) -> str:
    """Fingerprint of a churned (workload, plan) for the history record."""
    # Imported lazily: the replay package imports this module at load time.
    from ..replay.checkpoint import workload_fingerprint

    return workload_fingerprint(workload, plan)


def _restore_reorder(buffer: "ReorderBuffer | None", state: dict) -> None:
    """Restore a session snapshot's reorder buffer (both session classes).

    The snapshot must agree with the session about whether disorder tolerance
    is configured at all — a buffered-events snapshot restored into an engine
    without a buffer would drop those events on the floor.
    """
    reorder = state.get("reorder")
    if (reorder is None) != (buffer is None):
        raise ValueError(
            "snapshot reorder-buffer state does not match this engine's "
            "max_lateness configuration"
        )
    if reorder is not None:
        buffer.restore_state(reorder)


class EngineSession:
    """One stepwise per-instance engine run that can be checkpointed.

    A session owns everything :meth:`StreamingEngine.run` used to keep in
    locals — metrics collector, result set, open scopes, scope pool, and the
    window cursor — and exposes the run loop as :meth:`step` (one timestamp
    batch) plus :meth:`finish` (final window flush).  Because the whole run
    state lives here, :meth:`export_state`/:meth:`restore_state` can snapshot
    it between batches and a resumed session is indistinguishable from one
    that consumed the full stream (the replay suite pins this byte-for-byte).

    Obtain sessions from :meth:`StreamingEngine.new_session`, which picks
    this class or :class:`PaneEngineSession` to match the engine's mode.
    """

    mode = "instances"

    __slots__ = (
        "engine",
        "collector",
        "results",
        "_scopes",
        "_pool",
        "_cursor",
        "_reorder",
        "_churn",
        "_generations",
    )

    def __init__(self, engine: "StreamingEngine") -> None:
        self.engine = engine
        self.collector = MetricsCollector(
            executor_name=engine.name, memory_sample_interval=engine.memory_sample_interval
        )
        self.results = ResultSet()
        #: Active scopes: window instance -> group key -> scope.
        self._scopes: dict[WindowInstance, dict[tuple, WindowGroupScope]] = {}
        #: Retired scopes available for reuse under the current compiled workload.
        self._pool: list[WindowGroupScope] = []
        #: Scope index: the window instances containing the (monotone) batch
        #: timestamp, maintained incrementally instead of re-derived per event.
        self._cursor = WindowCursor(engine.compiled.window)
        #: Bounded-lateness reorder buffer (``None`` unless the engine was
        #: built with ``max_lateness``); :meth:`ingest` runs it over a stream.
        self._reorder = (
            ReorderBuffer(engine.max_lateness) if engine.max_lateness is not None else None
        )
        #: Live-churn bookkeeping (``None`` until the first attach/detach).
        self._churn: "ChurnState | None" = None
        #: Every compiled workload this session has run under, oldest first;
        #: open scopes are snapshot-tagged with their generation index so a
        #: resumed session rebuilds each one under the right compilation.
        self._generations: list[CompiledWorkload] = [engine.compiled]

    def ingest(self, stream):
        """Wrap ``stream`` in this session's reorder feed (identity when none).

        With ``max_lateness`` configured on the engine, the returned
        :class:`~repro.events.disorder.ReorderFeed` consumes ``stream`` in
        *arrival* order and yields watermark-released ``(timestamp,
        [events])`` batches in canonical order; events beyond the lateness
        bound hit the engine's ``late_policy``, counted on this session's
        collector.  Without ``max_lateness`` the stream is returned
        unchanged.
        """
        if self._reorder is None:
            return stream
        return ReorderFeed(stream, self._reorder, self.engine.late_policy, self.collector)

    # -- live workload churn -----------------------------------------------------
    def _churn_state(self) -> ChurnState:
        """This session's churn bookkeeping, created on first use."""
        if self._churn is None:
            self._churn = ChurnState(self.engine.workload.query_names())
        return self._churn

    @property
    def attach_timestamps(self) -> dict[str, int]:
        """Recorded attach timestamp per query attached mid-run (``docs/churn.md``)."""
        return {} if self._churn is None else dict(self._churn.attach_timestamps)

    def churn_history(self) -> list[dict]:
        """The applied attach/detach ops as JSON-safe dicts, oldest first."""
        return [] if self._churn is None else [dict(entry) for entry in self._churn.history]

    def apply_churn_op(self, op: ChurnOp) -> int:
        """Apply one :class:`~repro.executor.churn.ChurnOp`; returns its effective timestamp."""
        if op.kind == "attach":
            return self.attach_query(op.query, at=op.at, plan=op.plan)
        return self.detach_query(op.query_name, at=op.at, plan=op.plan)

    def attach_query(self, query: Query, at: "int | None" = None, plan=None, rates=None) -> int:
        """Attach ``query`` to the live workload between batches.

        The workload is recompiled (layouts, filter kernels, type-relevance
        selections) and the sharing plan re-resolved (explicit ``plan`` >
        optimize from ``rates`` > keep the current plan, with the new query
        unshared).  Open scopes carry over untouched — they keep their
        creation-time compilation and finish as zombies, exactly like
        :meth:`StreamingEngine.set_plan` plan migration — and the new query
        begins at the next window boundary: only windows starting at or
        after the recorded attach timestamp (returned, and exposed via
        :attr:`attach_timestamps`) emit results for it.  Such windows have
        seen zero events when the attach applies, so the new query misses
        nothing.  The query must be uniform with the running workload and
        its name unused.
        """
        engine = self.engine
        effective_at = _churn_effective_at(self._cursor.timestamp, at)
        new_workload = Workload(engine.workload.queries + (query,), name=engine.workload.name)
        new_plan = _resolve_churn_plan(new_workload, plan, rates, engine.compiled.plan)
        compiled = engine.set_workload(new_workload, new_plan)
        self._generations.append(compiled)
        churn = self._churn_state()
        churn.active.add(query.name)
        churn.attach_timestamps[query.name] = effective_at
        churn.record("attach", effective_at, query.name, _churn_fingerprint(new_workload, new_plan))
        return effective_at

    def detach_query(self, query_id: str, at: "int | None" = None, plan=None, rates=None) -> int:
        """Detach the named query between batches, finalizing its open windows.

        Every open window the query may still emit (respecting its attach
        gate, if it was itself attached mid-run) immediately yields its
        partial value — exactly what a run over the stream truncated at the
        effective timestamp would have produced at end-of-stream.  The
        workload is then recompiled without the query: open scopes keep
        their zombie chains (which finish unharmed but are filtered from
        emission), and the plan defaults to the current plan restricted to
        the survivors.  Detaching the last active query is refused.
        """
        engine = self.engine
        name = query_id
        if name not in engine.workload:
            raise ValueError(f"cannot detach unknown query {name!r}")
        survivors = tuple(q for q in engine.workload if q.name != name)
        if not survivors:
            raise ValueError(
                "cannot detach the last active query; the engine needs a non-empty workload"
            )
        effective_at = _churn_effective_at(self._cursor.timestamp, at)
        new_workload = Workload(survivors, name=engine.workload.name)
        new_plan = _resolve_churn_plan(
            new_workload, plan, rates, _restrict_plan_without(engine.compiled.plan, name)
        )
        churn = self._churn_state()
        compiled = engine.set_workload(new_workload, new_plan)
        self._generations.append(compiled)
        self._finalize_detached(name, churn)
        churn.active.discard(name)
        churn.attach_timestamps.pop(name, None)
        churn.record("detach", effective_at, name, _churn_fingerprint(new_workload, new_plan))
        return effective_at

    def _finalize_detached(self, name: str, churn: ChurnState) -> None:
        """Emit the detached query's partial value for every open window."""
        emitted = 0
        for window in sorted(self._scopes):
            if not churn.emits(name, window.start):
                continue
            by_group = self._scopes[window]
            for group in sorted(by_group, key=repr):
                chain = by_group[group].chains.get(name)
                if chain is None:
                    continue
                self.results.add(QueryResult(name, window, group, chain.finalize_value()))
                emitted += 1
        self.collector.results_emitted += emitted

    def step(self, timestamp: int, groups: "dict[tuple, list[Event]] | None") -> None:
        """Process one routed timestamp batch (see ``routed_batches``)."""
        engine = self.engine
        last = self._cursor.timestamp
        if timestamp < last:
            raise DisorderError(
                f"{engine.name}: batch at timestamp {timestamp} arrived after "
                f"batch at timestamp {last}; engine sessions require "
                f"non-decreasing batch timestamps — feed disordered streams "
                f"through a reorder buffer (max_lateness, docs/disorder.md)"
            )
        engine._finalize_expired(
            self._scopes, timestamp, self.results, self.collector, self._pool, self._churn
        )
        # Advance even for all-irrelevant batches: the cursor's timestamp is
        # this session's disorder guard, and skipping empty batches would let
        # a later regressed batch silently seed scopes for windows that
        # finalization already flushed.
        windows = self._cursor.advance(timestamp)
        if groups:
            compiled = engine.compiled
            for group, group_events in groups.items():
                for window in windows:
                    group_scopes = self._scopes.setdefault(window, {})
                    scope = group_scopes.get(group)
                    if scope is None:
                        scope = engine._acquire_scope(self._pool, compiled, window, group)
                        group_scopes[group] = scope
                    scope.process_batch(group_events)

    def finish(self) -> ExecutionReport:
        """Flush all remaining windows and freeze the report."""
        engine = self.engine
        engine._finalize_expired(
            self._scopes, None, self.results, self.collector, self._pool, self._churn
        )
        metrics = self.collector.finish()
        return ExecutionReport(results=self.results, metrics=metrics, plan=engine.compiled.plan)

    # -- checkpointing -----------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the whole session as a JSON-safe dict (between batches).

        Scopes are listed window-sorted then group-sorted (by ``repr``) and
        results in canonical key order, so the export is independent of the
        arrival order that built the internal dicts — the property that makes
        resumed-run and full-run state hashes comparable.  The scope pool is
        deliberately excluded: pooled scopes are reset husks that cannot
        influence any future result.

        After live churn (attach/detach) the export additionally carries the
        churn state and tags every scope with its workload-generation index;
        churn-free sessions keep the pre-churn schema byte-for-byte.
        """
        churn = self._churn
        scopes = []
        for window in sorted(self._scopes):
            by_group = self._scopes[window]
            for group in sorted(by_group, key=repr):
                scope = by_group[group]
                dump = scope.export_state()
                if churn is not None:
                    dump["generation"] = self._generation_index(scope.compiled)
                scopes.append(dump)
        state = {
            "mode": self.mode,
            "cursor": self._cursor.export_state(),
            "scopes": scopes,
            "results": _dump_results(self.results),
            "metrics": self.collector.export_counters(),
        }
        # Disorder-free sessions export exactly the pre-disorder schema.
        if self._reorder is not None:
            state["reorder"] = self._reorder.export_state()
        if churn is not None:
            state["churn"] = churn.export()
        return state

    def _generation_index(self, compiled: CompiledWorkload) -> int:
        """Index of ``compiled`` in this session's generation list (identity)."""
        for index, generation in enumerate(self._generations):
            if generation is compiled:
                return index
        raise ValueError(
            "an open scope's compiled workload is not one of this session's "
            "churn generations; combining set_plan with attach/detach "
            "checkpoints is not supported"
        )

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        The engine must be configured identically to the exporting one
        (same workload, plan, and toggles) — checkpoint files carry a
        workload fingerprint and the engine config so the replay layer can
        verify this before calling here.  A snapshot taken after live churn
        additionally requires the same attach/detach ops to have been
        re-applied (in order) to this session first, so scopes tagged with a
        generation index find their compilation in :attr:`_generations`.
        """
        if state.get("mode") != self.mode:
            raise ValueError(
                f"snapshot was taken in {state.get('mode')!r} mode, "
                f"this session runs in {self.mode!r} mode"
            )
        snapshot_churn = state.get("churn")
        current_churn = None if self._churn is None else self._churn.export()
        if snapshot_churn != current_churn:
            raise ValueError(
                "snapshot churn history does not match this session's; "
                "re-apply the same attach/detach ops (in order) on a fresh "
                "session before restoring"
            )
        self._cursor.restore_state(state["cursor"])
        self._scopes = {}
        self._pool = []
        compiled = self.engine.compiled
        for dump in state["scopes"]:
            window = WindowInstance(dump["window"][0], dump["window"][1])
            group = tuple(dump["group"])
            generation = dump.get("generation")
            if generation is None:
                scope_compiled = compiled
            elif 0 <= generation < len(self._generations):
                scope_compiled = self._generations[generation]
            else:
                raise ValueError(
                    f"snapshot references workload generation {generation}, "
                    f"but this session only has {len(self._generations)}"
                )
            scope = WindowGroupScope(scope_compiled, window, group)
            scope.restore_state(dump)
            self._scopes.setdefault(window, {})[group] = scope
        self.results = _load_results(state["results"])
        self.collector.restore_counters(state["metrics"])
        _restore_reorder(self._reorder, state)


class PaneEngineSession:
    """Stepwise pane-partitioned engine run (checkpointable).

    The pane-mode counterpart of :class:`EngineSession`: owns the single
    open pane's scopes and the per-window prefix-vector accumulators.
    Exactly one pane is ever open (streams are timestamp-ordered); when the
    stream time leaves it, its matrices are folded into the accumulators of
    every covering window instance and dropped.  Sharing plans do not apply
    in this mode: work is shared across overlapping window instances (and
    across queries with equal (pattern, aggregate) pairs) structurally.
    """

    mode = "panes"

    __slots__ = (
        "engine",
        "collector",
        "results",
        "_pane_compiled",
        "_pane_width",
        "_open_pane_index",
        "_open_pane_scopes",
        "_accumulators",
        "_last_timestamp",
        "_reorder",
        "_churn",
    )

    def __init__(self, engine: "StreamingEngine") -> None:
        self.engine = engine
        self.collector = MetricsCollector(
            executor_name=engine.name, memory_sample_interval=engine.memory_sample_interval
        )
        self.results = ResultSet()
        self._pane_compiled = CompiledPaneWorkload(engine.workload, backend=engine.backend)
        self._pane_width = engine.compiled.window.pane_width
        #: The single open pane: index plus one scope per group seen in it.
        self._open_pane_index: "int | None" = None
        self._open_pane_scopes: dict[tuple, PaneScope] = {}
        #: Pane-fed prefix vectors: window instance -> group -> accumulator.
        self._accumulators: dict[WindowInstance, dict[tuple, WindowPaneAccumulator]] = {}
        #: Monotonicity guard (the pane loop has no cursor to hold one).
        self._last_timestamp = -1
        #: Bounded-lateness reorder buffer (``None`` unless the engine was
        #: built with ``max_lateness``); :meth:`ingest` runs it over a stream.
        self._reorder = (
            ReorderBuffer(engine.max_lateness) if engine.max_lateness is not None else None
        )
        #: Live-churn bookkeeping (``None`` until the first attach/detach).
        self._churn: "ChurnState | None" = None

    def ingest(self, stream):
        """Wrap ``stream`` in this session's reorder feed (identity when none).

        Same contract as :meth:`EngineSession.ingest`.
        """
        if self._reorder is None:
            return stream
        return ReorderFeed(stream, self._reorder, self.engine.late_policy, self.collector)

    # -- live workload churn -----------------------------------------------------
    def _churn_state(self) -> ChurnState:
        """This session's churn bookkeeping, created on first use."""
        if self._churn is None:
            self._churn = ChurnState(self.engine.workload.query_names())
        return self._churn

    @property
    def attach_timestamps(self) -> dict[str, int]:
        """Recorded attach timestamp per query attached mid-run (``docs/churn.md``)."""
        return {} if self._churn is None else dict(self._churn.attach_timestamps)

    def churn_history(self) -> list[dict]:
        """The applied attach/detach ops as JSON-safe dicts, oldest first."""
        return [] if self._churn is None else [dict(entry) for entry in self._churn.history]

    def apply_churn_op(self, op: ChurnOp) -> int:
        """Apply one :class:`~repro.executor.churn.ChurnOp`; returns its effective timestamp."""
        if op.kind == "attach":
            return self.attach_query(op.query, at=op.at, plan=op.plan)
        return self.detach_query(op.query_name, at=op.at, plan=op.plan)

    def attach_query(self, query: Query, at: "int | None" = None, plan=None, rates=None) -> int:
        """Attach ``query`` between batches (pane-mode counterpart).

        Same contract as :meth:`EngineSession.attach_query`.  Pane state
        migrates in place: matrix keys are value-based (pattern types,
        aggregate spec), so every surviving key's matrices and prefix
        vectors carry over to the recompiled pane workload verbatim; the new
        query's matrices appear lazily.  Events the still-open pane absorbed
        before the attach can only feed windows starting before the attach
        timestamp, which the emission gate suppresses for the new query.
        """
        engine = self.engine
        effective_at = _churn_effective_at(self._last_timestamp, at)
        new_workload = Workload(engine.workload.queries + (query,), name=engine.workload.name)
        new_plan = _resolve_churn_plan(new_workload, plan, rates, engine.compiled.plan)
        engine.set_workload(new_workload, new_plan)
        self._migrate_panes(new_workload)
        churn = self._churn_state()
        churn.active.add(query.name)
        churn.attach_timestamps[query.name] = effective_at
        churn.record("attach", effective_at, query.name, _churn_fingerprint(new_workload, new_plan))
        return effective_at

    def detach_query(self, query_id: str, at: "int | None" = None, plan=None, rates=None) -> int:
        """Detach the named query between batches (pane-mode counterpart).

        Same contract as :meth:`EngineSession.detach_query`: every window the
        query may still emit yields its partial value first — folding a
        *copy* of the still-open pane's matrices into windows it covers, so
        live pane state is untouched — then the pane workload is recompiled
        and matrix keys no other query shares are dropped.
        """
        engine = self.engine
        name = query_id
        if name not in engine.workload:
            raise ValueError(f"cannot detach unknown query {name!r}")
        survivors = tuple(q for q in engine.workload if q.name != name)
        if not survivors:
            raise ValueError(
                "cannot detach the last active query; the engine needs a non-empty workload"
            )
        effective_at = _churn_effective_at(self._last_timestamp, at)
        new_workload = Workload(survivors, name=engine.workload.name)
        new_plan = _resolve_churn_plan(
            new_workload, plan, rates, _restrict_plan_without(engine.compiled.plan, name)
        )
        churn = self._churn_state()
        engine.set_workload(new_workload, new_plan)
        self._finalize_detached(name, churn)
        self._migrate_panes(new_workload)
        churn.active.discard(name)
        churn.attach_timestamps.pop(name, None)
        churn.record("detach", effective_at, name, _churn_fingerprint(new_workload, new_plan))
        return effective_at

    def _migrate_panes(self, workload: Workload) -> None:
        """Re-point live pane state at a freshly compiled pane workload."""
        new_compiled = CompiledPaneWorkload(workload, backend=self.engine.backend)
        for scope in self._open_pane_scopes.values():
            scope.migrate(new_compiled)
        for by_group in self._accumulators.values():
            for accumulator in by_group.values():
                accumulator.migrate(new_compiled)
        self._pane_compiled = new_compiled

    def _finalize_detached(self, name: str, churn: ChurnState) -> None:
        """Emit the detached query's partial value for every open window.

        Open windows are the accumulators' plus (for the still-open pane)
        every window covering it; the open pane's matrices are folded into a
        copied vector per window so no live state mutates.
        """
        compiled = self._pane_compiled  # pre-migration: still contains the query
        window_groups: dict[WindowInstance, set] = {
            window: set(by_group) for window, by_group in self._accumulators.items()
        }
        open_windows: set[WindowInstance] = set()
        if self._open_pane_index is not None and self._open_pane_scopes:
            open_windows = set(compiled.window.instances_covering_pane(self._open_pane_index))
            for window in open_windows:
                window_groups.setdefault(window, set()).update(self._open_pane_scopes)
        emitted = 0
        blank = WindowPaneAccumulator(compiled)
        for window in sorted(window_groups):
            if not churn.emits(name, window.start):
                continue
            in_open = window in open_windows
            by_group = self._accumulators.get(window, {})
            for group in sorted(window_groups[window], key=repr):
                accumulator = by_group.get(group, blank)
                open_scope = self._open_pane_scopes.get(group) if in_open else None
                value = accumulator.partial_value(name, open_scope)
                self.results.add(QueryResult(name, window, group, value))
                emitted += 1
        self.collector.results_emitted += emitted

    def step(self, timestamp: int, groups: "dict[tuple, list[Event]] | None") -> None:
        """Process one routed timestamp batch into the current pane."""
        engine = self.engine
        last = self._last_timestamp
        if timestamp < last:
            raise DisorderError(
                f"{engine.name}: batch at timestamp {timestamp} arrived after "
                f"batch at timestamp {last}; engine sessions require "
                f"non-decreasing batch timestamps — feed disordered streams "
                f"through a reorder buffer (max_lateness, docs/disorder.md)"
            )
        self._last_timestamp = timestamp
        pane_index = timestamp // self._pane_width
        if self._open_pane_index is not None and pane_index != self._open_pane_index:
            engine._close_pane(
                self._open_pane_index, self._open_pane_scopes, self._accumulators, self.collector
            )
            self._open_pane_scopes = {}
            self._open_pane_index = None
        engine._finalize_panes_expired(
            self._accumulators, timestamp, self.results, self.collector, self._churn
        )

        if groups:
            self._open_pane_index = pane_index
            for group, scope_events in groups.items():
                scope = self._open_pane_scopes.get(group)
                if scope is None:
                    scope = PaneScope(self._pane_compiled, pane_index, group)
                    self._open_pane_scopes[group] = scope
                    self.collector.panes_created += 1
                scope.process_batch(scope_events)

    def finish(self) -> ExecutionReport:
        """Close the open pane, flush all windows, and freeze the report."""
        engine = self.engine
        if self._open_pane_index is not None:
            engine._close_pane(
                self._open_pane_index, self._open_pane_scopes, self._accumulators, self.collector
            )
            self._open_pane_scopes = {}
            self._open_pane_index = None
        engine._finalize_panes_expired(
            self._accumulators, None, self.results, self.collector, self._churn
        )
        metrics = self.collector.finish()
        return ExecutionReport(results=self.results, metrics=metrics, plan=engine.compiled.plan)

    # -- checkpointing -----------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the pane session as a JSON-safe dict (between batches).

        Same canonical ordering discipline as
        :meth:`EngineSession.export_state`: groups sorted by ``repr``,
        accumulators window-sorted, results in key order.
        """
        open_scopes = [
            self._open_pane_scopes[group].export_state()
            for group in sorted(self._open_pane_scopes, key=repr)
        ]
        accumulators = []
        for window in sorted(self._accumulators):
            by_group = self._accumulators[window]
            for group in sorted(by_group, key=repr):
                accumulators.append(
                    {
                        "window": [window.start, window.end],
                        "group": list(group),
                        **by_group[group].export_state(),
                    }
                )
        state = {
            "mode": self.mode,
            "open_pane_index": self._open_pane_index,
            "open_pane_scopes": open_scopes,
            "accumulators": accumulators,
            "last_timestamp": self._last_timestamp,
            "results": _dump_results(self.results),
            "metrics": self.collector.export_counters(),
        }
        # Disorder-free sessions stay schema-compatible with old snapshots.
        if self._reorder is not None:
            state["reorder"] = self._reorder.export_state()
        # Churn-free sessions keep the pre-churn schema byte-for-byte; after
        # churn, every live matrix/vector references the *current* pane
        # compilation (migration re-points them), so unlike the per-instance
        # session no generation tags are needed.
        if self._churn is not None:
            state["churn"] = self._churn.export()
        return state

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        A snapshot taken after live churn requires the same attach/detach
        ops re-applied (in order) to this session first, so the session's
        pane compilation matches the one the snapshot's matrix indices
        reference.
        """
        if state.get("mode") != self.mode:
            raise ValueError(
                f"snapshot was taken in {state.get('mode')!r} mode, "
                f"this session runs in {self.mode!r} mode"
            )
        snapshot_churn = state.get("churn")
        current_churn = None if self._churn is None else self._churn.export()
        if snapshot_churn != current_churn:
            raise ValueError(
                "snapshot churn history does not match this session's; "
                "re-apply the same attach/detach ops (in order) on a fresh "
                "session before restoring"
            )
        self._open_pane_index = state["open_pane_index"]
        self._open_pane_scopes = {}
        for dump in state["open_pane_scopes"]:
            group = tuple(dump["group"])
            scope = PaneScope(self._pane_compiled, dump["pane_index"], group)
            scope.restore_state(dump)
            self._open_pane_scopes[group] = scope
        self._accumulators = {}
        for dump in state["accumulators"]:
            window = WindowInstance(dump["window"][0], dump["window"][1])
            group = tuple(dump["group"])
            accumulator = WindowPaneAccumulator(self._pane_compiled)
            accumulator.restore_state(dump)
            self._accumulators.setdefault(window, {})[group] = accumulator
        # Pre-disorder snapshots carry no explicit guard timestamp.
        self._last_timestamp = state.get("last_timestamp", -1)
        self.results = _load_results(state["results"])
        self.collector.restore_counters(state["metrics"])
        _restore_reorder(self._reorder, state)


class StreamingEngine:
    """Replays a stream against a compiled workload and collects results.

    The engine supports *plan migration* (Section 7.4): :meth:`set_plan`
    swaps the sharing plan between timestamp batches.  Scopes that are
    already open keep the decomposition they were created with and finish
    under it, so no partial aggregation state is lost; only scopes created
    afterwards follow the new plan.

    With ``panes=True`` the engine runs in **pane-partitioned** mode
    (:mod:`repro.executor.panes`) when the workload is eligible
    (:meth:`panes_eligible`): the stream is processed once per pane of width
    ``gcd(size, slide)`` and completed window instances are assembled by
    folding their covering panes, instead of fanning each event out to every
    covering window instance.  Ineligible workloads (tumbling windows, where
    per-instance processing already touches each event once) silently fall
    back to the per-instance loop, so the toggle is always safe to set.

    With ``columnar=True`` (the default) ingestion runs in **columnar
    micro-batch** mode: timestamp batches arrive as struct-of-arrays
    (:class:`~repro.events.columnar.ColumnarBatch`, cached per layout on
    in-memory :class:`~repro.events.stream.EventStream`\\ s), type dispatch
    compares interned type ids, the workload's filter predicates run as one
    compiled batch kernel over index selections, and group routing consumes
    pre-interned keys.  ``columnar=False`` selects the scalar per-event
    reference path; both produce identical results (the differential grids
    pin columnar ≡ scalar ≡ oracle) and compose with ``panes``/
    ``compaction``.  Either way, window-instance membership is tracked by a
    :class:`~repro.events.windows.WindowCursor` — amortised O(1) per batch —
    instead of re-deriving ``instances_containing`` per event.
    """

    def __init__(
        self,
        workload: Workload,
        plan: SharingPlan | None = None,
        name: str = "sharon",
        memory_sample_interval: int = 0,
        compaction: bool = True,
        panes: bool = False,
        columnar: bool = True,
        max_lateness: "int | None" = None,
        late_policy="raise",
        backend: str = "python",
    ) -> None:
        self.workload = workload
        self.compaction = compaction
        #: Resolved numeric backend (``"python"``/``"numpy"``; ``"auto"``
        #: resolves here, once, so every scope and shard agrees).
        self.backend = resolve_backend(backend)
        self.compiled = CompiledWorkload(
            workload, plan, compaction=compaction, backend=self.backend
        )
        self.name = name
        self.memory_sample_interval = memory_sample_interval
        self.panes = panes
        #: Whether ingestion routes through columnar micro-batches (the
        #: default); ``False`` selects the scalar per-event reference path.
        self.columnar = columnar
        if max_lateness is not None and max_lateness < 0:
            raise ValueError(f"max_lateness must be >= 0, got {max_lateness}")
        validate_late_policy(late_policy)
        #: Bounded-lateness disorder tolerance (``docs/disorder.md``): when
        #: set, sessions ingest through a watermark-driven reorder buffer
        #: accepting arrival orders shuffled up to ``max_lateness`` time
        #: units; ``None`` (the default) keeps the strict in-order contract.
        self.max_lateness = max_lateness
        #: What to do with events beyond the lateness bound: ``"raise"``
        #: (default), ``"drop"``, or a side-channel callable.
        self.late_policy = late_policy

    def set_plan(self, plan: SharingPlan) -> None:
        """Switch to ``plan`` for scopes created from now on (plan migration)."""
        self.compiled = CompiledWorkload(
            self.workload, plan, compaction=self.compaction, backend=self.backend
        )

    def set_workload(self, workload: Workload, plan: "SharingPlan | None" = None) -> CompiledWorkload:
        """Swap the live workload (query churn) and return the new compilation.

        The compiled workload — layouts, filter kernels, type-relevance
        selections, dispatch tables — is rebuilt from scratch; open scopes
        keep the compilation they were created under and finish as zombies,
        exactly as under :meth:`set_plan` plan migration.  Window geometry
        cannot change (churned workloads stay uniform with the running
        queries), so the engine's mode (panes/instances) is stable for the
        whole run.  Drive churn through the session surface
        (:meth:`EngineSession.attach_query`/:meth:`EngineSession.detach_query`),
        which additionally maintains emission gates, migrates pane state,
        and records the churn history checkpoints pin.
        """
        compiled = CompiledWorkload(workload, plan, compaction=self.compaction, backend=self.backend)
        current = self.compiled.window
        if (compiled.window.size, compiled.window.slide) != (current.size, current.slide):
            raise ValueError("query churn cannot change the window geometry of a running engine")
        self.workload = workload
        self.compiled = compiled
        return compiled

    @staticmethod
    def panes_eligible(window: SlidingWindow) -> bool:
        """Whether pane partitioning can pay off for ``window``.

        Tumbling windows (``max_overlap == 1``) already process every event
        exactly once per instance; a pane layer would only add matrix
        overhead, so the engine falls back to the per-instance loop.  Every
        overlapping window is eligible — ``gcd(size, slide) == 1`` degrades
        to unit-width panes (one per timestamp), which is correct but
        amortises the per-pane work over fewer events.
        """
        return window.max_overlap > 1

    @property
    def uses_panes(self) -> bool:
        """Whether :meth:`run` will take the pane-partitioned path."""
        return self.panes and self.panes_eligible(self.compiled.window)

    def new_session(self) -> "EngineSession | PaneEngineSession":
        """A fresh stepwise run session matching the engine's mode.

        Sessions expose the run loop as ``step``/``finish`` plus the
        ``export_state``/``restore_state`` checkpoint hooks; :meth:`run`
        drives one internally, and the replay layer
        (:mod:`repro.replay`) drives them directly to interleave pacing,
        tracing, and checkpoint writes with the batch loop.
        """
        if self.uses_panes:
            return PaneEngineSession(self)
        return EngineSession(self)

    def run(
        self,
        stream: "EventStream | Iterable[Event]",
        on_batch=None,
        session: "EngineSession | PaneEngineSession | None" = None,
        churn: "ChurnSchedule | Iterable[ChurnOp] | None" = None,
    ) -> ExecutionReport:
        """Process the whole stream and return results plus metrics.

        The stream is consumed incrementally (one timestamp batch at a time,
        no lookahead beyond the first event of the next batch), so unbounded
        iterables work as long as their windows keep expiring.

        Parameters
        ----------
        stream:
            The events to replay (any iterable; sorted by timestamp).
        on_batch:
            Optional callback ``on_batch(timestamp, batch_events)`` invoked
            after each timestamp batch has been processed — the hook used by
            the adaptive executor to monitor rates and trigger plan
            migration.  Time spent in the callback is excluded from the
            executor metrics.
        session:
            Continue an existing session (typically one restored from a
            checkpoint) instead of starting fresh; the caller is responsible
            for feeding a stream suffix the session has not consumed yet.
        churn:
            Optional :class:`~repro.executor.churn.ChurnSchedule` (or ops to
            build one from) of attach/detach operations.  Each op is applied
            via :meth:`EngineSession.apply_churn_op` immediately before the
            first timestamp batch at or after its ``at``, so the same
            schedule replays identically against the same stream.  Ops left
            over past the end of the stream (``at`` beyond the last batch)
            are applied before final window flush.
        """
        if session is None:
            session = self.new_session()
        elif session.engine is not self:
            raise ValueError("session belongs to a different engine")
        if churn is None:
            churn = ChurnSchedule()
        elif not isinstance(churn, ChurnSchedule):
            churn = ChurnSchedule(churn)
        ops = churn.ops
        op_index = 0

        def apply_due_churn(timestamp: int) -> None:
            # Invoked by the routing layer with each batch timestamp *before*
            # the batch is routed, so an op recompiles the workload (layout,
            # kernels, relevance) in time to route its own trigger batch.
            nonlocal op_index
            while op_index < len(ops) and ops[op_index].at <= timestamp:
                session.apply_churn_op(ops[op_index])
                op_index += 1

        # With max_lateness configured this wraps the stream in the session's
        # reorder feed (arrival order in, watermark-released batches out);
        # otherwise it is the identity.
        stream = session.ingest(stream)
        collector = session.collector
        collector.start()

        batches = self.routed_batches(
            stream, collector, before_batch=apply_due_churn if ops else None
        )
        for timestamp, batch, groups in batches:
            session.step(timestamp, groups)

            if on_batch is not None:
                collector.stop()
                # Columnar batches alias the stream's per-layout cache; hand
                # callbacks a copy so a mutating observer cannot corrupt it.
                on_batch(timestamp, list(batch) if self.columnar else batch)
                collector.start()

        while op_index < len(ops):
            session.apply_churn_op(ops[op_index])
            op_index += 1
        return session.finish()

    # -- batch routing ------------------------------------------------------------
    def routed_batches(self, stream, collector: MetricsCollector, before_batch=None):
        """Yield ``(timestamp, batch_events, groups)`` for every timestamp batch.

        ``groups`` maps each group key to the batch's relevant events (in
        batch order), or is ``None``/empty when nothing survives routing.  In
        columnar mode the stream arrives as struct-of-arrays micro-batches
        and routing runs as compiled column kernels
        (:meth:`CompiledWorkload.route_columnar`); in scalar mode every event
        passes through :meth:`CompiledWorkload.is_relevant`/:meth:`group_key`
        individually.  ``self.compiled`` is re-read per batch so plan
        migration (:meth:`set_plan`, driven from ``on_batch``) and query
        churn take effect mid-run in both modes; a churn that changes the
        column layout re-fetches the stream's cached batch list for the new
        layout and continues at the same position.  ``before_batch``, when
        given, is called with each batch's timestamp *before* the batch is
        routed — the churn hook: an op due at that timestamp recompiles the
        workload in time to route its own trigger batch (events only the
        attached query finds relevant must survive routing).  A
        :class:`~repro.events.disorder.ReorderFeed` (what
        :meth:`EngineSession.ingest` returns for a disorder-configured
        engine) arrives pre-batched and is routed by :meth:`_routed_pairs`.
        """
        if isinstance(stream, ReorderFeed):
            yield from self._routed_pairs(stream, collector, before_batch)
            return
        if self.columnar:
            if isinstance(stream, EventStream):
                compiled = self.compiled
                batches = stream.columnar_batches(compiled.layout)
                index = 0
                while index < len(batches):
                    if before_batch is not None:
                        # Timestamps agree across layouts, so peeking the old
                        # list is safe even if the hook swaps the workload.
                        before_batch(batches[index].timestamp)
                    current = self.compiled
                    if current is not compiled:
                        if current.layout != compiled.layout:
                            batches = stream.columnar_batches(current.layout)
                        compiled = current
                    batch = batches[index]
                    index += 1
                    collector.total_events += batch.size
                    collector.columnar_batches += 1
                    count, groups = compiled.route_columnar(batch)
                    collector.relevant_events += count
                    yield batch.timestamp, batch.events, groups
            else:
                interner: dict[tuple, tuple] = {}
                for timestamp, events in timestamp_batches(stream):
                    if before_batch is not None:
                        before_batch(timestamp)
                    compiled = self.compiled
                    batch = ColumnarBatch.from_events(
                        timestamp, events, compiled.layout, interner
                    )
                    if len(interner) > _INTERNER_LIMIT:
                        interner = {}
                    collector.total_events += batch.size
                    collector.columnar_batches += 1
                    count, groups = compiled.route_columnar(batch)
                    collector.relevant_events += count
                    yield timestamp, batch.events, groups
        else:
            for timestamp, batch in timestamp_batches(stream):
                if before_batch is not None:
                    before_batch(timestamp)
                compiled = self.compiled
                groups: "dict[tuple, list[Event]] | None" = None
                for event in batch:
                    relevant = compiled.is_relevant(event)
                    collector.count_event(relevant)
                    if relevant:
                        if groups is None:
                            groups = {}
                        groups.setdefault(compiled.group_key(event), []).append(event)
                yield timestamp, batch, groups

    def _routed_pairs(self, pairs: "ReorderFeed", collector: MetricsCollector, before_batch=None):
        """Route pre-batched ``(timestamp, [events])`` pairs (the reorder feed).

        The disorder counterpart of :meth:`routed_batches`' two branches: the
        reorder buffer already groups events by timestamp in canonical order,
        so columnar mode builds each :class:`ColumnarBatch` directly from the
        released batch — with its own streaming key interner; a feed is never
        an :class:`~repro.events.stream.EventStream`, so there is no
        per-layout cache to serve from — and scalar mode routes the released
        events one by one.  ``self.compiled`` is re-read per batch and
        ``before_batch`` fires before routing, as in :meth:`routed_batches`,
        so plan migration and churn still apply.
        """
        if self.columnar:
            interner: dict[tuple, tuple] = {}
            for timestamp, events in pairs:
                if before_batch is not None:
                    before_batch(timestamp)
                compiled = self.compiled
                batch = ColumnarBatch.from_events(timestamp, events, compiled.layout, interner)
                if len(interner) > _INTERNER_LIMIT:
                    interner = {}
                collector.total_events += batch.size
                collector.columnar_batches += 1
                count, groups = compiled.route_columnar(batch)
                collector.relevant_events += count
                yield timestamp, batch.events, groups
        else:
            for timestamp, events in pairs:
                if before_batch is not None:
                    before_batch(timestamp)
                compiled = self.compiled
                groups: "dict[tuple, list[Event]] | None" = None
                for event in events:
                    relevant = compiled.is_relevant(event)
                    collector.count_event(relevant)
                    if relevant:
                        if groups is None:
                            groups = {}
                        groups.setdefault(compiled.group_key(event), []).append(event)
                yield timestamp, events, groups

    # -- pane-partitioned mode ----------------------------------------------------
    def _close_pane(
        self,
        pane_index: int,
        scopes_by_group: dict[tuple, PaneScope],
        accumulators: dict[WindowInstance, dict[tuple, WindowPaneAccumulator]],
        collector: MetricsCollector,
    ) -> None:
        """Fold a closed pane into the accumulators of its covering windows."""
        window_spec = self.compiled.window
        pane_compiled = next(iter(scopes_by_group.values())).compiled
        for window in window_spec.instances_covering_pane(pane_index):
            group_accumulators = accumulators.setdefault(window, {})
            for group, scope in scopes_by_group.items():
                accumulator = group_accumulators.get(group)
                if accumulator is None:
                    accumulator = WindowPaneAccumulator(pane_compiled)
                    group_accumulators[group] = accumulator
                collector.pane_merges += accumulator.absorb(scope)
        for scope in scopes_by_group.values():
            collector.state_updates += scope.update_count

    def _finalize_panes_expired(
        self,
        accumulators: dict[WindowInstance, dict[tuple, WindowPaneAccumulator]],
        current_timestamp: "int | None",
        results: ResultSet,
        collector: MetricsCollector,
        churn: "ChurnState | None" = None,
    ) -> None:
        """Emit results for every window that ended before ``current_timestamp``.

        With ``churn`` supplied, emission is gated per query: detached
        queries are silenced and mid-run attached queries only emit windows
        starting at or after their attach timestamp.
        """
        expired = [
            window
            for window in accumulators
            if current_timestamp is None or window.end <= current_timestamp
        ]
        if not expired:
            return
        collector.maybe_sample_memory(accumulators)
        queries = self.compiled.workload
        for window in sorted(expired):
            for group, accumulator in accumulators[window].items():
                emitted = 0
                for query in queries:
                    if churn is not None and not churn.emits(query.name, window.start):
                        continue
                    results.add(
                        QueryResult(query.name, window, group, accumulator.final_value(query.name))
                    )
                    emitted += 1
                collector.count_window(emitted)
            del accumulators[window]

    # -- internal helpers --------------------------------------------------------
    @staticmethod
    def _acquire_scope(
        pool: list[WindowGroupScope],
        compiled: CompiledWorkload,
        window: WindowInstance,
        group: tuple,
    ) -> WindowGroupScope:
        """Reuse a pooled scope when possible, otherwise build a fresh one."""
        if pool:
            if pool[-1].compiled is compiled:
                scope = pool.pop()
                scope.rebind(window, group)
                return scope
            # Plan migration invalidated the pool: pooled scopes carry the
            # old decomposition and must not serve new window instances.
            pool.clear()
        return WindowGroupScope(compiled, window, group)

    def _finalize_expired(
        self,
        scopes: dict[WindowInstance, dict[tuple, WindowGroupScope]],
        current_timestamp: int | None,
        results: ResultSet,
        collector: MetricsCollector,
        pool: list[WindowGroupScope],
        churn: "ChurnState | None" = None,
    ) -> None:
        """Finalize every scope whose window ended before ``current_timestamp``.

        ``None`` finalizes everything (end of stream).  Memory is sampled just
        before finalization, when the engine's state is at its largest.
        Finalized scopes are reset and parked in ``pool`` for reuse.  With
        ``churn`` supplied, emission is gated per query: detached queries are
        silenced (their zombie chains still finalize, results are dropped)
        and mid-run attached queries only emit windows starting at or after
        their attach timestamp.
        """
        expired = [
            window
            for window in scopes
            if current_timestamp is None or window.end <= current_timestamp
        ]
        if not expired:
            return
        collector.maybe_sample_memory(scopes)
        for window in sorted(expired):
            for scope in scopes[window].values():
                emitted = scope.finalize()
                if churn is not None:
                    emitted = [
                        result
                        for result in emitted
                        if churn.emits(result.query_name, window.start)
                    ]
                for result in emitted:
                    results.add(result)
                collector.count_window(len(emitted))
                collector.state_updates += scope.update_count
                created, merged = scope.cohort_stats
                collector.cohorts_created += created
                collector.cohorts_merged += merged
                if len(pool) < _SCOPE_POOL_LIMIT and scope.compiled is self.compiled:
                    scope.reset()
                    pool.append(scope)
            del scopes[window]
