"""Two-step baseline executors: construct sequences, then aggregate.

These reproduce the two families of state-of-the-art systems the paper
compares against (Figure 3, Section 8.2):

* :class:`FlinkLikeExecutor` — *non-shared two-step*.  Every query is
  evaluated independently; for each window and group all matching event
  sequences of the full pattern are constructed before being aggregated.
  This is the evaluation strategy of Flink/SASE/Cayuga/ZStream when no
  aggregation-specific optimization is applied.
* :class:`SpassLikeExecutor` — *shared two-step*.  Sequence construction of
  shared sub-patterns is performed once per window and group (as in
  SPASS/E-Cube), and per-query results are assembled by temporally joining
  prefix, shared, and suffix sequences — but all sequences are still
  materialised before aggregation.

Both executors therefore store every relevant event of each open window and
pay construction cost polynomial in the number of events per window — this
is exactly the behaviour that makes them collapse in Figure 13, and they are
also the natural ground-truth oracles for the online executors in the test
suite (their output must be identical).

A ``max_sequences_per_scope`` safety valve aborts runs whose intermediate
result would exhaust memory, mirroring the paper's observation that Flink and
SPASS "do not terminate" beyond a few thousand events per window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.plan import QueryDecomposition, SharingPlan
from ..events.event import Event
from ..events.stream import EventStream
from ..events.windows import WindowInstance
from ..queries.query import Query
from ..queries.workload import Workload
from .engine import CompiledWorkload, ExecutionReport
from .metrics import MetricsCollector
from .results import QueryResult, ResultSet
from .sequences import EventSequence, enumerate_pattern_matches, join_sequences

__all__ = ["TwoStepBudgetExceeded", "FlinkLikeExecutor", "SpassLikeExecutor"]


class TwoStepBudgetExceeded(RuntimeError):
    """Raised when a two-step run exceeds its sequence-construction budget."""


@dataclass
class _EventBuffer:
    """Per-scope storage of the raw events a two-step executor must keep."""

    window: WindowInstance
    group: tuple
    events: list[Event] = field(default_factory=list)


class _TwoStepBase:
    """Window/group bookkeeping shared by both two-step executors."""

    name = "two-step"

    def __init__(
        self,
        workload: Workload,
        plan: SharingPlan | None = None,
        memory_sample_interval: int = 1,
        max_sequences_per_scope: int | None = 2_000_000,
    ) -> None:
        self.workload = workload
        self.compiled = CompiledWorkload(workload, plan)
        self.memory_sample_interval = memory_sample_interval
        self.max_sequences_per_scope = max_sequences_per_scope

    # -- main loop ------------------------------------------------------------
    def run(self, stream: "EventStream | Iterable[Event]") -> ExecutionReport:
        compiled = self.compiled
        collector = MetricsCollector(
            executor_name=self.name, memory_sample_interval=self.memory_sample_interval
        )
        results = ResultSet()
        buffers: dict[tuple[WindowInstance, tuple], _EventBuffer] = {}

        events = stream.events() if isinstance(stream, EventStream) else tuple(stream)
        collector.start()
        for event in events:
            self._finalize_expired(buffers, event.timestamp, results, collector)
            relevant = compiled.is_relevant(event)
            collector.count_event(relevant)
            if not relevant:
                continue
            group = compiled.group_key(event)
            for window in compiled.window.instances_containing(event.timestamp):
                key = (window, group)
                buffer = buffers.get(key)
                if buffer is None:
                    buffer = _EventBuffer(window, group)
                    buffers[key] = buffer
                buffer.events.append(event)
        self._finalize_expired(buffers, None, results, collector)
        metrics = collector.finish()
        return ExecutionReport(results=results, metrics=metrics, plan=self.compiled.plan)

    def _finalize_expired(
        self,
        buffers: dict[tuple[WindowInstance, tuple], _EventBuffer],
        current_timestamp: int | None,
        results: ResultSet,
        collector: MetricsCollector,
    ) -> None:
        expired_keys = [
            key
            for key, buffer in buffers.items()
            if current_timestamp is None or buffer.window.end <= current_timestamp
        ]
        if not expired_keys:
            return
        expired_windows = set()
        for key in sorted(expired_keys, key=lambda k: (k[0], repr(k[1]))):
            buffer = buffers.pop(key)
            emitted, constructed = self._finalize_scope(buffer)
            for result in emitted:
                results.add(result)
            expired_windows.add(buffer.window)
            collector.count_window(len(emitted))
            collector.state_updates += constructed
            collector.maybe_sample_memory(buffers, emitted)

    # -- to be provided by subclasses ----------------------------------------------
    def _finalize_scope(self, buffer: _EventBuffer) -> tuple[list[QueryResult], int]:
        raise NotImplementedError

    def _check_budget(self, constructed: int) -> None:
        if (
            self.max_sequences_per_scope is not None
            and constructed > self.max_sequences_per_scope
        ):
            raise TwoStepBudgetExceeded(
                f"{self.name} constructed more than {self.max_sequences_per_scope} "
                "event sequences in a single window — the two-step approach does "
                "not terminate at this scale (cf. Figure 13)"
            )


class FlinkLikeExecutor(_TwoStepBase):
    """Non-shared two-step execution (Flink-style)."""

    name = "Flink-like"

    def __init__(
        self,
        workload: Workload,
        memory_sample_interval: int = 1,
        max_sequences_per_scope: int | None = 2_000_000,
    ) -> None:
        super().__init__(
            workload,
            plan=SharingPlan(),
            memory_sample_interval=memory_sample_interval,
            max_sequences_per_scope=max_sequences_per_scope,
        )

    def _finalize_scope(self, buffer: _EventBuffer) -> tuple[list[QueryResult], int]:
        emitted: list[QueryResult] = []
        constructed = 0
        for query in self.workload:
            sequences = enumerate_pattern_matches(query.pattern, buffer.events)
            constructed += len(sequences)
            self._check_budget(constructed)
            value = query.aggregate.evaluate_sequences(sequences)
            emitted.append(QueryResult(query.name, buffer.window, buffer.group, value))
        return emitted, constructed


class SpassLikeExecutor(_TwoStepBase):
    """Shared two-step execution (SPASS-style).

    Sequence construction for the plan's shared patterns happens once per
    scope; per-query matches are then assembled by temporal joins of segment
    sequences and finally aggregated.  When no plan is supplied the executor
    derives one by sharing every sharable pattern chosen greedily (SPASS has
    its own sharing optimizer for sequence construction; any valid plan
    reproduces its qualitative behaviour).
    """

    name = "SPASS-like"

    def __init__(
        self,
        workload: Workload,
        plan: SharingPlan | None = None,
        memory_sample_interval: int = 1,
        max_sequences_per_scope: int | None = 2_000_000,
    ) -> None:
        if plan is None:
            plan = self._default_plan(workload)
        super().__init__(
            workload,
            plan=plan,
            memory_sample_interval=memory_sample_interval,
            max_sequences_per_scope=max_sequences_per_scope,
        )

    @staticmethod
    def _default_plan(workload: Workload) -> SharingPlan:
        """A conflict-free plan sharing as many patterns as possible.

        Candidates are considered longest-pattern first (SPASS favours long
        shared sequences) and added greedily when they do not conflict with
        already chosen ones.
        """
        from ..core.candidates import build_candidates
        from ..core.conflicts import ConflictDetector

        detector = ConflictDetector(workload)
        chosen = []
        candidates = sorted(
            build_candidates(workload),
            key=lambda c: (-len(c.pattern), c.key()),
        )
        for candidate in candidates:
            if all(not detector.in_conflict(candidate, other) for other in chosen):
                chosen.append(candidate)
        return SharingPlan(chosen)

    def _finalize_scope(self, buffer: _EventBuffer) -> tuple[list[QueryResult], int]:
        compiled = self.compiled
        emitted: list[QueryResult] = []
        constructed = 0

        # Step 1 (shared): construct sequences of each shared pattern once.
        shared_sequences: dict = {}
        for pattern in compiled.shared_specs:
            sequences = enumerate_pattern_matches(pattern, buffer.events)
            shared_sequences[pattern] = sequences
            constructed += len(sequences)
            self._check_budget(constructed)

        # Step 2 (per query): join segment sequences, then aggregate.
        for query in self.workload:
            decomposition = compiled.decompositions[query.name]
            sequences = self._assemble_query_sequences(
                query, decomposition, buffer.events, shared_sequences
            )
            constructed += len(sequences)
            self._check_budget(constructed)
            value = query.aggregate.evaluate_sequences(sequences)
            emitted.append(QueryResult(query.name, buffer.window, buffer.group, value))
        return emitted, constructed

    def _assemble_query_sequences(
        self,
        query: Query,
        decomposition: QueryDecomposition,
        events: Sequence[Event],
        shared_sequences: dict,
    ) -> list[EventSequence]:
        assembled: list[EventSequence] | None = None
        for segment in decomposition.segments:
            if segment.is_shared:
                segment_sequences = shared_sequences[segment.pattern]
            else:
                segment_sequences = enumerate_pattern_matches(segment.pattern, events)
            if assembled is None:
                assembled = list(segment_sequences)
            else:
                assembled = join_sequences(assembled, segment_sequences)
        return assembled if assembled is not None else []
