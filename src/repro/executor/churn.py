"""Live workload churn: attach/detach queries while the stream runs.

A production deployment never gets to freeze its query set: tenants add
dashboards, alerts expire, and the sharing plan must follow the workload.
This module defines the *schedule* side of online query churn — the engine
side (state migration, emission gates, zombie scopes) lives on the session
classes in :mod:`repro.executor.engine`:

* :class:`ChurnOp` — one timestamped ``attach``/``detach`` operation;
* :class:`ChurnSchedule` — an immutable, timestamp-sorted op program that
  :meth:`~repro.executor.engine.StreamingEngine.run` (and the replay runner)
  applies deterministically at batch boundaries: an op becomes effective
  immediately before the first timestamp batch at or after its ``at``;
* :class:`ChurnState` — the per-session bookkeeping (active names, recorded
  attach timestamps acting as emission gates, applied-op history) that
  checkpoints snapshot so a resumed run re-applies the exact same churn;
* :func:`parse_churn_script` / :func:`load_churn_script` — the JSON script
  format behind ``repro replay --churn-script`` (attach queries are written
  as SASE query text and parsed with the normal query parser).

The semantics are pinned in ``docs/churn.md`` and enforced by the churn
differential grid: a query attached at ``t`` emits exactly the windows with
``start >= t`` (the next window boundary — window starts are slide
multiples), and a query detached at ``t`` is equivalent to running it over
the stream truncated to events before ``t`` (open windows finalize their
partial values at detach time).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..core.plan import SharingPlan
from ..queries.parser import parse_query
from ..queries.query import Query

__all__ = [
    "ChurnOp",
    "ChurnSchedule",
    "ChurnState",
    "parse_churn_script",
    "load_churn_script",
]


@dataclass(frozen=True)
class ChurnOp:
    """One timestamped live-workload operation: attach or detach a query.

    ``attach`` ops carry the :class:`~repro.queries.query.Query` to add (its
    name becomes the op's ``query_name``); ``detach`` ops carry only the
    target ``query_name``.  ``plan`` optionally pins the sharing plan to
    install with the recompiled workload — when omitted, the session derives
    a deterministic default (attach: keep the current plan, the new query
    runs unshared; detach: restrict the current plan to surviving queries,
    dropping candidates left with fewer than two).
    """

    kind: str
    at: int
    query: "Query | None" = None
    query_name: str = ""
    plan: "SharingPlan | None" = None

    def __post_init__(self) -> None:
        if self.kind not in ("attach", "detach"):
            raise ValueError(f"unknown churn op kind {self.kind!r} (use 'attach' or 'detach')")
        if self.at < 0:
            raise ValueError(f"churn ops apply at non-negative timestamps, got {self.at}")
        if self.kind == "attach":
            if self.query is None:
                raise ValueError("attach ops need a query")
            object.__setattr__(self, "query_name", self.query.name)
        elif not self.query_name:
            raise ValueError("detach ops need a query_name")


class ChurnSchedule:
    """An immutable attach/detach program, sorted by effective timestamp.

    Ops sharing an ``at`` keep their construction order (the sort is stable),
    so "attach q then detach p at t" is a well-defined program.  Schedules
    hold no iteration state: every run that applies one keeps its own cursor,
    so a schedule can drive any number of runs (repeats, resume, the
    differential grid's executor cube).
    """

    __slots__ = ("ops",)

    def __init__(self, ops: Iterable[ChurnOp] = ()) -> None:
        ops = tuple(ops)
        for op in ops:
            if not isinstance(op, ChurnOp):
                raise TypeError(f"churn schedules hold ChurnOp instances, got {type(op).__name__}")
        #: The ops in application order (stable-sorted by ``at``).
        self.ops: tuple[ChurnOp, ...] = tuple(sorted(ops, key=lambda op: op.at))

    def __len__(self) -> int:
        return len(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    def __iter__(self) -> Iterator[ChurnOp]:
        return iter(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{op.kind}@{op.at}:{op.query_name}" for op in self.ops)
        return f"ChurnSchedule([{parts}])"


class ChurnState:
    """Per-session churn bookkeeping: gates, active names, applied history.

    Sessions create one lazily on the first attach/detach, so churn-free
    sessions carry zero overhead and export byte-identical snapshots to
    pre-churn builds.  The three pieces:

    * ``active`` — names currently allowed to emit results (zombie scopes
      from earlier workload generations may still hold chains for detached
      queries; the finalization filter consults this set);
    * ``attach_timestamps`` — the recorded attach timestamp per mid-run
      attached query; doubles as the emission gate (a query attached at
      ``t`` emits only windows with ``start >= t``);
    * ``history`` — every applied op as a JSON-safe dict (kind, effective
      timestamp, query name, and the fingerprint of the resulting
      workload+plan), pinned into checkpoints so resume can verify it
      re-applied the exact same churn.
    """

    __slots__ = ("active", "attach_timestamps", "history")

    def __init__(self, active_names: Iterable[str]) -> None:
        self.active: set[str] = set(active_names)
        self.attach_timestamps: dict[str, int] = {}
        self.history: list[dict] = []

    def emits(self, query_name: str, window_start: int) -> bool:
        """Whether results for ``query_name`` at a window starting at ``window_start`` may be emitted."""
        if query_name not in self.active:
            return False
        gate = self.attach_timestamps.get(query_name)
        return gate is None or window_start >= gate

    def record(self, kind: str, at: int, query_name: str, fingerprint: str) -> None:
        """Append one applied op to the history."""
        self.history.append(
            {"op": kind, "at": at, "query": query_name, "fingerprint": fingerprint}
        )

    def export(self) -> dict:
        """JSON-safe snapshot (canonically ordered) for session exports."""
        return {
            "active": sorted(self.active),
            "attach_timestamps": [
                [name, at] for name, at in sorted(self.attach_timestamps.items())
            ],
            "history": [dict(entry) for entry in self.history],
        }


def parse_churn_script(text: str) -> ChurnSchedule:
    """Parse a JSON churn script into a :class:`ChurnSchedule`.

    The format (``repro replay --churn-script``) is a JSON array of ops::

        [
          {"op": "attach", "at": 12, "name": "spikes",
           "query": "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 SLIDE 5"},
          {"op": "detach", "at": 20, "name": "q1"}
        ]

    Attach queries are SASE query text (the ``repro`` query format, parsed by
    :func:`~repro.queries.parser.parse_query`) named by the op's ``name``.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"churn script is not valid JSON: {error}") from None
    if not isinstance(data, list):
        raise ValueError("churn script must be a JSON array of attach/detach ops")
    ops: list[ChurnOp] = []
    for index, entry in enumerate(data):
        if not isinstance(entry, dict):
            raise ValueError(f"churn op #{index} must be a JSON object, got {type(entry).__name__}")
        kind = entry.get("op")
        at = entry.get("at")
        name = entry.get("name")
        if not isinstance(at, int) or isinstance(at, bool):
            raise ValueError(f"churn op #{index} needs an integer 'at' timestamp")
        if not isinstance(name, str) or not name:
            raise ValueError(f"churn op #{index} needs a non-empty 'name'")
        if kind == "attach":
            source = entry.get("query")
            if not isinstance(source, str) or not source.strip():
                raise ValueError(f"attach op #{index} needs a 'query' (SASE query text)")
            ops.append(ChurnOp("attach", at, query=parse_query(source, name=name)))
        elif kind == "detach":
            ops.append(ChurnOp("detach", at, query_name=name))
        else:
            raise ValueError(f"churn op #{index} has unknown 'op' {kind!r} (use 'attach' or 'detach')")
    return ChurnSchedule(ops)


def load_churn_script(path: "str | Path") -> ChurnSchedule:
    """Read and parse a churn-script file (see :func:`parse_churn_script`)."""
    return parse_churn_script(Path(path).read_text(encoding="utf-8"))
