"""Runtime executors: online shared (Sharon), online non-shared (A-Seq), and
two-step baselines (Flink-like, SPASS-like)."""

from .aseq import ASeqExecutor
from .chained import QueryChainState, SharedSegmentRunner
from .churn import ChurnOp, ChurnSchedule, ChurnState, load_churn_script, parse_churn_script
from .engine import (
    CompiledWorkload,
    EngineSession,
    ExecutionReport,
    PaneEngineSession,
    StreamingEngine,
    WindowGroupScope,
)
from .metrics import MetricsCollector, RunMetrics
from .oracle import OracleBudgetExceeded, OracleExecutor, enumerate_sequences_naive
from .panes import (
    CompiledPaneWorkload,
    PaneCountMatrix,
    PaneScope,
    PaneStateMatrix,
    WindowPaneAccumulator,
)
from .prefix_agg import PrivateSegmentState, SharedAnchor, SharedSegmentState
from .results import QueryResult, ResultSet
from .sharding import ShardPlan, ShardPlanner, ShardedEngine, stable_group_hash
from .sequences import (
    count_pattern_matches,
    enumerate_pattern_matches,
    enumerate_query_matches,
    join_sequences,
)
from .shared import SharonExecutor, run_workload
from .twostep import FlinkLikeExecutor, SpassLikeExecutor, TwoStepBudgetExceeded

__all__ = [
    "ASeqExecutor",
    "QueryChainState",
    "SharedSegmentRunner",
    "ChurnOp",
    "ChurnSchedule",
    "ChurnState",
    "load_churn_script",
    "parse_churn_script",
    "CompiledWorkload",
    "EngineSession",
    "ExecutionReport",
    "PaneEngineSession",
    "StreamingEngine",
    "WindowGroupScope",
    "MetricsCollector",
    "RunMetrics",
    "OracleBudgetExceeded",
    "OracleExecutor",
    "enumerate_sequences_naive",
    "CompiledPaneWorkload",
    "PaneCountMatrix",
    "PaneScope",
    "PaneStateMatrix",
    "WindowPaneAccumulator",
    "PrivateSegmentState",
    "SharedAnchor",
    "SharedSegmentState",
    "QueryResult",
    "ResultSet",
    "ShardPlan",
    "ShardPlanner",
    "ShardedEngine",
    "stable_group_hash",
    "count_pattern_matches",
    "enumerate_pattern_matches",
    "enumerate_query_matches",
    "join_sequences",
    "SharonExecutor",
    "run_workload",
    "FlinkLikeExecutor",
    "SpassLikeExecutor",
    "TwoStepBudgetExceeded",
]
