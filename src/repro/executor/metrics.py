"""Runtime metrics: latency, throughput, and peak memory (Section 8.1).

The paper reports three metrics for executors:

* **Latency** — average time between result output and the arrival of the
  latest contributing event.  In a replay setting (no wall-clock arrival
  times) the equivalent observable is the processing time spent per window,
  which is what :attr:`RunMetrics.avg_latency_ms` reports.
* **Throughput** — events processed per second across all queries.
* **Peak memory** — the maximum footprint of aggregates, stored events, and
  constructed sequences, approximated via
  :func:`~repro.utils.memory.deep_sizeof`.

A :class:`MetricsCollector` is threaded through every executor so that all of
them are measured identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..utils.memory import PeakMemoryTracker

__all__ = ["RunMetrics", "MetricsCollector"]


@dataclass
class RunMetrics:
    """Immutable summary of one executor run."""

    executor_name: str
    total_events: int = 0
    relevant_events: int = 0
    elapsed_seconds: float = 0.0
    windows_finalized: int = 0
    results_emitted: int = 0
    peak_memory_bytes: int = 0
    state_updates: int = 0
    #: Anchor cohorts created / removed by compaction (shared online engine only).
    cohorts_created: int = 0
    cohorts_merged: int = 0
    #: Pane × group scopes created / pane-into-window matrix folds performed
    #: (pane-partitioned engine mode only; zero in per-instance mode).
    panes_created: int = 0
    pane_merges: int = 0
    #: Timestamp batches routed through the columnar micro-batch path
    #: (zero when the engine ran with ``columnar=False``).
    columnar_batches: int = 0
    #: Events that arrived behind the watermark (beyond ``max_lateness``)
    #: and hit the late policy; ``events_dropped`` counts the subset the
    #: ``"drop"`` policy discarded (callback-routed events are late but not
    #: dropped).  Zero for in-order runs and runs without a reorder buffer.
    events_late: int = 0
    events_dropped: int = 0
    #: Worker shards the run fanned out to (group-sharded execution,
    #: :class:`~repro.executor.sharding.ShardedEngine`); ``1`` for every
    #: in-process run, including ``shards=1`` degraded sharded runs.
    shards: int = 1
    #: Distinct groups assigned to each shard, by shard index (empty for
    #: in-process runs).
    groups_per_shard: tuple[int, ...] = ()
    #: Heaviest shard's event load over the ideal balanced load (1.0 =
    #: perfectly balanced, ``shards`` = everything on one shard; 0.0 for
    #: in-process runs, which have no shard plan).
    shard_skew: float = 0.0

    @property
    def events_per_pane(self) -> float:
        """Average relevant events absorbed per pane × group scope."""
        if self.panes_created <= 0:
            return 0.0
        return self.relevant_events / self.panes_created

    @property
    def throughput_events_per_second(self) -> float:
        """Events processed per second of executor time."""
        if self.elapsed_seconds <= 0:
            return float(self.total_events)
        return self.total_events / self.elapsed_seconds

    @property
    def avg_latency_ms(self) -> float:
        """Average processing time attributable to one window, in milliseconds."""
        windows = max(self.windows_finalized, 1)
        return self.elapsed_seconds / windows * 1000.0

    @property
    def latency_seconds(self) -> float:
        """Total executor processing time (alias used by the figure sweeps)."""
        return self.elapsed_seconds

    def summary(self) -> str:
        """One-line human-readable report (used by examples and benchmarks)."""
        return (
            f"{self.executor_name}: {self.total_events} events in "
            f"{self.elapsed_seconds * 1000:.1f} ms "
            f"({self.throughput_events_per_second:,.0f} ev/s, "
            f"{self.avg_latency_ms:.2f} ms/window, "
            f"peak {self.peak_memory_bytes / 1024:.1f} KiB, "
            f"{self.results_emitted} results)"
        )


@dataclass
class MetricsCollector:
    """Mutable counters populated while an executor runs."""

    executor_name: str
    memory_sample_interval: int = 1
    total_events: int = 0
    relevant_events: int = 0
    windows_finalized: int = 0
    results_emitted: int = 0
    state_updates: int = 0
    cohorts_created: int = 0
    cohorts_merged: int = 0
    panes_created: int = 0
    pane_merges: int = 0
    columnar_batches: int = 0
    events_late: int = 0
    events_dropped: int = 0
    _memory: PeakMemoryTracker = field(default_factory=PeakMemoryTracker)
    _started_at: float | None = None
    _elapsed: float = 0.0
    _finalizations_seen: int = 0

    # -- timing ----------------------------------------------------------------
    def start(self) -> None:
        """Start (or resume) the executor's wall-clock timer."""
        self._started_at = time.perf_counter()

    def stop(self) -> None:
        """Pause the timer, accumulating the elapsed span (no-op if stopped)."""
        if self._started_at is None:
            return
        self._elapsed += time.perf_counter() - self._started_at
        self._started_at = None

    # -- counters ---------------------------------------------------------------
    def count_event(self, relevant: bool) -> None:
        """Count one processed event (scalar ingestion's per-event tally)."""
        self.total_events += 1
        if relevant:
            self.relevant_events += 1

    def count_window(self, results: int) -> None:
        """Count one finalized window that emitted ``results`` query results."""
        self.windows_finalized += 1
        self.results_emitted += results

    def maybe_sample_memory(self, *objects) -> None:
        """Sample memory at (a subset of) window finalizations.

        Sampling every window is exact but expensive for large runs; the
        interval lets benchmarks trade accuracy for speed.  An interval of 0
        disables sampling entirely.
        """
        if self.memory_sample_interval <= 0:
            return
        self._finalizations_seen += 1
        if self._finalizations_seen % self.memory_sample_interval:
            return
        self._memory.sample(*objects)

    def record_memory_bytes(self, nbytes: int) -> None:
        """Record an externally measured footprint into the peak tracker."""
        self._memory.record(nbytes)

    # -- checkpointing ------------------------------------------------------------
    def export_counters(self) -> dict:
        """Snapshot the deterministic counters as a JSON-safe dict.

        Wall-clock time and peak memory are deliberately excluded: they are
        environment observations, not stream-determined state, and a resumed
        run re-measures them from its own start.  Everything exported here is
        a pure function of the consumed stream, so it participates in replay
        state hashes.
        """
        return {
            "total_events": self.total_events,
            "relevant_events": self.relevant_events,
            "windows_finalized": self.windows_finalized,
            "results_emitted": self.results_emitted,
            "state_updates": self.state_updates,
            "cohorts_created": self.cohorts_created,
            "cohorts_merged": self.cohorts_merged,
            "panes_created": self.panes_created,
            "pane_merges": self.pane_merges,
            "columnar_batches": self.columnar_batches,
            "events_late": self.events_late,
            "events_dropped": self.events_dropped,
            "finalizations_seen": self._finalizations_seen,
        }

    def restore_counters(self, counters: dict) -> None:
        """Restore counters exported by :meth:`export_counters`."""
        self.total_events = counters["total_events"]
        self.relevant_events = counters["relevant_events"]
        self.windows_finalized = counters["windows_finalized"]
        self.results_emitted = counters["results_emitted"]
        self.state_updates = counters["state_updates"]
        self.cohorts_created = counters["cohorts_created"]
        self.cohorts_merged = counters["cohorts_merged"]
        self.panes_created = counters["panes_created"]
        self.pane_merges = counters["pane_merges"]
        self.columnar_batches = counters["columnar_batches"]
        # Pre-disorder snapshots did not carry the lateness counters.
        self.events_late = counters.get("events_late", 0)
        self.events_dropped = counters.get("events_dropped", 0)
        self._finalizations_seen = counters["finalizations_seen"]

    # -- reporting ---------------------------------------------------------------
    def finish(self) -> RunMetrics:
        """Stop the timer and freeze the counters into a :class:`RunMetrics`."""
        self.stop()
        return RunMetrics(
            executor_name=self.executor_name,
            total_events=self.total_events,
            relevant_events=self.relevant_events,
            elapsed_seconds=self._elapsed,
            windows_finalized=self.windows_finalized,
            results_emitted=self.results_emitted,
            peak_memory_bytes=self._memory.peak_bytes,
            state_updates=self.state_updates,
            cohorts_created=self.cohorts_created,
            cohorts_merged=self.cohorts_merged,
            panes_created=self.panes_created,
            pane_merges=self.pane_merges,
            columnar_batches=self.columnar_batches,
            events_late=self.events_late,
            events_dropped=self.events_dropped,
        )
