"""Online prefix aggregation — the A-Seq building block (Section 3.2).

The Non-Shared method maintains, for a pattern ``(E1 ... El)``, one aggregate
per prefix ``(E1 ... Ej)``.  When an event of type ``Ej`` arrives, the
aggregate of prefix ``j`` absorbs the aggregate of prefix ``j-1`` extended by
the new event (Figure 6(a)); matched sequences are never constructed.

Two state classes implement this recurrence inside one *scope* (one window
instance × one group):

* :class:`PrivateSegmentState` — the flat per-query variant.  The first
  position reads a *carry* value from the upstream part of the query's chain
  (the neutral "one empty sequence" for the query's first segment), which is
  how a query's private prefix/suffix segments are stitched to shared
  segments.
* :class:`SharedSegmentState` — the anchored variant used for shared
  patterns.  Aggregates are maintained per START event ("anchor") of the
  shared pattern so that each query can later combine them with its own
  prefix aggregates (Section 3.3, Figure 7) — the shared pattern itself is
  processed exactly once for all sharing queries.

Both classes use two-phase *stage/commit* batch processing: all reads of a
batch observe the state before the batch, so events carrying the same
timestamp can never chain with each other (sequence semantics require
strictly increasing timestamps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..events.event import Event
from ..queries.aggregates import AggregateSpec, AggregateState
from ..queries.pattern import Pattern

__all__ = ["PrivateSegmentState", "SharedSegmentState", "SharedAnchor", "positions_by_type"]

#: A carry provider returns the aggregate of the chain upstream of a segment,
#: as of the beginning of the current batch.
CarryProvider = Callable[[], AggregateState]


def positions_by_type(pattern: Pattern) -> dict[str, tuple[int, ...]]:
    """Map each event type to the (0-based) positions it occupies in ``pattern``."""
    positions: dict[str, list[int]] = {}
    for index, event_type in enumerate(pattern.event_types):
        positions.setdefault(event_type, []).append(index)
    return {event_type: tuple(indexes) for event_type, indexes in positions.items()}


class PrivateSegmentState:
    """Flat prefix aggregation of one private segment of one query."""

    __slots__ = ("pattern", "spec", "_positions", "states", "_staged", "updates")

    def __init__(self, pattern: Pattern, spec: AggregateSpec) -> None:
        self.pattern = pattern
        self.spec = spec
        self._positions = positions_by_type(pattern)
        self.states: list[AggregateState] = [AggregateState.zero()] * len(pattern)
        self._staged: list[AggregateState] | None = None
        #: Number of aggregate updates applied (used by cost/throughput reports).
        self.updates = 0

    def stage_batch(self, events: Sequence[Event], carry: CarryProvider) -> None:
        """Compute this batch's additions against the pre-batch state."""
        additions = [AggregateState.zero()] * len(self.states)
        carry_value: AggregateState | None = None
        for event in events:
            for position in self._positions.get(event.event_type, ()):
                if position == 0:
                    if carry_value is None:
                        carry_value = carry()
                    base = carry_value
                else:
                    base = self.states[position - 1]
                if base.is_zero:
                    continue
                additions[position] = additions[position].merge(base.extend(event, self.spec))
                self.updates += 1
        self._staged = additions

    def commit(self) -> None:
        if self._staged is None:
            return
        self.states = [
            state.merge(addition) for state, addition in zip(self.states, self._staged)
        ]
        self._staged = None

    def chain_value(self) -> AggregateState:
        """Aggregate over completed matches of the chain up to this segment."""
        return self.states[-1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrivateSegmentState({self.pattern!r}, value={self.states[-1].count})"


@dataclass
class SharedAnchor:
    """Per-START-event aggregates of a shared pattern.

    ``states[spec][j]`` aggregates the matches of the shared pattern's prefix
    of length ``j+1`` that start exactly at this anchor's event.
    """

    start_event: Event
    states: dict[AggregateSpec, list[AggregateState]] = field(default_factory=dict)

    def completed(self, spec: AggregateSpec) -> AggregateState:
        """Aggregate over complete matches of the shared pattern at this anchor."""
        return self.states[spec][-1]


class SharedSegmentState:
    """Anchored prefix aggregation of one shared pattern inside one scope.

    The state is maintained once per scope regardless of how many queries
    share the pattern; per-query combination is performed by
    :class:`~repro.executor.chained.SharedSegmentRunner`.

    Parameters
    ----------
    pattern:
        The shared pattern ``p`` (length >= 2 by Definition 3).
    specs:
        The distinct aggregate specifications of the sharing queries; one
        aggregate family is tracked per spec (a single family when the whole
        workload uses COUNT(*), the common case in the paper).
    """

    __slots__ = ("pattern", "specs", "_positions", "anchors", "staged_new_anchors", "_staged", "updates")

    def __init__(self, pattern: Pattern, specs: Iterable[AggregateSpec]) -> None:
        self.pattern = pattern
        self.specs = tuple(dict.fromkeys(specs))
        if not self.specs:
            raise ValueError("a shared segment needs at least one aggregate spec")
        self._positions = positions_by_type(pattern)
        self.anchors: list[SharedAnchor] = []
        self.staged_new_anchors: list[SharedAnchor] = []
        self._staged: list[dict[AggregateSpec, list[AggregateState]]] | None = None
        self.updates = 0

    def handles(self, event: Event) -> bool:
        return event.event_type in self._positions

    def stage_batch(self, events: Sequence[Event]) -> None:
        """Stage anchor creations and extensions for one same-timestamp batch."""
        length = len(self.pattern)
        additions: list[dict[AggregateSpec, list[AggregateState]]] = [
            {} for _ in self.anchors
        ]
        new_anchors: list[SharedAnchor] = []
        for event in events:
            for position in self._positions.get(event.event_type, ()):
                if position == 0:
                    anchor = SharedAnchor(event)
                    for spec in self.specs:
                        states = [AggregateState.zero()] * length
                        states[0] = AggregateState.unit().extend(event, spec)
                        anchor.states[spec] = states
                    new_anchors.append(anchor)
                    self.updates += 1
                    continue
                for anchor_index, anchor in enumerate(self.anchors):
                    for spec in self.specs:
                        base = anchor.states[spec][position - 1]
                        if base.is_zero:
                            continue
                        spec_additions = additions[anchor_index].setdefault(
                            spec, [AggregateState.zero()] * length
                        )
                        spec_additions[position] = spec_additions[position].merge(
                            base.extend(event, spec)
                        )
                        self.updates += 1
        self.staged_new_anchors = new_anchors
        self._staged = additions

    def commit(self) -> None:
        if self._staged is not None:
            for anchor, spec_additions in zip(self.anchors, self._staged):
                for spec, additions in spec_additions.items():
                    anchor.states[spec] = [
                        state.merge(addition)
                        for state, addition in zip(anchor.states[spec], additions)
                    ]
            self._staged = None
        if self.staged_new_anchors:
            self.anchors.extend(self.staged_new_anchors)
            self.staged_new_anchors = []

    def total_completed(self, spec: AggregateSpec) -> AggregateState:
        """Aggregate over all complete matches of the shared pattern so far."""
        total = AggregateState.zero()
        for anchor in self.anchors:
            total = total.merge(anchor.completed(spec))
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedSegmentState({self.pattern!r}, anchors={len(self.anchors)})"
