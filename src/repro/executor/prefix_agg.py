"""Online prefix aggregation — the A-Seq building block (Section 3.2).

The Non-Shared method maintains, for a pattern ``(E1 ... El)``, one aggregate
per prefix ``(E1 ... Ej)``.  When an event of type ``Ej`` arrives, the
aggregate of prefix ``j`` absorbs the aggregate of prefix ``j-1`` extended by
the new event (Figure 6(a)); matched sequences are never constructed.

Two state classes implement this recurrence inside one *scope* (one window
instance × one group):

* :class:`PrivateSegmentState` — the flat per-query variant.  The first
  position reads a *carry* value from the upstream part of the query's chain
  (the neutral "one empty sequence" for the query's first segment), which is
  how a query's private prefix/suffix segments are stitched to shared
  segments.
* :class:`SharedSegmentState` — the anchored variant used for shared
  patterns.  Aggregates are maintained per *anchor cohort* — all START
  events of the shared pattern arriving at the same timestamp — so that each
  query can later combine them with its own prefix aggregates (Section 3.3,
  Figure 7); the shared pattern itself is processed exactly once for all
  sharing queries.

Anchors are grouped into cohorts because same-timestamp START events are
indistinguishable to the rest of the chain: every downstream carry snapshot
is frozen per batch, and every extension applies to all of them identically.
Merging them is therefore lossless (the aggregate state is a commutative
monoid and ``extend``/``combine`` distribute over ``merge``), and it makes
the per-event extension cost proportional to the number of *timestamps* that
created anchors instead of the number of START *events* — the high-rate
regime of Figure 13 stays linear in the stream.

The cohort state uses a struct-of-arrays layout: one parallel array per
(aggregate spec, pattern position), indexed by cohort id.  Running totals
(:meth:`SharedSegmentState.total_completed`) and the per-query combined
values (:meth:`~repro.executor.chained.SharedSegmentRunner.chain_value`) are
maintained incrementally from per-batch deltas, so both are O(1) reads.

Both classes use two-phase *stage/commit* batch processing: all reads of a
batch observe the state before the batch, so events carrying the same
timestamp can never chain with each other (sequence semantics require
strictly increasing timestamps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..events.event import Event
from ..queries.aggregates import AggregateSpec, AggregateState
from ..queries.pattern import Pattern

__all__ = ["PrivateSegmentState", "SharedSegmentState", "SharedAnchor", "positions_by_type"]

#: A carry provider returns the aggregate of the chain upstream of a segment,
#: as of the beginning of the current batch.
CarryProvider = Callable[[], AggregateState]

_ZERO = AggregateState.zero()
_UNIT = AggregateState.unit()


def positions_by_type(pattern: Pattern) -> dict[str, tuple[int, ...]]:
    """Map each event type to the (0-based) positions it occupies in ``pattern``."""
    positions: dict[str, list[int]] = {}
    for index, event_type in enumerate(pattern.event_types):
        positions.setdefault(event_type, []).append(index)
    return {event_type: tuple(indexes) for event_type, indexes in positions.items()}


class PrivateSegmentState:
    """Flat prefix aggregation of one private segment of one query."""

    __slots__ = ("pattern", "spec", "_positions", "states", "_staged", "updates")

    def __init__(self, pattern: Pattern, spec: AggregateSpec) -> None:
        self.pattern = pattern
        self.spec = spec
        self._positions = positions_by_type(pattern)
        self.states: list[AggregateState] = [_ZERO] * len(pattern)
        #: Sparse per-batch additions: {position: addition}; ``None`` outside a batch.
        self._staged: dict[int, AggregateState] | None = None
        #: Number of aggregate updates applied (used by cost/throughput reports).
        self.updates = 0

    def stage_batch(self, events: Sequence[Event], carry: CarryProvider) -> None:
        """Compute this batch's additions against the pre-batch state."""
        additions: dict[int, AggregateState] | None = None
        carry_value: AggregateState | None = None
        positions = self._positions
        states = self.states
        spec = self.spec
        for event in events:
            for position in positions.get(event.event_type, ()):
                if position == 0:
                    if carry_value is None:
                        carry_value = carry()
                    base = carry_value
                else:
                    base = states[position - 1]
                if base.count == 0:
                    continue
                if additions is None:
                    additions = {}
                previous = additions.get(position)
                extended = base.extend(event, spec)
                additions[position] = (
                    extended if previous is None else previous.merge(extended)
                )
                self.updates += 1
        self._staged = additions

    def commit(self) -> None:
        staged = self._staged
        if staged is None:
            return
        states = self.states
        for position, addition in staged.items():
            states[position] = states[position].merge(addition)
        self._staged = None

    def chain_value(self) -> AggregateState:
        """Aggregate over completed matches of the chain up to this segment."""
        return self.states[-1]

    def reset(self) -> None:
        """Clear all aggregation state so the instance can serve a new scope."""
        states = self.states
        for index in range(len(states)):
            states[index] = _ZERO
        self._staged = None
        self.updates = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrivateSegmentState({self.pattern!r}, value={self.states[-1].count})"


@dataclass
class SharedAnchor:
    """Read-only view of one anchor cohort of a shared pattern.

    ``states[spec][j]`` aggregates the matches of the shared pattern's prefix
    of length ``j+1`` that start at one of this cohort's START events (all
    sharing one timestamp).  Materialised on demand from the column arrays of
    :class:`SharedSegmentState` — the hot path never builds these objects.
    """

    start_event: Event
    states: dict[AggregateSpec, list[AggregateState]] = field(default_factory=dict)

    def completed(self, spec: AggregateSpec) -> AggregateState:
        """Aggregate over complete matches of the shared pattern at this anchor."""
        return self.states[spec][-1]


class SharedSegmentState:
    """Anchored prefix aggregation of one shared pattern inside one scope.

    The state is maintained once per scope regardless of how many queries
    share the pattern; per-query combination is performed by
    :class:`~repro.executor.chained.SharedSegmentRunner`, which registers
    itself as a listener and receives the per-batch completion deltas
    (``carry ⊗ delta`` is applied incrementally, keeping every runner's
    chain value an O(1) read).

    Parameters
    ----------
    pattern:
        The shared pattern ``p`` (length >= 2 by Definition 3).
    specs:
        The distinct aggregate specifications of the sharing queries; one
        aggregate family is tracked per spec (a single family when the whole
        workload uses COUNT(*), the common case in the paper).
    """

    __slots__ = (
        "pattern",
        "specs",
        "_positions",
        "_length",
        "anchor_starts",
        "_columns",
        "_totals",
        "staged_new_anchors",
        "_staged",
        "_runners",
        "updates",
    )

    def __init__(self, pattern: Pattern, specs: Iterable[AggregateSpec]) -> None:
        self.pattern = pattern
        self.specs = tuple(dict.fromkeys(specs))
        if not self.specs:
            raise ValueError("a shared segment needs at least one aggregate spec")
        self._positions = positions_by_type(pattern)
        self._length = len(pattern)
        #: First START event of each anchor cohort, indexed by cohort id.
        self.anchor_starts: list[Event] = []
        #: Struct-of-arrays storage: ``_columns[spec][position][cohort]``.
        self._columns: dict[AggregateSpec, list[list[AggregateState]]] = {
            spec: [[] for _ in range(self._length)] for spec in self.specs
        }
        #: Running totals over completed matches, one per spec (O(1) reads).
        self._totals: dict[AggregateSpec, AggregateState] = {
            spec: _ZERO for spec in self.specs
        }
        #: START events arriving in the current batch (one new cohort).
        self.staged_new_anchors: list[Event] = []
        #: Sparse staged additions: ``{(spec, position): {cohort: addition}}``.
        self._staged: dict[tuple[AggregateSpec, int], dict[int, AggregateState]] | None = None
        #: Registered per-query runners receiving completion deltas.
        self._runners: list = []
        self.updates = 0

    # -- wiring ----------------------------------------------------------------
    def register(self, runner) -> None:
        """Subscribe a per-query runner to this state's completion deltas."""
        self._runners.append(runner)

    def handles(self, event: Event) -> bool:
        return event.event_type in self._positions

    @property
    def anchors(self) -> list[SharedAnchor]:
        """Materialised per-cohort view (tests/introspection only, not hot path)."""
        views = []
        for cohort, start_event in enumerate(self.anchor_starts):
            states = {
                spec: [columns[position][cohort] for position in range(self._length)]
                for spec, columns in self._columns.items()
            }
            views.append(SharedAnchor(start_event, states))
        return views

    def completed_column(self, spec: AggregateSpec) -> list[AggregateState]:
        """Per-cohort aggregates over complete matches (parallel to carries)."""
        return self._columns[spec][-1]

    # -- batch processing --------------------------------------------------------
    def stage_batch(self, events: Sequence[Event]) -> None:
        """Stage anchor creations and extensions for one same-timestamp batch."""
        staged: dict[tuple[AggregateSpec, int], dict[int, AggregateState]] | None = None
        new_anchors: list[Event] = []
        positions = self._positions
        columns = self._columns
        for event in events:
            for position in positions.get(event.event_type, ()):
                if position == 0:
                    new_anchors.append(event)
                    self.updates += 1
                    continue
                for spec in self.specs:
                    base_column = columns[spec][position - 1]
                    bucket = None
                    for cohort, base in enumerate(base_column):
                        if base.count == 0:
                            continue
                        if bucket is None:
                            if staged is None:
                                staged = {}
                            bucket = staged.setdefault((spec, position), {})
                        extended = base.extend(event, spec)
                        previous = bucket.get(cohort)
                        bucket[cohort] = (
                            extended if previous is None else previous.merge(extended)
                        )
                        self.updates += 1
        self.staged_new_anchors = new_anchors
        self._staged = staged

    def commit(self) -> None:
        """Apply the staged batch and publish completion deltas.

        Totals and registered runners are updated from the deltas of the
        final pattern position, so ``total_completed`` and every runner's
        ``chain_value`` stay O(1) reads.
        """
        last = self._length - 1
        completed: list[tuple[int, AggregateSpec, AggregateState]] = []

        staged = self._staged
        if staged is not None:
            for (spec, position), bucket in staged.items():
                column = self._columns[spec][position]
                for cohort, addition in bucket.items():
                    column[cohort] = column[cohort].merge(addition)
                    if position == last:
                        completed.append((cohort, spec, addition))
            self._staged = None

        if self.staged_new_anchors:
            cohort = len(self.anchor_starts)
            self.anchor_starts.append(self.staged_new_anchors[0])
            for spec in self.specs:
                initial = _ZERO
                for event in self.staged_new_anchors:
                    initial = initial.merge(_UNIT.extend(event, spec))
                columns = self._columns[spec]
                columns[0].append(initial)
                for position in range(1, self._length):
                    columns[position].append(_ZERO)
                if last == 0:
                    completed.append((cohort, spec, initial))
            self.staged_new_anchors = []

        if completed:
            totals = self._totals
            runners = self._runners
            for cohort, spec, delta in completed:
                if delta.count == 0:
                    continue
                totals[spec] = totals[spec].merge(delta)
                for runner in runners:
                    if runner.spec is spec or runner.spec == spec:
                        runner.absorb_completed(cohort, delta)

    # -- reads -------------------------------------------------------------------
    def total_completed(self, spec: AggregateSpec) -> AggregateState:
        """Aggregate over all complete matches of the shared pattern so far."""
        return self._totals[spec]

    # -- pooling ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear all aggregation state so the instance can serve a new scope.

        Keeps the column array objects (and registered runners) alive so
        reuse across window instances does not reallocate the layout.
        """
        self.anchor_starts.clear()
        for columns in self._columns.values():
            for column in columns:
                column.clear()
        for spec in self.specs:
            self._totals[spec] = _ZERO
        self.staged_new_anchors = []
        self._staged = None
        self.updates = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedSegmentState({self.pattern!r}, anchors={len(self.anchor_starts)})"
