"""Online prefix aggregation — the A-Seq building block (Section 3.2).

The Non-Shared method maintains, for a pattern ``(E1 ... El)``, one aggregate
per prefix ``(E1 ... Ej)``.  When an event of type ``Ej`` arrives, the
aggregate of prefix ``j`` absorbs the aggregate of prefix ``j-1`` extended by
the new event (Figure 6(a)); matched sequences are never constructed.

Two state classes implement this recurrence inside one *scope* (one window
instance × one group):

* :class:`PrivateSegmentState` — the flat per-query variant.  The first
  position reads a *carry* value from the upstream part of the query's chain
  (the neutral "one empty sequence" for the query's first segment), which is
  how a query's private prefix/suffix segments are stitched to shared
  segments.
* :class:`SharedSegmentState` — the anchored variant used for shared
  patterns.  Aggregates are maintained per *anchor cohort* — all START
  events of the shared pattern arriving at the same timestamp — so that each
  query can later combine them with its own prefix aggregates (Section 3.3,
  Figure 7); the shared pattern itself is processed exactly once for all
  sharing queries.

Anchors are grouped into cohorts because same-timestamp START events are
indistinguishable to the rest of the chain: every downstream carry snapshot
is frozen per batch, and every extension applies to all of them identically.
Merging them is therefore lossless (the aggregate state is a commutative
monoid and ``extend``/``combine`` distribute over ``merge``), and it makes
the per-event extension cost proportional to the number of *timestamps* that
created anchors instead of the number of START *events*.

Two further optimisations keep long-lived scopes cheap:

* **Vectorised columns** — the cohort state uses a struct-of-arrays layout:
  one flat column per (aggregate spec, pattern position), indexed by cohort
  id.  A batch is reduced once per position to an
  :meth:`~repro.queries.aggregates.AggregateSpec.summarise_batch` summary and
  applied to the whole column in a single pass (a batch add of the staged
  deltas), instead of per-event ``extend``/``merge`` object churn.  COUNT(*)
  columns degenerate to flat ``array('q')`` machine-int columns
  (:class:`_CountColumns`, promoting to exact Python ints past ``2**63-1``),
  the paper's common case.
* **Cohort compaction** (:meth:`SharedSegmentState.compact`) — cohorts whose
  carries have become element-wise identical in *every* registered
  :class:`~repro.executor.chained.SharedSegmentRunner` are merged, so a scope
  holds O(distinct carries) cohorts instead of O(anchor timestamps).  Because
  ``combine`` distributes over ``merge`` in its right argument
  (``c ⊗ (d1 ⊕ d2) = c ⊗ d1 ⊕ c ⊗ d2``), folding the merged cohort's future
  completion deltas against the common carry is exactly the sum over the
  original cohorts — the merge is lossless.

Running totals (:meth:`SharedSegmentState.total_completed`) and the per-query
combined values
(:meth:`~repro.executor.chained.SharedSegmentRunner.chain_value`) are
maintained incrementally from per-batch deltas, so both are O(1) reads.

Both classes use two-phase *stage/commit* batch processing: all reads of a
batch observe the state before the batch, so events carrying the same
timestamp can never chain with each other (sequence semantics require
strictly increasing timestamps).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..events.event import Event
from ..events.log import event_from_record, event_to_record
from ..queries.aggregates import AggregateSpec, AggregateState, AggregationKind
from ..queries.pattern import Pattern
from .kernels import NumpyCountColumns, NumpyStateColumns, make_summariser

__all__ = [
    "PrivateSegmentState",
    "SharedSegmentState",
    "SharedAnchor",
    "positions_by_type",
    "group_by_position",
]

#: A carry provider returns the aggregate of the chain upstream of a segment,
#: as of the beginning of the current batch.
CarryProvider = Callable[[], AggregateState]

_ZERO = AggregateState.zero()
_UNIT = AggregateState.unit()

#: Cohort count below which :meth:`SharedSegmentState.maybe_compact` does not
#: bother scanning (compaction is amortised by doubling this threshold when a
#: scan fails to shrink the cohort set).
_MIN_COMPACT_COHORTS = 8

#: A batch reduced per (spec, position): (k, targeted, total, min, max) —
#: the argument tuple of AggregateState.extend_many.
_BatchSummary = tuple[int, int, float, "float | None", "float | None"]

#: Largest count storable in an ``array('q')`` cell.  Count columns live in
#: machine-int arrays (8 bytes per cohort, C-layout for future kernels) and
#: promote to plain Python lists the moment a count would pass this bound —
#: prefix counts grow multiplicatively, so overflow is reachable on dense
#: streams and must degrade to exact big-int arithmetic, never wrap.
_I64_MAX = 2**63 - 1


def positions_by_type(pattern: Pattern) -> dict[str, tuple[int, ...]]:
    """Map each event type to the (0-based) positions it occupies in ``pattern``."""
    positions: dict[str, list[int]] = {}
    for index, event_type in enumerate(pattern.event_types):
        positions.setdefault(event_type, []).append(index)
    return {event_type: tuple(indexes) for event_type, indexes in positions.items()}


def group_by_position(
    events: Sequence[Event], positions: dict[str, tuple[int, ...]]
) -> "dict[int, list[Event]] | None":
    """Bucket a batch's events by the pattern positions their type occupies.

    Shared by every batch-oriented state in this package (private segments,
    anchored shared segments, and the pane transition matrices in
    :mod:`repro.executor.panes`): one pass over the batch, ``None`` when no
    event touches the pattern.
    """
    by_position: dict[int, list[Event]] | None = None
    for event in events:
        for position in positions.get(event.event_type, ()):
            if by_position is None:
                by_position = {}
            by_position.setdefault(position, []).append(event)
    return by_position


class PrivateSegmentState:
    """Flat prefix aggregation of one private segment of one query."""

    __slots__ = ("pattern", "spec", "_positions", "states", "_staged", "updates", "_summarise")

    def __init__(self, pattern: Pattern, spec: AggregateSpec, backend: str = "python") -> None:
        self.pattern = pattern
        self.spec = spec
        self._summarise = make_summariser(backend)
        self._positions = positions_by_type(pattern)
        self.states: list[AggregateState] = [_ZERO] * len(pattern)
        #: Sparse per-batch additions: {position: addition}; ``None`` outside a batch.
        self._staged: dict[int, AggregateState] | None = None
        #: Number of aggregate updates applied (used by cost/throughput reports).
        self.updates = 0

    def stage_batch(self, events: Sequence[Event], carry: CarryProvider) -> None:
        """Compute this batch's additions against the pre-batch state.

        The batch is reduced once per position (``summarise_batch``) and
        applied with one fused ``extend_many`` instead of per-event
        ``extend``/``merge`` pairs.
        """
        by_position = group_by_position(events, self._positions)
        if by_position is None:
            self._staged = None
            return
        additions: dict[int, AggregateState] | None = None
        carry_value: AggregateState | None = None
        states = self.states
        spec = self.spec
        for position, bucket in by_position.items():
            if position == 0:
                if carry_value is None:
                    carry_value = carry()
                base = carry_value
            else:
                base = states[position - 1]
            if base.count == 0:
                continue
            if additions is None:
                additions = {}
            summary = self._summarise(spec, bucket)
            additions[position] = base.extend_many(*summary)
            self.updates += summary[0]
        self._staged = additions

    def commit(self) -> None:
        """Merge the staged per-position additions into the live states."""
        staged = self._staged
        if staged is None:
            return
        states = self.states
        for position, addition in staged.items():
            states[position] = states[position].merge(addition)
        self._staged = None

    def chain_value(self) -> AggregateState:
        """Aggregate over completed matches of the chain up to this segment."""
        return self.states[-1]

    # -- checkpointing -----------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the per-position states as a JSON-safe dict.

        Must be called between batches (nothing staged); the engine only
        checkpoints at batch boundaries.
        """
        if self._staged is not None:
            raise RuntimeError("export_state() must be called between batches")
        return {
            "states": [state.as_tuple() for state in self.states],
            "updates": self.updates,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        values = state["states"]
        if len(values) != len(self.states):
            raise ValueError(
                f"snapshot has {len(values)} positions, pattern has {len(self.states)}"
            )
        self.states[:] = [AggregateState.from_tuple(value) for value in values]
        self._staged = None
        self.updates = state["updates"]

    def reset(self) -> None:
        """Clear all aggregation state so the instance can serve a new scope."""
        states = self.states
        for index in range(len(states)):
            states[index] = _ZERO
        self._staged = None
        self.updates = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrivateSegmentState({self.pattern!r}, value={self.states[-1].count})"


@dataclass
class SharedAnchor:
    """Read-only view of one anchor cohort of a shared pattern.

    ``states[spec][j]`` aggregates the matches of the shared pattern's prefix
    of length ``j+1`` that start at one of this cohort's START events (all
    sharing one timestamp).  Materialised on demand from the column arrays of
    :class:`SharedSegmentState` — the hot path never builds these objects.
    """

    start_event: Event
    states: dict[AggregateSpec, list[AggregateState]] = field(default_factory=dict)

    def completed(self, spec: AggregateSpec) -> AggregateState:
        """Aggregate over complete matches of the shared pattern at this anchor."""
        return self.states[spec][-1]


class _StateColumns:
    """Struct-of-arrays columns of one aggregate spec (AggregateState cells).

    One flat list per pattern position, indexed by cohort id.  Used for every
    spec that tracks more than the sequence count (COUNT(E), SUM, MIN, MAX,
    AVG).
    """

    __slots__ = ("columns",)

    def __init__(self, length: int) -> None:
        self.columns: list[list[AggregateState]] = [[] for _ in range(length)]

    def append_cohort(self, initial: AggregateState) -> None:
        self.columns[0].append(initial)
        for column in self.columns[1:]:
            column.append(_ZERO)

    def state_at(self, position: int, cohort: int) -> AggregateState:
        return self.columns[position][cohort]

    def column_states(self, position: int) -> list[AggregateState]:
        return list(self.columns[position])

    def extend_commit(
        self, position: int, summary: _BatchSummary, collect_deltas: bool
    ) -> tuple["list[tuple[int, AggregateState]] | None", int]:
        """Apply one batch summary to a whole column in a single pass.

        Returns the per-cohort deltas (when ``collect_deltas``, i.e. at the
        completion position) and the number of aggregate updates performed.
        """
        base = self.columns[position - 1]
        column = self.columns[position]
        deltas: list[tuple[int, AggregateState]] | None = [] if collect_deltas else None
        touched = 0
        k = summary[0]
        for cohort, base_state in enumerate(base):
            if base_state.count == 0:
                continue
            addition = base_state.extend_many(*summary)
            column[cohort] = column[cohort].merge(addition)
            touched += 1
            if deltas is not None:
                deltas.append((cohort, addition))
        return deltas, touched * k

    def merge_cohorts(self, groups: Sequence[Sequence[int]]) -> None:
        for column in self.columns:
            merged = []
            for group in groups:
                value = column[group[0]]
                for cohort in group[1:]:
                    value = value.merge(column[cohort])
                merged.append(value)
            column[:] = merged

    def export_columns(self) -> list:
        """The columns as nested lists of state tuples (JSON-safe)."""
        return [[state.as_tuple() for state in column] for column in self.columns]

    def restore_columns(self, columns: Sequence) -> None:
        """Restore columns exported by :meth:`export_columns`."""
        if len(columns) != len(self.columns):
            raise ValueError("snapshot column count does not match the pattern length")
        for position, values in enumerate(columns):
            self.columns[position] = [AggregateState.from_tuple(value) for value in values]

    def clear(self) -> None:
        for column in self.columns:
            column.clear()


class _CountColumns:
    """COUNT(*) fast path: flat 64-bit integer columns.

    A COUNT(*) aggregate state is fully determined by its sequence count
    (``extend`` is the identity for it), so the column cells are plain
    machine integers — ``array('q')`` storage (8 bytes per cohort, contiguous
    C layout) with the batch update as integer arithmetic over whole columns,
    no ``AggregateState`` allocation on the hot path.

    Prefix counts compound multiplicatively (every batch multiplies a base
    count by its event count), so a column can legitimately outgrow a signed
    64-bit cell.  Each column therefore *promotes* to a plain Python list —
    exact big-int arithmetic — the moment a stored value would pass
    ``2**63 - 1``; results are identical either side of the switch, only the
    storage width changes.  :meth:`clear` re-arms the compact representation
    for pooled reuse.
    """

    __slots__ = ("columns",)

    def __init__(self, length: int) -> None:
        self.columns: list["array | list[int]"] = [array("q") for _ in range(length)]

    def _promoted(self, position: int) -> list[int]:
        """Switch one column to unbounded Python ints (idempotent)."""
        column = self.columns[position]
        if not isinstance(column, list):
            column = list(column)
            self.columns[position] = column
        return column

    def append_cohort(self, initial: AggregateState) -> None:
        count = initial.count
        first = self.columns[0]
        if count > _I64_MAX and not isinstance(first, list):
            first = self._promoted(0)
        first.append(count)
        for position in range(1, len(self.columns)):
            self.columns[position].append(0)

    def state_at(self, position: int, cohort: int) -> AggregateState:
        count = self.columns[position][cohort]
        return AggregateState(count=count) if count else _ZERO

    def column_states(self, position: int) -> list[AggregateState]:
        return [AggregateState(count=n) if n else _ZERO for n in self.columns[position]]

    def extend_commit(
        self, position: int, summary: _BatchSummary, collect_deltas: bool
    ) -> tuple["list[tuple[int, AggregateState]] | None", int]:
        base = self.columns[position - 1]
        column = self.columns[position]
        k = summary[0]
        if collect_deltas:
            deltas: list[tuple[int, AggregateState]] = []
            touched = 0
            for cohort, base_count in enumerate(base):
                if not base_count:
                    continue
                added = k * base_count
                updated = column[cohort] + added
                if updated > _I64_MAX and not isinstance(column, list):
                    column = self._promoted(position)
                column[cohort] = updated
                deltas.append((cohort, AggregateState(count=added)))
                touched += 1
            return deltas, touched * k
        touched = 0
        for cohort, base_count in enumerate(base):
            if not base_count:
                continue
            updated = column[cohort] + k * base_count
            if updated > _I64_MAX and not isinstance(column, list):
                column = self._promoted(position)
            column[cohort] = updated
            touched += 1
        return None, touched * k

    def merge_cohorts(self, groups: Sequence[Sequence[int]]) -> None:
        for position, column in enumerate(self.columns):
            merged = [sum(column[cohort] for cohort in group) for group in groups]
            if isinstance(column, list):
                column[:] = merged
            else:
                try:
                    self.columns[position] = array("q", merged)
                except OverflowError:
                    self.columns[position] = merged

    def export_columns(self) -> list:
        """The columns as nested lists of plain ints (JSON-safe, exact)."""
        return [list(column) for column in self.columns]

    def restore_columns(self, columns: Sequence) -> None:
        """Restore columns exported by :meth:`export_columns`.

        Each column goes back into compact ``array('q')`` storage unless a
        restored count exceeds the 64-bit range, in which case the promoted
        big-int list representation is restored instead — exactly mirroring
        the live promotion rule.
        """
        if len(columns) != len(self.columns):
            raise ValueError("snapshot column count does not match the pattern length")
        for position, values in enumerate(columns):
            try:
                self.columns[position] = array("q", values)
            except OverflowError:
                self.columns[position] = list(values)

    def clear(self) -> None:
        columns = self.columns
        for position, column in enumerate(columns):
            if isinstance(column, list):
                columns[position] = array("q")
            else:
                del column[:]


def _make_columns(
    spec: AggregateSpec, length: int, backend: str = "python"
) -> "_CountColumns | _StateColumns":
    if backend == "numpy":
        if spec.kind == AggregationKind.COUNT_STAR:
            return NumpyCountColumns(length)
        return NumpyStateColumns(length)
    if spec.kind == AggregationKind.COUNT_STAR:
        return _CountColumns(length)
    return _StateColumns(length)


class SharedSegmentState:
    """Anchored prefix aggregation of one shared pattern inside one scope.

    The state is maintained once per scope regardless of how many queries
    share the pattern; per-query combination is performed by
    :class:`~repro.executor.chained.SharedSegmentRunner`, which registers
    itself as a listener and receives the per-batch completion deltas
    (``carry ⊗ delta`` is applied incrementally, keeping every runner's
    chain value an O(1) read).

    Parameters
    ----------
    pattern:
        The shared pattern ``p`` (length >= 2 by Definition 3).
    specs:
        The distinct aggregate specifications of the sharing queries; one
        aggregate family is tracked per spec (a single family when the whole
        workload uses COUNT(*), the common case in the paper).
    auto_compact:
        When true, :meth:`maybe_compact` (called by the engine after each
        batch) merges cohorts whose carries are identical in every registered
        runner, once the cohort count passes an amortised threshold.
    """

    __slots__ = (
        "pattern",
        "specs",
        "auto_compact",
        "backend",
        "_summarise",
        "_positions",
        "_length",
        "anchor_starts",
        "_families",
        "_totals",
        "staged_new_anchors",
        "_staged",
        "_runners",
        "_compact_threshold",
        "updates",
        "cohorts_created",
        "cohorts_merged",
        "compactions",
    )

    def __init__(
        self,
        pattern: Pattern,
        specs: Iterable[AggregateSpec],
        auto_compact: bool = False,
        backend: str = "python",
    ) -> None:
        self.pattern = pattern
        self.specs = tuple(dict.fromkeys(specs))
        if not self.specs:
            raise ValueError("a shared segment needs at least one aggregate spec")
        self.auto_compact = auto_compact
        #: Resolved numeric backend ("python" or "numpy", see
        #: :func:`repro.executor.kernels.resolve_backend`).
        self.backend = backend
        self._summarise = make_summariser(backend)
        self._positions = positions_by_type(pattern)
        self._length = len(pattern)
        #: First START event of each anchor cohort, indexed by cohort id.
        self.anchor_starts: list[Event] = []
        #: Struct-of-arrays storage, one column family per spec.
        self._families: dict[AggregateSpec, _CountColumns | _StateColumns] = {
            spec: _make_columns(spec, self._length, backend) for spec in self.specs
        }
        #: Running totals over completed matches, one per spec (O(1) reads).
        self._totals: dict[AggregateSpec, AggregateState] = {
            spec: _ZERO for spec in self.specs
        }
        #: START events arriving in the current batch (one new cohort).
        self.staged_new_anchors: list[Event] = []
        #: Staged extension batches: ``{position: [events]}``; ``None`` between batches.
        self._staged: dict[int, list[Event]] | None = None
        #: Registered per-query runners receiving completion deltas.
        self._runners: list = []
        self._compact_threshold = _MIN_COMPACT_COHORTS
        self.updates = 0
        #: Compaction statistics (harvested by the engine at finalization).
        self.cohorts_created = 0
        self.cohorts_merged = 0
        self.compactions = 0

    # -- wiring ----------------------------------------------------------------
    def register(self, runner) -> None:
        """Subscribe a per-query runner to this state's completion deltas."""
        self._runners.append(runner)

    def handles(self, event: Event) -> bool:
        """Whether ``event``'s type occurs anywhere in this shared pattern."""
        return event.event_type in self._positions

    @property
    def cohort_count(self) -> int:
        """Number of live anchor cohorts (after any compaction)."""
        return len(self.anchor_starts)

    @property
    def anchors(self) -> list[SharedAnchor]:
        """Materialised per-cohort view (tests/introspection only, not hot path)."""
        views = []
        for cohort, start_event in enumerate(self.anchor_starts):
            states = {
                spec: [family.state_at(position, cohort) for position in range(self._length)]
                for spec, family in self._families.items()
            }
            views.append(SharedAnchor(start_event, states))
        return views

    def completed_column(self, spec: AggregateSpec) -> list[AggregateState]:
        """Per-cohort aggregates over complete matches (parallel to carries)."""
        return self._families[spec].column_states(self._length - 1)

    # -- batch processing --------------------------------------------------------
    def stage_batch(self, events: Sequence[Event]) -> None:
        """Stage anchor creations and extensions for one same-timestamp batch."""
        by_position = group_by_position(events, self._positions)
        if by_position is None:
            self.staged_new_anchors = []
            self._staged = None
            return
        new_anchors = by_position.pop(0, [])
        self.updates += len(new_anchors)
        self.staged_new_anchors = new_anchors
        self._staged = by_position or None

    def commit(self) -> None:
        """Apply the staged batch and publish completion deltas.

        Extension batches are applied column-at-a-time in *descending*
        position order, so every position reads the pre-batch values of the
        position below it (stage/commit semantics without materialising the
        additions).  Totals and registered runners are updated from the
        deltas of the final pattern position, so ``total_completed`` and
        every runner's ``chain_value`` stay O(1) reads.
        """
        last = self._length - 1
        completed: list[tuple[AggregateSpec, list[tuple[int, AggregateState]]]] = []

        staged = self._staged
        if staged is not None:
            families = self._families
            for position in sorted(staged, reverse=True):
                bucket = staged[position]
                for spec, family in families.items():
                    summary = self._summarise(spec, bucket)
                    deltas, applied = family.extend_commit(position, summary, position == last)
                    self.updates += applied
                    if deltas:
                        completed.append((spec, deltas))
            self._staged = None

        if self.staged_new_anchors:
            cohort = len(self.anchor_starts)
            self.anchor_starts.append(self.staged_new_anchors[0])
            self.cohorts_created += 1
            batch = self.staged_new_anchors
            for spec, family in self._families.items():
                initial = _UNIT.extend_many(*self._summarise(spec, batch))
                family.append_cohort(initial)
                if last == 0 and initial.count:
                    completed.append((spec, [(cohort, initial)]))
            self.staged_new_anchors = []

        if completed:
            totals = self._totals
            runners = self._runners
            for spec, deltas in completed:
                spec_runners = [
                    runner for runner in runners if runner.spec is spec or runner.spec == spec
                ]
                for cohort, delta in deltas:
                    if delta.count == 0:
                        continue
                    totals[spec] = totals[spec].merge(delta)
                    for runner in spec_runners:
                        runner.absorb_completed(cohort, delta)

    # -- cohort compaction --------------------------------------------------------
    def compact(self) -> int:
        """Merge cohorts whose carries are identical in every registered runner.

        Lossless by distributivity: for cohorts ``i``/``j`` with the same
        carry ``c`` in every runner, all future contributions satisfy
        ``c ⊗ d_i ⊕ c ⊗ d_j = c ⊗ (d_i ⊕ d_j)``, so the merged cohort's
        element-wise merged columns reproduce the original sums exactly.
        Totals and runner chain values are unaffected (they are running sums).

        Must be called between batches (after ``commit``).  Returns the
        number of cohorts removed.  With no registered runner every cohort
        is trivially mergeable — standalone states should only call this
        when that degenerate collapse is intended.
        """
        if self._staged is not None or self.staged_new_anchors:
            raise RuntimeError("compact() must be called between batches, after commit()")
        total = len(self.anchor_starts)
        if total <= 1:
            return 0
        carry_lists = [runner.carries for runner in self._runners]
        group_index: dict[tuple, int] = {}
        groups: list[list[int]] = []
        for cohort in range(total):
            key = tuple(carries[cohort] for carries in carry_lists)
            index = group_index.get(key)
            if index is None:
                group_index[key] = len(groups)
                groups.append([cohort])
            else:
                groups[index].append(cohort)
        if len(groups) == total:
            return 0
        self.anchor_starts[:] = [self.anchor_starts[group[0]] for group in groups]
        for family in self._families.values():
            family.merge_cohorts(groups)
        representatives = [group[0] for group in groups]
        for runner in self._runners:
            runner.compact_to(representatives)
        merged = total - len(groups)
        self.cohorts_merged += merged
        self.compactions += 1
        return merged

    def maybe_compact(self) -> int:
        """Amortised compaction trigger called by the engine after each batch.

        Scans only when the cohort count passes a threshold that doubles
        after every scan, so the total compaction work stays linear in the
        number of cohorts ever created.
        """
        if not self.auto_compact or len(self.anchor_starts) < self._compact_threshold:
            return 0
        merged = self.compact()
        self._compact_threshold = max(_MIN_COMPACT_COHORTS, 2 * len(self.anchor_starts))
        return merged

    # -- reads -------------------------------------------------------------------
    def total_completed(self, spec: AggregateSpec) -> AggregateState:
        """Aggregate over all complete matches of the shared pattern so far."""
        return self._totals[spec]

    # -- checkpointing ------------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot cohorts, column families and totals as a JSON-safe dict.

        Families and totals are listed in ``self.specs`` order (stable for a
        given compiled workload), so the snapshot never needs to serialise
        spec objects as keys.  Must be called between batches; anchor START
        events are stored via the event-log record codec, so checkpointing
        requires JSON-scalar attributes (the same contract as recording).
        """
        if self._staged is not None or self.staged_new_anchors:
            raise RuntimeError("export_state() must be called between batches")
        return {
            "anchors": [event_to_record(event) for event in self.anchor_starts],
            "families": [self._families[spec].export_columns() for spec in self.specs],
            "totals": [self._totals[spec].as_tuple() for spec in self.specs],
            "compact_threshold": self._compact_threshold,
            "updates": self.updates,
            "cohorts_created": self.cohorts_created,
            "cohorts_merged": self.cohorts_merged,
            "compactions": self.compactions,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        Registered runners are kept; their own state is restored separately
        by :meth:`~repro.executor.chained.SharedSegmentRunner.restore_state`.
        """
        self.anchor_starts[:] = [event_from_record(record) for record in state["anchors"]]
        for spec, columns in zip(self.specs, state["families"]):
            self._families[spec].restore_columns(columns)
        for spec, total in zip(self.specs, state["totals"]):
            self._totals[spec] = AggregateState.from_tuple(total)
        self.staged_new_anchors = []
        self._staged = None
        self._compact_threshold = state["compact_threshold"]
        self.updates = state["updates"]
        self.cohorts_created = state["cohorts_created"]
        self.cohorts_merged = state["cohorts_merged"]
        self.compactions = state["compactions"]

    # -- pooling ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear all aggregation state so the instance can serve a new scope.

        Keeps the column array objects (and registered runners) alive so
        reuse across window instances does not reallocate the layout.
        """
        self.anchor_starts.clear()
        for family in self._families.values():
            family.clear()
        for spec in self.specs:
            self._totals[spec] = _ZERO
        self.staged_new_anchors = []
        self._staged = None
        self._compact_threshold = _MIN_COMPACT_COHORTS
        self.updates = 0
        self.cohorts_created = 0
        self.cohorts_merged = 0
        self.compactions = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedSegmentState({self.pattern!r}, cohorts={len(self.anchor_starts)})"
