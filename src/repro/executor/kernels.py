"""Optional numpy kernel backend for the aggregation layer.

The engine's routing is vectorised (columnar micro-batches, compiled filter
kernels) but aggregation commits were still per-cell Python arithmetic:
:class:`~repro.executor.prefix_agg._CountColumns` walks every cohort of a
column, :class:`~repro.executor.panes.PaneCountMatrix` walks every matrix
cell, and :meth:`~repro.queries.aggregates.AggregateSpec.summarise_batch`
iterates boxed :class:`~repro.events.event.Event` objects.  This module
provides drop-in numpy implementations of those inner loops behind the same
column interfaces, selected per engine via ``backend="python" | "numpy" |
"auto"`` (:func:`resolve_backend`).

Design contract — **bit-identical results across backends**:

* **Integer columns** (COUNT(*) cohort columns, pane count matrices) live in
  ``int64`` arrays.  Every vectorised commit first checks a conservative
  overflow bound against :data:`I64_MAX` (counts are non-negative, so column
  maxima dominate every cell) and *promotes* the column to the pure-Python
  big-int representation before any value could wrap — the same promotion
  rule the ``array('q')`` columns use, so exact arithmetic is preserved and
  the canonical exported state (plain int lists) is identical either way.
  Promoting early is results-neutral: only the storage representation
  changes, never a stored value.
* **Float reductions** reproduce the Python path's *sequential*
  left-to-right semantics: sums use ``np.cumsum`` (a left fold, unlike the
  pairwise ``np.sum``) normalised with ``+ 0.0`` so a ``-0.0`` column sum
  cannot diverge from Python's ``0.0``-seeded accumulator, and min/max rely
  on ``np.minimum``/``np.maximum`` keeping their *first* operand on ties —
  the same tie-breaking as Python's builtin ``min``/``max``, so signed
  zeros survive identically.  ``NaN`` attribute values are outside the
  engine's contract (the canonical JSON codec rejects them).
* **State columns** vectorise the fused
  :meth:`~repro.queries.aggregates.AggregateState.extend_many` +
  ``merge`` column update over struct-of-arrays fields (count/target int64,
  total float64, min/max float64 with ``NaN`` encoding ``None``), using the
  exact per-cell expression tree of the scalar code — IEEE float ops are
  deterministic, so evaluating the same expressions element-wise yields the
  same bits.

Because exports are backend-agnostic (plain ints, floats, ``None``), a
checkpoint written by either backend restores into the other and the replay
determinism contract is unchanged.

numpy is an *optional* dependency (``pip install repro[numpy]``): this module
imports without it, ``backend="auto"`` quietly falls back to pure Python, and
``backend="numpy"`` raises a clear error.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..events.event import Event
from ..queries.aggregates import AggregateSpec, AggregateState, AggregationKind
from ..queries.pattern import Pattern

try:  # pragma: no cover - exercised in both CI legs, but only one per run
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "BACKENDS",
    "I64_MAX",
    "numpy_available",
    "resolve_backend",
    "make_summariser",
    "summarise_values",
    "NumpyCountColumns",
    "NumpyStateColumns",
    "NumpyPaneCountMatrix",
]

#: Backend names accepted by the engine layer: the pure-Python reference,
#: the numpy kernels, and ``"auto"`` (numpy when importable, else Python).
BACKENDS = ("python", "numpy", "auto")

#: Largest value storable in an ``int64`` cell; the promotion bound shared
#: with the ``array('q')`` columns of :mod:`repro.executor.prefix_agg`.
I64_MAX = 2**63 - 1

#: Batches smaller than this are summarised by the scalar loop even under
#: the numpy backend: array construction costs more than it saves on a
#: handful of events (the "numpy loses on tiny batches" regime, see
#: ``docs/engine.md``).  Parity is unaffected — both paths are exact.
_SUMMARISE_VECTOR_MIN = 16

_ZERO = AggregateState.zero()

#: A batch summary: the ``(k, targeted, total, min, max)`` argument tuple of
#: :meth:`~repro.queries.aggregates.AggregateState.extend_many`.
_BatchSummary = "tuple[int, int, float, Optional[float], Optional[float]]"


def numpy_available() -> bool:
    """Whether the optional numpy dependency is importable."""
    return _np is not None


def resolve_backend(backend: str) -> str:
    """Resolve a requested backend name to ``"python"`` or ``"numpy"``.

    ``"auto"`` selects numpy when it is importable and falls back to the
    pure-Python reference otherwise; ``"numpy"`` without numpy installed
    raises immediately (at engine construction, not mid-stream) with an
    actionable message.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose one of {BACKENDS}")
    if backend == "auto":
        return "numpy" if numpy_available() else "python"
    if backend == "numpy" and not numpy_available():
        raise RuntimeError(
            "backend='numpy' requires the optional numpy dependency "
            "(pip install numpy, or the 'numpy' extra: pip install repro[numpy]); "
            "use backend='auto' to fall back to the pure-Python kernels"
        )
    return backend


# -- batch summarisation -----------------------------------------------------------


def summarise_values(
    spec: AggregateSpec, k: int, values: Sequence
) -> "tuple[int, int, float, Optional[float], Optional[float]]":
    """Vectorised reduction of a raw attribute value column.

    The numpy twin of :meth:`~repro.queries.aggregates.AggregateSpec.summarise_values`:
    ``values`` holds the tracked attribute of ``k`` same-type events in batch
    order (``None`` for events not carrying it — the raw-column shape
    :meth:`~repro.events.columnar.ColumnarBatch.attribute_values` exposes),
    and the result is the ``(k, targeted, total, min, max)`` summary consumed
    by ``extend_many``.  Bit-identical to the scalar loop: the sum is a
    ``cumsum`` left fold normalised with ``+ 0.0`` (Python's accumulator
    starts at ``0.0`` and can therefore never end on ``-0.0``), and the
    min/max reductions keep the first operand on ties exactly like the
    builtins.
    """
    present = [value for value in values if value is not None]
    if not present:
        return k, k, 0.0, None, None
    column = _np.asarray(present, dtype=_np.float64)
    if len(present) == 1:
        total = float(column[0]) + 0.0
    else:
        total = float(_np.cumsum(column)[-1]) + 0.0
    return k, k, total, float(column.min()), float(column.max())


def _summarise_batch_numpy(
    spec: AggregateSpec, events: Sequence[Event]
) -> "tuple[int, int, float, Optional[float], Optional[float]]":
    """Numpy-backed :meth:`~repro.queries.aggregates.AggregateSpec.summarise_batch`.

    Extracts the batch's raw attribute column with one comprehension (the
    per-event work shrinks to a dict lookup) and reduces it with
    :func:`summarise_values`.  Small batches delegate to the scalar loop —
    below :data:`_SUMMARISE_VECTOR_MIN` events the array round-trip costs
    more than it saves.
    """
    k = len(events)
    if (
        k < _SUMMARISE_VECTOR_MIN
        or spec.kind == AggregationKind.COUNT_STAR
        or not spec.tracks_attribute
    ):
        return spec.summarise_batch(events)
    if not spec.targets(events[0]):
        return k, 0, 0.0, None, None
    attribute = spec.attribute
    return summarise_values(spec, k, [event.attributes.get(attribute) for event in events])


def make_summariser(
    backend: str,
) -> "Callable[[AggregateSpec, Sequence[Event]], tuple]":
    """The batch summariser of ``backend`` (already resolved, see :func:`resolve_backend`).

    Returns a ``(spec, events) -> (k, targeted, total, min, max)`` callable:
    the bound :meth:`~repro.queries.aggregates.AggregateSpec.summarise_batch`
    loop for ``"python"``, the columnar reduction
    (:func:`_summarise_batch_numpy`) for ``"numpy"``.
    """
    if backend == "numpy":
        return _summarise_batch_numpy
    return lambda spec, events: spec.summarise_batch(events)


# -- internal float helpers --------------------------------------------------------


def _nan_min(a, b):
    """Element-wise ``_none_min`` over NaN-encoded optional floats.

    ``NaN`` plays ``None``: an absent value yields the other operand, and
    when both are present ``np.minimum`` keeps its first operand on ties —
    the same tie-breaking (and signed-zero behaviour) as Python's ``min``.
    """
    result = _np.where(_np.isnan(a), b, a)
    both = ~_np.isnan(a) & ~_np.isnan(b)
    return _np.where(both, _np.minimum(a, b), result)


def _nan_max(a, b):
    """Element-wise ``_none_max`` over NaN-encoded optional floats."""
    result = _np.where(_np.isnan(a), b, a)
    both = ~_np.isnan(a) & ~_np.isnan(b)
    return _np.where(both, _np.maximum(a, b), result)


# -- cohort column families --------------------------------------------------------


class NumpyCountColumns:
    """COUNT(*) cohort columns in ``int64`` numpy storage.

    The numpy twin of :class:`~repro.executor.prefix_agg._CountColumns`:
    one flat 64-bit integer column per pattern position, indexed by cohort
    id, with the whole-column batch commit as a single vectorised
    multiply-add.  Shares the promotion rule of the ``array('q')`` columns —
    a column switches to a plain Python list (exact big-int arithmetic) the
    moment a stored count *could* pass :data:`I64_MAX`, checked via a
    conservative column-maximum bound **before** the vector op so no value
    ever wraps.  Canonical exports are plain int lists, identical to the
    Python backend's.
    """

    __slots__ = ("columns", "_size")

    def __init__(self, length: int) -> None:
        #: Per-position storage: an ``int64`` array (capacity-managed, the
        #: live prefix is ``[:_size]``) or a promoted big-int Python list.
        self.columns: list = [_np.zeros(0, dtype=_np.int64) for _ in range(length)]
        self._size = 0

    def _grow(self, position: int):
        """Double one column's capacity (amortised O(1) appends)."""
        column = self.columns[position]
        grown = _np.zeros(max(8, 2 * len(column)), dtype=_np.int64)
        grown[: len(column)] = column
        self.columns[position] = grown
        return grown

    def _promoted(self, position: int) -> list:
        """Switch one column to unbounded Python ints (idempotent)."""
        column = self.columns[position]
        if not isinstance(column, list):
            column = column[: self._size].tolist()
            self.columns[position] = column
        return column

    def append_cohort(self, initial: AggregateState) -> None:
        """Open a new cohort: ``initial`` count at position 0, zero elsewhere."""
        count = initial.count
        size = self._size
        for position, column in enumerate(self.columns):
            value = count if position == 0 else 0
            if not isinstance(column, list):
                if value > I64_MAX:
                    column = self._promoted(position)
                else:
                    if size >= len(column):
                        column = self._grow(position)
                    column[size] = value
                    continue
            column.append(value)
        self._size = size + 1

    def state_at(self, position: int, cohort: int) -> AggregateState:
        """The cohort's aggregate at ``position``, boxed on demand."""
        column = self.columns[position]
        count = column[cohort] if isinstance(column, list) else int(column[cohort])
        return AggregateState(count=count) if count else _ZERO

    def column_states(self, position: int) -> list[AggregateState]:
        """One position's whole column as boxed states (cohort order)."""
        column = self.columns[position]
        values = column if isinstance(column, list) else column[: self._size].tolist()
        return [AggregateState(count=count) if count else _ZERO for count in values]

    def extend_commit(
        self, position: int, summary, collect_deltas: bool
    ) -> "tuple[list | None, int]":
        """Apply one batch summary to a whole column as a vector multiply-add.

        Same contract as the Python columns: returns the per-cohort deltas
        (at the completion position) and the number of aggregate updates.
        The overflow bound ``k * max(base) + max(column)`` is exact for
        non-negative counts; tripping it promotes the target column and
        re-runs the commit in big-int Python arithmetic.
        """
        base = self.columns[position - 1]
        column = self.columns[position]
        k = summary[0]
        size = self._size
        if isinstance(base, list) or isinstance(column, list):
            return self._extend_commit_big(position, k, collect_deltas)
        base_view = base[:size]
        if size == 0 or not base_view.any():
            return ([] if collect_deltas else None), 0
        if k * int(base_view.max()) + int(column[:size].max()) > I64_MAX:
            self._promoted(position)
            return self._extend_commit_big(position, k, collect_deltas)
        column[:size] += base_view * k
        touched = int(_np.count_nonzero(base_view))
        if not collect_deltas:
            return None, touched * k
        deltas = [
            (cohort, AggregateState(count=k * int(base_view[cohort])))
            for cohort in _np.flatnonzero(base_view).tolist()
        ]
        return deltas, touched * k

    def _extend_commit_big(
        self, position: int, k: int, collect_deltas: bool
    ) -> "tuple[list | None, int]":
        """Exact big-int commit used once either column has been promoted."""
        base = self.columns[position - 1]
        if not isinstance(base, list):
            base = base[: self._size].tolist()
        column = self._promoted(position)
        deltas: "list | None" = [] if collect_deltas else None
        touched = 0
        for cohort, base_count in enumerate(base):
            if not base_count:
                continue
            added = k * base_count
            column[cohort] += added
            touched += 1
            if deltas is not None:
                deltas.append((cohort, AggregateState(count=added)))
        return deltas, touched * k

    def _store(self, position: int, values: list) -> None:
        """Store one column, re-compacting to ``int64`` when it fits."""
        try:
            self.columns[position] = _np.array(values, dtype=_np.int64)
        except OverflowError:
            self.columns[position] = list(values)

    def merge_cohorts(self, groups: Sequence[Sequence[int]]) -> None:
        """Merge cohort groups (compaction) in exact Python arithmetic."""
        size = self._size
        for position, column in enumerate(self.columns):
            values = column if isinstance(column, list) else column[:size].tolist()
            merged = [sum(values[cohort] for cohort in group) for group in groups]
            self._store(position, merged)
        self._size = len(groups)

    def export_columns(self) -> list:
        """The columns as nested lists of plain ints (JSON-safe, exact).

        Byte-identical under canonical JSON to
        :meth:`~repro.executor.prefix_agg._CountColumns.export_columns` for
        the same logical state — the cross-backend checkpoint contract.
        """
        return [
            list(column) if isinstance(column, list) else column[: self._size].tolist()
            for column in self.columns
        ]

    def restore_columns(self, columns: Sequence) -> None:
        """Restore columns exported by either backend's ``export_columns``."""
        if len(columns) != len(self.columns):
            raise ValueError("snapshot column count does not match the pattern length")
        self._size = len(columns[0])
        for position, values in enumerate(columns):
            self._store(position, list(values))

    def clear(self) -> None:
        """Reset for pooled reuse, re-arming the compact representation."""
        for position, column in enumerate(self.columns):
            if isinstance(column, list):
                self.columns[position] = _np.zeros(0, dtype=_np.int64)
        self._size = 0


class NumpyStateColumns:
    """General aggregate columns in struct-of-arrays numpy storage.

    The numpy twin of :class:`~repro.executor.prefix_agg._StateColumns` for
    COUNT(E)/SUM/MIN/MAX/AVG: instead of one
    :class:`~repro.queries.aggregates.AggregateState` object per cell, each
    pattern position keeps five parallel arrays (count/target ``int64``,
    total ``float64``, min/max ``float64`` with ``NaN`` encoding ``None``)
    and the fused ``extend_many`` + ``merge`` batch commit runs as
    whole-column vector expressions — the exact per-cell expression tree of
    the scalar code, so IEEE determinism makes the results bit-identical.
    Count/target overflow promotes a position back to a boxed
    ``AggregateState`` list (exact big-int arithmetic), mirroring the count
    columns' promotion rule.
    """

    __slots__ = ("length", "_size", "_counts", "_targets", "_totals", "_mins", "_maxs", "_big")

    def __init__(self, length: int) -> None:
        self.length = length
        self._size = 0
        self._counts = [_np.zeros(0, dtype=_np.int64) for _ in range(length)]
        self._targets = [_np.zeros(0, dtype=_np.int64) for _ in range(length)]
        self._totals = [_np.zeros(0, dtype=_np.float64) for _ in range(length)]
        self._mins = [_np.zeros(0, dtype=_np.float64) for _ in range(length)]
        self._maxs = [_np.zeros(0, dtype=_np.float64) for _ in range(length)]
        #: Promoted positions: boxed big-int state lists, keyed by position.
        self._big: dict[int, list[AggregateState]] = {}

    def _grow(self, position: int) -> None:
        """Double one position's capacity across all five field arrays."""
        for family in (self._counts, self._targets, self._totals, self._mins, self._maxs):
            column = family[position]
            grown = _np.zeros(max(8, 2 * len(column)), dtype=column.dtype)
            grown[: len(column)] = column
            family[position] = grown

    def _state_from_arrays(self, position: int, cohort: int) -> AggregateState:
        """Box one array cell (``NaN`` min/max decode to ``None``)."""
        count = int(self._counts[position][cohort])
        if not count:
            return _ZERO
        minimum = float(self._mins[position][cohort])
        maximum = float(self._maxs[position][cohort])
        return AggregateState(
            count=count,
            target_count=int(self._targets[position][cohort]),
            total=float(self._totals[position][cohort]),
            minimum=None if minimum != minimum else minimum,
            maximum=None if maximum != maximum else maximum,
        )

    def _column_list(self, position: int) -> list[AggregateState]:
        """The position's column as boxed states (promoted list or a copy)."""
        states = self._big.get(position)
        if states is None:
            states = [self._state_from_arrays(position, cohort) for cohort in range(self._size)]
        return states

    def _promoted(self, position: int) -> list[AggregateState]:
        """Switch one position to the boxed big-int representation."""
        states = self._big.get(position)
        if states is None:
            states = [self._state_from_arrays(position, cohort) for cohort in range(self._size)]
            self._big[position] = states
        return states

    def append_cohort(self, initial: AggregateState) -> None:
        """Open a new cohort: ``initial`` at position 0, zero elsewhere."""
        size = self._size
        for position in range(self.length):
            state = initial if position == 0 else _ZERO
            big = self._big.get(position)
            if big is None and (state.count > I64_MAX or state.target_count > I64_MAX):
                big = self._promoted(position)
            if big is not None:
                big.append(state)
                continue
            if size >= len(self._counts[position]):
                self._grow(position)
            self._counts[position][size] = state.count
            self._targets[position][size] = state.target_count
            self._totals[position][size] = state.total
            self._mins[position][size] = _np.nan if state.minimum is None else state.minimum
            self._maxs[position][size] = _np.nan if state.maximum is None else state.maximum
        self._size = size + 1

    def state_at(self, position: int, cohort: int) -> AggregateState:
        """The cohort's aggregate at ``position``, boxed on demand."""
        big = self._big.get(position)
        if big is not None:
            return big[cohort]
        return self._state_from_arrays(position, cohort)

    def column_states(self, position: int) -> list[AggregateState]:
        """One position's whole column as boxed states (cohort order)."""
        return list(self._column_list(position))

    def extend_commit(
        self, position: int, summary, collect_deltas: bool
    ) -> "tuple[list | None, int]":
        """Vectorised fused ``extend_many`` + ``merge`` over a whole column.

        Evaluates the exact per-cell expressions of the scalar path as
        column vectors; the conservative ``int64`` bound (column maxima,
        valid because counts are non-negative) promotes the target position
        to boxed big-int states before any count or target could wrap.
        """
        k, targeted, total_value, batch_min, batch_max = summary
        size = self._size
        if position - 1 in self._big or position in self._big:
            return self._extend_commit_boxed(position, summary, collect_deltas)
        base_counts = self._counts[position - 1][:size]
        if size == 0 or not base_counts.any():
            return ([] if collect_deltas else None), 0
        base_targets = self._targets[position - 1][:size]
        max_base_count = int(base_counts.max())
        if (
            k * max_base_count + int(self._counts[position][:size].max()) > I64_MAX
            or k * int(base_targets.max())
            + targeted * max_base_count
            + int(self._targets[position][:size].max())
            > I64_MAX
        ):
            self._promoted(position)
            return self._extend_commit_boxed(position, summary, collect_deltas)
        mask = base_counts > 0
        base_totals = self._totals[position - 1][:size]
        base_mins = self._mins[position - 1][:size]
        base_maxs = self._maxs[position - 1][:size]
        add_counts = base_counts * k
        if targeted == 0:
            # extend_many degenerates to scale(k): min/max pass through.
            add_targets = base_targets * k
            add_totals = base_totals * k
            add_mins = base_mins
            add_maxs = base_maxs
        else:
            add_targets = base_targets * k + targeted * base_counts
            add_totals = base_totals * k + total_value * base_counts
            add_mins = (
                base_mins
                if batch_min is None
                else _nan_min(base_mins, _np.float64(batch_min))
            )
            add_maxs = (
                base_maxs
                if batch_max is None
                else _nan_max(base_maxs, _np.float64(batch_max))
            )
        # Merge into the column.  Where base.count == 0 every integer/float
        # addition is exactly zero (zero states have all-zero fields and
        # additions are never -0.0), so counts/targets/totals add unmasked;
        # min/max must stay masked — a NaN base min would otherwise let the
        # batch minimum leak into untouched cells.
        self._counts[position][:size] += add_counts
        self._targets[position][:size] += add_targets
        self._totals[position][:size] += add_totals
        mins = self._mins[position][:size]
        maxs = self._maxs[position][:size]
        mins[...] = _np.where(mask, _nan_min(mins, add_mins), mins)
        maxs[...] = _np.where(mask, _nan_max(maxs, add_maxs), maxs)
        touched = int(_np.count_nonzero(mask))
        if not collect_deltas:
            return None, touched * k
        deltas = []
        for cohort in _np.flatnonzero(mask).tolist():
            minimum = float(add_mins[cohort])
            maximum = float(add_maxs[cohort])
            deltas.append(
                (
                    cohort,
                    AggregateState(
                        count=int(add_counts[cohort]),
                        target_count=int(add_targets[cohort]),
                        total=float(add_totals[cohort]),
                        minimum=None if minimum != minimum else minimum,
                        maximum=None if maximum != maximum else maximum,
                    ),
                )
            )
        return deltas, touched * k

    def _extend_commit_boxed(
        self, position: int, summary, collect_deltas: bool
    ) -> "tuple[list | None, int]":
        """Boxed big-int commit used once either position has been promoted."""
        base = self._column_list(position - 1)
        column = self._promoted(position)
        deltas: "list | None" = [] if collect_deltas else None
        touched = 0
        for cohort, base_state in enumerate(base):
            if base_state.count == 0:
                continue
            addition = base_state.extend_many(*summary)
            column[cohort] = column[cohort].merge(addition)
            touched += 1
            if deltas is not None:
                deltas.append((cohort, addition))
        return deltas, touched * summary[0]

    def _set_column(self, position: int, states: list[AggregateState]) -> None:
        """Store one boxed column, re-packing into arrays when counts fit."""
        if any(
            state.count > I64_MAX or state.target_count > I64_MAX for state in states
        ):
            self._big[position] = list(states)
            return
        self._big.pop(position, None)
        n = len(states)
        counts = _np.empty(n, dtype=_np.int64)
        targets = _np.empty(n, dtype=_np.int64)
        totals = _np.empty(n, dtype=_np.float64)
        mins = _np.empty(n, dtype=_np.float64)
        maxs = _np.empty(n, dtype=_np.float64)
        for index, state in enumerate(states):
            counts[index] = state.count
            targets[index] = state.target_count
            totals[index] = state.total
            mins[index] = _np.nan if state.minimum is None else state.minimum
            maxs[index] = _np.nan if state.maximum is None else state.maximum
        self._counts[position] = counts
        self._targets[position] = targets
        self._totals[position] = totals
        self._mins[position] = mins
        self._maxs[position] = maxs

    def merge_cohorts(self, groups: Sequence[Sequence[int]]) -> None:
        """Merge cohort groups (compaction) via exact boxed state merges."""
        for position in range(self.length):
            states = self._column_list(position)
            merged = []
            for group in groups:
                value = states[group[0]]
                for cohort in group[1:]:
                    value = value.merge(states[cohort])
                merged.append(value)
            self._set_column(position, merged)
        self._size = len(groups)

    def export_columns(self) -> list:
        """The columns as nested lists of state tuples (JSON-safe).

        Identical under canonical JSON to the Python backend's export for
        the same logical state — the cross-backend checkpoint contract.
        """
        return [
            [state.as_tuple() for state in self._column_list(position)]
            for position in range(self.length)
        ]

    def restore_columns(self, columns: Sequence) -> None:
        """Restore columns exported by either backend's ``export_columns``."""
        if len(columns) != self.length:
            raise ValueError("snapshot column count does not match the pattern length")
        self._size = len(columns[0])
        for position, values in enumerate(columns):
            self._set_column(
                position, [AggregateState.from_tuple(value) for value in values]
            )

    def clear(self) -> None:
        """Reset for pooled reuse (array capacity is kept)."""
        self._big.clear()
        self._size = 0


# -- pane matrices -----------------------------------------------------------------


class NumpyPaneCountMatrix:
    """COUNT(*) pane transition matrix in ``int64`` numpy rows.

    The numpy twin of :class:`~repro.executor.panes.PaneCountMatrix`:
    triangular ``cells[j][i]`` (``i <= j``) rows as ``int64`` arrays, the
    descending-position batch commit as one vector multiply-add per row, and
    the window fold ``v ← v ⊙ T`` as an integer dot product.  Rows promote
    to big-int Python lists past the conservative :data:`I64_MAX` bound; the
    fold vectors are unbounded Python ints, so each dot product first checks
    ``max(v) · max(row) · len ≤ I64_MAX`` and falls back to exact scalar
    arithmetic otherwise.  Pane matrices are tiny (pattern length squared),
    so this class mostly exists to keep the numpy backend uniform — see
    ``docs/engine.md`` on why numpy can *lose* here.
    """

    __slots__ = ("length", "cells", "updates")

    def __init__(self, pattern: Pattern, spec: AggregateSpec) -> None:
        self.length = len(pattern)
        #: cells[j] has j+1 entries: cells[j][i] = T[i][j+1] for i <= j.
        self.cells: list = [_np.zeros(j + 1, dtype=_np.int64) for j in range(self.length)]
        self.updates = 0

    def apply_batch(self, by_position: dict, spec: AggregateSpec) -> None:
        """Commit one same-timestamp batch, descending position order.

        Position ``j`` reads the pre-batch values of row ``j - 1`` (events
        of one batch never chain with each other); each row update is one
        vector multiply-add, guarded by the ``int64`` bound.
        """
        cells = self.cells
        for position in sorted(by_position, reverse=True):
            k = len(by_position[position])
            column = cells[position]
            base = cells[position - 1] if position else None
            if not isinstance(column, list) and (base is None or not isinstance(base, list)):
                diagonal = int(column[position])
                if base is not None and base.any():
                    bound = k * int(base.max()) + int(column[:position].max())
                else:
                    bound = 0
                if max(bound, diagonal + k) <= I64_MAX:
                    if base is not None:
                        touched = int(_np.count_nonzero(base))
                        if touched:
                            column[:position] += base * k
                            self.updates += k * touched
                    column[position] = diagonal + k
                    self.updates += k
                    continue
                column = cells[position] = column.tolist()
            # Exact big-int fallback (overflow, or an already-promoted row).
            if not isinstance(column, list):
                column = cells[position] = column.tolist()
            if base is not None:
                base_values = base if isinstance(base, list) else base.tolist()
                for i in range(position):
                    if base_values[i]:
                        column[i] += k * base_values[i]
                        self.updates += k
            column[position] += k
            self.updates += k

    def new_vector(self) -> list[int]:
        """The unit prefix vector: one empty sequence, nothing matched yet."""
        vector = [0] * (self.length + 1)
        vector[0] = 1
        return vector

    def fold(self, vector: list[int]) -> None:
        """In-place ``v <- v ⊙ T``: absorb this pane into a window's vector.

        Each target position is one integer dot product when the
        ``max(v) · max(row) · len`` bound certifies ``int64`` safety;
        unbounded vector entries otherwise take the exact scalar path.
        """
        cells = self.cells
        for j in range(self.length, 0, -1):
            column = cells[j - 1]
            head = vector[:j]
            acc = 0
            if isinstance(column, list):
                for i in range(j):
                    if head[i] and column[i]:
                        acc += head[i] * column[i]
            elif column.any():
                head_max = max(head)
                if head_max and head_max * int(column.max()) * j <= I64_MAX:
                    acc = int(_np.dot(_np.asarray(head, dtype=_np.int64), column))
                elif head_max:
                    for i in range(j):
                        if head[i] and column[i]:
                            acc += head[i] * int(column[i])
            if acc:
                vector[j] += acc

    def final_state(self, vector: list[int]) -> AggregateState:
        """``vector``'s full-pattern count, boxed as an ``AggregateState``."""
        count = vector[self.length]
        return AggregateState(count=count) if count else _ZERO

    # -- checkpointing -----------------------------------------------------------
    def export_cells(self) -> dict:
        """Snapshot the triangular cells as nested int lists (JSON-safe).

        Identical to :meth:`~repro.executor.panes.PaneCountMatrix.export_cells`
        output for the same logical state — the cross-backend contract.
        """
        return {
            "cells": [
                list(row) if isinstance(row, list) else row.tolist() for row in self.cells
            ],
            "updates": self.updates,
        }

    def restore_cells(self, state: dict) -> None:
        """Restore either backend's ``export_cells`` output.

        Rows whose counts fit ``int64`` go back into numpy storage;
        overflowing rows restore as promoted big-int lists, exactly
        mirroring the live promotion rule.
        """
        rows = state["cells"]
        if len(rows) != self.length:
            raise ValueError("snapshot row count does not match the pattern length")
        restored: list = []
        for row in rows:
            try:
                restored.append(_np.array(row, dtype=_np.int64))
            except OverflowError:
                restored.append(list(row))
        self.cells[:] = restored
        self.updates = state["updates"]
