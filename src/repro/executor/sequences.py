"""Explicit event sequence construction (the *two-step* substrate).

The state-of-the-art baselines the paper compares against construct all
matching event sequences before aggregating them:

* the non-shared two-step approach (Flink-style) enumerates, per query, every
  match of the full pattern;
* the shared two-step approach (SPASS-style) constructs the sequences of
  shared sub-patterns once and joins them with per-query prefix/suffix
  sequences.

Both are built on the enumeration and temporal-join primitives of this
module, which are also used as the ground-truth oracle by the test suite.
The number of sequences is polynomial in the number of events per window
(Section 1), which is precisely why these baselines collapse in Figure 13 —
expect these functions to be slow on purpose for large inputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..events.event import Event
from ..queries.pattern import Pattern
from ..queries.predicates import PredicateSet
from ..queries.query import Query

__all__ = [
    "enumerate_pattern_matches",
    "join_sequences",
    "enumerate_query_matches",
    "count_pattern_matches",
]

#: A constructed sequence is a tuple of events in match order.
EventSequence = tuple[Event, ...]


def enumerate_pattern_matches(
    pattern: Pattern, events: Sequence[Event]
) -> list[EventSequence]:
    """All matches of ``pattern`` over ``events`` (strictly increasing timestamps).

    ``events`` must be sorted by timestamp (the engine guarantees this).  The
    construction is the classic prefix-extension join: matches of the prefix
    of length ``j`` are extended by every later event of type ``Ej+1``.
    """
    partial: list[list[EventSequence]] = [[] for _ in range(len(pattern))]
    for event in events:
        for position in reversed(range(len(pattern))):
            if event.event_type != pattern.event_types[position]:
                continue
            if position == 0:
                partial[0].append((event,))
                continue
            for prefix_match in partial[position - 1]:
                if prefix_match[-1].timestamp < event.timestamp:
                    partial[position].append(prefix_match + (event,))
    return partial[-1]


def join_sequences(
    left: Iterable[EventSequence], right: Iterable[EventSequence]
) -> list[EventSequence]:
    """Temporal join: concatenate pairs where ``left`` ends before ``right`` starts.

    This is the sequence-level analogue of the Shared method's count
    combination; SPASS-style execution uses it to assemble full query matches
    from shared sub-pattern matches.
    """
    left = list(left)
    right = list(right)
    joined: list[EventSequence] = []
    for left_sequence in left:
        left_end = left_sequence[-1].timestamp
        for right_sequence in right:
            if left_end < right_sequence[0].timestamp:
                joined.append(left_sequence + right_sequence)
    return joined


def enumerate_query_matches(
    query: Query, events: Sequence[Event], check_predicates: bool = True
) -> list[EventSequence]:
    """All matches of ``query``'s pattern over ``events``.

    When ``check_predicates`` is true (the default), sequences violating the
    query's filter or equivalence predicates are discarded.  Grouping is not
    applied here — callers partition events by group key first.
    """
    matches = enumerate_pattern_matches(query.pattern, events)
    if not check_predicates or query.predicates.is_empty:
        return matches
    return [m for m in matches if query.predicates.accepts_sequence(m)]


def count_pattern_matches(pattern: Pattern, events: Sequence[Event]) -> int:
    """Number of matches of ``pattern`` without materialising them.

    A small dynamic-programming counter used by tests as an intermediate
    oracle (it must agree both with full enumeration and with the online
    executors for COUNT(*) queries).
    """
    counts = [0] * len(pattern)
    # Process in timestamp batches so same-timestamp events cannot chain.
    index = 0
    events = list(events)
    while index < len(events):
        batch_end = index
        while (
            batch_end < len(events)
            and events[batch_end].timestamp == events[index].timestamp
        ):
            batch_end += 1
        snapshot = list(counts)
        for event in events[index:batch_end]:
            for position in range(len(pattern)):
                if event.event_type != pattern.event_types[position]:
                    continue
                if position == 0:
                    counts[0] += 1
                else:
                    counts[position] += snapshot[position - 1]
        index = batch_end
    return counts[-1]
