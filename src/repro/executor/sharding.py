"""Group-sharded parallel execution: partition groups across worker processes.

Groups are independent end-to-end in this engine: every predicate, pattern
match, aggregate, and window result of a group is computed exclusively from
that group's events (equivalence predicates and GROUP BY both partition the
stream, and the engine keeps one :class:`~repro.executor.engine.WindowGroupScope`
per window instance × group).  That makes the group key a *perfect* sharding
key — a workload over ``G`` groups can run as ``K`` independent engine
instances over disjoint group subsets and the union of their results is
bit-identical to the single-engine run.

This module adds that layer on top of the (unchanged) single-process
:class:`~repro.executor.engine.StreamingEngine`:

* :func:`stable_group_hash` — a process- and run-independent hash of interned
  group-key tuples (Python's builtin ``hash`` is salted per process, which
  would make hash sharding non-deterministic across workers and runs).
* :class:`ShardPlanner` / :class:`ShardPlan` — split the distinct group keys
  of a stream into ``K`` shards, either by stable hash (``strategy="hash"``,
  stateless, no counts needed) or greedily balanced by per-group event
  counts (``strategy="greedy"``, the default: longest-processing-time-first
  assignment to the least-loaded shard, which bounds the heaviest shard at
  4/3 of optimal and beats hashing whenever group sizes are skewed).
* :class:`ShardedEngine` — the front-end: it routes the stream's columnar
  batches per shard (one column pass over pre-interned group keys, no
  predicate work in the parent), fans the per-shard event slices out to
  worker processes via :mod:`multiprocessing`, and merges the per-shard
  results and metrics deterministically (ascending shard index; the result
  key spaces are disjoint by construction).

Serialization boundaries are explicit: a worker receives the *workload spec*
(queries, sharing plan, engine toggles — all plain picklable values) plus its
event slice, and rebuilds the compiled workload — including the non-picklable
filter kernels and dispatch closures — inside the worker
(:func:`_run_shard`).  That keeps the layer spawn-safe: nothing relies on
fork-shared module state, so ``start_method="spawn"`` works wherever fork is
unavailable, and the default start method of the platform is used otherwise.

``shards=1`` (or a workload/stream that cannot shard: no partition
attributes, or fewer than two observed groups) degrades to the in-process
engine with zero overhead — the exact same code path, report, and metrics as
an unsharded run.  See ``docs/sharding.md`` for the design discussion,
including merge semantics and the regimes where sharding loses.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
import zlib
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.plan import SharingPlan
from ..events.columnar import ColumnarBatch, columnar_batches
from ..events.event import Event
from ..events.stream import EventStream
from ..queries.workload import Workload
from .engine import ExecutionReport, StreamingEngine
from .metrics import RunMetrics
from .results import QueryResult, ResultSet

__all__ = ["ShardPlan", "ShardPlanner", "ShardedEngine", "stable_group_hash"]

#: Shard-assignment strategies understood by :class:`ShardPlanner`.
_STRATEGIES = ("greedy", "hash")


def stable_group_hash(key: tuple) -> int:
    """Deterministic, process-independent hash of a group-key tuple.

    Hash sharding must agree across runs, processes, and
    ``PYTHONHASHSEED`` values (Python's builtin ``hash`` of strings is
    salted per process), so the key's ``repr`` — deterministic for the
    attribute values group keys are made of — is hashed with CRC-32.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


@dataclass(frozen=True)
class ShardPlan:
    """An assignment of every observed group key to one of ``shards`` shards.

    Produced by :class:`ShardPlanner`; consumed by
    :class:`ShardedEngine` for batch slicing and surfaced in the merged
    run metrics (``groups_per_shard``, ``shard_skew``).
    """

    #: Number of shards planned for (some may end up with no groups).
    shards: int
    #: Group key -> shard index in ``range(shards)``.
    assignment: Mapping[tuple, int]
    #: Per-group event counts the plan was computed from (hash plans record
    #: the observed counts too, so skew is comparable across strategies).
    counts: Mapping[tuple, int]
    #: The strategy that produced the assignment (``"greedy"`` or ``"hash"``).
    strategy: str

    @property
    def groups_per_shard(self) -> tuple[int, ...]:
        """Number of distinct groups assigned to each shard, by shard index."""
        groups = [0] * self.shards
        for shard in self.assignment.values():
            groups[shard] += 1
        return tuple(groups)

    @property
    def events_per_shard(self) -> tuple[int, ...]:
        """Planned event load of each shard (sum of its groups' counts)."""
        loads = [0] * self.shards
        for key, shard in self.assignment.items():
            loads[shard] += self.counts.get(key, 0)
        return tuple(loads)

    @property
    def skew(self) -> float:
        """Heaviest shard load over the ideal (perfectly balanced) load.

        ``1.0`` is a perfect split; ``shards`` is the worst case (all events
        on one shard, e.g. a single group).  The sharded wall-clock win is
        bounded by ``shards / skew``, which is why the greedy planner
        minimises this number.
        """
        total = sum(self.events_per_shard)
        if total <= 0:
            return 1.0
        ideal = total / self.shards
        return max(self.events_per_shard) / ideal

    def shard_of(self, key: tuple) -> int:
        """The shard index the plan assigns to ``key``."""
        return self.assignment[key]


class ShardPlanner:
    """Split distinct group keys into ``shards`` balanced shards.

    Parameters
    ----------
    shards:
        Number of shards to plan for (``>= 1``).
    strategy:
        ``"greedy"`` (default) — longest-processing-time-first: groups are
        sorted by descending event count and each is assigned to the
        currently least-loaded shard.  Deterministic (ties broken by the
        key's ``repr``, then by shard index) and 4/3-optimal on the maximum
        shard load, so it stays balanced under heavily skewed group sizes.
        ``"hash"`` — :func:`stable_group_hash` modulo ``shards``: stateless
        and independent of the observed counts, but arbitrarily unbalanced
        when a few groups dominate the stream.
    """

    def __init__(self, shards: int, strategy: str = "greedy") -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {strategy!r}; choose one of {_STRATEGIES}"
            )
        self.shards = shards
        self.strategy = strategy

    def plan(self, counts: Mapping[tuple, int]) -> ShardPlan:
        """Assign every key of ``counts`` to a shard and return the plan.

        ``counts`` maps each observed group key to its (relevant) event
        count — :meth:`ShardedEngine.group_counts` derives it from the
        stream's columnar batches in one column pass.
        """
        counts = dict(counts)
        if self.strategy == "hash":
            assignment = {
                key: stable_group_hash(key) % self.shards for key in counts
            }
            return ShardPlan(self.shards, assignment, counts, self.strategy)
        # Greedy LPT: heaviest group first onto the least-loaded shard.  The
        # heap orders by (load, shard index) so ties resolve deterministically.
        heap = [(0, shard) for shard in range(self.shards)]
        heapq.heapify(heap)
        assignment: dict[tuple, int] = {}
        for key in sorted(counts, key=lambda k: (-counts[k], repr(k))):
            load, shard = heapq.heappop(heap)
            assignment[key] = shard
            heapq.heappush(heap, (load + counts[key], shard))
        return ShardPlan(self.shards, assignment, counts, self.strategy)


@dataclass
class _ShardTask:
    """Everything one worker needs, in picklable form.

    The compiled workload (filter kernels, dispatch closures) is *not*
    shipped — workers rebuild it from the plain workload spec, which keeps
    the payload spawn-safe and small.
    """

    index: int
    workload: Workload
    plan: SharingPlan
    name: str
    memory_sample_interval: int
    compaction: bool
    panes: bool
    columnar: bool
    backend: str
    events: list[Event]


def _run_shard(task: _ShardTask) -> tuple[int, list[QueryResult], RunMetrics]:
    """Worker entry point: run the unchanged engine over one shard's slice.

    Module-level (not a closure or lambda) so ``spawn`` workers can import
    it; the engine — and with it the filter kernels and dispatch tables — is
    rebuilt from the picklable spec inside the worker process.
    """
    engine = StreamingEngine(
        task.workload,
        plan=task.plan,
        name=task.name,
        memory_sample_interval=task.memory_sample_interval,
        compaction=task.compaction,
        panes=task.panes,
        columnar=task.columnar,
        backend=task.backend,
    )
    report = engine.run(EventStream(task.events, name=f"shard-{task.index}"))
    return task.index, list(report.results), report.metrics


class ShardedEngine:
    """Run a workload as ``K`` independent engine processes, one group subset each.

    The constructor mirrors :class:`~repro.executor.engine.StreamingEngine`
    (same ``plan`` / ``compaction`` / ``panes`` / ``columnar`` toggles — each
    worker runs the unchanged engine, so sharding composes with every
    engine mode) plus the sharding controls:

    Parameters
    ----------
    shards:
        Number of worker shards.  ``1`` degrades to the in-process engine
        with zero overhead (identical report and metrics).
    strategy:
        Shard-assignment strategy, see :class:`ShardPlanner`.
    start_method:
        :mod:`multiprocessing` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` uses the platform default.  The layer is
        spawn-safe — workers rebuild all compiled state from picklable specs.
    parallel:
        ``False`` runs the shard tasks sequentially in-process (same
        slicing, same merge path, no worker processes) — the deterministic
        reference mode used by tests; the results are identical by
        construction.

    Unlike the streaming engine, a sharded run *materialises* the per-shard
    event slices before fan-out, so memory is bounded by the stream length,
    not the open scopes — sharding is a replay/batch facility.  Mid-run plan
    migration (``on_batch`` hooks) is likewise not available across
    processes; see ``docs/sharding.md`` for when sharding loses.
    """

    def __init__(
        self,
        workload: Workload,
        plan: SharingPlan | None = None,
        shards: int = 1,
        strategy: str = "greedy",
        name: str = "sharon",
        memory_sample_interval: int = 0,
        compaction: bool = True,
        panes: bool = False,
        columnar: bool = True,
        start_method: str | None = None,
        parallel: bool = True,
        backend: str = "python",
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if strategy not in _STRATEGIES:
            # Fail at construction, not at run() — and not only on streams
            # that happen to have enough groups to reach the planner.
            raise ValueError(
                f"unknown shard strategy {strategy!r}; choose one of {_STRATEGIES}"
            )
        #: In-process engine: the ``shards=1`` path, the unshardable-workload
        #: fallback, and the provider of the compiled layout used for slicing.
        self.engine = StreamingEngine(
            workload,
            plan=plan,
            name=name,
            memory_sample_interval=memory_sample_interval,
            compaction=compaction,
            panes=panes,
            columnar=columnar,
            backend=backend,
        )
        self.workload = workload
        self.shards = shards
        self.strategy = strategy
        self.start_method = start_method
        self.parallel = parallel

    @property
    def compiled(self):
        """The compiled workload of the underlying in-process engine."""
        return self.engine.compiled

    @property
    def uses_panes(self) -> bool:
        """Whether the per-shard engines will take the pane-partitioned path."""
        return self.engine.uses_panes

    @staticmethod
    def group_counts(batches: Iterable[ColumnarBatch]) -> Counter:
        """Per-group relevant-event counts across ``batches`` (planner input)."""
        counts: Counter = Counter()
        for batch in batches:
            batch.count_groups(counts)
        return counts

    def run(self, stream: "EventStream | Iterable[Event]") -> ExecutionReport:
        """Shard the stream by group, fan out, and merge the shard reports.

        The parent makes two column passes over the stream's columnar
        batches (count groups for the planner, then slice events per shard —
        cached batches on in-memory :class:`EventStream`\\ s make both
        cheap), runs one engine per non-empty shard, and merges:

        * **Results** — concatenated in ascending shard index; group subsets
          are disjoint, so the merged :class:`ResultSet` has exactly the
          unsharded keys and the merge order is deterministic.
        * **Metrics** — work counters (relevant events, windows, results,
          state updates, cohorts, panes, columnar batches, late/dropped
          events) are summed over shards; note ``columnar_batches`` counts
          each *shard's* micro-batches, so its sum exceeds the unsharded
          count (a timestamp whose events span ``k`` shards yields ``k``
          per-slice batches); ``total_events`` is the parent-observed
          stream size; ``elapsed_seconds`` is the parent's wall-clock for
          the whole run (slicing + fan-out + merge), so throughput reflects
          the real cost; ``peak_memory_bytes`` sums the per-shard peaks
          (the workers are co-resident).  The new ``shards`` /
          ``groups_per_shard`` / ``shard_skew`` fields carry the shard
          plan's shape.  Only additive *numerator/denominator* fields are
          ever merged here — ratio-valued observables (``events_per_pane``,
          ``throughput_events_per_second``, ``avg_latency_ms``) are
          :class:`~repro.executor.metrics.RunMetrics` properties derived
          from the merged fields, so they come out as ratios **of the
          sums**, never as sums of per-shard ratios (the merge-semantics
          tests pin this).

        Workloads that cannot shard — no partition attributes, or fewer than
        two observed groups — fall back to the in-process engine and return
        its (unsharded) report unchanged.
        """
        if self.shards <= 1:
            return self.engine.run(stream)
        compiled = self.engine.compiled
        if not compiled.partition_attributes:
            # Ungrouped workloads are decidedly unshardable — skip the
            # column-extraction pass entirely (the stream is untouched).
            return self.engine.run(stream)
        started = time.perf_counter()
        batches = list(columnar_batches(stream, compiled.layout))
        total_events = sum(batch.size for batch in batches)
        counts = self.group_counts(batches)
        if len(counts) < 2:
            # Nothing to split: one (or no) group, or an ungrouped workload.
            # In-memory streams pass through untouched (their columnar cache
            # already holds the batches built above); one-shot iterables have
            # been consumed and are replayed from the materialised batches.
            if isinstance(stream, EventStream):
                return self.engine.run(stream)
            return self.engine.run(_batch_events(batches))
        plan = ShardPlanner(self.shards, self.strategy).plan(counts)
        slices: list[list[Event]] = [[] for _ in range(plan.shards)]
        for batch in batches:
            batch.slice_by_shard(plan.assignment, slices)
        tasks = [
            _ShardTask(
                index=index,
                workload=self.workload,
                plan=compiled.plan,
                name=self.engine.name,
                memory_sample_interval=self.engine.memory_sample_interval,
                compaction=self.engine.compaction,
                panes=self.engine.panes,
                columnar=self.engine.columnar,
                backend=self.engine.backend,
                events=events,
            )
            for index, events in enumerate(slices)
            if events
        ]
        if self.parallel and len(tasks) > 1:
            context = multiprocessing.get_context(self.start_method)
            with context.Pool(processes=len(tasks)) as pool:
                outputs = pool.map(_run_shard, tasks)
        else:
            outputs = [_run_shard(task) for task in tasks]
        outputs.sort(key=lambda output: output[0])

        results = ResultSet()
        shard_metrics: list[RunMetrics] = []
        for _index, shard_results, metrics in outputs:
            for result in shard_results:
                results.add(result)
            shard_metrics.append(metrics)

        def summed(field: str) -> int:
            # Only additive counters may pass through here; ratios must be
            # recomputed from the summed fields (RunMetrics properties do).
            return sum(getattr(metrics, field) for metrics in shard_metrics)

        merged = RunMetrics(
            executor_name=self.engine.name,
            total_events=total_events,
            relevant_events=summed("relevant_events"),
            elapsed_seconds=time.perf_counter() - started,
            windows_finalized=summed("windows_finalized"),
            results_emitted=summed("results_emitted"),
            peak_memory_bytes=summed("peak_memory_bytes"),
            state_updates=summed("state_updates"),
            cohorts_created=summed("cohorts_created"),
            cohorts_merged=summed("cohorts_merged"),
            panes_created=summed("panes_created"),
            pane_merges=summed("pane_merges"),
            columnar_batches=summed("columnar_batches"),
            events_late=summed("events_late"),
            events_dropped=summed("events_dropped"),
            shards=plan.shards,
            groups_per_shard=plan.groups_per_shard,
            shard_skew=round(plan.skew, 4),
        )
        return ExecutionReport(results=results, metrics=merged, plan=compiled.plan)


def _batch_events(batches: Sequence[ColumnarBatch]):
    """Replay the events of already-materialised batches, in stream order.

    The fallback path has already consumed the input iterable into columnar
    batches, so the in-process engine is fed from them instead of the
    (possibly one-shot) original stream.
    """
    for batch in batches:
        yield from batch.events
