"""A-Seq: the non-shared online baseline (Section 3.2, [24]).

A-Seq aggregates event sequences online — no sequence is ever constructed —
but evaluates every query independently of the others, repeating the work for
patterns that several queries have in common.  In this library it is the
:class:`~repro.executor.engine.StreamingEngine` run with an *empty* sharing
plan: each query keeps one private prefix-aggregation state spanning its
whole pattern, which is exactly the per-query count maintenance of
Figure 6.
"""

from __future__ import annotations

from typing import Iterable

from ..core.plan import SharingPlan
from ..events.event import Event
from ..events.stream import EventStream
from ..queries.workload import Workload
from .churn import ChurnOp, ChurnSchedule
from .engine import ExecutionReport, StreamingEngine
from .sharding import ShardedEngine

__all__ = ["ASeqExecutor"]


class ASeqExecutor:
    """Online, non-shared event sequence aggregation.

    Parameters
    ----------
    workload:
        The queries to evaluate.  Must be uniform (same window, predicates,
        and grouping) like all executors in this library; non-uniform
        workloads should be segmented per context first (Section 7.2).
    memory_sample_interval:
        How often (in finalized windows) to sample peak memory; ``0``
        disables sampling for maximum throughput.
    panes:
        Run the engine in pane-partitioned mode (each event processed once
        per pane instead of once per covering window instance); tumbling
        windows fall back to the per-instance loop automatically.
    columnar:
        Route ingestion through columnar micro-batches (on by default);
        ``False`` selects the scalar per-event reference path.
    shards:
        Group-sharded parallel execution across worker processes
        (:class:`~repro.executor.sharding.ShardedEngine`); ``1`` (default)
        keeps the in-process engine, and unshardable workloads fall back.
    shard_strategy:
        ``"greedy"`` (count-balanced, default) or ``"hash"``; only used when
        ``shards > 1``.
    start_method:
        :mod:`multiprocessing` start method for shard workers (``None`` =
        platform default; spawn-safe).
    max_lateness:
        Bounded-lateness disorder tolerance (``docs/disorder.md``); ``None``
        (default) keeps the strict in-order contract.  Incompatible with
        ``shards > 1``.
    late_policy:
        ``"raise"`` (default), ``"drop"``, or a callable side channel for
        events beyond the lateness bound.
    backend:
        Numeric kernel backend (:mod:`repro.executor.kernels`):
        ``"python"`` (default), ``"numpy"``, or ``"auto"``; results are
        bit-identical across backends.
    churn:
        Optional attach/detach schedule applied at batch boundaries while
        :meth:`run` consumes the stream (``docs/churn.md``); since A-Seq
        never shares, attached queries simply run unshared from their attach
        timestamp on.  Incompatible with ``shards > 1``.
    """

    name = "A-Seq"

    def __init__(
        self,
        workload: Workload,
        memory_sample_interval: int = 0,
        panes: bool = False,
        columnar: bool = True,
        shards: int = 1,
        shard_strategy: str = "greedy",
        start_method: str | None = None,
        max_lateness: int | None = None,
        late_policy="raise",
        backend: str = "python",
        churn: "ChurnSchedule | Iterable[ChurnOp] | None" = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards > 1 and max_lateness is not None:
            raise ValueError(
                "max_lateness is not supported with shards > 1: the shard "
                "splitter consumes the stream in timestamp order — reorder "
                "upstream of the sharded engine instead"
            )
        if churn is None:
            churn = ChurnSchedule()
        elif not isinstance(churn, ChurnSchedule):
            churn = ChurnSchedule(churn)
        if churn and shards > 1:
            raise ValueError(
                "query churn is not supported with shards > 1: the shard "
                "workers run fixed workload copies — churn the in-process "
                "engine, or restart the sharded run with the new workload"
            )
        self.workload = workload
        self.churn = churn
        if shards > 1:
            self._engine: "StreamingEngine | ShardedEngine" = ShardedEngine(
                workload,
                plan=SharingPlan(),
                shards=shards,
                strategy=shard_strategy,
                name=self.name,
                memory_sample_interval=memory_sample_interval,
                panes=panes,
                columnar=columnar,
                start_method=start_method,
                backend=backend,
            )
        else:
            self._engine = StreamingEngine(
                workload,
                plan=SharingPlan(),
                name=self.name,
                memory_sample_interval=memory_sample_interval,
                panes=panes,
                columnar=columnar,
                max_lateness=max_lateness,
                late_policy=late_policy,
                backend=backend,
            )

    def run(self, stream: "EventStream | Iterable[Event]") -> ExecutionReport:
        """Evaluate the workload over ``stream`` and return results + metrics."""
        if self.churn:
            return self._engine.run(stream, churn=self.churn)
        return self._engine.run(stream)
