"""Sharon graph reduction (Section 5, Algorithm 2).

Two classes of candidates are removed from the graph before the plan search:

* **Conflict-free candidates** (Definition 14) have no conflicts; they belong
  to *every* optimal plan, so they are committed immediately and removed.
* **Conflict-ridden candidates** (Definition 13) cannot belong to any optimal
  plan because even the best plan containing them (``Scoremax``,
  Definition 12) scores below the weight guaranteed by GWMIN (Equation 10).

Removing a vertex changes degrees and ``Scoremax`` values of the remaining
vertices, so the procedure iterates until a fixpoint, as in Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .candidates import SharingCandidate
from .graph import SharonGraph
from .gwmin import gwmin_independent_set

__all__ = ["ReductionResult", "reduce_sharon_graph"]


@dataclass
class ReductionResult:
    """Outcome of the graph reduction step."""

    reduced_graph: SharonGraph
    conflict_free: list[SharingCandidate] = field(default_factory=list)
    conflict_ridden: list[SharingCandidate] = field(default_factory=list)
    guaranteed_weight: float = 0.0

    @property
    def pruned_count(self) -> int:
        return len(self.conflict_free) + len(self.conflict_ridden)


def reduce_sharon_graph(
    graph: SharonGraph,
    guaranteed_weight: float | None = None,
) -> ReductionResult:
    """Algorithm 2: prune conflict-free and conflict-ridden candidates.

    Parameters
    ----------
    graph:
        The (possibly expanded) Sharon graph.  The input is not modified.
    guaranteed_weight:
        The GWMIN guarantee used as the pruning threshold.  Computed from the
        input graph (Equation 10) when omitted.

    Returns
    -------
    ReductionResult
        The reduced graph, the committed conflict-free candidates, the pruned
        conflict-ridden candidates, and the threshold used.

    Notes
    -----
    Conflict-free candidates are part of every optimal plan (they exclude no
    other candidate and have positive benefit); conflict-ridden candidates are
    part of none, because the GWMIN guarantee already exceeds the best plan
    that could contain them (Lemma 2).  Hence the reduction preserves the
    optimal plan of the original graph: it equals the optimal plan of the
    reduced graph united with the conflict-free set.
    """
    working = graph.copy()
    if guaranteed_weight is None:
        guaranteed_weight = working.gwmin_guaranteed_weight()

    conflict_free: list[SharingCandidate] = []
    conflict_ridden: list[SharingCandidate] = []

    changed = True
    while changed:
        changed = False
        for vertex in working.vertices:
            if working.degree(vertex) == 0:
                conflict_free.append(vertex)
                working.remove_vertex(vertex)
                changed = True
            elif working.max_score_with(vertex) + sum(c.benefit for c in conflict_free) < guaranteed_weight:
                conflict_ridden.append(vertex)
                working.remove_vertex(vertex)
                changed = True

    return ReductionResult(
        reduced_graph=working,
        conflict_free=conflict_free,
        conflict_ridden=conflict_ridden,
        guaranteed_weight=guaranteed_weight,
    )


def reduction_search_space_savings(
    original_vertex_count: int, reduced_vertex_count: int
) -> float:
    """Fraction of the plan search space removed by the reduction.

    The search space over ``n`` candidates has ``2^n`` plans (Equation 13);
    pruning down to ``m`` candidates removes ``2^n - 2^m`` of them.  Following
    the paper's accounting in Example 9 (96 of 127 plans, i.e. 75.59 % for the
    running example's 7 -> 5 reduction), the empty plan is excluded from the
    denominator.
    """
    if original_vertex_count < reduced_vertex_count:
        raise ValueError("the reduced graph cannot have more vertices than the original")
    total = 2 ** original_vertex_count - 1
    if total <= 0:
        return 0.0
    removed = 2 ** original_vertex_count - 2 ** reduced_vertex_count
    return removed / total
