"""The Sharon graph (Definition 10, Algorithm 1).

Vertices are beneficial sharing candidates weighted by their benefit values;
undirected edges connect candidates that are in sharing conflict.  The graph
is stored as an adjacency list, exactly as the paper prescribes, so that the
neighbours of a candidate — its conflicts — can be retrieved efficiently
during reduction and planning.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from ..queries.pattern import Pattern
from ..queries.workload import Workload
from ..utils.rates import RateCatalog
from .benefit import BenefitModel
from .candidates import SharingCandidate, build_candidates, detect_sharable_patterns
from .conflicts import ConflictDetector

__all__ = ["SharonGraph", "build_sharon_graph"]


class SharonGraph:
    """A weighted undirected graph over sharing candidates."""

    def __init__(self, vertices: Iterable[SharingCandidate] = ()) -> None:
        self._adjacency: dict[SharingCandidate, set[SharingCandidate]] = {}
        for vertex in vertices:
            self.add_vertex(vertex)

    # -- construction -----------------------------------------------------------
    def add_vertex(self, vertex: SharingCandidate) -> None:
        if vertex in self._adjacency:
            raise ValueError(f"vertex {vertex!r} already present in the Sharon graph")
        self._adjacency[vertex] = set()

    def add_edge(self, first: SharingCandidate, second: SharingCandidate) -> None:
        if first == second:
            raise ValueError("a sharing candidate cannot conflict with itself")
        if first not in self._adjacency or second not in self._adjacency:
            raise KeyError("both endpoints must be vertices of the graph")
        self._adjacency[first].add(second)
        self._adjacency[second].add(first)

    def remove_vertex(self, vertex: SharingCandidate) -> None:
        """Remove a vertex and all its conflict edges."""
        neighbours = self._adjacency.pop(vertex)
        for neighbour in neighbours:
            self._adjacency[neighbour].discard(vertex)

    def copy(self) -> "SharonGraph":
        clone = SharonGraph()
        clone._adjacency = {v: set(ns) for v, ns in self._adjacency.items()}
        return clone

    # -- queries -------------------------------------------------------------------
    @property
    def vertices(self) -> tuple[SharingCandidate, ...]:
        return tuple(sorted(self._adjacency, key=SharingCandidate.key))

    def __iter__(self) -> Iterator[SharingCandidate]:
        return iter(self.vertices)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, vertex: SharingCandidate) -> bool:
        return vertex in self._adjacency

    @property
    def edges(self) -> tuple[tuple[SharingCandidate, SharingCandidate], ...]:
        """Each conflict edge reported once, endpoints in sort order."""
        seen = set()
        result = []
        for vertex, neighbours in self._adjacency.items():
            for neighbour in neighbours:
                key = frozenset((vertex, neighbour))
                if key in seen:
                    continue
                seen.add(key)
                pair = tuple(sorted((vertex, neighbour), key=SharingCandidate.key))
                result.append((pair[0], pair[1]))
        result.sort(key=lambda pair: (pair[0].key(), pair[1].key()))
        return tuple(result)

    @property
    def edge_count(self) -> int:
        return sum(len(ns) for ns in self._adjacency.values()) // 2

    def neighbours(self, vertex: SharingCandidate) -> tuple[SharingCandidate, ...]:
        """The candidates in conflict with ``vertex`` (``N(v)``)."""
        return tuple(sorted(self._adjacency[vertex], key=SharingCandidate.key))

    def degree(self, vertex: SharingCandidate) -> int:
        return len(self._adjacency[vertex])

    def has_edge(self, first: SharingCandidate, second: SharingCandidate) -> bool:
        return second in self._adjacency.get(first, ())

    def is_conflict_free(self, vertex: SharingCandidate) -> bool:
        """Definition 14: the vertex excludes no other sharing opportunity."""
        return self.degree(vertex) == 0

    def total_weight(self) -> float:
        return float(sum(v.benefit for v in self._adjacency))

    # -- MWIS-related quantities -------------------------------------------------------
    def gwmin_guaranteed_weight(self) -> float:
        """The GWMIN lower bound ``Σ_v weight(v) / (degree(v)+1)`` (Equation 10)."""
        return float(
            sum(vertex.benefit / (self.degree(vertex) + 1) for vertex in self._adjacency)
        )

    def max_score_with(self, vertex: SharingCandidate) -> float:
        """``Scoremax(v)`` (Definition 12): total benefit of ``V \\ N(v)``.

        The best any plan containing ``v`` can do is include every candidate
        not in conflict with ``v`` (including ``v`` itself).
        """
        excluded = self._adjacency[vertex]
        return float(
            sum(candidate.benefit for candidate in self._adjacency if candidate not in excluded)
        )

    def is_independent_set(self, vertices: Iterable[SharingCandidate]) -> bool:
        chosen = list(vertices)
        for i, first in enumerate(chosen):
            for second in chosen[i + 1 :]:
                if self.has_edge(first, second):
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharonGraph({len(self)} candidates, {self.edge_count} conflicts)"


def build_sharon_graph(
    workload: Workload,
    rates: "RateCatalog | BenefitModel",
    sharable: Mapping[Pattern, tuple[str, ...]] | None = None,
    benefit_override: Callable[[SharingCandidate], float] | None = None,
) -> SharonGraph:
    """Sharon graph construction (Algorithm 1).

    Parameters
    ----------
    workload:
        The query workload ``Q``.
    rates:
        A rate catalog (a default :class:`BenefitModel` is built from it) or
        an explicit benefit model.
    sharable:
        Optional pre-computed sharable-pattern table (Algorithm 7 output); it
        is detected from the workload when omitted.
    benefit_override:
        Optional callable replacing the model's benefit values — used by unit
        tests that pin the exact vertex weights of the paper's running
        example.  Candidates whose override is not strictly positive are
        pruned, mirroring non-beneficial pruning.

    Returns
    -------
    SharonGraph
        Vertices are beneficial candidates, edges are sharing conflicts.
    """
    model = rates if isinstance(rates, BenefitModel) else BenefitModel(rates)
    if sharable is None:
        sharable = detect_sharable_patterns(workload)
    raw_candidates = build_candidates(workload, sharable)

    if benefit_override is not None:
        weighted = []
        for candidate in raw_candidates:
            value = benefit_override(candidate)
            if value > 0:
                weighted.append(candidate.with_benefit(value))
    else:
        weighted = model.evaluate_candidates(workload, raw_candidates)

    graph = SharonGraph(weighted)
    detector = ConflictDetector(workload)
    vertices = graph.vertices
    for i, first in enumerate(vertices):
        for second in vertices[i + 1 :]:
            if detector.in_conflict(first, second):
                graph.add_edge(first, second)
    return graph
