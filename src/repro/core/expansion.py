"""Sharing conflict resolution (Section 7.1, Algorithms 5 and 6).

A conflict between candidates ``v = (p, Qp)`` and ``u`` is *caused* by the
queries that contain both overlapping patterns.  Dropping those queries from
``Qp`` yields an *option* ``(p, Q'p)`` that no longer conflicts with ``u`` —
at the price of sharing ``p`` among fewer queries (and hence a smaller
benefit).  Expanding every candidate into its set of options opens sharing
opportunities that the original graph excludes; Example 12/13 shows how the
optimal plan over the expanded graph beats both the greedy plan and the
optimal plan over the unexpanded graph.

The expansion enumerates, for each conflict, every combination of causing
queries whose removal resolves it (Algorithm 5), breadth-first over already
generated options, and then rebuilds conflicts over the expanded vertex set
(Algorithm 6).  Benefits of the options are re-estimated with the benefit
model, and options that are not beneficial (or keep fewer than two queries)
are discarded, mirroring non-beneficial pruning.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable

from ..queries.workload import Workload
from .benefit import BenefitModel
from .candidates import SharingCandidate
from .conflicts import ConflictDetector
from .graph import SharonGraph

__all__ = ["expand_candidate", "expand_sharon_graph"]

#: Signature of the benefit re-estimation hook used during expansion.
BenefitFunction = Callable[[SharingCandidate], float]


def _default_benefit_function(workload: Workload, model: BenefitModel) -> BenefitFunction:
    def benefit_of(candidate: SharingCandidate) -> float:
        queries = [workload[name] for name in candidate.query_names]
        return model.benefit(candidate.pattern, queries)

    return benefit_of


def expand_candidate(
    graph: SharonGraph,
    detector: ConflictDetector,
    candidate: SharingCandidate,
    benefit_of: BenefitFunction,
    max_options: int = 256,
) -> list[SharingCandidate]:
    """Algorithm 5: the set of options ``Op`` for one candidate.

    The original candidate is always the first element.  Options are produced
    breadth-first: each round takes the options generated so far and, for each
    of their conflicts with *other* candidates of the graph, drops every
    combination of causing queries that resolves that conflict.  Options with
    fewer than two remaining queries are discarded; duplicates are produced
    once.  ``max_options`` bounds the worst-case exponential growth
    (Equation 14) — the cap is generous for the paper's workloads and exists
    only as a safety valve for adversarial inputs.
    """
    options: list[SharingCandidate] = [candidate]
    known_query_sets: set[frozenset[str]] = {candidate.query_set}
    current: list[SharingCandidate] = [candidate]

    other_vertices = [v for v in graph.vertices if v.pattern != candidate.pattern]

    while current and len(options) < max_options:
        next_round: list[SharingCandidate] = []
        for option in current:
            for other in other_vertices:
                causing = detector.causing_queries(option, other)
                if not causing:
                    continue
                # Dropping any non-empty subset of the causing queries from
                # the option resolves (part of) the conflict; dropping all of
                # them resolves it completely.  All combinations are explored
                # as in the paper (Lines 7-10 of Algorithm 5).
                for size in range(1, len(causing) + 1):
                    for combo in combinations(causing, size):
                        remaining = tuple(
                            name for name in option.query_names if name not in set(combo)
                        )
                        if len(remaining) < 2:
                            continue
                        query_set = frozenset(remaining)
                        if query_set in known_query_sets:
                            continue
                        known_query_sets.add(query_set)
                        new_option = SharingCandidate(option.pattern, remaining)
                        new_option = new_option.with_benefit(benefit_of(new_option))
                        next_round.append(new_option)
                        options.append(new_option)
                        if len(options) >= max_options:
                            return options
        current = next_round
    return options


def expand_sharon_graph(
    graph: SharonGraph,
    workload: Workload,
    model: "BenefitModel | None" = None,
    benefit_of: BenefitFunction | None = None,
    max_options_per_candidate: int = 256,
) -> SharonGraph:
    """Algorithm 6: the expanded Sharon graph.

    Every vertex of ``graph`` is expanded into its option set; options that
    are not beneficial are dropped; conflicts are recomputed over the full
    expanded vertex set (options of the same pattern conflict exactly when
    their query sets intersect, other pairs follow Definition 6).

    Parameters
    ----------
    graph:
        The original Sharon graph.
    workload:
        The workload the graph was built for (needed for conflict causes and
        benefit re-estimation).
    model:
        Benefit model used to weigh the generated options.  Either ``model``
        or ``benefit_of`` must be provided.
    benefit_of:
        Custom benefit function overriding ``model`` (used by tests pinning
        paper-example weights).
    """
    if benefit_of is None:
        if model is None:
            raise ValueError("expand_sharon_graph needs a BenefitModel or a benefit function")
        benefit_of = _default_benefit_function(workload, model)

    detector = ConflictDetector(workload)
    expanded_vertices: list[SharingCandidate] = []
    seen: set[SharingCandidate] = set()
    for vertex in graph.vertices:
        for option in expand_candidate(
            graph, detector, vertex, benefit_of, max_options=max_options_per_candidate
        ):
            if option.benefit <= 0 or option in seen:
                continue
            seen.add(option)
            expanded_vertices.append(option)

    expanded = SharonGraph(expanded_vertices)
    vertices = expanded.vertices
    for i, first in enumerate(vertices):
        for second in vertices[i + 1 :]:
            if detector.in_conflict(first, second):
                expanded.add_edge(first, second)
    return expanded
