"""Optimizer front-ends: Greedy, Exhaustive, and Sharon (Section 8.3 setup).

All three consume a workload plus a rate catalog (or an explicit benefit
model) and produce a :class:`~repro.core.plan.SharingPlan` together with
phase-by-phase statistics, so the optimizer benchmarks (Figure 15) can report
latency and memory per phase exactly like the paper's stacked bars:

* **GreedyOptimizer** — Sharon graph construction, then the GWMIN plan
  finder.  Polynomial, but the plan may be far from optimal (Example 12).
* **ExhaustiveOptimizer** — graph construction, graph expansion (Section 7.1),
  then a brute-force sweep over *all* candidate subsets.  Exponential; the
  paper reports it failing beyond 20 queries.
* **SharonOptimizer** — graph construction, expansion, reduction
  (Section 5), and the level-wise sharing plan finder (Section 6).  Returns
  an optimal plan over the (expanded) graph while pruning most of the space.
  An optional time budget makes it fall back to the GWMIN plan, mirroring the
  escape hatch discussed at the end of Section 6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..queries.pattern import Pattern
from ..queries.workload import Workload
from ..utils.memory import deep_sizeof
from ..utils.rates import RateCatalog
from .benefit import BenefitModel
from .candidates import SharingCandidate
from .expansion import expand_sharon_graph
from .graph import SharonGraph, build_sharon_graph
from .gwmin import gwmin_plan
from .plan import SharingPlan
from .planner import PlanSearchStatistics, find_optimal_plan
from .reduction import reduce_sharon_graph

__all__ = [
    "OptimizationResult",
    "GreedyOptimizer",
    "ExhaustiveOptimizer",
    "SharonOptimizer",
]


@dataclass
class OptimizationResult:
    """A sharing plan plus the measurements the evaluation section reports."""

    plan: SharingPlan
    phase_seconds: dict[str, float] = field(default_factory=dict)
    phase_bytes: dict[str, int] = field(default_factory=dict)
    candidates_total: int = 0
    candidates_after_expansion: int = 0
    candidates_after_reduction: int = 0
    plans_considered: int = 0
    used_fallback: bool = False

    @property
    def total_seconds(self) -> float:
        return float(sum(self.phase_seconds.values()))

    @property
    def peak_bytes(self) -> int:
        return max(self.phase_bytes.values(), default=0)

    @property
    def score(self) -> float:
        return self.plan.score


class _BaseOptimizer:
    """Shared plumbing: benefit model resolution and graph construction."""

    def __init__(
        self,
        rates: "RateCatalog | BenefitModel",
        benefit_override: Callable[[SharingCandidate], float] | None = None,
    ) -> None:
        self.model = rates if isinstance(rates, BenefitModel) else BenefitModel(rates)
        self.benefit_override = benefit_override

    def build_graph(
        self,
        workload: Workload,
        result: OptimizationResult,
        sharable: Mapping[Pattern, tuple[str, ...]] | None = None,
    ) -> SharonGraph:
        started = time.perf_counter()
        graph = build_sharon_graph(
            workload, self.model, sharable=sharable, benefit_override=self.benefit_override
        )
        result.phase_seconds["graph construction"] = time.perf_counter() - started
        result.phase_bytes["graph construction"] = deep_sizeof(graph)
        result.candidates_total = len(graph)
        return graph

    def _benefit_function(self, workload: Workload) -> Callable[[SharingCandidate], float]:
        if self.benefit_override is not None:
            return self.benefit_override

        def benefit_of(candidate: SharingCandidate) -> float:
            queries = [workload[name] for name in candidate.query_names]
            return self.model.benefit(candidate.pattern, queries)

        return benefit_of


class GreedyOptimizer(_BaseOptimizer):
    """Graph construction followed by the GWMIN greedy plan finder."""

    def optimize(self, workload: Workload) -> OptimizationResult:
        result = OptimizationResult(plan=SharingPlan())
        graph = self.build_graph(workload, result)

        started = time.perf_counter()
        plan = gwmin_plan(graph)
        result.phase_seconds["GWMIN"] = time.perf_counter() - started
        result.phase_bytes["GWMIN"] = deep_sizeof(plan)
        result.plan = plan
        result.candidates_after_expansion = len(graph)
        result.candidates_after_reduction = len(graph)
        result.plans_considered = len(plan)
        return result


class ExhaustiveOptimizer(_BaseOptimizer):
    """Graph construction, expansion, and a full sweep of all subsets."""

    def __init__(
        self,
        rates: "RateCatalog | BenefitModel",
        benefit_override: Callable[[SharingCandidate], float] | None = None,
        expand: bool = False,
        max_candidates: int = 22,
    ) -> None:
        super().__init__(rates, benefit_override)
        self.expand = expand
        self.max_candidates = max_candidates

    def optimize(self, workload: Workload) -> OptimizationResult:
        result = OptimizationResult(plan=SharingPlan())
        graph = self.build_graph(workload, result)

        if self.expand:
            started = time.perf_counter()
            graph = expand_sharon_graph(
                graph, workload, model=self.model, benefit_of=self._maybe_override(workload)
            )
            result.phase_seconds["graph expansion"] = time.perf_counter() - started
            result.phase_bytes["graph expansion"] = deep_sizeof(graph)
        result.candidates_after_expansion = len(graph)
        result.candidates_after_reduction = len(graph)

        if len(graph) > self.max_candidates:
            raise RuntimeError(
                f"exhaustive search over {len(graph)} candidates "
                f"(> {self.max_candidates}) would not terminate in reasonable time; "
                "this mirrors the paper's observation that the exhaustive optimizer "
                "fails beyond 20 queries"
            )

        started = time.perf_counter()
        vertices = graph.vertices
        best: tuple[SharingCandidate, ...] = ()
        best_score = 0.0
        explored = 0
        for mask in range(1 << len(vertices)):
            subset = tuple(vertices[i] for i in range(len(vertices)) if mask >> i & 1)
            explored += 1
            if not graph.is_independent_set(subset):
                continue
            score = sum(c.benefit for c in subset)
            if score > best_score:
                best, best_score = subset, score
        result.phase_seconds["exhaustive search"] = time.perf_counter() - started
        result.phase_bytes["exhaustive search"] = deep_sizeof(best)
        result.plans_considered = explored
        result.plan = SharingPlan(best)
        return result

    def _maybe_override(self, workload: Workload):
        return self.benefit_override if self.benefit_override is not None else None


class SharonOptimizer(_BaseOptimizer):
    """The full Sharon optimizer pipeline (Sections 4–7).

    Parameters
    ----------
    rates:
        Rate catalog or benefit model for candidate weighing.
    expand:
        Whether to apply sharing-conflict resolution (Section 7.1) before the
        search.  The paper's executor experiments use the expanded graph;
        expansion is worst-case exponential in the number of conflicts
        (Equation 14), so it is off by default and should be enabled for
        workloads of moderate candidate counts (as in Figure 15).
    time_budget_seconds:
        Optional cap on the plan-finder phase.  When the (estimated) search
        would exceed it, the optimizer returns the GWMIN plan instead and
        flags ``used_fallback`` — the behaviour sketched at the end of
        Section 6.
    benefit_override:
        Optional replacement of the benefit model (test fixtures).
    """

    def __init__(
        self,
        rates: "RateCatalog | BenefitModel",
        expand: bool = False,
        time_budget_seconds: float | None = None,
        benefit_override: Callable[[SharingCandidate], float] | None = None,
        max_options_per_candidate: int = 32,
    ) -> None:
        super().__init__(rates, benefit_override)
        self.expand = expand
        self.time_budget_seconds = time_budget_seconds
        self.max_options_per_candidate = max_options_per_candidate

    def optimize(self, workload: Workload) -> OptimizationResult:
        result = OptimizationResult(plan=SharingPlan())
        graph = self.build_graph(workload, result)

        if self.expand:
            started = time.perf_counter()
            graph = expand_sharon_graph(
                graph,
                workload,
                model=self.model,
                benefit_of=self.benefit_override,
                max_options_per_candidate=self.max_options_per_candidate,
            )
            result.phase_seconds["graph expansion"] = time.perf_counter() - started
            result.phase_bytes["graph expansion"] = deep_sizeof(graph)
        result.candidates_after_expansion = len(graph)

        started = time.perf_counter()
        reduction = reduce_sharon_graph(graph)
        result.phase_seconds["graph reduction"] = time.perf_counter() - started
        result.phase_bytes["graph reduction"] = deep_sizeof(reduction.reduced_graph)
        result.candidates_after_reduction = len(reduction.reduced_graph)

        started = time.perf_counter()
        statistics = PlanSearchStatistics()
        if self._should_fall_back(reduction.reduced_graph):
            plan = gwmin_plan(graph)
            result.used_fallback = True
        else:
            plan = find_optimal_plan(
                reduction.reduced_graph, reduction.conflict_free, statistics
            )
        result.phase_seconds["plan finder"] = time.perf_counter() - started
        result.phase_bytes["plan finder"] = deep_sizeof(plan)
        result.plans_considered = statistics.plans_considered
        result.plan = plan
        return result

    def _should_fall_back(self, reduced_graph: SharonGraph) -> bool:
        """Fall back to GWMIN when the valid search space is clearly too large.

        The estimate is deliberately crude (the paper constrains optimization
        by wall-clock seconds); we translate the time budget into a candidate
        budget assuming the worst case ``2^n`` valid plans.
        """
        if self.time_budget_seconds is None:
            return False
        # Roughly 3e5 plans per second for the pure-Python finder.
        plan_budget = max(1.0, self.time_budget_seconds * 3e5)
        return 2 ** len(reduced_graph) > plan_budget
