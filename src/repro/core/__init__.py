"""Sharon's core contribution: benefit model, graph, pruning, plan finder."""

from .benefit import BenefitBreakdown, BenefitModel
from .candidates import SharingCandidate, build_candidates, detect_sharable_patterns
from .conflicts import ConflictDetector, SharingConflict
from .dynamic import AdaptiveSharonExecutor, MigrationRecord, RateMonitor
from .expansion import expand_candidate, expand_sharon_graph
from .graph import SharonGraph, build_sharon_graph
from .gwmin import gwmin_independent_set, gwmin_plan
from .optimizer import ExhaustiveOptimizer, GreedyOptimizer, OptimizationResult, SharonOptimizer
from .plan import PlanSegment, QueryDecomposition, SharingPlan
from .planner import PlanSearchStatistics, enumerate_valid_plans, find_optimal_plan, generate_next_level
from .reduction import ReductionResult, reduce_sharon_graph, reduction_search_space_savings
from .segmentation import ExecutionContext, MultiContextExecutor, split_into_contexts

__all__ = [
    "BenefitBreakdown",
    "BenefitModel",
    "AdaptiveSharonExecutor",
    "MigrationRecord",
    "RateMonitor",
    "ExecutionContext",
    "MultiContextExecutor",
    "split_into_contexts",
    "SharingCandidate",
    "build_candidates",
    "detect_sharable_patterns",
    "ConflictDetector",
    "SharingConflict",
    "expand_candidate",
    "expand_sharon_graph",
    "SharonGraph",
    "build_sharon_graph",
    "gwmin_independent_set",
    "gwmin_plan",
    "ExhaustiveOptimizer",
    "GreedyOptimizer",
    "OptimizationResult",
    "SharonOptimizer",
    "PlanSegment",
    "QueryDecomposition",
    "SharingPlan",
    "PlanSearchStatistics",
    "enumerate_valid_plans",
    "find_optimal_plan",
    "generate_next_level",
    "ReductionResult",
    "reduce_sharon_graph",
    "reduction_search_space_savings",
]
