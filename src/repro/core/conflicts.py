"""Sharing conflict detection (Section 4, Definition 6).

Two sharing candidates ``(pA, QA)`` and ``(pB, QB)`` are *in conflict* when a
query ``q`` shared by both would receive "contradictory instructions": the
occurrences of ``pA`` and ``pB`` inside ``q``'s pattern occupy overlapping
positions, so the executor — which stores aggregates for a shared pattern as
a whole — cannot decompose ``q`` around both.

The check works positionally over the containing query's pattern, which is
equivalent to the paper's suffix-equals-prefix formulation under the
one-occurrence-per-type assumption, and remains correct when that assumption
is relaxed (Section 7.3): a conflict exists in ``q`` only if *no* pair of
non-overlapping placements of the two patterns exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..queries.pattern import Pattern
from ..queries.query import Query
from ..queries.workload import Workload
from .candidates import SharingCandidate

__all__ = ["ConflictDetector", "SharingConflict"]


@dataclass(frozen=True)
class SharingConflict:
    """A detected conflict together with the queries causing it."""

    first: SharingCandidate
    second: SharingCandidate
    causing_queries: tuple[str, ...]

    def involves(self, candidate: SharingCandidate) -> bool:
        return candidate in (self.first, self.second)

    def other(self, candidate: SharingCandidate) -> SharingCandidate:
        if candidate == self.first:
            return self.second
        if candidate == self.second:
            return self.first
        raise ValueError(f"{candidate!r} is not part of this conflict")


class ConflictDetector:
    """Detects sharing conflicts between candidates of one workload."""

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self._placement_cache: dict[tuple[str, Pattern], tuple[tuple[int, int], ...]] = {}

    # -- low-level placement geometry --------------------------------------------
    def placements(self, query: Query, pattern: Pattern) -> tuple[tuple[int, int], ...]:
        """Half-open position ranges ``[start, end)`` of ``pattern`` inside ``query``."""
        cache_key = (query.name, pattern)
        cached = self._placement_cache.get(cache_key)
        if cached is not None:
            return cached
        ranges = tuple(
            (start, start + len(pattern)) for start in query.pattern.occurrences(pattern)
        )
        self._placement_cache[cache_key] = ranges
        return ranges

    @staticmethod
    def _ranges_overlap(a: tuple[int, int], b: tuple[int, int]) -> bool:
        return a[0] < b[1] and b[0] < a[1]

    def patterns_conflict_in(self, query: Query, first: Pattern, second: Pattern) -> bool:
        """Whether ``first`` and ``second`` cannot both be shared by ``query``.

        True when every placement of ``first`` overlaps every placement of
        ``second`` — i.e. there is no way to carve both patterns out of the
        query's pattern without overlap.
        """
        first_placements = self.placements(query, first)
        second_placements = self.placements(query, second)
        if not first_placements or not second_placements:
            return False
        for a in first_placements:
            for b in second_placements:
                if not self._ranges_overlap(a, b):
                    return False
        return True

    # -- candidate-level API --------------------------------------------------------
    def causing_queries(
        self, first: SharingCandidate, second: SharingCandidate
    ) -> tuple[str, ...]:
        """Names of the queries that cause a conflict between two candidates.

        Empty when the candidates are not in conflict.  Needed by the
        conflict-resolution expansion (Section 7.1, Algorithm 5), which drops
        exactly these queries from a candidate's query set.
        """
        if first.pattern == second.pattern:
            # Same pattern: the same aggregate state cannot serve two distinct
            # sharing groups for a query; any common query is a cause.
            return first.common_queries(second)
        causes = []
        for name in first.common_queries(second):
            query = self.workload[name]
            if self.patterns_conflict_in(query, first.pattern, second.pattern):
                causes.append(name)
        return tuple(causes)

    def in_conflict(self, first: SharingCandidate, second: SharingCandidate) -> bool:
        """Definition 6: whether two candidates are in sharing conflict."""
        if first == second:
            return False
        return bool(self.causing_queries(first, second))

    def conflict(
        self, first: SharingCandidate, second: SharingCandidate
    ) -> SharingConflict | None:
        """A populated :class:`SharingConflict`, or ``None`` if compatible."""
        causes = self.causing_queries(first, second)
        if not causes:
            return None
        return SharingConflict(first, second, causes)

    def all_conflicts(
        self, candidates: "list[SharingCandidate] | tuple[SharingCandidate, ...]"
    ) -> list[SharingConflict]:
        """All pairwise conflicts among ``candidates`` (each pair reported once)."""
        conflicts: list[SharingConflict] = []
        for i, first in enumerate(candidates):
            for second in candidates[i + 1 :]:
                found = self.conflict(first, second)
                if found is not None:
                    conflicts.append(found)
        return conflicts
