"""The sharing plan finder (Section 6, Algorithms 3 and 4).

The search space of sharing plans over ``n`` candidates is the lattice of all
``2^n`` subsets (Equation 13).  The finder traverses only the *valid* portion
of that lattice breadth-first: level ``s`` holds all valid plans of size
``s`` and level ``s+1`` is generated Apriori-style by joining two parents
that agree on their first ``s-1`` candidates and whose last candidates are
not in conflict (Lemma 6).  Invalid branches are therefore cut at their roots
(Lemma 4), and every valid plan is still generated (Lemma 7), so the plan of
maximal score found during the traversal is optimal for the input graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .candidates import SharingCandidate
from .graph import SharonGraph
from .plan import SharingPlan

__all__ = ["PlanSearchStatistics", "generate_next_level", "find_optimal_plan"]


@dataclass
class PlanSearchStatistics:
    """Counters describing one run of the plan finder.

    ``plans_considered`` counts every valid plan whose score was evaluated;
    ``levels`` is the size of the largest valid plan found; ``peak_level_width``
    is the maximum number of plans held at any level, which bounds the
    finder's memory (it keeps only one level at a time).
    """

    plans_considered: int = 0
    levels: int = 0
    peak_level_width: int = 0
    candidates: int = 0

    def observe_level(self, width: int) -> None:
        self.levels += 1
        self.peak_level_width = max(self.peak_level_width, width)


#: Internal plan representation during the search: a tuple of candidates in
#: canonical (sorted) order, so that two plans share a prefix exactly when
#: they agree on their first elements.
_PlanTuple = tuple[SharingCandidate, ...]


def generate_next_level(
    graph: SharonGraph, parents: list[_PlanTuple]
) -> list[_PlanTuple]:
    """Algorithm 3: generate all valid plans of size ``s+1`` from level ``s``.

    Parents must be valid plans of equal size in canonical candidate order.
    In the base case (size-1 parents) the children are all non-adjacent vertex
    pairs; in the inductive case two parents sharing their first ``s-1``
    candidates are joined if their distinct last candidates are not in
    conflict (Lemma 6 guarantees the join is valid).
    """
    children: list[_PlanTuple] = []
    count = len(parents)
    for i in range(count):
        left = parents[i]
        for j in range(i + 1, count):
            right = parents[j]
            if left[:-1] != right[:-1]:
                # Parents are sorted lexicographically, so once prefixes
                # diverge no later parent can match either.
                break
            if not graph.has_edge(left[-1], right[-1]):
                children.append(left + (right[-1],))
    return children


def find_optimal_plan(
    graph: SharonGraph,
    conflict_free: "list[SharingCandidate] | tuple[SharingCandidate, ...]" = (),
    statistics: PlanSearchStatistics | None = None,
) -> SharingPlan:
    """Algorithm 4: breadth-first traversal of the valid plan space.

    Parameters
    ----------
    graph:
        The (reduced) Sharon graph to search.
    conflict_free:
        Candidates already committed by the reduction step; they are united
        with the best plan found (they conflict with nothing, so the union
        stays valid).
    statistics:
        Optional mutable statistics collector.

    Returns
    -------
    SharingPlan
        A valid plan of maximal score over the graph's candidates, united
        with ``conflict_free``.
    """
    stats = statistics if statistics is not None else PlanSearchStatistics()
    vertices = list(graph.vertices)
    stats.candidates = len(vertices)

    best: _PlanTuple = ()
    best_score = 0.0

    # Level 1: single candidates (always valid, Definition 7).
    level: list[_PlanTuple] = [(vertex,) for vertex in vertices]
    while level:
        stats.observe_level(len(level))
        for plan in level:
            stats.plans_considered += 1
            score = sum(candidate.benefit for candidate in plan)
            if score > best_score:
                best = plan
                best_score = score
        level = generate_next_level(graph, level)

    return SharingPlan(best).union(SharingPlan(tuple(conflict_free)))


def enumerate_valid_plans(graph: SharonGraph) -> list[SharingPlan]:
    """Enumerate *all* valid plans of a graph (test and analysis helper).

    The empty plan is included.  This is exponential by nature and intended
    for small graphs only (reference oracle for the plan finder and for the
    search-space statistics of Example 10).
    """
    plans: list[SharingPlan] = [SharingPlan()]
    level: list[_PlanTuple] = [(vertex,) for vertex in graph.vertices]
    while level:
        plans.extend(SharingPlan(plan) for plan in level)
        level = generate_next_level(graph, level)
    return plans
