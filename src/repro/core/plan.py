"""Sharing plans (Definitions 7–9) and their executor-facing decomposition.

A sharing plan is a set of sharing candidates.  It is *valid* if no two of
its candidates are in conflict, and its *score* is the sum of the benefit
values of its candidates.  The optimal plan is a valid plan of maximal score,
which Lemma 1 identifies with a maximum weight independent set of the Sharon
graph.

Besides the optimizer-facing notions, this module derives what the runtime
executor needs from a plan: for every query, the decomposition of its pattern
into *shared segments* (computed once per sharing group) and *private
segments* (computed only for that query), in stream order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..queries.pattern import Pattern
from ..queries.query import Query
from ..queries.workload import Workload
from .candidates import SharingCandidate
from .conflicts import ConflictDetector

__all__ = ["SharingPlan", "QueryDecomposition", "PlanSegment"]


@dataclass(frozen=True)
class PlanSegment:
    """One segment of a query's pattern under a sharing plan.

    Attributes
    ----------
    pattern:
        The contiguous sub-pattern covered by this segment.
    start:
        Start position of the segment inside the query's pattern.
    shared_with:
        Names of the queries sharing this segment's aggregates (including the
        owning query); empty for private segments.
    """

    pattern: Pattern
    start: int
    shared_with: tuple[str, ...] = ()

    @property
    def is_shared(self) -> bool:
        return bool(self.shared_with)

    @property
    def end(self) -> int:
        return self.start + len(self.pattern)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        marker = f" shared by {set(self.shared_with)}" if self.is_shared else ""
        return f"Segment[{self.start}:{self.end}]{self.pattern!r}{marker}"


@dataclass(frozen=True)
class QueryDecomposition:
    """A query's pattern split into plan segments, in stream order."""

    query_name: str
    segments: tuple[PlanSegment, ...]

    @property
    def shared_segments(self) -> tuple[PlanSegment, ...]:
        return tuple(s for s in self.segments if s.is_shared)

    @property
    def private_segments(self) -> tuple[PlanSegment, ...]:
        return tuple(s for s in self.segments if not s.is_shared)

    @property
    def uses_sharing(self) -> bool:
        return bool(self.shared_segments)


class SharingPlan:
    """An immutable set of sharing candidates (Definition 7)."""

    def __init__(self, candidates: Iterable[SharingCandidate] = ()) -> None:
        ordered = sorted(set(candidates), key=SharingCandidate.key)
        self._candidates: tuple[SharingCandidate, ...] = tuple(ordered)

    # -- container protocol ---------------------------------------------------------
    def __iter__(self) -> Iterator[SharingCandidate]:
        return iter(self._candidates)

    def __len__(self) -> int:
        return len(self._candidates)

    def __contains__(self, candidate: SharingCandidate) -> bool:
        return candidate in self._candidates

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SharingPlan):
            return NotImplemented
        return set(self._candidates) == set(other._candidates)

    def __hash__(self) -> int:
        return hash(frozenset(self._candidates))

    @property
    def candidates(self) -> tuple[SharingCandidate, ...]:
        return self._candidates

    @property
    def is_empty(self) -> bool:
        return not self._candidates

    # -- scoring and validity ----------------------------------------------------------
    @property
    def score(self) -> float:
        """Sum of candidate benefits (Definition 8)."""
        return float(sum(c.benefit for c in self._candidates))

    def is_valid(self, detector: ConflictDetector) -> bool:
        """Whether no two candidates of this plan are in conflict (Definition 7)."""
        candidates = self._candidates
        for i, first in enumerate(candidates):
            for second in candidates[i + 1 :]:
                if detector.in_conflict(first, second):
                    return False
        return True

    def union(self, other: "SharingPlan | Iterable[SharingCandidate]") -> "SharingPlan":
        extra = other.candidates if isinstance(other, SharingPlan) else tuple(other)
        return SharingPlan(self._candidates + tuple(extra))

    def add(self, candidate: SharingCandidate) -> "SharingPlan":
        return SharingPlan(self._candidates + (candidate,))

    # -- executor-facing view -------------------------------------------------------------
    def candidates_for_query(self, query_name: str) -> tuple[SharingCandidate, ...]:
        """Candidates of this plan that include ``query_name``."""
        return tuple(c for c in self._candidates if query_name in c.query_set)

    def decompose(self, workload: Workload) -> Mapping[str, QueryDecomposition]:
        """Decompose every workload query into shared and private segments.

        Raises
        ------
        ValueError
            If the plan assigns overlapping shared segments to a query, i.e.
            the plan is invalid for this workload.
        """
        decompositions: dict[str, QueryDecomposition] = {}
        for query in workload:
            decompositions[query.name] = self._decompose_query(query)
        return decompositions

    def _decompose_query(self, query: Query) -> QueryDecomposition:
        placements: list[PlanSegment] = []
        for candidate in self.candidates_for_query(query.name):
            start = query.pattern.find(candidate.pattern)
            if start < 0:
                raise ValueError(
                    f"plan candidate {candidate!r} does not occur in query {query.name!r}"
                )
            placements.append(
                PlanSegment(candidate.pattern, start, shared_with=candidate.query_names)
            )
        placements.sort(key=lambda seg: seg.start)
        for left, right in zip(placements, placements[1:]):
            if right.start < left.end:
                raise ValueError(
                    f"invalid plan: shared segments {left!r} and {right!r} overlap "
                    f"in query {query.name!r}"
                )

        segments: list[PlanSegment] = []
        cursor = 0
        for placement in placements:
            if placement.start > cursor:
                segments.append(
                    PlanSegment(query.pattern.subpattern(cursor, placement.start), cursor)
                )
            segments.append(placement)
            cursor = placement.end
        if cursor < len(query.pattern):
            segments.append(
                PlanSegment(query.pattern.subpattern(cursor, len(query.pattern)), cursor)
            )
        if not segments:
            segments.append(PlanSegment(query.pattern, 0))
        return QueryDecomposition(query.name, tuple(segments))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = "; ".join(repr(c) for c in self._candidates)
        return f"SharingPlan{{{inner}}} score={self.score:g}"
