"""GWMIN: greedy approximation of the Maximum Weight Independent Set.

This is Algorithm 8 (Appendix B), the "Greedy Minimum degree algorithm for
Weighted graphs" of Sakai, Togasaki and Yamazaki.  It repeatedly picks the
vertex maximising ``weight(v) / (degree(v) + 1)`` in the *remaining* graph,
adds it to the independent set, and deletes it together with its neighbours.

Sharon uses GWMIN in two roles:

* its guaranteed weight (Equation 10) prunes conflict-ridden candidates from
  the Sharon graph (Section 5);
* it is the *greedy optimizer* baseline of the evaluation (Section 8.3) and
  the fallback planner when the optimal search exceeds its time budget
  (Section 6).
"""

from __future__ import annotations

from .candidates import SharingCandidate
from .graph import SharonGraph
from .plan import SharingPlan

__all__ = ["gwmin_independent_set", "gwmin_plan"]


def gwmin_independent_set(graph: SharonGraph) -> list[SharingCandidate]:
    """Run GWMIN and return the selected candidates in selection order.

    The returned set is independent (no two selected candidates conflict) and
    its total weight is at least ``Σ_v weight(v) / (degree(v) + 1)`` over the
    input graph (Equation 10).
    """
    working = graph.copy()
    selected: list[SharingCandidate] = []
    while len(working) > 0:
        best_vertex = None
        best_ratio = float("-inf")
        for vertex in working.vertices:
            ratio = vertex.benefit / (working.degree(vertex) + 1)
            if ratio > best_ratio:
                best_ratio = ratio
                best_vertex = vertex
        assert best_vertex is not None  # the graph is non-empty
        selected.append(best_vertex)
        for neighbour in working.neighbours(best_vertex):
            working.remove_vertex(neighbour)
        working.remove_vertex(best_vertex)
    return selected


def gwmin_plan(graph: SharonGraph) -> SharingPlan:
    """The sharing plan induced by the GWMIN independent set."""
    return SharingPlan(gwmin_independent_set(graph))
