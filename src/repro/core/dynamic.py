"""Dynamic workloads: statistics monitoring, re-optimization, plan migration
(Section 7.4).

Even with a fixed query set, the stream's per-type rates fluctuate, so a
sharing plan chosen at compile time can become sub-optimal.  The paper
sketches the remedy: collect runtime statistics, trigger the optimizer when
they drift, and migrate from the old to the new plan without losing results
of stateful operators.

This module implements that control loop for the replay setting used in this
reproduction:

* :class:`RateMonitor` maintains per-type rate estimates over a sliding
  horizon and reports the relative drift against the rates the current plan
  was optimized for.
* :class:`AdaptiveSharonExecutor` drives a single
  :class:`~repro.executor.engine.StreamingEngine` run, observing the stream
  through the engine's batch hook, re-optimizing when drift exceeds the
  threshold, and switching the plan via ``StreamingEngine.set_plan``.
  Scopes that are already open finish under the plan they were created with,
  so migration is loss-free by construction — exactly the "no results are
  lost or corrupted" requirement the paper states for stateful operators.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from ..events.event import Event, EventType
from ..events.stream import EventStream
from ..queries.workload import Workload
from ..utils.rates import RateCatalog
from .optimizer import SharonOptimizer
from .plan import SharingPlan

__all__ = ["RateMonitor", "MigrationRecord", "AdaptiveSharonExecutor"]


class RateMonitor:
    """Sliding-horizon estimator of per-type event rates.

    Parameters
    ----------
    horizon:
        Number of most recent time units considered when estimating rates.
    drift_threshold:
        Relative change of a type's rate (against the reference rates) that
        counts as drift; the monitor reports drift when *any* type moves by
        more than this fraction.
    """

    def __init__(self, horizon: int = 300, drift_threshold: float = 0.5) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        self.horizon = horizon
        self.drift_threshold = drift_threshold
        self._counts: dict[int, Counter] = {}
        self._latest_timestamp: int | None = None

    def observe(self, event: Event) -> None:
        """Fold one event into the per-timestamp type counts.

        Events already outside the horizon (at or before ``latest - horizon``)
        are ignored: eviction only runs when the latest timestamp advances, so
        admitting them would grow ``_counts`` beyond the horizon — a single
        batch mixing fresh and stale timestamps used to inflate
        ``observed_time_units`` (and thus dilute ``current_rates``) until the
        next advance.
        """
        latest = self._latest_timestamp
        if latest is not None and event.timestamp <= latest - self.horizon:
            return
        bucket = self._counts.setdefault(event.timestamp, Counter())
        bucket[event.event_type] += 1
        if latest is None or event.timestamp > latest:
            self._latest_timestamp = event.timestamp
            self._evict()

    def observe_all(self, events: Iterable[Event]) -> None:
        for event in events:
            self.observe(event)

    def _evict(self) -> None:
        if self._latest_timestamp is None:
            return
        cutoff = self._latest_timestamp - self.horizon
        stale = [timestamp for timestamp in self._counts if timestamp <= cutoff]
        for timestamp in stale:
            del self._counts[timestamp]

    @property
    def observed_time_units(self) -> int:
        return len(self._counts)

    def current_rates(self) -> RateCatalog:
        """Rates (events per time unit) over the retained horizon."""
        if not self._counts:
            return RateCatalog(default_rate=0.0)
        totals: Counter = Counter()
        for bucket in self._counts.values():
            totals.update(bucket)
        span = max(len(self._counts), 1)
        return RateCatalog(
            {event_type: count / span for event_type, count in totals.items()},
            default_rate=0.0,
        )

    def drift_against(self, reference: RateCatalog) -> float:
        """Largest relative rate change of any observed type vs. ``reference``."""
        current = self.current_rates()
        drift = 0.0
        types: set[EventType] = set(current.rates) | set(reference.rates)
        for event_type in types:
            new = current.rates.get(event_type, 0.0)
            old = reference.rates.get(event_type, 0.0)
            if old == 0.0 and new == 0.0:
                continue
            baseline = old if old > 0 else new
            drift = max(drift, abs(new - old) / baseline)
        return drift

    def has_drifted(self, reference: RateCatalog) -> bool:
        return self.drift_against(reference) > self.drift_threshold


@dataclass(frozen=True)
class MigrationRecord:
    """One plan switch performed by the adaptive executor."""

    at_timestamp: int
    drift: float
    old_plan_score: float
    new_plan_score: float


class AdaptiveSharonExecutor:
    """Shared online execution with runtime re-optimization (Section 7.4).

    The executor runs the workload through one streaming-engine pass.  Every
    ``check_interval`` time units it compares the rates observed over the
    monitor's horizon with the rates the current plan was optimized for; when
    the drift exceeds the threshold it re-runs the optimizer and installs the
    new plan through :meth:`StreamingEngine.set_plan`.  Results are identical
    to a static run with any plan — re-optimization only changes how future
    window instances compute their aggregates.

    Parameters
    ----------
    workload:
        Uniform query workload (same window everywhere).
    initial_rates:
        Rates used to pick the initial plan; when omitted, the first
        ``check_interval`` time units run with the empty plan (plain A-Seq)
        and the first optimization happens at the first checkpoint.
    check_interval:
        Time units between drift checks; defaults to the window size.
    drift_threshold:
        Relative rate drift that triggers re-optimization.
    optimizer_factory:
        Builds the optimizer used at every (re-)optimization; defaults to
        :class:`SharonOptimizer` with a small time budget.
    """

    def __init__(
        self,
        workload: Workload,
        initial_rates: RateCatalog | None = None,
        check_interval: int | None = None,
        drift_threshold: float = 0.5,
        optimizer_factory=None,
        memory_sample_interval: int = 0,
    ) -> None:
        if len(workload) == 0:
            raise ValueError("cannot execute an empty workload")
        if not workload.is_uniform():
            raise ValueError(
                "AdaptiveSharonExecutor requires a uniform workload; "
                "use MultiContextExecutor for heterogeneous ones"
            )
        self.workload = workload
        window = workload[0].window
        self.check_interval = check_interval if check_interval is not None else window.size
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.monitor = RateMonitor(
            horizon=self.check_interval * 2, drift_threshold=drift_threshold
        )
        self.optimizer_factory = optimizer_factory or (
            lambda rates: SharonOptimizer(rates, time_budget_seconds=2.0)
        )
        self.initial_rates = initial_rates
        self.memory_sample_interval = memory_sample_interval
        #: Plans in force, in order; filled during :meth:`run`.
        self.plan_history: list[SharingPlan] = []
        #: Plan switches performed during the run.
        self.migrations: list[MigrationRecord] = []

    def _optimize(self, rates: RateCatalog) -> SharingPlan:
        result = self.optimizer_factory(rates).optimize(self.workload)
        return result.plan

    def run(self, stream: "EventStream | Iterable[Event]"):
        """Execute the workload adaptively over a replayed stream."""
        from ..executor.engine import StreamingEngine

        if self.initial_rates is not None:
            current_rates = self.initial_rates
            current_plan = self._optimize(current_rates)
        else:
            current_rates = None
            current_plan = SharingPlan()
        self.plan_history = [current_plan]
        self.migrations = []

        engine = StreamingEngine(
            self.workload,
            plan=current_plan,
            name="Sharon (adaptive)",
            memory_sample_interval=self.memory_sample_interval,
        )

        state = {"rates": current_rates, "plan": current_plan, "next_check": None}

        def on_batch(timestamp: int, batch) -> None:
            self.monitor.observe_all(batch)
            if state["next_check"] is None:
                state["next_check"] = timestamp + self.check_interval
                return
            if timestamp < state["next_check"]:
                return
            state["next_check"] = timestamp + self.check_interval

            observed = self.monitor.current_rates()
            if state["rates"] is None:
                drift = float("inf")
            else:
                drift = self.monitor.drift_against(state["rates"])
            if drift <= self.monitor.drift_threshold:
                return

            new_plan = self._optimize(observed)
            if new_plan != state["plan"]:
                self.migrations.append(
                    MigrationRecord(
                        at_timestamp=timestamp,
                        drift=min(drift, 1e9),
                        old_plan_score=state["plan"].score,
                        new_plan_score=new_plan.score,
                    )
                )
                engine.set_plan(new_plan)
                state["plan"] = new_plan
                self.plan_history.append(new_plan)
            state["rates"] = observed

        return engine.run(stream, on_batch=on_batch)
