"""The sharing benefit model (Section 3, Equations 1–8).

The model compares, for a sharing candidate ``(p, Qp)``, the estimated cost of
evaluating every query in ``Qp`` independently with the Non-Shared method
(A-Seq style prefix counting) against the cost of computing ``p`` once and
combining its aggregates with each query's prefix and suffix aggregates
(the Shared method).  The difference is the candidate's *benefit value*;
non-beneficial candidates (benefit <= 0) are pruned before graph
construction.

All costs are expressed in "count updates per window" and derive solely from
per-event-type rates (:class:`~repro.utils.rates.RateCatalog`):

* ``Rate(P) = Σ_j Rate(Ej)``                                      (Eq. 1)
* ``NonShared(p, qi) = Rate(E1^i) * Rate(P^i)``                   (Eq. 2)
* ``NonShared(p, Qp) = Σ_i NonShared(p, qi)``                     (Eq. 3)
* ``Comp(p, qi) = Rate(start(prefix_i)) * Rate(prefix_i)
                 + Rate(start(suffix_i)) * Rate(suffix_i)``        (Eq. 4)
* ``Comb(p, qi) = Rate(start(prefix_i)) * Rate(start(p))
                 * Rate(start(suffix_i))``                          (Eq. 5)
* ``Shared(p, qi) = Comp(p, qi) + Comb(p, qi)``                    (Eq. 6)
* ``Shared(p, Qp) = Rate(start(p)) * Rate(p) + Σ_i Shared(p, qi)`` (Eq. 7)
* ``BValue(p, Qp) = NonShared(p, Qp) - Shared(p, Qp)``             (Eq. 8)

Empty prefixes or suffixes contribute nothing to Eq. 4, and the combination
cost (Eq. 5) degenerates to the product of the start rates of the segments
that actually exist (no combination is needed when the query *is* the shared
pattern).  Section 7.3's extension (an event type occurring ``k`` times in a
pattern multiplies both methods by ``k``) is exposed through the
``occurrence_factor`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..queries.pattern import Pattern
from ..queries.query import Query
from ..queries.workload import Workload
from ..utils.rates import RateCatalog
from .candidates import SharingCandidate

__all__ = ["BenefitModel", "BenefitBreakdown"]


@dataclass(frozen=True)
class BenefitBreakdown:
    """Per-candidate cost decomposition, handy for reports and tests."""

    non_shared: float
    shared: float

    @property
    def benefit(self) -> float:
        return self.non_shared - self.shared


class BenefitModel:
    """Cost-based estimator of sharing benefits.

    Parameters
    ----------
    rates:
        Per-event-type rate catalog.
    """

    def __init__(self, rates: RateCatalog) -> None:
        self.rates = rates

    # -- building blocks -------------------------------------------------------
    def pattern_rate(self, pattern: Pattern) -> float:
        """``Rate(P)`` (Equation 1); 0 for the empty pattern."""
        return self.rates.pattern_rate(pattern)

    def occurrence_factor(self, pattern: Pattern, query: Query) -> float:
        """Multiplicative factor ``k`` for repeated event types (Section 7.3).

        With the core assumption (each type occurs at most once per pattern)
        this is 1.  When a query pattern repeats a type, every arriving event
        of that type updates the counts of ``k`` prefixes, so the processing
        cost of that query grows by the maximal repetition count.
        """
        counts: dict[str, int] = {}
        for event_type in query.pattern.event_types:
            counts[event_type] = counts.get(event_type, 0) + 1
        return float(max(counts.values(), default=1))

    # -- Non-Shared method (Section 3.2) ----------------------------------------
    def non_shared_query_cost(self, pattern: Pattern, query: Query) -> float:
        """``NonShared(p, qi)`` (Equation 2).

        Every matched event updates one count per non-expired START event of
        the query's full pattern, hence the product of the START-type rate and
        the total matched-event rate.
        """
        factor = self.occurrence_factor(pattern, query)
        return factor * self.rates.start_rate(query.pattern) * self.pattern_rate(query.pattern)

    def non_shared_cost(self, pattern: Pattern, queries: Iterable[Query]) -> float:
        """``NonShared(p, Qp)`` (Equation 3)."""
        return float(sum(self.non_shared_query_cost(pattern, q) for q in queries))

    # -- Shared method (Section 3.3) ---------------------------------------------
    def computation_cost(self, pattern: Pattern, query: Query) -> float:
        """``Comp(p, qi)`` (Equation 4): per-query prefix and suffix maintenance."""
        split = query.pattern.split_around(pattern)
        cost = 0.0
        if len(split.prefix) > 0:
            cost += self.rates.start_rate(split.prefix) * self.pattern_rate(split.prefix)
        if len(split.suffix) > 0:
            cost += self.rates.start_rate(split.suffix) * self.pattern_rate(split.suffix)
        return self.occurrence_factor(pattern, query) * cost

    def combination_cost(self, pattern: Pattern, query: Query) -> float:
        """``Comb(p, qi)`` (Equation 5): combining the shared aggregates.

        The cost is the product of the numbers of per-START-event counts of
        the segments that must be combined.  With both a prefix and a suffix
        this is exactly Equation 5; with a single missing segment it
        degenerates to the product of the two remaining start rates; when the
        query pattern *is* the shared pattern there is nothing to combine.
        """
        split = query.pattern.split_around(pattern)
        start_rates = [self.rates.start_rate(segment) for segment in split.segments]
        if len(start_rates) <= 1:
            return 0.0
        product = 1.0
        for rate in start_rates:
            product *= rate
        return product

    def shared_query_cost(self, pattern: Pattern, query: Query) -> float:
        """``Shared(p, qi)`` (Equation 6)."""
        return self.computation_cost(pattern, query) + self.combination_cost(pattern, query)

    def shared_cost(self, pattern: Pattern, queries: Iterable[Query]) -> float:
        """``Shared(p, Qp)`` (Equation 7): the pattern is computed once for all."""
        queries = list(queries)
        shared_pattern_cost = self.rates.start_rate(pattern) * self.pattern_rate(pattern)
        return shared_pattern_cost + float(
            sum(self.shared_query_cost(pattern, q) for q in queries)
        )

    # -- benefit -------------------------------------------------------------------
    def breakdown(self, pattern: Pattern, queries: Iterable[Query]) -> BenefitBreakdown:
        """Both sides of Equation 8 for inspection."""
        queries = list(queries)
        return BenefitBreakdown(
            non_shared=self.non_shared_cost(pattern, queries),
            shared=self.shared_cost(pattern, queries),
        )

    def benefit(self, pattern: Pattern, queries: Iterable[Query]) -> float:
        """``BValue(p, Qp)`` (Equation 8)."""
        return self.breakdown(pattern, queries).benefit

    def candidate_benefit(self, workload: Workload, candidate: SharingCandidate) -> float:
        """Benefit of a candidate expressed over query names."""
        queries = [workload[name] for name in candidate.query_names]
        return self.benefit(candidate.pattern, queries)

    def evaluate_candidates(
        self, workload: Workload, candidates: Iterable[SharingCandidate]
    ) -> list[SharingCandidate]:
        """Attach benefits to candidates and drop the non-beneficial ones.

        This is the *non-beneficial candidate pruning* principle of
        Section 3.4: only candidates with a strictly positive benefit survive.
        """
        evaluated = []
        for candidate in candidates:
            value = self.candidate_benefit(workload, candidate)
            if value > 0:
                evaluated.append(candidate.with_benefit(value))
        return evaluated

    def workload_non_shared_cost(self, workload: Workload) -> float:
        """Cost of evaluating the whole workload without any sharing.

        This is the baseline the executor falls back to when no pattern can
        be shared (Section 6, "worst case").
        """
        return float(
            sum(
                self.rates.start_rate(q.pattern) * self.pattern_rate(q.pattern)
                for q in workload
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BenefitModel({self.rates!r})"
