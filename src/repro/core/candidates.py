"""Sharing candidates and sharable-pattern detection.

A *sharable pattern* is a contiguous sub-pattern of length > 1 appearing in
more than one query of the workload; together with the set of queries that
contain it, it forms a *sharing candidate* ``(p, Qp)`` (Definition 3).

Detection follows the modified CCSpan algorithm of Appendix A (Algorithm 7):
instead of mining only closed frequent sequences, every contiguous
sub-pattern of every query pattern is enumerated (shorter patterns can be
shared by more queries), and those occurring in at least two queries are
retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..queries.pattern import Pattern
from ..queries.query import Query
from ..queries.workload import Workload

__all__ = ["SharingCandidate", "detect_sharable_patterns", "build_candidates"]


@dataclass(frozen=True)
class SharingCandidate:
    """A sharable pattern together with the queries that would share it.

    Two candidates are equal when they agree on the pattern and on the set of
    query names; the benefit value is informational and excluded from
    equality so a candidate keeps its identity when rates change.

    Attributes
    ----------
    pattern:
        The shared pattern ``p``.
    query_names:
        Names of the queries in ``Qp``, in workload order.
    benefit:
        ``BValue(p, Qp)`` under the benefit model used to build the candidate
        (Equation 8); also the vertex weight in the Sharon graph.
    """

    pattern: Pattern
    query_names: tuple[str, ...]
    benefit: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if len(self.pattern) < 2:
            raise ValueError(f"a sharable pattern has length > 1, got {self.pattern!r}")
        if len(self.query_names) < 2:
            raise ValueError(
                f"a sharing candidate needs at least two queries, got {self.query_names!r}"
            )
        if len(set(self.query_names)) != len(self.query_names):
            raise ValueError(f"duplicate query names in candidate: {self.query_names!r}")

    @property
    def query_set(self) -> frozenset[str]:
        return frozenset(self.query_names)

    @property
    def is_beneficial(self) -> bool:
        """Whether sharing this candidate is estimated to pay off (Definition 5)."""
        return self.benefit > 0

    def shares_query_with(self, other: "SharingCandidate") -> bool:
        return bool(self.query_set & other.query_set)

    def common_queries(self, other: "SharingCandidate") -> tuple[str, ...]:
        """Names of queries shared with ``other``, in this candidate's order."""
        common = self.query_set & other.query_set
        return tuple(name for name in self.query_names if name in common)

    def restricted_to(self, query_names: Iterable[str], benefit: float = 0.0) -> "SharingCandidate":
        """A candidate *option* sharing the same pattern among fewer queries.

        Used by sharing-conflict resolution (Section 7.1).  The relative order
        of query names is preserved.
        """
        keep = set(query_names)
        names = tuple(name for name in self.query_names if name in keep)
        return SharingCandidate(self.pattern, names, benefit)

    def with_benefit(self, benefit: float) -> "SharingCandidate":
        return SharingCandidate(self.pattern, self.query_names, benefit)

    def key(self) -> tuple:
        """Stable sort key: pattern types then query names."""
        return (self.pattern.event_types, self.query_names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.pattern!r}, {{{', '.join(self.query_names)}}}, benefit={self.benefit:g})"


def detect_sharable_patterns(workload: Workload) -> dict[Pattern, tuple[str, ...]]:
    """Modified CCSpan detection (Algorithm 7).

    Returns a mapping from each sharable pattern ``p`` (contiguous
    sub-pattern, length > 1, appearing in more than one query) to the names of
    the queries ``Qp`` that contain it, in workload order.

    Complexity is ``O(n * l^2)`` over ``n`` queries with patterns of maximal
    length ``l`` — linear in the workload size for bounded pattern lengths,
    as analysed in Appendix A.
    """
    occurrences: dict[Pattern, list[str]] = {}
    for query in workload:
        seen_in_query: set[Pattern] = set()
        for subpattern in query.pattern.contiguous_subpatterns(min_length=2):
            if subpattern in seen_in_query:
                continue  # count a query once even if the sub-pattern repeats
            seen_in_query.add(subpattern)
            occurrences.setdefault(subpattern, []).append(query.name)
    return {
        pattern: tuple(names)
        for pattern, names in occurrences.items()
        if len(names) > 1
    }


def build_candidates(
    workload: Workload,
    sharable: Mapping[Pattern, tuple[str, ...]] | None = None,
) -> list[SharingCandidate]:
    """Materialise :class:`SharingCandidate` objects for a workload.

    ``sharable`` may be passed to reuse a previous detection; benefits are
    left at zero — the graph builder assigns them from the benefit model.
    Candidates are returned in a deterministic order (sorted by pattern then
    query names).
    """
    if sharable is None:
        sharable = detect_sharable_patterns(workload)
    candidates = [
        SharingCandidate(pattern, names) for pattern, names in sharable.items()
    ]
    candidates.sort(key=SharingCandidate.key)
    return candidates


def queries_of(workload: Workload, candidate: SharingCandidate) -> tuple[Query, ...]:
    """Resolve a candidate's query names back to :class:`Query` objects."""
    return tuple(workload[name] for name in candidate.query_names)
