"""Context segmentation for heterogeneous workloads (Section 7.2).

The core Sharon model assumes that all queries agree on predicates, grouping,
and windows (Section 2.1, assumption 2).  Section 7.2 relaxes this by
partitioning the workload into *contexts* — groups of queries with identical
window, predicates, and grouping — and applying Sharon within each context:
patterns are only shared among queries that can actually reuse each other's
aggregates, and the stream is evaluated once per context.

This module provides that partitioning plus a convenience runner
(:class:`MultiContextExecutor`) that optimizes and executes every context and
merges results and metrics.  The refinement strategies the paper cites for
sharing *across* different windows/predicates (stream slicing à la
[14, 17, 7, 20]) are orthogonal and not reimplemented here; contexts are
evaluated independently, which is the fallback behaviour the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..events.event import Event
from ..events.stream import EventStream
from ..queries.query import Query
from ..queries.workload import Workload
from ..utils.rates import RateCatalog
from .benefit import BenefitModel
from .optimizer import OptimizationResult, SharonOptimizer
from .plan import SharingPlan

__all__ = ["ExecutionContext", "split_into_contexts", "MultiContextExecutor"]


@dataclass(frozen=True)
class ContextKey:
    """The parts of a query that must agree for aggregate sharing."""

    window_size: int
    window_slide: int
    group_by: tuple[str, ...]
    predicates_repr: str

    @classmethod
    def of(cls, query: Query) -> "ContextKey":
        return cls(
            window_size=query.window.size,
            window_slide=query.window.slide,
            group_by=query.group_by,
            predicates_repr=repr(query.predicates),
        )


@dataclass
class ExecutionContext:
    """One uniform slice of a heterogeneous workload."""

    name: str
    workload: Workload
    plan: SharingPlan = field(default_factory=SharingPlan)
    optimization: OptimizationResult | None = None

    @property
    def query_names(self) -> tuple[str, ...]:
        return self.workload.query_names()


def split_into_contexts(workload: Workload) -> list[ExecutionContext]:
    """Partition a workload into maximal uniform contexts.

    Queries sharing window, predicates, and grouping end up in the same
    context; the relative query order inside each context follows the input
    workload.  The result is deterministic (contexts ordered by first query).
    """
    buckets: dict[ContextKey, list[Query]] = {}
    order: list[ContextKey] = []
    for query in workload:
        key = ContextKey.of(query)
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(query)
    contexts = []
    for index, key in enumerate(order):
        queries = buckets[key]
        contexts.append(
            ExecutionContext(
                name=f"{workload.name}-ctx{index + 1}",
                workload=Workload(queries, name=f"{workload.name}-ctx{index + 1}"),
            )
        )
    return contexts


class MultiContextExecutor:
    """Optimize and execute a heterogeneous workload context by context.

    Parameters
    ----------
    workload:
        Any workload; it is split with :func:`split_into_contexts`.
    rates:
        Rate catalog or benefit model handed to the per-context optimizers.
        When omitted, rates are estimated from the stream at :meth:`run` time.
    optimizer_factory:
        Callable building an optimizer from a rate source; defaults to
        :class:`~repro.core.optimizer.SharonOptimizer` with default settings.
    memory_sample_interval:
        Forwarded to the per-context executors.
    """

    def __init__(
        self,
        workload: Workload,
        rates: "RateCatalog | BenefitModel | None" = None,
        optimizer_factory=None,
        memory_sample_interval: int = 0,
    ) -> None:
        self.workload = workload
        self.rates = rates
        self.optimizer_factory = optimizer_factory or (lambda r: SharonOptimizer(r))
        self.memory_sample_interval = memory_sample_interval
        self.contexts = split_into_contexts(workload)

    def optimize(self, rates: "RateCatalog | BenefitModel") -> list[ExecutionContext]:
        """Run the optimizer once per context and record plans in place."""
        for context in self.contexts:
            optimizer = self.optimizer_factory(rates)
            result = optimizer.optimize(context.workload)
            context.plan = result.plan
            context.optimization = result
        return self.contexts

    def run(self, stream: "EventStream | Iterable[Event]"):
        """Optimize (if needed) and execute every context over ``stream``.

        Returns
        -------
        ExecutionReport
            Results of all queries across all contexts; metrics are summed
            over contexts (total events counts each stream pass, mirroring
            the fact that every context scans the stream).
        """
        from ..executor.engine import ExecutionReport
        from ..executor.metrics import RunMetrics
        from ..executor.results import ResultSet
        from ..executor.shared import SharonExecutor

        if isinstance(stream, EventStream):
            event_stream = stream
        else:
            event_stream = EventStream(stream)

        rates = self.rates
        if rates is None:
            rates = RateCatalog.from_stream(event_stream, per="time-unit")
        if any(context.optimization is None for context in self.contexts):
            self.optimize(rates)

        merged_results = ResultSet()
        total = RunMetrics(executor_name="Sharon (multi-context)")
        combined_plan = SharingPlan()
        for context in self.contexts:
            executor = SharonExecutor(
                context.workload,
                plan=context.plan,
                memory_sample_interval=self.memory_sample_interval,
            )
            report = executor.run(event_stream)
            for result in report.results:
                merged_results.add(result)
            total = RunMetrics(
                executor_name=total.executor_name,
                total_events=total.total_events + report.metrics.total_events,
                relevant_events=total.relevant_events + report.metrics.relevant_events,
                elapsed_seconds=total.elapsed_seconds + report.metrics.elapsed_seconds,
                windows_finalized=total.windows_finalized + report.metrics.windows_finalized,
                results_emitted=total.results_emitted + report.metrics.results_emitted,
                peak_memory_bytes=max(
                    total.peak_memory_bytes, report.metrics.peak_memory_bytes
                ),
                state_updates=total.state_updates + report.metrics.state_updates,
            )
            combined_plan = combined_plan.union(context.plan)
        return ExecutionReport(results=merged_results, metrics=total, plan=combined_plan)
