"""Reproduction of "Sharon: Shared Online Event Sequence Aggregation" (ICDE 2018).

The package is organised as follows:

* :mod:`repro.events`   — events, schemas, streams, sliding windows.
* :mod:`repro.queries`  — patterns, predicates, aggregates, queries, parser.
* :mod:`repro.core`     — the Sharon optimizer: benefit model, Sharon graph,
  GWMIN, graph reduction, plan finder, conflict resolution.
* :mod:`repro.executor` — runtime executors: Sharon (shared online), A-Seq
  (non-shared online), Flink-like and SPASS-like two-step baselines.
* :mod:`repro.datasets` — Taxi / Linear Road / E-commerce simulators and
  workload generators.
* :mod:`repro.utils`    — rate catalog, memory measurement, validation.

The most common entry points are re-exported here; see ``README.md`` for a
quickstart and ``examples/`` for end-to-end scripts.
"""

from .core import (
    BenefitModel,
    ExhaustiveOptimizer,
    GreedyOptimizer,
    OptimizationResult,
    SharingCandidate,
    SharingPlan,
    SharonGraph,
    SharonOptimizer,
    build_sharon_graph,
)
from .events import Event, EventSchema, EventStream, SlidingWindow, WindowInstance
from .executor import (
    ASeqExecutor,
    ExecutionReport,
    FlinkLikeExecutor,
    ResultSet,
    RunMetrics,
    SharonExecutor,
    SpassLikeExecutor,
    run_workload,
)
from .queries import (
    AggregateSpec,
    Pattern,
    PredicateSet,
    Query,
    Workload,
    parse_query,
)
from .utils import RateCatalog

__version__ = "1.0.0"

__all__ = [
    "BenefitModel",
    "ExhaustiveOptimizer",
    "GreedyOptimizer",
    "OptimizationResult",
    "SharingCandidate",
    "SharingPlan",
    "SharonGraph",
    "SharonOptimizer",
    "build_sharon_graph",
    "Event",
    "EventSchema",
    "EventStream",
    "SlidingWindow",
    "WindowInstance",
    "ASeqExecutor",
    "ExecutionReport",
    "FlinkLikeExecutor",
    "ResultSet",
    "RunMetrics",
    "SharonExecutor",
    "SpassLikeExecutor",
    "run_workload",
    "AggregateSpec",
    "Pattern",
    "PredicateSet",
    "Query",
    "Workload",
    "parse_query",
    "RateCatalog",
    "__version__",
]
