"""Query workloads matching the paper's motivating examples and sweeps.

Two fixed workloads reconstruct the running examples:

* :func:`traffic_workload` — queries q1–q7 of the traffic use case
  (Figure 1).  The paper shows only their shared sub-patterns (Table 1); the
  reconstruction below is the minimal set of route queries whose sharable
  patterns are *exactly* the seven candidates p1–p7 of Table 1 with exactly
  the query sets listed there, which the integration tests assert.
* :func:`purchase_workload` — queries q8–q11 of the e-commerce use case
  (Figure 2): four item-sequence queries all containing ``(Laptop, Case)``.

Parameterised generators (:func:`traffic_workload_scaled`,
:func:`ecommerce_workload_scaled`) produce the larger workloads used by the
evaluation sweeps (20–180 queries, pattern lengths 10–30) on top of the
Linear Road / e-commerce streams.
"""

from __future__ import annotations

import random

from ..events.event import Event
from ..events.stream import EventStream
from ..events.windows import SlidingWindow
from ..queries.aggregates import AggregateSpec
from ..queries.pattern import Pattern
from ..queries.predicates import FilterPredicate, PredicateSet
from ..queries.query import Query
from ..queries.workload import Workload
from .ecommerce import EcommerceConfig, item_types
from .linear_road import LinearRoadConfig, segment_types
from .synthetic import ChainConfig, chain_workload

__all__ = [
    "TRAFFIC_PATTERNS",
    "PURCHASE_PATTERNS",
    "traffic_workload",
    "purchase_workload",
    "traffic_workload_scaled",
    "ecommerce_workload_scaled",
    "random_scenario",
    "random_churn_scenario",
    "describe_scenario",
    "PANE_STRESS_WINDOWS",
]


#: Reconstructed route patterns of queries q1–q7 (consistent with Table 1).
TRAFFIC_PATTERNS: dict[str, tuple[str, ...]] = {
    "q1": ("OakSt", "MainSt", "StateSt"),
    "q2": ("OakSt", "MainSt", "WestSt"),
    "q3": ("ParkAve", "OakSt", "MainSt"),
    "q4": ("ParkAve", "OakSt", "MainSt", "WestSt"),
    "q5": ("MainSt", "StateSt", "HighSt"),
    "q6": ("ElmSt", "ParkAve", "GroveSt"),
    "q7": ("ElmSt", "ParkAve", "CherrySt"),
}

#: Item-sequence patterns of queries q8–q11 (Figure 2).
PURCHASE_PATTERNS: dict[str, tuple[str, ...]] = {
    "q8": ("Laptop", "Case", "Adapter"),
    "q9": ("Laptop", "Case", "KeyboardProtector"),
    "q10": ("Laptop", "Case", "Mouse"),
    "q11": ("Laptop", "Case", "iPhone", "ScreenProtector"),
}


def traffic_workload(
    window: SlidingWindow | None = None,
    aggregate: AggregateSpec | None = None,
) -> Workload:
    """The traffic monitoring workload q1–q7 (Figure 1).

    Every query counts trips (sequences of position reports of the same
    vehicle) on its route within a 10-minute window sliding every minute,
    matching the description in Section 1.
    """
    window = window if window is not None else SlidingWindow(size=600, slide=60)
    spec = aggregate if aggregate is not None else AggregateSpec.count_star()
    predicates = PredicateSet.same("vehicle")
    queries = [
        Query(
            pattern=Pattern(types),
            window=window,
            aggregate=spec,
            predicates=predicates,
            name=name,
        )
        for name, types in TRAFFIC_PATTERNS.items()
    ]
    return Workload(queries, name="traffic")


def purchase_workload(
    window: SlidingWindow | None = None,
    aggregate: AggregateSpec | None = None,
) -> Workload:
    """The purchase monitoring workload q8–q11 (Figure 2).

    Item sequences of the same customer within a 20-minute window sliding
    every minute.
    """
    window = window if window is not None else SlidingWindow(size=1200, slide=60)
    spec = aggregate if aggregate is not None else AggregateSpec.count_star()
    predicates = PredicateSet.same("customer")
    queries = [
        Query(
            pattern=Pattern(types),
            window=window,
            aggregate=spec,
            predicates=predicates,
            name=name,
        )
        for name, types in PURCHASE_PATTERNS.items()
    ]
    return Workload(queries, name="purchase")


#: Event type alphabet of the randomized differential scenarios.
_SCENARIO_TYPES = ("A", "B", "C", "D")

#: (size, slide) pairs of the pane-stressing regime: small slides (deep
#: instance overlap), slide-does-not-divide-size shapes (pane width strictly
#: between 1 and slide), the gcd=1 degenerate (unit-width panes), and one
#: tumbling pair exercising the pane-ineligible fallback path.
PANE_STRESS_WINDOWS: tuple[tuple[int, int], ...] = (
    (12, 2),   # deep overlap, slide divides size
    (12, 3),
    (10, 4),   # slide does not divide size: pane width 2
    (9, 6),    # pane width 3
    (8, 6),    # pane width 2
    (7, 3),    # gcd = 1: unit-width panes
    (7, 2),    # gcd = 1
    (6, 4),    # pane width 2
    (12, 8),   # pane width 4
    (6, 6),    # tumbling: pane-ineligible, engine must fall back
)


def _random_pattern(rng: random.Random) -> Pattern:
    """A short random pattern; occasionally with a repeated event type."""
    length = rng.randint(2, 3)
    if rng.random() < 0.15:
        # Repeated types stress multi-position dispatch and cohort columns.
        types = [rng.choice(_SCENARIO_TYPES) for _ in range(length)]
    else:
        types = rng.sample(_SCENARIO_TYPES, length)
    return Pattern(tuple(types))


def _random_aggregate(rng: random.Random, pattern: Pattern) -> AggregateSpec:
    """A random RETURN clause targeting one of the pattern's event types."""
    target = rng.choice(pattern.event_types)
    roll = rng.random()
    if roll < 0.45:
        return AggregateSpec.count_star()
    if roll < 0.60:
        return AggregateSpec.count(target)
    if roll < 0.72:
        return AggregateSpec.sum(target, "value")
    if roll < 0.82:
        return AggregateSpec.min(target, "value")
    if roll < 0.92:
        return AggregateSpec.max(target, "value")
    return AggregateSpec.avg(target, "value")


def random_scenario(
    seed: int,
    max_queries: int = 4,
    max_events: int = 36,
    max_timestamp: int = 22,
    pane_stress: bool = False,
) -> tuple[Workload, EventStream]:
    """One randomized differential-testing scenario: (uniform workload, stream).

    Draws a grid point over the dimensions where aggregation bugs hide:
    window size and slide (tumbling and overlapping), grouping attributes,
    equivalence and filter predicates, per-query aggregate functions (COUNT,
    SUM, MIN, MAX, AVG — they may differ across queries, exercising
    multi-spec shared states), pattern shapes including repeated types, and
    a short stream with bursty same-timestamp batches.  Deterministic in
    ``seed`` so every scenario of the differential harness is reproducible.

    With ``pane_stress=True`` the window is drawn from
    :data:`PANE_STRESS_WINDOWS` instead — shapes chosen to exercise the
    pane-partitioned engine mode where it is most fragile: deep instance
    overlap, panes narrower than the slide, unit-width panes (gcd = 1), and
    the tumbling fallback.
    """
    rng = random.Random(seed)

    if pane_stress:
        size, slide = rng.choice(PANE_STRESS_WINDOWS)
    else:
        size = rng.choice((4, 6, 8, 10, 12))
        slide = rng.choice(tuple(s for s in (2, 3, 4, 6, size) if s <= size))
    window = SlidingWindow(size=size, slide=slide)

    group_by = ("region",) if rng.random() < 0.3 else ()
    equivalences = PredicateSet.same("entity").equivalences if rng.random() < 0.4 else ()
    filters = []
    if rng.random() < 0.3:
        event_type = rng.choice((None, rng.choice(_SCENARIO_TYPES)))
        op = rng.choice((">", "<=", "!="))
        filters.append(FilterPredicate("value", op, rng.randint(2, 8), event_type))
    predicates = PredicateSet(equivalences=equivalences, filters=filters)

    queries = []
    for index in range(rng.randint(2, max_queries)):
        pattern = _random_pattern(rng)
        queries.append(
            Query(
                pattern=pattern,
                window=window,
                aggregate=_random_aggregate(rng, pattern),
                predicates=predicates,
                group_by=group_by,
                name=f"s{seed}q{index}",
            )
        )
    workload = Workload(queries, name=f"scenario-{seed}")

    events = []
    for event_id in range(rng.randint(8, max_events)):
        events.append(
            Event(
                rng.choice(_SCENARIO_TYPES),
                rng.randint(0, max_timestamp),
                {
                    "entity": rng.randint(0, 1),
                    "region": rng.randint(0, 1),
                    "value": rng.randint(0, 10),
                },
                event_id,
            )
        )
    return workload, EventStream(events, name=f"scenario-{seed}")


def random_churn_scenario(seed: int, max_queries: int = 5):
    """One randomized churn-differential scenario: (workload, stream, schedule).

    Builds on :func:`random_scenario` (same windows, predicates, aggregates,
    and bursty stream) and splits its queries into an initial workload plus
    mid-run joiners: every joiner becomes a timestamped attach op, and up to
    two detach ops target random queries.  Candidate detaches are simulated
    in schedule order and dropped when invalid (target not active at that
    point, or it would empty the workload), so every generated schedule is
    applicable as-is.  Deterministic in ``seed``; at least one attach op is
    always present.

    Returns ``(workload, stream, schedule)`` where ``workload`` holds only
    the initial queries and ``schedule`` is a
    :class:`~repro.executor.churn.ChurnSchedule`.
    """
    from ..executor.churn import ChurnOp, ChurnSchedule

    full_workload, stream = random_scenario(seed, max_queries=max_queries)
    rng = random.Random(seed * 6151 + 17)
    queries = full_workload.queries
    initial_count = rng.randint(1, len(queries) - 1)
    initial = queries[:initial_count]

    ops = [
        ChurnOp("attach", rng.randint(1, 20), query=query) for query in queries[initial_count:]
    ]

    def applies(candidate: "list[ChurnOp]") -> bool:
        active = {query.name for query in initial}
        for op in ChurnSchedule(candidate):
            if op.kind == "attach":
                if op.query_name in active:
                    return False
                active.add(op.query_name)
            else:
                if op.query_name not in active or len(active) == 1:
                    return False
                active.remove(op.query_name)
        return True

    for _ in range(rng.randint(0, 2)):
        target = rng.choice(queries).name
        candidate = ops + [ChurnOp("detach", rng.randint(2, 22), query_name=target)]
        if applies(candidate):
            ops = candidate

    workload = Workload(initial, name=f"churn-scenario-{seed}")
    return workload, stream, ChurnSchedule(ops)


def describe_scenario(workload: Workload, stream: EventStream) -> str:
    """Human-readable dump of a scenario (used by failing differential tests)."""
    lines = [f"workload {workload.name!r}:"]
    for query in workload:
        lines.append(f"  {query!r}")
    lines.append(f"stream {stream.name!r} ({len(stream)} events):")
    for event in stream:
        lines.append(
            f"  ({event.event_type!r}, t={event.timestamp}, {dict(event.attributes)!r})"
        )
    return "\n".join(lines)


def traffic_workload_scaled(
    num_queries: int,
    pattern_length: int = 10,
    config: LinearRoadConfig = LinearRoadConfig(),
    window: SlidingWindow | None = None,
    seed: int = 5,
) -> Workload:
    """A scaled traffic workload over the Linear Road segment types.

    Queries count car trips across ``pattern_length`` consecutive expressway
    segments; starting segments are drawn pseudo-randomly so queries overlap
    heavily (the sharing-rich regime of Figures 14–16).
    """
    chain = ChainConfig(
        num_event_types=config.num_segments,
        type_prefix="Seg",
        entity_attribute="car",
    )
    # Sanity: the chain types must coincide with the LR segment types.
    assert tuple(f"Seg{i}" for i in range(config.num_segments)) == segment_types(config)
    window = window if window is not None else SlidingWindow(size=60, slide=30)
    return chain_workload(
        num_queries,
        pattern_length,
        config=chain,
        window=window,
        seed=seed,
        name=f"traffic-{num_queries}q-len{pattern_length}",
    )


def ecommerce_workload_scaled(
    num_queries: int,
    pattern_length: int = 10,
    config: EcommerceConfig = EcommerceConfig(),
    window: SlidingWindow | None = None,
    seed: int = 9,
) -> Workload:
    """A scaled purchase workload over the e-commerce item types.

    Queries count item sequences along the purchase dependency chain; used by
    the pattern-length sweep (Figure 14(c,g,h)) and the optimizer sweep
    (Figure 15).
    """
    items = item_types(config)
    if pattern_length > len(items):
        raise ValueError(
            f"pattern_length {pattern_length} exceeds the item catalogue size {len(items)}"
        )
    window = window if window is not None else SlidingWindow(size=60, slide=30)
    # Reuse the chain generator but substitute the item type names.
    chain = ChainConfig(
        num_event_types=len(items), type_prefix="__item__", entity_attribute="customer"
    )
    template = chain_workload(
        num_queries,
        pattern_length,
        config=chain,
        window=window,
        seed=seed,
        name=f"purchase-{num_queries}q-len{pattern_length}",
    )
    renamed = []
    for query in template:
        types = tuple(items[int(t.removeprefix("__item__"))] for t in query.pattern.event_types)
        renamed.append(query.with_pattern(types, name=query.name))
    return Workload(renamed, name=template.name)
