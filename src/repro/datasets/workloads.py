"""Query workloads matching the paper's motivating examples and sweeps.

Two fixed workloads reconstruct the running examples:

* :func:`traffic_workload` — queries q1–q7 of the traffic use case
  (Figure 1).  The paper shows only their shared sub-patterns (Table 1); the
  reconstruction below is the minimal set of route queries whose sharable
  patterns are *exactly* the seven candidates p1–p7 of Table 1 with exactly
  the query sets listed there, which the integration tests assert.
* :func:`purchase_workload` — queries q8–q11 of the e-commerce use case
  (Figure 2): four item-sequence queries all containing ``(Laptop, Case)``.

Parameterised generators (:func:`traffic_workload_scaled`,
:func:`ecommerce_workload_scaled`) produce the larger workloads used by the
evaluation sweeps (20–180 queries, pattern lengths 10–30) on top of the
Linear Road / e-commerce streams.
"""

from __future__ import annotations

from ..events.windows import SlidingWindow
from ..queries.aggregates import AggregateSpec
from ..queries.pattern import Pattern
from ..queries.predicates import PredicateSet
from ..queries.query import Query
from ..queries.workload import Workload
from .ecommerce import EcommerceConfig, item_types
from .linear_road import LinearRoadConfig, segment_types
from .synthetic import ChainConfig, chain_workload

__all__ = [
    "TRAFFIC_PATTERNS",
    "PURCHASE_PATTERNS",
    "traffic_workload",
    "purchase_workload",
    "traffic_workload_scaled",
    "ecommerce_workload_scaled",
]


#: Reconstructed route patterns of queries q1–q7 (consistent with Table 1).
TRAFFIC_PATTERNS: dict[str, tuple[str, ...]] = {
    "q1": ("OakSt", "MainSt", "StateSt"),
    "q2": ("OakSt", "MainSt", "WestSt"),
    "q3": ("ParkAve", "OakSt", "MainSt"),
    "q4": ("ParkAve", "OakSt", "MainSt", "WestSt"),
    "q5": ("MainSt", "StateSt", "HighSt"),
    "q6": ("ElmSt", "ParkAve", "GroveSt"),
    "q7": ("ElmSt", "ParkAve", "CherrySt"),
}

#: Item-sequence patterns of queries q8–q11 (Figure 2).
PURCHASE_PATTERNS: dict[str, tuple[str, ...]] = {
    "q8": ("Laptop", "Case", "Adapter"),
    "q9": ("Laptop", "Case", "KeyboardProtector"),
    "q10": ("Laptop", "Case", "Mouse"),
    "q11": ("Laptop", "Case", "iPhone", "ScreenProtector"),
}


def traffic_workload(
    window: SlidingWindow | None = None,
    aggregate: AggregateSpec | None = None,
) -> Workload:
    """The traffic monitoring workload q1–q7 (Figure 1).

    Every query counts trips (sequences of position reports of the same
    vehicle) on its route within a 10-minute window sliding every minute,
    matching the description in Section 1.
    """
    window = window if window is not None else SlidingWindow(size=600, slide=60)
    spec = aggregate if aggregate is not None else AggregateSpec.count_star()
    predicates = PredicateSet.same("vehicle")
    queries = [
        Query(
            pattern=Pattern(types),
            window=window,
            aggregate=spec,
            predicates=predicates,
            name=name,
        )
        for name, types in TRAFFIC_PATTERNS.items()
    ]
    return Workload(queries, name="traffic")


def purchase_workload(
    window: SlidingWindow | None = None,
    aggregate: AggregateSpec | None = None,
) -> Workload:
    """The purchase monitoring workload q8–q11 (Figure 2).

    Item sequences of the same customer within a 20-minute window sliding
    every minute.
    """
    window = window if window is not None else SlidingWindow(size=1200, slide=60)
    spec = aggregate if aggregate is not None else AggregateSpec.count_star()
    predicates = PredicateSet.same("customer")
    queries = [
        Query(
            pattern=Pattern(types),
            window=window,
            aggregate=spec,
            predicates=predicates,
            name=name,
        )
        for name, types in PURCHASE_PATTERNS.items()
    ]
    return Workload(queries, name="purchase")


def traffic_workload_scaled(
    num_queries: int,
    pattern_length: int = 10,
    config: LinearRoadConfig = LinearRoadConfig(),
    window: SlidingWindow | None = None,
    seed: int = 5,
) -> Workload:
    """A scaled traffic workload over the Linear Road segment types.

    Queries count car trips across ``pattern_length`` consecutive expressway
    segments; starting segments are drawn pseudo-randomly so queries overlap
    heavily (the sharing-rich regime of Figures 14–16).
    """
    chain = ChainConfig(
        num_event_types=config.num_segments,
        type_prefix="Seg",
        entity_attribute="car",
    )
    # Sanity: the chain types must coincide with the LR segment types.
    assert tuple(f"Seg{i}" for i in range(config.num_segments)) == segment_types(config)
    window = window if window is not None else SlidingWindow(size=60, slide=30)
    return chain_workload(
        num_queries,
        pattern_length,
        config=chain,
        window=window,
        seed=seed,
        name=f"traffic-{num_queries}q-len{pattern_length}",
    )


def ecommerce_workload_scaled(
    num_queries: int,
    pattern_length: int = 10,
    config: EcommerceConfig = EcommerceConfig(),
    window: SlidingWindow | None = None,
    seed: int = 9,
) -> Workload:
    """A scaled purchase workload over the e-commerce item types.

    Queries count item sequences along the purchase dependency chain; used by
    the pattern-length sweep (Figure 14(c,g,h)) and the optimizer sweep
    (Figure 15).
    """
    items = item_types(config)
    if pattern_length > len(items):
        raise ValueError(
            f"pattern_length {pattern_length} exceeds the item catalogue size {len(items)}"
        )
    window = window if window is not None else SlidingWindow(size=60, slide=30)
    # Reuse the chain generator but substitute the item type names.
    chain = ChainConfig(
        num_event_types=len(items), type_prefix="__item__", entity_attribute="customer"
    )
    template = chain_workload(
        num_queries,
        pattern_length,
        config=chain,
        window=window,
        seed=seed,
        name=f"purchase-{num_queries}q-len{pattern_length}",
    )
    renamed = []
    for query in template:
        types = tuple(items[int(t.removeprefix("__item__"))] for t in query.pattern.event_types)
        renamed.append(query.with_pattern(types, name=query.name))
    return Workload(renamed, name=template.name)
