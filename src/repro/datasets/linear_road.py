"""Compact re-implementation of the Linear Road position-report generator (LR).

The Linear Road benchmark [6] simulates cars on an expressway emitting
position reports; the paper uses its traffic simulator to produce a 3-hour
stream whose rate ramps up from a few dozen to thousands of events per
second.  This module reproduces the aspects that matter for Sharon:

* event types are expressway *segments* (``Seg0`` ... ``SegN``) so that the
  traffic workload's sequence patterns (car crosses segment i, then i+1, ...)
  have matches;
* every report carries the car identifier (equivalence predicate), speed, and
  lane;
* the report rate increases linearly over the simulated duration, which is
  what drives the events-per-window sweeps of Figures 13 and 14.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..events.event import Event
from ..events.schema import AttributeSpec, EventSchema, SchemaRegistry
from ..events.stream import EventStream

__all__ = ["LinearRoadConfig", "segment_types", "linear_road_schema_registry", "generate_linear_road_stream"]


@dataclass(frozen=True)
class LinearRoadConfig:
    """Parameters of the Linear Road simulation."""

    num_segments: int = 20
    num_cars: int = 200
    duration_seconds: int = 600
    #: Report rate at the start and at the end of the simulation (events/s).
    initial_rate: float = 5.0
    final_rate: float = 50.0
    #: Probability that a car advances to the next segment after reporting.
    advance_probability: float = 0.7
    seed: int = 17

    def __post_init__(self) -> None:
        if self.num_segments < 2:
            raise ValueError("num_segments must be at least 2")
        if self.num_cars <= 0:
            raise ValueError("num_cars must be positive")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.initial_rate <= 0 or self.final_rate <= 0:
            raise ValueError("rates must be positive")


def segment_types(config: LinearRoadConfig = LinearRoadConfig()) -> tuple[str, ...]:
    """The segment event types ``Seg0 .. Seg{n-1}`` in travel order."""
    return tuple(f"Seg{i}" for i in range(config.num_segments))


def linear_road_schema_registry(config: LinearRoadConfig = LinearRoadConfig()) -> SchemaRegistry:
    registry = SchemaRegistry()
    for segment in segment_types(config):
        registry.register(
            EventSchema(
                segment,
                [
                    AttributeSpec("car", int),
                    AttributeSpec("speed", float),
                    AttributeSpec("lane", int),
                ],
            )
        )
    return registry


def generate_linear_road_stream(config: LinearRoadConfig = LinearRoadConfig()) -> EventStream:
    """Generate the LR position-report stream with a linearly ramping rate."""
    rng = random.Random(config.seed)
    types = segment_types(config)
    positions = {car: rng.randrange(config.num_segments) for car in range(config.num_cars)}

    events: list[Event] = []
    event_id = 0
    duration = config.duration_seconds
    for timestamp in range(duration):
        progress = timestamp / max(duration - 1, 1)
        rate = config.initial_rate + (config.final_rate - config.initial_rate) * progress
        arrivals = int(rate)
        if rng.random() < rate - arrivals:
            arrivals += 1
        for _ in range(arrivals):
            car = rng.randrange(config.num_cars)
            segment = positions[car]
            events.append(
                Event(
                    types[segment],
                    timestamp,
                    {
                        "car": car,
                        "speed": round(rng.uniform(30.0, 90.0), 1),
                        "lane": rng.randint(0, 3),
                    },
                    event_id,
                )
            )
            event_id += 1
            if rng.random() < config.advance_probability:
                positions[car] = (segment + 1) % config.num_segments
    return EventStream(events, name="linear-road")
