"""E-commerce purchase stream generator (EC).

The paper's EC data set is synthetic: "sequences of items bought together for
3 hours ... 50 items and 20 users ... 3k events per second" (Section 8.1).
This module reproduces it.  Each event is one item purchase carrying the
customer identifier and a price; customers follow *purchase dependency
chains* (a laptop tends to be followed by a case, then an adapter, ...), so
the purchase-pattern queries of Figure 2 have matches whose frequency decays
with pattern length.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..events.event import Event
from ..events.schema import AttributeSpec, EventSchema, SchemaRegistry
from ..events.stream import EventStream

__all__ = ["EcommerceConfig", "DEFAULT_ITEMS", "item_types", "ecommerce_schema_registry", "generate_ecommerce_stream"]


#: Named items of the motivating example (Figure 2); additional generic items
#: ``Item5`` ... are appended to reach the configured catalogue size.
DEFAULT_ITEMS: tuple[str, ...] = (
    "Laptop",
    "Case",
    "Adapter",
    "KeyboardProtector",
    "Mouse",
    "iPhone",
    "ScreenProtector",
    "Headphones",
    "Charger",
    "Dock",
)


@dataclass(frozen=True)
class EcommerceConfig:
    """Parameters of the purchase stream (defaults scaled down from the paper)."""

    num_items: int = 50
    num_customers: int = 20
    duration_seconds: int = 600
    purchases_per_second: float = 30.0
    #: Probability that a customer's next purchase follows the dependency chain.
    follow_probability: float = 0.6
    seed: int = 23

    def __post_init__(self) -> None:
        if self.num_items < 2:
            raise ValueError("num_items must be at least 2")
        if self.num_customers <= 0:
            raise ValueError("num_customers must be positive")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.purchases_per_second <= 0:
            raise ValueError("purchases_per_second must be positive")
        if not 0.0 <= self.follow_probability <= 1.0:
            raise ValueError("follow_probability must be a probability")


def item_types(config: EcommerceConfig = EcommerceConfig()) -> tuple[str, ...]:
    """Item event types: the named items first, then generated filler items."""
    items = list(DEFAULT_ITEMS[: config.num_items])
    next_index = len(items)
    while len(items) < config.num_items:
        items.append(f"Item{next_index}")
        next_index += 1
    return tuple(items)


def ecommerce_schema_registry(config: EcommerceConfig = EcommerceConfig()) -> SchemaRegistry:
    registry = SchemaRegistry()
    for item in item_types(config):
        registry.register(
            EventSchema(
                item,
                [AttributeSpec("customer", int), AttributeSpec("price", float)],
            )
        )
    return registry


def generate_ecommerce_stream(config: EcommerceConfig = EcommerceConfig()) -> EventStream:
    """Generate the synthetic purchase stream.

    Each customer has a current position in the dependency chain (the item
    catalogue in order).  With ``follow_probability`` the next purchase is the
    next item in the chain (producing the sequential patterns the workload
    counts); otherwise the customer buys a random item and restarts a chain
    there.
    """
    rng = random.Random(config.seed)
    items = item_types(config)
    positions = {customer: rng.randrange(len(items)) for customer in range(config.num_customers)}

    events: list[Event] = []
    event_id = 0
    for timestamp in range(config.duration_seconds):
        arrivals = int(config.purchases_per_second)
        if rng.random() < config.purchases_per_second - arrivals:
            arrivals += 1
        for _ in range(arrivals):
            customer = rng.randrange(config.num_customers)
            if rng.random() < config.follow_probability:
                position = (positions[customer] + 1) % len(items)
            else:
                position = rng.randrange(len(items))
            positions[customer] = position
            events.append(
                Event(
                    items[position],
                    timestamp,
                    {"customer": customer, "price": round(rng.uniform(5.0, 2000.0), 2)},
                    event_id,
                )
            )
            event_id += 1
    return EventStream(events, name="ecommerce")
