"""Generic synthetic stream and workload generators.

The evaluation sweeps of the paper vary three cost factors — the number of
queries, the length of their patterns, and the number of events per window
(Section 8.1).  The generators in this module produce parameterised
workloads and matching streams for those sweeps:

* :func:`chain_workload` creates queries whose patterns are contiguous slices
  of a global chain of event types, which yields the rich overlap structure
  (many sharable sub-patterns, many conflicts) the Sharon optimizer is
  designed for.
* :func:`chain_stream` creates a stream in which entities walk along that
  chain, so the queries actually match and the executors have real work to
  do.

The named data set modules (:mod:`~repro.datasets.taxi`,
:mod:`~repro.datasets.linear_road`, :mod:`~repro.datasets.ecommerce`) are
thin domain-flavoured wrappers over the same machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..events.event import Event
from ..events.stream import EventStream
from ..events.windows import SlidingWindow
from ..queries.aggregates import AggregateSpec
from ..queries.pattern import Pattern
from ..queries.predicates import PredicateSet
from ..queries.query import Query
from ..queries.workload import Workload

__all__ = ["ChainConfig", "chain_event_types", "chain_workload", "chain_stream"]


@dataclass(frozen=True)
class ChainConfig:
    """Parameters of the synthetic chain domain.

    Attributes
    ----------
    num_event_types:
        Length of the global chain of event types ``T0, T1, ...``.
    type_prefix:
        Prefix of the generated type names.
    entity_attribute:
        Name of the attribute identifying the walking entity (vehicle,
        customer, car ...); all queries carry the corresponding equivalence
        predicate so matched sequences belong to one entity.
    """

    num_event_types: int = 20
    type_prefix: str = "T"
    entity_attribute: str = "entity"


def chain_event_types(config: ChainConfig) -> tuple[str, ...]:
    """The global ordered chain of event types ``T0 .. T{n-1}``."""
    return tuple(f"{config.type_prefix}{i}" for i in range(config.num_event_types))


def chain_workload(
    num_queries: int,
    pattern_length: int,
    config: ChainConfig = ChainConfig(),
    window: SlidingWindow | None = None,
    seed: int = 7,
    name: str = "chain-workload",
    aggregate: AggregateSpec | None = None,
    offset_pool_size: int | None = None,
) -> Workload:
    """A workload of ``num_queries`` queries with overlapping chain patterns.

    Each query's pattern is a contiguous slice of the global chain starting
    at a pseudo-random offset, so nearby queries share long sub-patterns
    (mirroring the route structure of the traffic workload in Figure 1).

    ``offset_pool_size`` restricts the starting offsets to a small random
    pool; the smaller the pool, the more queries share identical slices and
    the denser the sharing opportunities (used by the executor benchmarks to
    reproduce the strongly shared regime of Figure 14).

    Raises
    ------
    ValueError
        If the requested pattern length exceeds the chain length.
    """
    if pattern_length < 2:
        raise ValueError("pattern_length must be at least 2")
    if pattern_length > config.num_event_types:
        raise ValueError(
            f"pattern_length {pattern_length} exceeds the chain length "
            f"{config.num_event_types}; enlarge ChainConfig.num_event_types"
        )
    if window is None:
        window = SlidingWindow(size=100, slide=50)
    rng = random.Random(seed)
    types = chain_event_types(config)
    max_offset = config.num_event_types - pattern_length
    predicates = PredicateSet.same(config.entity_attribute)
    spec = aggregate if aggregate is not None else AggregateSpec.count_star()

    if offset_pool_size is not None:
        if offset_pool_size < 1:
            raise ValueError("offset_pool_size must be positive")
        pool = [rng.randint(0, max_offset) for _ in range(offset_pool_size)]
    else:
        pool = None

    queries = []
    for index in range(num_queries):
        offset = rng.choice(pool) if pool is not None else rng.randint(0, max_offset)
        pattern = Pattern(types[offset : offset + pattern_length])
        queries.append(
            Query(
                pattern=pattern,
                window=window,
                aggregate=spec,
                predicates=predicates,
                name=f"q{index + 1}",
            )
        )
    return Workload(queries, name=name)


def chain_stream(
    duration: int,
    events_per_second: float,
    config: ChainConfig = ChainConfig(),
    num_entities: int = 10,
    advance_probability: float = 0.8,
    seed: int = 11,
    name: str = "chain-stream",
) -> EventStream:
    """A stream of entities walking (mostly) forward along the chain.

    Each time unit emits roughly ``events_per_second`` events.  An entity at
    chain position ``i`` reports type ``T_i`` and then advances with
    probability ``advance_probability`` (otherwise it re-reports the same
    position or jumps back), wrapping around at the end of the chain.  The
    walk structure guarantees that contiguous chain patterns actually match,
    with longer patterns matching less often — just like trips across
    consecutive street segments.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if events_per_second <= 0:
        raise ValueError("events_per_second must be positive")
    rng = random.Random(seed)
    types = chain_event_types(config)
    positions = {entity: rng.randrange(len(types)) for entity in range(num_entities)}

    events: list[Event] = []
    event_id = 0
    for timestamp in range(duration):
        arrivals = int(events_per_second)
        if rng.random() < events_per_second - arrivals:
            arrivals += 1
        for _ in range(arrivals):
            entity = rng.randrange(num_entities)
            position = positions[entity]
            events.append(
                Event(
                    types[position],
                    timestamp,
                    {config.entity_attribute: entity, "position": position},
                    event_id,
                )
            )
            event_id += 1
            roll = rng.random()
            if roll < advance_probability:
                positions[entity] = (position + 1) % len(types)
            elif roll < advance_probability + 0.1:
                positions[entity] = rng.randrange(len(types))
    return EventStream(events, name=name)
