"""Data set simulators (TX, LR, EC) and workload generators."""

from .ecommerce import (
    DEFAULT_ITEMS,
    EcommerceConfig,
    ecommerce_schema_registry,
    generate_ecommerce_stream,
    item_types,
)
from .linear_road import (
    LinearRoadConfig,
    generate_linear_road_stream,
    linear_road_schema_registry,
    segment_types,
)
from .synthetic import ChainConfig, chain_event_types, chain_stream, chain_workload
from .taxi import DEFAULT_STREETS, TaxiConfig, generate_taxi_stream, taxi_schema_registry
from .workloads import (
    PURCHASE_PATTERNS,
    TRAFFIC_PATTERNS,
    describe_scenario,
    ecommerce_workload_scaled,
    purchase_workload,
    random_churn_scenario,
    random_scenario,
    traffic_workload,
    traffic_workload_scaled,
)

__all__ = [
    "DEFAULT_ITEMS",
    "EcommerceConfig",
    "ecommerce_schema_registry",
    "generate_ecommerce_stream",
    "item_types",
    "LinearRoadConfig",
    "generate_linear_road_stream",
    "linear_road_schema_registry",
    "segment_types",
    "ChainConfig",
    "chain_event_types",
    "chain_stream",
    "chain_workload",
    "DEFAULT_STREETS",
    "TaxiConfig",
    "generate_taxi_stream",
    "taxi_schema_registry",
    "PURCHASE_PATTERNS",
    "TRAFFIC_PATTERNS",
    "describe_scenario",
    "ecommerce_workload_scaled",
    "purchase_workload",
    "random_churn_scenario",
    "random_scenario",
    "traffic_workload",
    "traffic_workload_scaled",
]
