"""Synthetic stand-in for the New York City Taxi / Uber data set (TX).

The paper's TX experiments replay 1.3 billion real trips (330 GB), which are
not available offline.  This module generates a *position-report* stream with
the same structural properties the executors and the cost model care about:

* event types are street segments (``OakSt``, ``MainSt`` ... plus generated
  avenues), so route patterns are contiguous sequences of street types;
* every report carries the vehicle identifier (the ``[vehicle]`` equivalence
  predicate of queries q1–q7), passenger count, and speed;
* vehicles drive routes drawn from a small set of popular routes with
  Zipf-like popularity, so some street sequences are frequent (popular
  routes) and others rare — the property that makes sharing worthwhile.

Absolute throughput numbers differ from the authors' testbed, but the
relative behaviour of the executors (who wins, how the gap scales with
queries / events per window) is preserved because it depends only on event
rates and match counts, both of which are controlled here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..events.event import Event
from ..events.schema import AttributeSpec, EventSchema, SchemaRegistry
from ..events.stream import EventStream

__all__ = ["TaxiConfig", "DEFAULT_STREETS", "taxi_schema_registry", "generate_taxi_stream"]


#: Street segments of the motivating example (Figure 1) plus filler avenues.
DEFAULT_STREETS: tuple[str, ...] = (
    "OakSt",
    "MainSt",
    "ParkAve",
    "WestSt",
    "StateSt",
    "ElmSt",
    "HighSt",
    "GroveSt",
    "CherrySt",
    "LakeAve",
)


@dataclass(frozen=True)
class TaxiConfig:
    """Parameters of the synthetic taxi stream."""

    streets: tuple[str, ...] = DEFAULT_STREETS
    num_vehicles: int = 50
    duration_seconds: int = 600
    reports_per_second: float = 20.0
    #: Number of distinct routes vehicles choose from; popularity is Zipf-like.
    num_routes: int = 8
    route_length: tuple[int, int] = (3, 5)
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_vehicles <= 0:
            raise ValueError("num_vehicles must be positive")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.reports_per_second <= 0:
            raise ValueError("reports_per_second must be positive")
        if not 2 <= self.route_length[0] <= self.route_length[1]:
            raise ValueError("route_length must be an increasing pair with minimum >= 2")


def taxi_schema_registry(config: TaxiConfig = TaxiConfig()) -> SchemaRegistry:
    """Schemas of the position-report event types (one per street segment)."""
    registry = SchemaRegistry()
    for street in config.streets:
        registry.register(
            EventSchema(
                street,
                [
                    AttributeSpec("vehicle", int),
                    AttributeSpec("passengers", int),
                    AttributeSpec("speed", float),
                ],
            )
        )
    return registry


def _build_routes(config: TaxiConfig, rng: random.Random) -> list[list[str]]:
    """Popular routes: contiguous runs over the street list, wrapping around."""
    routes = []
    for index in range(config.num_routes):
        length = rng.randint(*config.route_length)
        start = rng.randrange(len(config.streets))
        route = [config.streets[(start + offset) % len(config.streets)] for offset in range(length)]
        routes.append(route)
    return routes


def generate_taxi_stream(config: TaxiConfig = TaxiConfig()) -> EventStream:
    """Generate the synthetic TX position-report stream.

    Vehicles repeatedly pick a route (popular routes more often), then emit
    one report per route segment on consecutive seconds, so a trip over
    ``(OakSt, MainSt)`` produces exactly the event sequence the traffic
    queries count.
    """
    rng = random.Random(config.seed)
    routes = _build_routes(config, rng)
    # Zipf-like route popularity: route k is picked with weight 1/(k+1).
    weights = [1.0 / (k + 1) for k in range(len(routes))]

    #: Per-vehicle driving state: remaining segments of the current trip.
    remaining: dict[int, list[str]] = {vehicle: [] for vehicle in range(config.num_vehicles)}

    events: list[Event] = []
    event_id = 0
    for timestamp in range(config.duration_seconds):
        arrivals = int(config.reports_per_second)
        if rng.random() < config.reports_per_second - arrivals:
            arrivals += 1
        for _ in range(arrivals):
            vehicle = rng.randrange(config.num_vehicles)
            if not remaining[vehicle]:
                remaining[vehicle] = list(rng.choices(routes, weights=weights, k=1)[0])
            street = remaining[vehicle].pop(0)
            events.append(
                Event(
                    street,
                    timestamp,
                    {
                        "vehicle": vehicle,
                        "passengers": rng.randint(1, 4),
                        "speed": round(rng.uniform(5.0, 35.0), 1),
                    },
                    event_id,
                )
            )
            event_id += 1
    return EventStream(events, name="taxi")
