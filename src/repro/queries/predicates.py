"""Query predicates (optional WHERE clause).

The motivating queries of the paper use two flavours of predicates:

* **Equivalence predicates** such as ``[vehicle]`` — all events of a matched
  sequence must agree on an attribute (same vehicle / same customer).  These
  behave like an implicit partition of the stream, so executors evaluate them
  by sub-stream partitioning, exactly like GROUP-BY attributes.
* **Filter predicates** such as ``price > 100`` — a per-event condition on one
  attribute, optionally restricted to a single event type.

A :class:`PredicateSet` bundles both and is attached to a query.  The paper's
default workload assumption (Section 2.1) is that all queries in a workload
carry the same predicates; Section 7.2 relaxes that assumption by segmenting
streams, which this module's partition keys support directly.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

from ..events.event import Event

__all__ = [
    "EquivalencePredicate",
    "FilterPredicate",
    "PredicateSet",
    "COMPARATORS",
    "compile_filter_kernel",
]


COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True, slots=True)
class EquivalencePredicate:
    """All events of a match must carry the same value of ``attribute``.

    This is the paper's ``[vehicle]`` / ``[customer]`` notation.
    """

    attribute: str

    def key_of(self, event: Event) -> Hashable:
        """Partition key contributed by this predicate for ``event``."""
        return event.attribute(self.attribute)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.attribute}]"


@dataclass(frozen=True, slots=True)
class FilterPredicate:
    """A per-event comparison ``<attribute> <op> <constant>``.

    Parameters
    ----------
    attribute:
        Attribute the comparison reads.
    op:
        One of ``<  <=  >  >=  =  !=``.
    value:
        Constant right-hand side.
    event_type:
        If given, only events of this type are checked; other events pass.
    """

    attribute: str
    op: str
    value: Any
    event_type: str | None = None

    def __post_init__(self) -> None:
        if self.op not in COMPARATORS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def matches(self, event: Event) -> bool:
        if self.event_type is not None and event.event_type != self.event_type:
            return True
        actual = event.attribute(self.attribute)
        if actual is None:
            return False
        return COMPARATORS[self.op](actual, self.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        prefix = f"{self.event_type}." if self.event_type else ""
        return f"{prefix}{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True)
class PredicateSet:
    """The full WHERE clause of a query."""

    equivalences: tuple[EquivalencePredicate, ...] = ()
    filters: tuple[FilterPredicate, ...] = ()

    def __init__(
        self,
        equivalences: Iterable[EquivalencePredicate] = (),
        filters: Iterable[FilterPredicate] = (),
    ) -> None:
        object.__setattr__(self, "equivalences", tuple(equivalences))
        object.__setattr__(self, "filters", tuple(filters))

    @classmethod
    def same(cls, *attributes: str) -> "PredicateSet":
        """Convenience constructor: ``PredicateSet.same("vehicle")``."""
        return cls(equivalences=[EquivalencePredicate(a) for a in attributes])

    @property
    def is_empty(self) -> bool:
        return not self.equivalences and not self.filters

    @property
    def equivalence_attributes(self) -> tuple[str, ...]:
        return tuple(p.attribute for p in self.equivalences)

    def accepts(self, event: Event) -> bool:
        """Whether ``event`` passes every filter predicate."""
        return all(f.matches(event) for f in self.filters)

    def partition_key(self, event: Event) -> tuple[Hashable, ...]:
        """Equivalence-class key of ``event`` (one component per equivalence)."""
        return tuple(p.key_of(event) for p in self.equivalences)

    def accepts_sequence(self, events: Sequence[Event]) -> bool:
        """Whether a complete candidate sequence satisfies all predicates.

        Used by the brute-force reference matcher and the two-step baselines.
        """
        if not all(self.accepts(e) for e in events):
            return False
        for predicate in self.equivalences:
            values = {predicate.key_of(e) for e in events}
            if len(values) > 1:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [repr(p) for p in self.equivalences] + [repr(p) for p in self.filters]
        return " AND ".join(parts) if parts else "TRUE"


#: Shared immutable instance for queries without a WHERE clause.
PredicateSet.EMPTY = PredicateSet()  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# batch kernels (columnar predicate evaluation)
# ---------------------------------------------------------------------------

#: A batch kernel maps (columnar batch, candidate row indices) to the indices
#: that survive the compiled filters.  Kernels never re-touch Event objects.
BatchKernel = Callable[[Any, Sequence[int]], "list[int]"]


def _compile_one_filter(
    predicate: FilterPredicate, type_id_of: Callable[[str], int]
) -> "BatchKernel | None":
    """Compile one filter into an index-selection kernel over batch columns.

    Semantics mirror :meth:`FilterPredicate.matches` exactly: a type-restricted
    filter passes every event of other types, and a missing attribute
    (``None`` cell) fails the comparison.  Returns ``None`` when the filter is
    restricted to a type the layout does not carry — no routed event can be of
    that type, so the filter passes everything and compiles away.
    """
    comparator = COMPARATORS[predicate.op]
    constant = predicate.value
    attribute = predicate.attribute
    if predicate.event_type is None:

        def kernel(batch, indices):
            values = batch.columns[attribute]
            return [
                i for i in indices
                if (v := values[i]) is not None and comparator(v, constant)
            ]

        return kernel

    type_id = type_id_of(predicate.event_type)
    if type_id < 0:
        return None

    def kernel(batch, indices):
        type_ids = batch.type_ids
        values = batch.columns[attribute]
        return [
            i for i in indices
            if type_ids[i] != type_id
            or ((v := values[i]) is not None and comparator(v, constant))
        ]

    return kernel


def compile_filter_kernel(
    filters: Iterable[FilterPredicate], type_id_of: Callable[[str], int]
) -> "BatchKernel | None":
    """Compile a filter conjunction into one batch kernel, once per workload.

    The engine's columnar mode calls the kernel with each batch's candidate
    row indices (already restricted to pattern-relevant types); per-filter
    re-dispatch, per-event method calls, and ``Event.attribute`` lookups all
    happen here exactly once, at compile time.  Returns ``None`` when no
    filter survives compilation (the selection is a no-op).
    """
    kernels = [
        kernel
        for predicate in filters
        if (kernel := _compile_one_filter(predicate, type_id_of)) is not None
    ]
    if not kernels:
        return None
    if len(kernels) == 1:
        return kernels[0]

    def chained(batch, indices):
        for kernel in kernels:
            if not indices:
                break
            indices = kernel(batch, indices)
        return indices

    return chained
