"""Aggregation functions over matched event sequences (RETURN clause).

The paper supports distributive aggregates (COUNT, MIN, MAX, SUM) and the
algebraic AVG (Definition 2):

* ``COUNT(*)``      — number of matched sequences per group and window.
* ``COUNT(E)``      — number of events of type ``E`` across all matched
  sequences (with one occurrence of ``E`` per pattern this equals COUNT(*)).
* ``SUM(E.attr)``   — sum of ``attr`` over all events of type ``E`` in all
  matched sequences.
* ``MIN/MAX(E.attr)`` — extrema of ``attr`` over those events.
* ``AVG(E.attr)``   — SUM(E.attr) / COUNT(E).

All of them are computed incrementally by the online executors through the
:class:`AggregateState` monoid defined here: a state carries the sequence
count together with sum/min/max of the tracked attribute, supports the two
operations needed by prefix counting —

* ``extend(event, multiplier)``: append one event to ``multiplier`` existing
  (partial) sequences;
* ``merge(other)``: combine disjoint sets of sequences;
* ``scale(factor)`` / ``combine(left, right)``: multiply disjoint prefix and
  suffix match sets (the count-combination step of the Shared method,
  Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..events.event import Event

__all__ = ["AggregateSpec", "AggregateState", "AggregationKind"]


class AggregationKind:
    """Enumeration of supported aggregation function names."""

    COUNT_STAR = "COUNT(*)"
    COUNT = "COUNT"
    SUM = "SUM"
    MIN = "MIN"
    MAX = "MAX"
    AVG = "AVG"

    ALL = (COUNT_STAR, COUNT, SUM, MIN, MAX, AVG)


@dataclass(frozen=True, slots=True)
class AggregateSpec:
    """Specification of one aggregation function.

    Parameters
    ----------
    kind:
        One of :class:`AggregationKind` values.
    event_type:
        The event type ``E`` the aggregate targets (``None`` for COUNT(*)).
    attribute:
        The attribute ``attr`` for SUM/MIN/MAX/AVG.
    """

    kind: str
    event_type: Optional[str] = None
    attribute: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in AggregationKind.ALL:
            raise ValueError(f"unsupported aggregation function {self.kind!r}")
        if self.kind == AggregationKind.COUNT_STAR:
            if self.event_type is not None or self.attribute is not None:
                raise ValueError("COUNT(*) takes no event type or attribute")
        elif self.kind == AggregationKind.COUNT:
            if self.event_type is None:
                raise ValueError("COUNT(E) requires an event type")
        else:
            if self.event_type is None or self.attribute is None:
                raise ValueError(f"{self.kind} requires an event type and attribute")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def count_star(cls) -> "AggregateSpec":
        return cls(AggregationKind.COUNT_STAR)

    @classmethod
    def count(cls, event_type: str) -> "AggregateSpec":
        return cls(AggregationKind.COUNT, event_type)

    @classmethod
    def sum(cls, event_type: str, attribute: str) -> "AggregateSpec":
        return cls(AggregationKind.SUM, event_type, attribute)

    @classmethod
    def min(cls, event_type: str, attribute: str) -> "AggregateSpec":
        return cls(AggregationKind.MIN, event_type, attribute)

    @classmethod
    def max(cls, event_type: str, attribute: str) -> "AggregateSpec":
        return cls(AggregationKind.MAX, event_type, attribute)

    @classmethod
    def avg(cls, event_type: str, attribute: str) -> "AggregateSpec":
        return cls(AggregationKind.AVG, event_type, attribute)

    @property
    def read_attributes(self) -> tuple[str, ...]:
        """Attributes this aggregate reads from events (column-layout input)."""
        return (self.attribute,) if self.attribute is not None else ()

    @property
    def tracks_attribute(self) -> bool:
        """Whether the aggregate needs per-event attribute tracking."""
        return self.kind in (
            AggregationKind.SUM,
            AggregationKind.MIN,
            AggregationKind.MAX,
            AggregationKind.AVG,
        )

    def contribution(self, event: Event) -> Optional[float]:
        """Attribute value contributed by ``event``, or ``None`` if not targeted."""
        if self.event_type is not None and event.event_type != self.event_type:
            return None
        if self.attribute is None:
            return None
        value = event.attribute(self.attribute)
        if value is None:
            return None
        return float(value)

    def targets(self, event: Event) -> bool:
        """Whether ``event`` counts toward COUNT(E)/SUM/MIN/MAX/AVG of this spec."""
        return self.event_type is None or event.event_type == self.event_type

    def finalize(self, state: "AggregateState"):
        """Extract the final result value from an accumulated state."""
        if self.kind == AggregationKind.COUNT_STAR:
            return state.count
        if self.kind == AggregationKind.COUNT:
            return state.target_count
        if self.kind == AggregationKind.SUM:
            return state.total
        if self.kind == AggregationKind.MIN:
            return state.minimum
        if self.kind == AggregationKind.MAX:
            return state.maximum
        if self.kind == AggregationKind.AVG:
            if state.target_count == 0:
                return None
            return state.total / state.target_count
        raise AssertionError(f"unreachable aggregation kind {self.kind!r}")

    def summarise_batch(
        self, events: Sequence[Event]
    ) -> tuple[int, int, float, Optional[float], Optional[float]]:
        """Reduce same-type batch events to ``AggregateState.extend_many`` arguments.

        Returns ``(k, targeted, total_value, minimum, maximum)``.  All events
        must share one event type (they occupy one pattern position), so the
        targeting decision is made once for the whole batch.
        """
        k = len(events)
        if self.kind == AggregationKind.COUNT_STAR or not self.targets(events[0]):
            return k, 0, 0.0, None, None
        if not self.tracks_attribute:
            return k, k, 0.0, None, None
        total = 0.0
        minimum: Optional[float] = None
        maximum: Optional[float] = None
        for event in events:
            value = self.contribution(event)
            if value is None:
                continue
            total += value
            if minimum is None or value < minimum:
                minimum = value
            if maximum is None or value > maximum:
                maximum = value
        return k, k, total, minimum, maximum

    def summarise_values(
        self, k: int, values: Sequence
    ) -> tuple[int, int, float, Optional[float], Optional[float]]:
        """Reduce a raw attribute value column of ``k`` targeted events.

        The raw-column twin of :meth:`summarise_batch` for attribute-tracking
        specs: ``values`` holds the tracked attribute of ``k`` same-type,
        targeted events in batch order, ``None`` where an event does not
        carry it — the shape
        :meth:`~repro.events.columnar.ColumnarBatch.attribute_values`
        returns, so a summary never touches boxed events.  The numpy twin is
        :func:`repro.executor.kernels.summarise_values`; both reduce with the
        same sequential semantics, so their results are bit-identical.
        """
        total = 0.0
        minimum: Optional[float] = None
        maximum: Optional[float] = None
        for raw in values:
            if raw is None:
                continue
            value = float(raw)
            total += value
            if minimum is None or value < minimum:
                minimum = value
            if maximum is None or value > maximum:
                maximum = value
        return k, k, total, minimum, maximum

    def evaluate_sequences(self, sequences: Sequence[Sequence[Event]]):
        """Reference (two-step) evaluation over fully constructed sequences.

        The two-step baselines and the brute-force test oracle call this after
        they have materialised all matched sequences.
        """
        state = AggregateState.zero()
        for sequence in sequences:
            contribution = AggregateState.unit()
            for event in sequence:
                contribution = contribution.extend(event, self)
            state = state.merge(contribution)
        return self.finalize(state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == AggregationKind.COUNT_STAR:
            return "COUNT(*)"
        if self.kind == AggregationKind.COUNT:
            return f"COUNT({self.event_type})"
        return f"{self.kind}({self.event_type}.{self.attribute})"


@dataclass(frozen=True, slots=True)
class AggregateState:
    """Incremental aggregation state over a *set* of (partial) sequences.

    ``count`` is the number of sequences represented; ``target_count``,
    ``total``, ``minimum`` and ``maximum`` summarise the tracked attribute
    across events of the targeted type over all represented sequences.

    The state forms a commutative monoid under :meth:`merge` with identity
    :meth:`zero`, which is what makes shared, out-of-order-free incremental
    maintenance possible.
    """

    count: int = 0
    target_count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def zero() -> "AggregateState":
        """Identity element: the empty set of sequences (shared singleton)."""
        return _ZERO_STATE

    @staticmethod
    def unit() -> "AggregateState":
        """A single empty (zero-length) partial sequence (shared singleton)."""
        return _UNIT_STATE

    # -- monoid / semiring operations -----------------------------------------
    def merge(self, other: "AggregateState") -> "AggregateState":
        """Union of two disjoint sequence sets."""
        # Identity fast paths: the executors merge against zero() constantly
        # (fresh positions, empty carries); skipping the allocation keeps the
        # hot path low-churn.  States are immutable, so sharing is safe.
        if other is _ZERO_STATE:
            return self
        if self is _ZERO_STATE:
            return other
        return AggregateState(
            count=self.count + other.count,
            target_count=self.target_count + other.target_count,
            total=self.total + other.total,
            minimum=_none_min(self.minimum, other.minimum),
            maximum=_none_max(self.maximum, other.maximum),
        )

    def extend(self, event: Event, spec: Optional[AggregateSpec] = None) -> "AggregateState":
        """Append ``event`` to every sequence represented by this state.

        The sequence count is unchanged (each sequence grows by one event);
        if the event is targeted by ``spec`` its attribute contributes once
        per represented sequence.
        """
        if self.count == 0:
            return self
        if spec is None or not spec.targets(event):
            return self
        if spec.kind == AggregationKind.COUNT_STAR:
            return self
        value = spec.contribution(event) if spec.tracks_attribute else None
        new_target = self.target_count + self.count
        if value is None:
            if spec.tracks_attribute:
                # Targeted event without the attribute: counts for COUNT(E)
                # but contributes nothing to SUM/MIN/MAX.
                return AggregateState(self.count, new_target, self.total, self.minimum, self.maximum)
            return AggregateState(self.count, new_target, self.total, self.minimum, self.maximum)
        return AggregateState(
            count=self.count,
            target_count=new_target,
            total=self.total + value * self.count,
            minimum=_none_min(self.minimum, value),
            maximum=_none_max(self.maximum, value),
        )

    def extend_many(
        self,
        k: int,
        targeted: int,
        total_value: float,
        minimum: "Optional[float]",
        maximum: "Optional[float]",
    ) -> "AggregateState":
        """Merge of ``k`` copies of this state, each extended by one batch event.

        This is the fused form of ``merge(extend(e1), ..., extend(ek))`` used
        by the vectorised column updates: ``targeted`` is how many of the
        ``k`` events the spec targets, and ``total_value``/``minimum``/
        ``maximum`` summarise their tracked attribute values.  Correct because
        ``extend`` distributes over ``merge`` (the state is a commutative
        monoid and ``extend`` is linear in it).
        """
        if self.count == 0:
            return _ZERO_STATE
        if targeted == 0:
            return self.scale(k)
        return AggregateState(
            count=self.count * k,
            target_count=self.target_count * k + targeted * self.count,
            total=self.total * k + total_value * self.count,
            minimum=_none_min(self.minimum, minimum),
            maximum=_none_max(self.maximum, maximum),
        )

    def combine(self, right: "AggregateState") -> "AggregateState":
        """Cross-product combination of disjoint prefix and suffix match sets.

        Every sequence on the left is concatenated with every sequence on the
        right (count multiplication of the Shared method, Section 3.3).
        Attribute statistics distribute accordingly: each left contribution is
        replicated ``right.count`` times and vice versa.
        """
        if self.count == 0 or right.count == 0:
            return _ZERO_STATE
        return AggregateState(
            count=self.count * right.count,
            target_count=self.target_count * right.count + right.target_count * self.count,
            total=self.total * right.count + right.total * self.count,
            minimum=_none_min(self.minimum, right.minimum),
            maximum=_none_max(self.maximum, right.maximum),
        )

    def scale(self, factor: int) -> "AggregateState":
        """Replicate the represented sequences ``factor`` times."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        if factor == 0:
            return _ZERO_STATE
        if factor == 1:
            return self
        return AggregateState(
            count=self.count * factor,
            target_count=self.target_count * factor,
            total=self.total * factor,
            minimum=self.minimum,
            maximum=self.maximum,
        )

    @property
    def is_zero(self) -> bool:
        return self.count == 0

    # -- snapshot codec -------------------------------------------------------
    def as_tuple(self) -> tuple:
        """The state as a ``(count, target_count, total, min, max)`` tuple.

        This is the canonical JSON-safe snapshot leaf used by the engine's
        checkpoint/restore machinery (every field is an int, float or None,
        and Python's JSON codec round-trips all of them exactly).
        """
        return (self.count, self.target_count, self.total, self.minimum, self.maximum)

    @classmethod
    def from_tuple(cls, values: Sequence) -> "AggregateState":
        """Rebuild a state from :meth:`as_tuple` output (lists accepted)."""
        state = cls(*values)
        if state.count == 0 and state == _ZERO_STATE:
            # Restore the shared identity so merge() fast paths keep firing.
            return _ZERO_STATE
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AggregateState(count={self.count}, target_count={self.target_count}, "
            f"total={self.total}, min={self.minimum}, max={self.maximum})"
        )


#: Shared immutable identity states (frozen dataclasses, safe to alias).
_ZERO_STATE = AggregateState()
_UNIT_STATE = AggregateState(count=1)


def _none_min(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _none_max(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)
