"""Event sequence aggregation queries (Definition 2).

A :class:`Query` bundles the five clauses of the paper's query model:

* ``RETURN``   — an :class:`~repro.queries.aggregates.AggregateSpec`,
* ``PATTERN``  — a :class:`~repro.queries.pattern.Pattern`,
* ``WHERE``    — an optional :class:`~repro.queries.predicates.PredicateSet`,
* ``GROUP BY`` — a tuple of grouping attributes,
* ``WITHIN / SLIDE`` — a :class:`~repro.events.windows.SlidingWindow`.

Queries are immutable value objects; equality is structural so they can be
used as dictionary keys by the optimizer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from ..events.event import Event
from ..events.windows import SlidingWindow
from .aggregates import AggregateSpec
from .pattern import Pattern
from .predicates import PredicateSet

__all__ = ["Query", "GroupKey"]

#: A group key is the concatenation of GROUP-BY values and equivalence values.
GroupKey = tuple


_query_counter = itertools.count(1)


@dataclass(frozen=True)
class Query:
    """One event sequence aggregation query.

    Parameters
    ----------
    pattern:
        The event sequence pattern ``(E1 ... El)``.
    window:
        Sliding window specification (WITHIN / SLIDE).
    aggregate:
        The aggregation function of the RETURN clause; defaults to COUNT(*).
    predicates:
        Optional WHERE clause; defaults to the empty predicate set.
    group_by:
        Optional GROUP-BY attributes.
    name:
        Human-readable identifier (``q1``, ``q2`` ... by default).
    """

    pattern: Pattern
    window: SlidingWindow
    aggregate: AggregateSpec = field(default_factory=AggregateSpec.count_star)
    predicates: PredicateSet = field(default_factory=PredicateSet)
    group_by: tuple[str, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.pattern, Pattern):
            object.__setattr__(self, "pattern", Pattern(self.pattern))
        if isinstance(self.group_by, list):
            object.__setattr__(self, "group_by", tuple(self.group_by))
        if not self.name:
            object.__setattr__(self, "name", f"q{next(_query_counter)}")

    # -- structural helpers ----------------------------------------------------
    @property
    def event_types(self) -> tuple[str, ...]:
        """Event types referenced by the pattern, in pattern order."""
        return self.pattern.event_types

    @property
    def length(self) -> int:
        return len(self.pattern)

    def grouping_key(self, event: Event) -> GroupKey:
        """Group key of an event: GROUP-BY values then equivalence values.

        Events of the same match are required to agree on this key, so the
        executors partition each window's events by it.
        """
        group_values = tuple(event.attribute(attr) for attr in self.group_by)
        return group_values + self.predicates.partition_key(event)

    @property
    def partition_attributes(self) -> tuple[str, ...]:
        """All attributes participating in the grouping key."""
        return self.group_by + self.predicates.equivalence_attributes

    def accepts(self, event: Event) -> bool:
        """Whether an event is relevant at all for this query."""
        return event.event_type in set(self.pattern.event_types) and self.predicates.accepts(event)

    def same_context_as(self, other: "Query") -> bool:
        """Whether two queries agree on window, predicates, and grouping.

        The core Sharon model (Section 2.1, assumption 2) only shares patterns
        among queries with identical contexts; Section 7.2 relaxes this via
        stream segmentation, which callers can apply before optimization.
        """
        return (
            self.window == other.window
            and self.group_by == other.group_by
            and self.predicates == other.predicates
        )

    # -- derived queries ---------------------------------------------------------
    def with_pattern(self, pattern: "Pattern | Sequence[str]", name: str = "") -> "Query":
        """A copy of this query with a different pattern (used by generators)."""
        new_pattern = pattern if isinstance(pattern, Pattern) else Pattern(pattern)
        return Query(
            pattern=new_pattern,
            window=self.window,
            aggregate=self.aggregate,
            predicates=self.predicates,
            group_by=self.group_by,
            name=name or f"{self.name}'",
        )

    def matches_sequence(self, events: Sequence[Event]) -> bool:
        """Reference check: do ``events`` form a match of this query's pattern?

        Timestamps must be strictly increasing, types must follow the pattern,
        predicates and grouping must hold.  Window membership is checked by
        the caller (a sequence belongs to every window containing it).
        """
        if len(events) != len(self.pattern):
            return False
        for event, expected_type in zip(events, self.pattern.event_types):
            if event.event_type != expected_type:
                return False
        for earlier, later in zip(events, events[1:]):
            if not earlier.timestamp < later.timestamp:
                return False
        if not self.predicates.accepts_sequence(events):
            return False
        keys = {self.grouping_key(e) for e in events}
        return len(keys) <= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Query({self.name}: RETURN {self.aggregate!r} PATTERN SEQ{self.pattern!r} "
            f"WHERE {self.predicates!r} GROUP BY {list(self.group_by)} "
            f"WITHIN {self.window.size} SLIDE {self.window.slide})"
        )
