"""Query model: patterns, predicates, aggregates, queries, parser, workloads."""

from .aggregates import AggregateSpec, AggregateState, AggregationKind
from .parser import QueryParseError, parse_query
from .pattern import Pattern, PatternSplit
from .predicates import EquivalencePredicate, FilterPredicate, PredicateSet
from .query import GroupKey, Query
from .workload import Workload

__all__ = [
    "AggregateSpec",
    "AggregateState",
    "AggregationKind",
    "QueryParseError",
    "parse_query",
    "Pattern",
    "PatternSplit",
    "EquivalencePredicate",
    "FilterPredicate",
    "PredicateSet",
    "GroupKey",
    "Query",
    "Workload",
]
