"""A small textual query language in the SASE style used by the paper.

The grammar intentionally mirrors the paper's examples (Figures 1 and 2)::

    RETURN COUNT(*)
    PATTERN SEQ(OakSt, MainSt)
    WHERE [vehicle] AND price > 10
    GROUP BY route
    WITHIN 600 SLIDE 60

Clauses may appear on one line or several; only PATTERN and WITHIN/SLIDE are
mandatory.  ``parse_query`` returns a :class:`~repro.queries.query.Query`.

The parser is deliberately regular-expression based: queries are tiny and the
language has no nesting, so a hand-rolled tokenizer would add complexity
without value.
"""

from __future__ import annotations

import re

from ..events.windows import SlidingWindow
from .aggregates import AggregateSpec, AggregationKind
from .pattern import Pattern
from .predicates import EquivalencePredicate, FilterPredicate, PredicateSet
from .query import Query

__all__ = ["parse_query", "QueryParseError"]


class QueryParseError(ValueError):
    """Raised when a query string cannot be parsed."""


_CLAUSE_RE = re.compile(
    r"(RETURN|PATTERN|WHERE|GROUP\s+BY|WITHIN|SLIDE)", flags=re.IGNORECASE
)
_AGG_RE = re.compile(
    r"^\s*(COUNT|SUM|MIN|MAX|AVG)\s*\(\s*([^)]*)\s*\)\s*$", flags=re.IGNORECASE
)
_SEQ_RE = re.compile(r"^\s*SEQ\s*\(\s*([^)]*)\s*\)\s*$", flags=re.IGNORECASE)
_EQUIV_RE = re.compile(r"^\s*\[\s*([A-Za-z_][\w]*)\s*\]\s*$")
_FILTER_RE = re.compile(
    r"^\s*(?:([A-Za-z_][\w]*)\.)?([A-Za-z_][\w]*)\s*(<=|>=|!=|==|=|<|>)\s*([^\s]+)\s*$"
)


def parse_query(text: str, name: str = "") -> Query:
    """Parse a SASE-style query string into a :class:`Query`.

    Examples
    --------
    >>> q = parse_query(
    ...     "RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) "
    ...     "WHERE [vehicle] WITHIN 600 SLIDE 60"
    ... )
    >>> q.pattern.event_types
    ('OakSt', 'MainSt')
    """
    clauses = _split_clauses(text)
    if "PATTERN" not in clauses:
        raise QueryParseError("query misses the mandatory PATTERN clause")
    if "WITHIN" not in clauses:
        raise QueryParseError("query misses the mandatory WITHIN clause")

    pattern = _parse_pattern(clauses["PATTERN"])
    aggregate = _parse_aggregate(clauses.get("RETURN", "COUNT(*)"))
    predicates = _parse_where(clauses.get("WHERE", ""))
    group_by = _parse_group_by(clauses.get("GROUP BY", ""))
    window = _parse_window(clauses["WITHIN"], clauses.get("SLIDE"))

    return Query(
        pattern=pattern,
        window=window,
        aggregate=aggregate,
        predicates=predicates,
        group_by=group_by,
        name=name,
    )


def _split_clauses(text: str) -> dict[str, str]:
    pieces = _CLAUSE_RE.split(text)
    if pieces and pieces[0].strip():
        raise QueryParseError(f"unexpected text before first clause: {pieces[0]!r}")
    clauses: dict[str, str] = {}
    for keyword, body in zip(pieces[1::2], pieces[2::2]):
        key = re.sub(r"\s+", " ", keyword.upper().strip())
        if key in clauses:
            raise QueryParseError(f"duplicate {key} clause")
        clauses[key] = body.strip()
    return clauses


def _parse_aggregate(text: str) -> AggregateSpec:
    match = _AGG_RE.match(text)
    if not match:
        raise QueryParseError(f"cannot parse RETURN clause {text!r}")
    func = match.group(1).upper()
    argument = match.group(2).strip()
    if func == "COUNT":
        if argument in ("*", ""):
            return AggregateSpec.count_star()
        return AggregateSpec.count(argument)
    if "." not in argument:
        raise QueryParseError(
            f"{func} requires an argument of the form EventType.attribute, got {argument!r}"
        )
    event_type, attribute = argument.split(".", 1)
    kind = {
        "SUM": AggregationKind.SUM,
        "MIN": AggregationKind.MIN,
        "MAX": AggregationKind.MAX,
        "AVG": AggregationKind.AVG,
    }[func]
    return AggregateSpec(kind, event_type.strip(), attribute.strip())


def _parse_pattern(text: str) -> Pattern:
    match = _SEQ_RE.match(text)
    if not match:
        raise QueryParseError(f"cannot parse PATTERN clause {text!r}; expected SEQ(A, B, ...)")
    types = [t.strip() for t in match.group(1).split(",") if t.strip()]
    if not types:
        raise QueryParseError("PATTERN SEQ(...) must list at least one event type")
    return Pattern(types)


def _parse_where(text: str) -> PredicateSet:
    if not text.strip():
        return PredicateSet()
    equivalences: list[EquivalencePredicate] = []
    filters: list[FilterPredicate] = []
    for term in re.split(r"\bAND\b", text, flags=re.IGNORECASE):
        term = term.strip()
        if not term:
            continue
        equivalence = _EQUIV_RE.match(term)
        if equivalence:
            equivalences.append(EquivalencePredicate(equivalence.group(1)))
            continue
        comparison = _FILTER_RE.match(term)
        if comparison:
            event_type, attribute, op, raw_value = comparison.groups()
            filters.append(FilterPredicate(attribute, op, _parse_literal(raw_value), event_type))
            continue
        raise QueryParseError(f"cannot parse WHERE term {term!r}")
    return PredicateSet(equivalences, filters)


def _parse_group_by(text: str) -> tuple[str, ...]:
    if not text.strip():
        return ()
    return tuple(attr.strip() for attr in text.split(",") if attr.strip())


def _parse_window(within_text: str, slide_text: str | None) -> SlidingWindow:
    try:
        size = int(within_text.strip())
    except ValueError as exc:
        raise QueryParseError(f"WITHIN expects an integer, got {within_text!r}") from exc
    if slide_text is None:
        slide = size
    else:
        try:
            slide = int(slide_text.strip())
        except ValueError as exc:
            raise QueryParseError(f"SLIDE expects an integer, got {slide_text!r}") from exc
    return SlidingWindow(size=size, slide=slide)


def _parse_literal(raw: str):
    raw = raw.strip().strip("'\"")
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw
