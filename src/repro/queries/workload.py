"""Query workloads.

A :class:`Workload` is the unit of optimization in Sharon: the Multi-query
Event Sequence Aggregation problem takes a workload and a stream and asks for
the sharing plan minimising workload latency (Section 2.2).

Besides acting as an ordered container of queries, the workload exposes the
structural facts the optimizer needs — which event types occur, whether all
queries agree on window/predicates/grouping (the core model's assumption),
and per-query lookups by name.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..events.event import EventType
from .pattern import Pattern
from .query import Query

__all__ = ["Workload"]


class Workload:
    """An ordered collection of uniquely named queries."""

    def __init__(self, queries: Iterable[Query] = (), name: str = "workload") -> None:
        self.name = name
        self._queries: list[Query] = []
        self._by_name: dict[str, Query] = {}
        for query in queries:
            self.add(query)

    # -- container protocol -----------------------------------------------------
    def add(self, query: Query) -> None:
        if query.name in self._by_name:
            raise ValueError(f"duplicate query name {query.name!r} in workload {self.name!r}")
        self._queries.append(query)
        self._by_name[query.name] = query

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __len__(self) -> int:
        return len(self._queries)

    def __getitem__(self, key) -> Query:
        if isinstance(key, str):
            return self._by_name[key]
        return self._queries[key]

    def __contains__(self, query: "Query | str") -> bool:
        if isinstance(query, str):
            return query in self._by_name
        return query in self._queries

    @property
    def queries(self) -> tuple[Query, ...]:
        return tuple(self._queries)

    def query_names(self) -> tuple[str, ...]:
        return tuple(q.name for q in self._queries)

    def index_of(self, query: "Query | str") -> int:
        """Position of a query in the workload (used as its identifier)."""
        name = query if isinstance(query, str) else query.name
        for index, candidate in enumerate(self._queries):
            if candidate.name == name:
                return index
        raise KeyError(f"query {name!r} not in workload {self.name!r}")

    # -- structural facts ---------------------------------------------------------
    def event_types(self) -> tuple[EventType, ...]:
        """All event types referenced by any query, sorted."""
        types: set[EventType] = set()
        for query in self._queries:
            types.update(query.pattern.event_types)
        return tuple(sorted(types))

    def patterns(self) -> tuple[Pattern, ...]:
        return tuple(q.pattern for q in self._queries)

    def max_pattern_length(self) -> int:
        return max((len(q.pattern) for q in self._queries), default=0)

    def queries_containing(self, pattern: Pattern) -> tuple[Query, ...]:
        """All queries whose pattern contains ``pattern`` contiguously."""
        return tuple(q for q in self._queries if q.pattern.contains(pattern))

    def is_uniform(self) -> bool:
        """Whether all queries share window, predicates, and grouping.

        This is the paper's simplifying assumption (2) in Section 2.1; the
        optimizer warns (via :class:`ValueError` from callers that require it)
        when it does not hold.
        """
        if len(self._queries) <= 1:
            return True
        first = self._queries[0]
        return all(q.same_context_as(first) for q in self._queries[1:])

    def subset(self, names: Sequence[str], name: str = "") -> "Workload":
        """A new workload containing only the named queries (original order)."""
        wanted = set(names)
        picked = [q for q in self._queries if q.name in wanted]
        return Workload(picked, name=name or f"{self.name}-subset")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Workload({self.name!r}, {len(self._queries)} queries)"
