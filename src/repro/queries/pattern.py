"""Event sequence patterns (Definition 1) and their sub-pattern structure.

A pattern ``P = (E1 ... El)`` is an ordered tuple of event types.  A stream
sequence ``s = (e1 ... el)`` matches ``P`` if the events appear in strictly
increasing timestamp order with ``ei.type = Ei``.

Patterns are the central syntactic objects of the Sharon optimizer: sharable
patterns are contiguous sub-patterns shared by multiple queries
(Definition 3), and each query splits around a shared pattern into
``prefix``, shared pattern, and ``suffix`` (Definition 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..events.event import EventType

__all__ = ["Pattern", "PatternSplit"]


@dataclass(frozen=True)
class PatternSplit:
    """The decomposition of a query pattern around a shared sub-pattern.

    Attributes
    ----------
    prefix:
        Events preceding the shared pattern in the query (possibly empty).
    shared:
        The shared sub-pattern itself.
    suffix:
        Events following the shared pattern in the query (possibly empty).
    """

    prefix: "Pattern"
    shared: "Pattern"
    suffix: "Pattern"

    @property
    def segments(self) -> tuple["Pattern", ...]:
        """Non-empty segments in stream order (prefix, shared, suffix)."""
        return tuple(seg for seg in (self.prefix, self.shared, self.suffix) if len(seg) > 0)


class Pattern:
    """An event sequence pattern ``(E1 ... El)``.

    Patterns behave like immutable tuples of event types and support the
    sub-pattern operations used throughout the optimizer: enumeration of
    contiguous sub-patterns, overlap tests (Definition 6), and splitting a
    containing pattern into prefix / shared / suffix (Definition 4).

    Examples
    --------
    >>> p = Pattern(["OakSt", "MainSt"])
    >>> len(p), p.start_type, p.end_type
    (2, 'OakSt', 'MainSt')
    >>> Pattern(["ParkAve", "OakSt", "MainSt"]).contains(p)
    True
    """

    __slots__ = ("_types",)

    def __init__(self, event_types: Iterable[EventType]) -> None:
        types = tuple(event_types)
        if not types:
            raise ValueError("a pattern must contain at least one event type")
        if any(not isinstance(t, str) or not t for t in types):
            raise ValueError(f"pattern event types must be non-empty strings, got {types!r}")
        self._types = types

    # -- tuple-like behaviour -------------------------------------------------
    @property
    def event_types(self) -> tuple[EventType, ...]:
        return self._types

    @property
    def length(self) -> int:
        return len(self._types)

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[EventType]:
        return iter(self._types)

    def __getitem__(self, index) -> EventType:
        result = self._types[index]
        return result

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Pattern):
            return self._types == other._types
        if isinstance(other, tuple):
            return self._types == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._types)

    def __lt__(self, other: "Pattern") -> bool:
        return self._types < other._types

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({', '.join(self._types)})"

    # -- positional structure -------------------------------------------------
    @property
    def start_type(self) -> EventType:
        """Type of the START event of any match of this pattern."""
        return self._types[0]

    @property
    def end_type(self) -> EventType:
        """Type of the END event of any match of this pattern."""
        return self._types[-1]

    @property
    def mid_types(self) -> tuple[EventType, ...]:
        """Types of the MID events (may be empty)."""
        return self._types[1:-1]

    def index_of(self, event_type: EventType) -> int:
        """Position of ``event_type`` in the pattern (first occurrence)."""
        return self._types.index(event_type)

    def positions_of(self, event_type: EventType) -> tuple[int, ...]:
        """All positions of ``event_type`` (Section 7.3 extension)."""
        return tuple(i for i, t in enumerate(self._types) if t == event_type)

    def has_repeated_types(self) -> bool:
        """Whether some event type occurs more than once in the pattern."""
        return len(set(self._types)) < len(self._types)

    # -- sub-pattern operations ------------------------------------------------
    def subpattern(self, start: int, end: int) -> "Pattern":
        """Contiguous sub-pattern ``(E_start ... E_{end-1})`` (0-based, end exclusive)."""
        if not 0 <= start < end <= len(self._types):
            raise IndexError(f"invalid sub-pattern bounds [{start}:{end}] for length {len(self)}")
        return Pattern(self._types[start:end])

    def contiguous_subpatterns(self, min_length: int = 2) -> Iterator["Pattern"]:
        """Yield every contiguous sub-pattern of at least ``min_length`` types.

        The modified CCSpan detection (Appendix A) enumerates exactly these.
        """
        n = len(self._types)
        for end in range(min_length, n + 1):
            for start in range(0, end - min_length + 1):
                yield Pattern(self._types[start:end])

    def contains(self, other: "Pattern") -> bool:
        """Whether ``other`` appears as a contiguous sub-pattern of ``self``."""
        return self.find(other) >= 0

    def find(self, other: "Pattern") -> int:
        """Index of the first occurrence of ``other`` in ``self`` (or ``-1``)."""
        n, m = len(self._types), len(other._types)
        for start in range(0, n - m + 1):
            if self._types[start : start + m] == other._types:
                return start
        return -1

    def occurrences(self, other: "Pattern") -> tuple[int, ...]:
        """All start positions where ``other`` occurs in ``self``."""
        n, m = len(self._types), len(other._types)
        return tuple(
            start for start in range(0, n - m + 1) if self._types[start : start + m] == other._types
        )

    def split_around(self, shared: "Pattern", occurrence: int = 0) -> PatternSplit:
        """Split this pattern into prefix / ``shared`` / suffix (Definition 4).

        Raises
        ------
        ValueError
            If ``shared`` does not occur in this pattern.
        """
        starts = self.occurrences(shared)
        if not starts:
            raise ValueError(f"pattern {shared!r} does not occur in {self!r}")
        start = starts[occurrence]
        end = start + len(shared)
        prefix = Pattern(self._types[:start]) if start > 0 else _EMPTY
        suffix = Pattern(self._types[end:]) if end < len(self._types) else _EMPTY
        return PatternSplit(prefix=prefix, shared=shared, suffix=suffix)

    def overlaps(self, other: "Pattern") -> bool:
        """Positional overlap test used by the sharing-conflict model (Definition 6).

        Two patterns overlap if a non-empty suffix of one equals a non-empty
        prefix of the other (in either direction), or if one contains the
        other — exactly the situations where they would compete for the same
        positions of a query pattern that contains both.
        """
        if self.contains(other) or other.contains(self):
            return True
        return _suffix_prefix_overlap(self._types, other._types) or _suffix_prefix_overlap(
            other._types, self._types
        )

    def concat(self, other: "Pattern") -> "Pattern":
        """Concatenate two patterns (used by the shared executor's chaining)."""
        if len(other) == 0:
            return self
        if len(self._types) == 0:
            return other
        return Pattern(self._types + other._types)

    @staticmethod
    def empty() -> "Pattern":
        """The empty pattern placeholder used for missing prefixes/suffixes."""
        return _EMPTY


class _EmptyPattern(Pattern):
    """Internal zero-length pattern; only reachable via :meth:`Pattern.empty`."""

    def __init__(self) -> None:  # bypass the non-empty check deliberately
        self._types = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "()"


_EMPTY = _EmptyPattern()


def _suffix_prefix_overlap(left: tuple[EventType, ...], right: tuple[EventType, ...]) -> bool:
    """True if some non-empty suffix of ``left`` equals a prefix of ``right``."""
    max_k = min(len(left), len(right))
    for k in range(1, max_k + 1):
        if left[-k:] == right[:k]:
            return True
    return False
